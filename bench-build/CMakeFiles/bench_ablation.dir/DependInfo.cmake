
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cc" "bench-build/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o" "gcc" "bench-build/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/coherence/CMakeFiles/imo_coherence.dir/DependInfo.cmake"
  "/root/repo/src/farm/CMakeFiles/imo_farm.dir/DependInfo.cmake"
  "/root/repo/src/sweep/CMakeFiles/imo_sweep.dir/DependInfo.cmake"
  "/root/repo/src/core/CMakeFiles/imo_core.dir/DependInfo.cmake"
  "/root/repo/src/workloads/CMakeFiles/imo_workloads.dir/DependInfo.cmake"
  "/root/repo/src/sample/CMakeFiles/imo_sample.dir/DependInfo.cmake"
  "/root/repo/src/pipeline/CMakeFiles/imo_pipeline.dir/DependInfo.cmake"
  "/root/repo/src/branch/CMakeFiles/imo_branch.dir/DependInfo.cmake"
  "/root/repo/src/func/CMakeFiles/imo_func.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/imo_isa.dir/DependInfo.cmake"
  "/root/repo/src/memory/CMakeFiles/imo_memory.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/imo_obs.dir/DependInfo.cmake"
  "/root/repo/src/common/CMakeFiles/imo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
