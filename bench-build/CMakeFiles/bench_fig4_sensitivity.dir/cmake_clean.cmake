file(REMOVE_RECURSE
  "../bench/bench_fig4_sensitivity"
  "../bench/bench_fig4_sensitivity.pdb"
  "CMakeFiles/bench_fig4_sensitivity.dir/bench_fig4_sensitivity.cc.o"
  "CMakeFiles/bench_fig4_sensitivity.dir/bench_fig4_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
