# Empty dependencies file for bench_fig4_sensitivity.
# This may be replaced when dependencies are built.
