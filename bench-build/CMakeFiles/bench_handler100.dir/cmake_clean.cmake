file(REMOVE_RECURSE
  "../bench/bench_handler100"
  "../bench/bench_handler100.pdb"
  "CMakeFiles/bench_handler100.dir/bench_handler100.cc.o"
  "CMakeFiles/bench_handler100.dir/bench_handler100.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_handler100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
