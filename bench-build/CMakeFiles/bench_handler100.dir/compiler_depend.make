# Empty compiler generated dependencies file for bench_handler100.
# This may be replaced when dependencies are built.
