file(REMOVE_RECURSE
  "../bench/bench_mechanisms"
  "../bench/bench_mechanisms.pdb"
  "CMakeFiles/bench_mechanisms.dir/bench_mechanisms.cc.o"
  "CMakeFiles/bench_mechanisms.dir/bench_mechanisms.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mechanisms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
