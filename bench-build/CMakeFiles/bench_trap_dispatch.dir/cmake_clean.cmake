file(REMOVE_RECURSE
  "../bench/bench_trap_dispatch"
  "../bench/bench_trap_dispatch.pdb"
  "CMakeFiles/bench_trap_dispatch.dir/bench_trap_dispatch.cc.o"
  "CMakeFiles/bench_trap_dispatch.dir/bench_trap_dispatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trap_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
