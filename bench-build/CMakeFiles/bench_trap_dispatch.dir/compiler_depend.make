# Empty compiler generated dependencies file for bench_trap_dispatch.
# This may be replaced when dependencies are built.
