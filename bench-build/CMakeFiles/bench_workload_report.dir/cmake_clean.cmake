file(REMOVE_RECURSE
  "../bench/bench_workload_report"
  "../bench/bench_workload_report.pdb"
  "CMakeFiles/bench_workload_report.dir/bench_workload_report.cc.o"
  "CMakeFiles/bench_workload_report.dir/bench_workload_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
