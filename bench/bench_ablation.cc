/**
 * @file
 * Ablations of the design choices called out in DESIGN.md:
 *
 *  1. informing references consuming branch shadow-state checkpoints
 *     (the paper's "3x shadow state" discussion in section 3.2);
 *  2. the extended MSHR lifetime of section 3.3 (resource cost of
 *     pinning entries until graduation);
 *  3. the in-order replay-trap penalty;
 *  4. sampling in expensive monitoring handlers (the section 4.2.2
 *     suggestion for tools whose handlers run ~100 instructions);
 *  5. the branch predictor (Table 1's 2-bit counters vs. gshare).
 */

#include "harness.hh"

#include "core/handlers.hh"
#include "isa/builder.hh"

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Ablations ==\n\n");

    const auto suite_subset = {"compress", "tomcatv", "su2cor",
                               "hydro2d"};

    {
        TextTable table(
            "1) informing ops consume branch checkpoints (OOO, S-10)");
        table.header({"benchmark", "scaled shadow state",
                      "shared 3-checkpoint pool", "slowdown"});
        for (const char *name : suite_subset) {
            const isa::Program prog = core::instrument(
                workloads::build(name),
                core::InformingMode::TrapSingle, {.length = 10});
            auto scaled_cfg = pipeline::makeOutOfOrderConfig();
            auto shared_cfg = pipeline::makeOutOfOrderConfig();
            shared_cfg.informingTakesCheckpoint = true;
            const auto a = pipeline::simulate(prog, scaled_cfg);
            const auto b = pipeline::simulate(prog, shared_cfg);
            table.row({name, std::to_string(a.cycles),
                       std::to_string(b.cycles),
                       TextTable::num(static_cast<double>(b.cycles)
                                      / a.cycles, 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    {
        TextTable table(
            "2) extended MSHR lifetime (section 3.3), baseline runs");
        table.header({"benchmark", "machine", "normal", "extended",
                      "slowdown", "mshr-full rejects"});
        for (const char *name : {"swm256", "tomcatv"}) {
            for (auto base_cfg : {pipeline::makeOutOfOrderConfig(),
                                  pipeline::makeInOrderConfig()}) {
                const isa::Program prog = workloads::build(name);
                auto ext_cfg = base_cfg;
                ext_cfg.mem.extendedMshrLifetime = true;
                const auto a = pipeline::simulate(prog, base_cfg);
                const auto b = pipeline::simulate(prog, ext_cfg);
                table.row({name, base_cfg.name,
                           std::to_string(a.cycles),
                           std::to_string(b.cycles),
                           TextTable::num(static_cast<double>(b.cycles)
                                          / a.cycles, 3),
                           std::to_string(b.mshrFullRejects)});
            }
        }
        table.print(std::cout);
        std::printf("paper check: eight MSHRs remain sufficient with "
                    "the extended lifetime (slowdowns stay small).\n\n");
    }

    {
        TextTable table("3) in-order replay-trap penalty sweep "
                        "(compress, S-10)");
        table.header({"replay penalty", "cycles", "norm. to 5"});
        const isa::Program prog = core::instrument(
            workloads::build("compress"),
            core::InformingMode::TrapSingle, {.length = 10});
        Cycle baseline = 0;
        for (const Cycle penalty : {0ull, 2ull, 5ull, 8ull, 12ull}) {
            auto cfg = pipeline::makeInOrderConfig();
            cfg.replayTrapPenalty = penalty;
            const auto r = pipeline::simulate(prog, cfg);
            if (penalty == 5)
                baseline = r.cycles;
            table.row({std::to_string(penalty),
                       std::to_string(r.cycles),
                       baseline ? TextTable::num(
                           static_cast<double>(r.cycles) / baseline, 3)
                                : std::string("-")});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    {
        // Sampling: attach a 100-instruction monitoring handler to a
        // miss-heavy stream, sampled every Nth miss.
        TextTable table("4) sampled 100-instruction monitoring handler "
                        "(streaming kernel, in-order)");
        table.header({"period", "cycles", "norm. to unmonitored",
                      "handler insts"});

        auto build = [](std::uint32_t period) {
            using isa::intReg;
            isa::ProgramBuilder b("monitor");
            const Addr state = b.allocData(1, 64);
            b.initData(state, {1});
            const Addr buf = b.allocData(32 * 1024, 64);  // 256 KiB
            isa::Label entry = b.newLabel();
            b.j(entry);
            isa::Label handler = core::emitSampledHandler(
                b, state, period > 0 ? period : 1, 100);
            b.bind(entry);
            if (period > 0)
                b.setmhar(handler);
            else
                b.setmharDisable();
            b.li(intReg(1), static_cast<std::int64_t>(buf));
            b.li(intReg(2), 0);
            b.li(intReg(3), 32 * 1024);
            isa::Label top = b.newLabel();
            b.bind(top);
            b.ld(intReg(4), intReg(1), 0);
            b.add(intReg(5), intReg(5), intReg(4));
            b.addi(intReg(1), intReg(1), 8);
            b.addi(intReg(2), intReg(2), 1);
            b.blt(intReg(2), intReg(3), top);
            b.halt();
            return b.finish();
        };

        const auto machine = pipeline::makeInOrderConfig();
        const auto base = pipeline::simulate(build(0), machine);
        for (const std::uint32_t period : {1u, 10u, 100u}) {
            const auto r = pipeline::simulate(build(period), machine);
            table.row({std::to_string(period),
                       std::to_string(r.cycles),
                       TextTable::num(static_cast<double>(r.cycles)
                                      / base.cycles, 3),
                       std::to_string(r.handlerInstructions)});
        }
        table.print(std::cout);
        std::printf("paper check: sampling reduces the cost of "
                    "expensive monitoring roughly in proportion to the "
                    "period (section 4.2.2).\n\n");
    }

    {
        TextTable table("5) branch predictor: Table 1's 2-bit counters "
                        "vs. gshare (N runs)");
        table.header({"benchmark", "machine", "2-bit cyc",
                      "gshare cyc", "speedup", "mispredicts 2b->gs"});
        for (const char *name : {"espresso", "eqntott", "compress"}) {
            const isa::Program prog = workloads::build(name);
            for (auto cfg : {pipeline::makeOutOfOrderConfig(),
                             pipeline::makeInOrderConfig()}) {
                auto gs = cfg;
                gs.useGshare = true;
                const auto a = pipeline::simulate(prog, cfg);
                const auto b = pipeline::simulate(prog, gs);
                table.row({name, cfg.name,
                           std::to_string(a.cycles),
                           std::to_string(b.cycles),
                           TextTable::num(static_cast<double>(a.cycles)
                                          / b.cycles, 3),
                           std::to_string(a.mispredicts) + "->" +
                               std::to_string(b.mispredicts)});
            }
        }
        table.print(std::cout);
    }
    return 0;
}
