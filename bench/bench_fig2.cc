/**
 * @file
 * Figure 2 reproduction: performance of generic miss handlers (1 and
 * 10 instructions) across the thirteen regular SPEC92-like benchmarks
 * on both processor models.
 *
 * For every benchmark and machine, five bars are reported exactly as
 * in the paper: N (no informing operations), S (single miss handler)
 * and U (unique handler per static reference) for both handler sizes.
 * Each bar is the execution time normalized to N, decomposed into
 * busy / cache-stall / other-stall graduation slots.
 *
 * The grid runs on the sweep engine: every (machine, benchmark, bar)
 * cell is an isolated simulation dispatched to a worker pool
 * (IMO_SWEEP_JOBS, default: hardware concurrency), and the table is
 * printed from the ordered results — output is identical to the
 * sequential driver for any job count.
 */

#include <cstdlib>
#include <thread>

#include "harness.hh"
#include "sweep/engine.hh"

namespace
{

unsigned
jobsFromEnv()
{
    if (const char *env = std::getenv("IMO_SWEEP_JOBS")) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Figure 2: generic miss handlers, 1 and 10 "
                "instructions ==\n");
    const auto ooo = pipeline::makeOutOfOrderConfig();
    const auto ino = pipeline::makeInOrderConfig();
    printMachineHeader(ooo);
    printMachineHeader(ino);
    std::printf("\n");

    // One task per (machine, benchmark, bar) cell, in print order.
    struct Cell
    {
        const pipeline::MachineConfig *machine;
        const workloads::BenchmarkInfo *bm;
        const FigConfig *fc;
    };
    std::vector<Cell> cells;
    for (const auto *machine : {&ooo, &ino}) {
        for (const auto &bm : workloads::suite()) {
            if (bm.name == "su2cor")
                continue;  // shown separately (Figure 3)
            for (const FigConfig &fc : fig2Configs)
                cells.push_back(Cell{machine, &bm, &fc});
        }
    }
    std::vector<std::function<pipeline::RunResult()>> tasks;
    tasks.reserve(cells.size());
    for (const Cell &cell : cells) {
        tasks.emplace_back([cell] {
            const isa::Program base = cell.bm->build({});
            return runConfig(base, *cell.fc, *cell.machine);
        });
    }
    const std::vector<pipeline::RunResult> results =
        sweep::runOrdered(tasks, jobsFromEnv());

    std::size_t i = 0;
    for (const auto &machine : {ooo, ino}) {
        TextTable table("Figure 2, " + machine.name);
        table.header({"benchmark", "bar", "norm.time", "busy",
                      "cache-stall", "other-stall", "insts", "traps"});

        for (const auto &bm : workloads::suite()) {
            if (bm.name == "su2cor")
                continue;

            Cycle baseline = 0;
            for (const FigConfig &fc : fig2Configs) {
                const pipeline::RunResult &r = results[i++];
                if (fc.mode == core::InformingMode::None)
                    baseline = r.cycles;
                auto bars = barCells(r, baseline);
                table.row({bm.name, fc.label, bars[0], bars[1],
                           bars[2], bars[3],
                           std::to_string(r.instructions),
                           std::to_string(r.traps)});
            }
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: execution overhead stays below ~40%% for "
                "these thirteen benchmarks (tomcatv's in-order 10-"
                "instruction case is the noted exception).\n");
    return 0;
}
