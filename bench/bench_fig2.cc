/**
 * @file
 * Figure 2 reproduction: performance of generic miss handlers (1 and
 * 10 instructions) across the thirteen regular SPEC92-like benchmarks
 * on both processor models.
 *
 * For every benchmark and machine, five bars are reported exactly as
 * in the paper: N (no informing operations), S (single miss handler)
 * and U (unique handler per static reference) for both handler sizes.
 * Each bar is the execution time normalized to N, decomposed into
 * busy / cache-stall / other-stall graduation slots.
 */

#include "harness.hh"

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Figure 2: generic miss handlers, 1 and 10 "
                "instructions ==\n");
    const auto ooo = pipeline::makeOutOfOrderConfig();
    const auto ino = pipeline::makeInOrderConfig();
    printMachineHeader(ooo);
    printMachineHeader(ino);
    std::printf("\n");

    for (const auto &machine : {ooo, ino}) {
        TextTable table("Figure 2, " + machine.name);
        table.header({"benchmark", "bar", "norm.time", "busy",
                      "cache-stall", "other-stall", "insts", "traps"});

        for (const auto &bm : workloads::suite()) {
            if (bm.name == "su2cor")
                continue;  // shown separately (Figure 3)
            const isa::Program base = bm.build({});

            Cycle baseline = 0;
            for (const FigConfig &fc : fig2Configs) {
                const pipeline::RunResult r =
                    runConfig(base, fc, machine);
                if (fc.mode == core::InformingMode::None)
                    baseline = r.cycles;
                auto cells = barCells(r, baseline);
                table.row({bm.name, fc.label, cells[0], cells[1],
                           cells[2], cells[3],
                           std::to_string(r.instructions),
                           std::to_string(r.traps)});
            }
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: execution overhead stays below ~40%% for "
                "these thirteen benchmarks (tomcatv's in-order 10-"
                "instruction case is the noted exception).\n");
    return 0;
}
