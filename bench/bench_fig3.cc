/**
 * @file
 * Figure 3 reproduction: the su2cor benchmark shown separately because
 * its severe conflict misses in the in-order machine's 8 KiB
 * direct-mapped primary cache blow past Figure 2's scale (the paper
 * reports roughly tripled execution time and quintupled instruction
 * count for the 10-instruction handlers).
 */

#include "harness.hh"

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Figure 3: su2cor with generic miss handlers ==\n\n");

    const isa::Program base = workloads::build("su2cor");

    for (const auto &machine : {pipeline::makeOutOfOrderConfig(),
                                pipeline::makeInOrderConfig()}) {
        TextTable table("Figure 3, su2cor, " + machine.name);
        table.header({"bar", "norm.time", "busy", "cache-stall",
                      "other-stall", "insts", "norm.insts",
                      "L1 miss rate"});

        Cycle baseline = 0;
        std::uint64_t base_insts = 0;
        for (const FigConfig &fc : fig2Configs) {
            const pipeline::RunResult r = runConfig(base, fc, machine);
            if (fc.mode == core::InformingMode::None) {
                baseline = r.cycles;
                base_insts = r.instructions;
            }
            auto cells = barCells(r, baseline);
            table.row({fc.label, cells[0], cells[1], cells[2], cells[3],
                       std::to_string(r.instructions),
                       TextTable::num(static_cast<double>(r.instructions)
                                      / base_insts, 2),
                       TextTable::num(r.dataRefs
                                      ? static_cast<double>(r.l1Misses)
                                        / r.dataRefs : 0.0, 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: in-order 10-instruction handlers roughly "
                "triple execution time and several-fold the instruction "
                "count; the out-of-order machine is hit far less.\n");
    return 0;
}
