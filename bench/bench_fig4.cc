/**
 * @file
 * Figure 4 / Table 2 reproduction: fine-grained access control for
 * parallel programs (section 4.3) — normalized execution time of the
 * three access-control methods on five parallel kernels.
 *
 * The (kernel, method) grid runs on the sweep engine's ordered worker
 * pool (IMO_SWEEP_JOBS, default: hardware concurrency); each cell
 * constructs its own CoherentMachine, so output is identical to the
 * sequential driver for any job count.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <thread>

#include "coherence/kernels.hh"
#include "common/table.hh"
#include "sweep/engine.hh"

namespace
{

unsigned
jobsFromEnv()
{
    if (const char *env = std::getenv("IMO_SWEEP_JOBS")) {
        const unsigned n =
            static_cast<unsigned>(std::strtoul(env, nullptr, 10));
        if (n)
            return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

} // anonymous namespace

int
main()
{
    using namespace imo;
    using namespace imo::coherence;

    const CoherenceParams cp;
    std::printf("== Table 2 parameters ==\n");
    std::printf("%u processors, %lluKB L1 (+%llu cyc), %lluKB L2 "
                "(+%llu cyc), %uB coherence unit, %llu-cycle one-way "
                "messages\n",
                cp.processors,
                static_cast<unsigned long long>(cp.l1.sizeBytes / 1024),
                static_cast<unsigned long long>(cp.l1MissPenalty),
                static_cast<unsigned long long>(cp.l2.sizeBytes / 1024),
                static_cast<unsigned long long>(cp.l2MissPenalty),
                cp.coherenceUnitBytes,
                static_cast<unsigned long long>(cp.messageLatency));
    std::printf("ref-check: %llu-cycle lookup, %llu-cycle state change\n",
                static_cast<unsigned long long>(cp.refCheckLookup),
                static_cast<unsigned long long>(cp.refCheckStateChange));
    std::printf("ECC: %llu cycles read-to-invalid, %llu cycles "
                "write-to-page-with-READONLY\n",
                static_cast<unsigned long long>(cp.eccReadFault),
                static_cast<unsigned long long>(cp.eccWriteFault));
    std::printf("informing: %llu-cycle lookup (6-cycle dispatch + "
                "handler), %llu-cycle state change\n\n",
                static_cast<unsigned long long>(cp.informingLookup),
                static_cast<unsigned long long>(cp.informingStateChange));

    std::printf("== Figure 4: normalized execution times ==\n");
    std::printf("(normalized to the informing-operations method)\n\n");

    TextTable table("Figure 4");
    table.header({"application", "ref-check", "ecc-fault", "informing",
                  "hardware*", "events", "shared-misses", "net rounds"});

    const KernelParams kp;
    const std::vector<ParallelWorkload> kernels = makeAllKernels(kp);
    const AccessMethod methods[] = {AccessMethod::ReferenceCheck,
                                    AccessMethod::EccFault,
                                    AccessMethod::Informing,
                                    AccessMethod::Hardware};

    // One task per (kernel, method) cell; each constructs its own
    // machine and only reads the shared workload description.
    std::vector<std::function<CoherenceResult()>> tasks;
    tasks.reserve(kernels.size() * 4);
    for (const ParallelWorkload &wl : kernels) {
        for (const AccessMethod method : methods) {
            const ParallelWorkload *wlp = &wl;
            tasks.emplace_back([&cp, method, wlp] {
                CoherentMachine machine(cp, method);
                return machine.run(*wlp);
            });
        }
    }
    const std::vector<CoherenceResult> results =
        sweep::runOrdered(tasks, jobsFromEnv());

    double sum_ref = 0, sum_ecc = 0;
    int apps = 0;
    std::size_t idx = 0;
    for (const auto &wl : kernels) {
        Cycle t[4] = {0, 0, 0, 0};
        CoherenceResult last;
        for (int i = 0; i < 4; ++i) {
            const CoherenceResult &r = results[idx++];
            t[i] = r.execTime;
            if (methods[i] == AccessMethod::Informing)
                last = r;
        }
        const double ref_n = static_cast<double>(t[0]) / t[2];
        const double ecc_n = static_cast<double>(t[1]) / t[2];
        sum_ref += ref_n;
        sum_ecc += ecc_n;
        ++apps;
        table.row({wl.name, TextTable::num(ref_n, 3),
                   TextTable::num(ecc_n, 3), "1.000",
                   TextTable::num(static_cast<double>(t[3]) / t[2], 3),
                   std::to_string(last.protocolEvents),
                   std::to_string(last.l1Misses),
                   std::to_string(last.networkRounds)});
    }
    table.print(std::cout);
    std::printf("* hardware = footnote 8's dedicated-hardware "
                "systems (FLASH/Typhoon class): the zero-overhead "
                "bound the software methods chase.\n");

    std::printf("\naverage: informing is %.0f%% faster than the "
                "ECC-based scheme and %.0f%% faster than reference "
                "checking (paper: 18%% and 24%%).\n",
                100.0 * (sum_ecc / apps - 1.0),
                100.0 * (sum_ref / apps - 1.0));
    std::printf("paper check: the informing-operation scheme "
                "outperforms both alternatives on every application.\n");
    return 0;
}
