/**
 * @file
 * Section 4.3.2 sensitivity study: "either smaller network latencies
 * or larger primary cache sizes tend to improve the relative
 * performance of the informing memory implementation."
 */

#include <cstdio>
#include <iostream>

#include "coherence/kernels.hh"
#include "common/table.hh"

namespace
{

using namespace imo;
using namespace imo::coherence;

/** Geometric-mean advantage of informing over the two alternatives. */
void
runPoint(const CoherenceParams &cp,
         const std::vector<ParallelWorkload> &kernels,
         double &ref_over_inf, double &ecc_over_inf)
{
    double sr = 0, se = 0;
    for (const auto &wl : kernels) {
        Cycle t[3];
        int i = 0;
        for (auto method : {AccessMethod::ReferenceCheck,
                            AccessMethod::EccFault,
                            AccessMethod::Informing}) {
            CoherentMachine machine(cp, method);
            t[i++] = machine.run(wl).execTime;
        }
        sr += static_cast<double>(t[0]) / t[2];
        se += static_cast<double>(t[1]) / t[2];
    }
    ref_over_inf = sr / kernels.size();
    ecc_over_inf = se / kernels.size();
}

} // namespace

int
main()
{
    std::printf("== Section 4.3.2 sensitivity: network latency and L1 "
                "size ==\n\n");

    KernelParams kp;
    kp.scale = 0.5;
    const auto kernels = makeAllKernels(kp);

    {
        TextTable table("one-way message latency sweep (16KB L1)");
        table.header({"latency", "ref/informing", "ecc/informing"});
        for (const Cycle lat : {300ull, 600ull, 900ull, 1500ull,
                                3000ull}) {
            CoherenceParams cp;
            cp.messageLatency = lat;
            double r, e;
            runPoint(cp, kernels, r, e);
            table.row({std::to_string(lat), TextTable::num(r, 3),
                       TextTable::num(e, 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    {
        TextTable table("primary cache size sweep (900-cycle messages)");
        table.header({"L1 size", "ref/informing", "ecc/informing"});
        for (const std::uint64_t kb : {4ull, 8ull, 16ull, 32ull, 64ull}) {
            CoherenceParams cp;
            cp.l1.sizeBytes = kb * 1024;
            double r, e;
            runPoint(cp, kernels, r, e);
            table.row({std::to_string(kb) + "KB", TextTable::num(r, 3),
                       TextTable::num(e, 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    {
        TextTable table("network model: centralized round trips vs. "
                        "3-hop distributed homes");
        table.header({"kernel", "central ecc/inf", "dist ecc/inf",
                      "informing speedup central->dist"});
        for (const auto &wl : kernels) {
            CoherenceParams central;
            CoherenceParams dist;
            dist.distributedHomes = true;
            Cycle tc[2], td[2];
            int i = 0;
            for (auto m : {AccessMethod::EccFault,
                           AccessMethod::Informing}) {
                CoherentMachine c(central, m);
                CoherentMachine d(dist, m);
                tc[i] = c.run(wl).execTime;
                td[i] = d.run(wl).execTime;
                ++i;
            }
            table.row({wl.name,
                       TextTable::num(static_cast<double>(tc[0]) / tc[1],
                                      3),
                       TextTable::num(static_cast<double>(td[0]) / td[1],
                                      3),
                       TextTable::num(static_cast<double>(tc[1]) / td[1],
                                      3)});
        }
        table.print(std::cout);
    }

    std::printf("\npaper check: the informing scheme's advantage grows "
                "as messages get faster (its cheap handlers matter "
                "more) and as the primary cache grows (fewer benign "
                "misses pay the lookup).\n");
    return 0;
}
