/**
 * @file
 * Section 4.2.2's 100-instruction-handler experiment: execution time
 * with very large generic miss handlers across the whole suite.
 *
 * The paper's anchors: roughly 6x slowdown for compress, 7x for
 * su2cor, and only ~2% for ora (which essentially never misses).
 */

#include "harness.hh"

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Section 4.2.2: 100-instruction miss handlers ==\n\n");

    for (const auto &machine : {pipeline::makeOutOfOrderConfig(),
                                pipeline::makeInOrderConfig()}) {
        TextTable table("100-instruction single handler, " +
                        machine.name);
        table.header({"benchmark", "norm.time", "norm.insts",
                      "traps/kinst"});

        for (const auto &bm : workloads::suite()) {
            const isa::Program base = bm.build({});
            const pipeline::RunResult n = pipeline::simulate(
                core::instrument(base, core::InformingMode::None, {}),
                machine);
            const pipeline::RunResult h = pipeline::simulate(
                core::instrument(base, core::InformingMode::TrapSingle,
                                 {.length = 100}),
                machine);
            table.row({bm.name,
                       TextTable::num(static_cast<double>(h.cycles)
                                      / n.cycles, 2),
                       TextTable::num(static_cast<double>(h.instructions)
                                      / n.instructions, 2),
                       TextTable::num(1000.0 * h.traps / n.instructions,
                                      1)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: several-fold slowdowns for the miss-heavy "
                "codes (compress, su2cor), near-zero cost for ora.\n");
    return 0;
}
