/**
 * @file
 * Section 2 mechanism comparison: the cache-outcome condition code
 * (one explicit BRMISS per reference) versus low-overhead traps with a
 * single handler (zero hit overhead) versus per-reference SETMHAR.
 *
 * A synthetic kernel sweeps the primary-cache miss rate so the
 * crossover structure is visible: with few misses the trap scheme's
 * zero hit overhead wins; the condition-code check and the
 * unique-handler SETMHAR cost one instruction per reference either
 * way (the paper's section 2.3 observation that they are comparable).
 */

#include "harness.hh"

#include "isa/builder.hh"

namespace
{

using namespace imo;

/**
 * A pointer-free streaming kernel whose miss rate is set by the
 * footprint: `lines` distinct cache lines revisited round-robin.
 */
isa::Program
missRateKernel(std::uint64_t footprint_lines, std::uint64_t refs)
{
    using isa::intReg;
    isa::ProgramBuilder b("sweep");
    const Addr buf = b.allocData(footprint_lines * 4, 64);
    b.li(intReg(1), static_cast<std::int64_t>(buf));
    b.li(intReg(2), 0);
    b.li(intReg(3), static_cast<std::int64_t>(refs));
    b.li(intReg(5), 0);
    isa::Label top = b.newLabel();
    b.bind(top);
    b.ld(intReg(4), intReg(1), 0);
    b.add(intReg(5), intReg(5), intReg(4));
    b.addi(intReg(1), intReg(1), 32);          // next line
    b.addi(intReg(2), intReg(2), 1);
    // Wrap the pointer at the footprint.
    isa::Label no_wrap = b.newLabel();
    b.slti(intReg(6), intReg(2), 0);           // filler alu op
    b.andi(intReg(6), intReg(2),
           static_cast<std::int64_t>(footprint_lines - 1));
    b.bne(intReg(6), intReg(0), no_wrap);
    b.li(intReg(1), static_cast<std::int64_t>(buf));
    b.bind(no_wrap);
    b.blt(intReg(2), intReg(3), top);
    b.halt();
    return b.finish();
}

} // namespace

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Section 2: mechanism overhead vs. miss rate ==\n");
    std::printf("(normalized to the uninstrumented kernel; 10-"
                "instruction handlers)\n\n");

    for (const auto &machine : {pipeline::makeOutOfOrderConfig(),
                                pipeline::makeInOrderConfig()}) {
        TextTable table("mechanisms, " + machine.name);
        table.header({"footprint", "missrate", "trap-single",
                      "trap-unique", "cond-code"});

        // Footprints in lines: power-of-two so the wrap mask works.
        for (const std::uint64_t lines :
             {64ull, 512ull, 2048ull, 8192ull}) {
            const isa::Program base = missRateKernel(lines, 60000);
            func::ExecStats es;
            const pipeline::RunResult n =
                pipeline::simulate(base, machine, &es);

            auto norm = [&](core::InformingMode mode) {
                const pipeline::RunResult r = pipeline::simulate(
                    core::instrument(base, mode, {.length = 10}),
                    machine);
                return TextTable::num(
                    static_cast<double>(r.cycles) / n.cycles, 3);
            };

            table.row({std::to_string(lines * 32 / 1024) + "KB",
                       TextTable::num(es.l1MissRate(), 3),
                       norm(core::InformingMode::TrapSingle),
                       norm(core::InformingMode::TrapUnique),
                       norm(core::InformingMode::CondCode)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: the single-handler trap has no hit "
                "overhead; the explicit check (CC) and per-reference "
                "SETMHAR (U) track each other, and the extra "
                "instruction per reference is largely hidden on the "
                "out-of-order machine.\n");
    return 0;
}
