/**
 * @file
 * google-benchmark micro-suite: raw throughput of the simulator's
 * building blocks (not a paper experiment; useful for keeping the
 * harness fast enough to sweep).
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "common/rng.hh"
#include "core/informing.hh"
#include "func/executor.hh"
#include "memory/cache.hh"
#include "memory/timing.hh"
#include "pipeline/simulate.hh"
#include "sample/sample.hh"
#include "workloads/suite.hh"

namespace
{

using namespace imo;

void
BM_CacheAccess(benchmark::State &state)
{
    memory::SetAssocCache cache(
        {.sizeBytes = 32 * 1024, .lineBytes = 32,
         .assoc = static_cast<std::uint32_t>(state.range(0))});
    Rng rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += cache.access(32 * rng.below(4096), false).hit;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4);

void
BM_TimingMemoryRequest(benchmark::State &state)
{
    memory::TimingMemorySystem mem(memory::TimingMemoryParams{});
    Rng rng(2);
    Cycle now = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        now += 2;
        const auto r = mem.request(32 * rng.below(1024),
                                   rng.chance(0.1) ? MemLevel::L2
                                                   : MemLevel::L1,
                                   now);
        sink += r.dataReady;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingMemoryRequest);

void
BM_Predictor(benchmark::State &state)
{
    branch::TwoBitPredictor pred(2048);
    Rng rng(3);
    for (auto _ : state)
        pred.predictAndUpdate(static_cast<InstAddr>(rng.below(4096)),
                              rng.chance(0.6));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Predictor);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        func::Executor exec(prog, {.l1 = cfg.l1, .l2 = cfg.l2});
        insts += exec.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = state.range(0) == 0
        ? pipeline::makeOutOfOrderConfig()
        : pipeline::makeInOrderConfig();
    std::uint64_t insts = 0;
    for (auto _ : state)
        insts += pipeline::simulate(prog, cfg).instructions;
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_PipelineSimulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_SampledSimulation(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    const sample::SampleParams params; // default U:W:M schedule
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sample::Sampler sampler(prog, cfg, params);
        insts += sampler.run().instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SampledSimulation)->Unit(benchmark::kMillisecond);

void
BM_Instrumentation(benchmark::State &state)
{
    const isa::Program prog = workloads::build("compress");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::instrument(
            prog, core::InformingMode::TrapUnique, {.length = 10}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Instrumentation)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
