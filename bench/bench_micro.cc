/**
 * @file
 * google-benchmark micro-suite: raw throughput of the simulator's
 * building blocks (not a paper experiment; useful for keeping the
 * harness fast enough to sweep).
 */

#include <benchmark/benchmark.h>

#include "branch/predictor.hh"
#include "common/rng.hh"
#include "core/informing.hh"
#include "farm/proto.hh"
#include "farm/telemetry.hh"
#include "obs/trace.hh"
#include "func/executor.hh"
#include "memory/cache.hh"
#include "memory/multicache.hh"
#include "memory/timing.hh"
#include "pipeline/simulate.hh"
#include "sample/sample.hh"
#include "workloads/suite.hh"

namespace
{

using namespace imo;

void
BM_CacheAccess(benchmark::State &state)
{
    memory::SetAssocCache cache(
        {.sizeBytes = 32 * 1024, .lineBytes = 32,
         .assoc = static_cast<std::uint32_t>(state.range(0))});
    Rng rng(1);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        sink += cache.access(32 * rng.below(4096), false).hit;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(2)->Arg(4);

void
BM_TimingMemoryRequest(benchmark::State &state)
{
    memory::TimingMemorySystem mem(memory::TimingMemoryParams{});
    Rng rng(2);
    Cycle now = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        now += 2;
        const auto r = mem.request(32 * rng.below(1024),
                                   rng.chance(0.1) ? MemLevel::L2
                                                   : MemLevel::L1,
                                   now);
        sink += r.dataReady;
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimingMemoryRequest);

void
BM_Predictor(benchmark::State &state)
{
    branch::TwoBitPredictor pred(2048);
    Rng rng(3);
    for (auto _ : state)
        pred.predictAndUpdate(static_cast<InstAddr>(rng.below(4096)),
                              rng.chance(0.6));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Predictor);

void
BM_FunctionalExecution(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        func::Executor exec(prog, {.l1 = cfg.l1, .l2 = cfg.l2});
        insts += exec.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_PipelineSimulation(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = state.range(0) == 0
        ? pipeline::makeOutOfOrderConfig()
        : pipeline::makeInOrderConfig();
    std::uint64_t insts = 0;
    for (auto _ : state)
        insts += pipeline::simulate(prog, cfg).instructions;
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_PipelineSimulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_SampledSimulation(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    const sample::SampleParams params; // default U:W:M schedule
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sample::Sampler sampler(prog, cfg, params);
        insts += sampler.run().instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_SampledSimulation)->Unit(benchmark::kMillisecond);

/** Classification throughput of the single-pass multi-configuration
 *  engine: one captured reference stream driven through Arg(0)
 *  geometry configs at once. Items = references classified, so the
 *  per-config amortization shows up directly as items/s scaling with
 *  the arg (a dedicated pass would be flat). */
void
BM_MultiConfigPass(benchmark::State &state)
{
    struct Rec
    {
        Addr addr;
        bool write;
    };
    struct Capture final : func::RefSink
    {
        std::vector<Rec> *out;
        void
        onAccess(Addr a, bool w) override
        {
            out->push_back({a, w});
        }
        void
        onPrefetch(Addr) override
        {
        }
    };
    static const std::vector<Rec> stream = [] {
        // alvinn at full scale: ~400k references, so the per-pass
        // engine construction amortizes the way a real sweep's does.
        workloads::WorkloadParams wp;
        wp.scale = 1.0;
        const isa::Program prog = core::instrument(
            workloads::build("alvinn", wp),
            core::InformingMode::None, {});
        const auto cfg = pipeline::makeOutOfOrderConfig();
        std::vector<Rec> recs;
        Capture cap;
        cap.out = &recs;
        func::Executor exec(
            prog, func::Executor::Config{
                      .l1 = cfg.l1, .l2 = cfg.l2,
                      .maxInstructions = cfg.maxInstructions});
        exec.setRefSink(&cap);
        exec.fastForward(~std::uint64_t{0} >> 1, nullptr);
        return recs;
    }();

    const auto base = pipeline::makeOutOfOrderConfig();
    const std::uint64_t sizes[] = {4096, 8192, 16384, 32768, 65536,
                                   131072};
    const std::uint32_t assocs[] = {1, 2, 4, 8};
    std::vector<memory::MultiCacheConfig> cfgs;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
        memory::CacheGeometry g = base.l1;
        g.sizeBytes = sizes[(i / 4) % 6];
        g.assoc = assocs[i % 4];
        cfgs.push_back({g, base.l2});
    }

    std::uint64_t refs = 0;
    std::uint64_t sink = 0;
    for (auto _ : state) {
        memory::MultiCacheSim engine(cfgs);
        for (const Rec &r : stream)
            engine.access(r.addr, r.write);
        engine.sync();
        sink += engine.l1Misses(0);
        refs += stream.size();
    }
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(refs));
}
BENCHMARK(BM_MultiConfigPass)->Arg(1)->Arg(8)->Arg(24)
    ->Unit(benchmark::kMillisecond);

/** The one-time cost of capturing a live-point library on top of the
 *  sampled run: the functional pass serializes every window's executor
 *  and warm-predictor images instead of running windows in place. */
void
BM_LivePointCapture(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    const sample::SampleParams params;
    std::uint64_t insts = 0;
    for (auto _ : state) {
        sample::Sampler sampler(prog, cfg, params);
        sampler.setRetainCapture(true);
        insts += sampler.run().instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_LivePointCapture)->Unit(benchmark::kMillisecond);

/** Measuring from a captured library: no functional pass at all, the
 *  windows replay from their live points on Arg(0) worker threads.
 *  Compare against BM_SampledSimulation (the sequential interleaved
 *  run) and BM_LivePointCapture (what producing the library costs). */
void
BM_LivePointParallelSample(benchmark::State &state)
{
    workloads::WorkloadParams wp;
    wp.scale = 0.3;
    const isa::Program prog = workloads::build("espresso", wp);
    const auto cfg = pipeline::makeOutOfOrderConfig();
    const sample::SampleParams params;

    sample::Sampler capture(prog, cfg, params);
    capture.setRetainCapture(true);
    if (!capture.run().ok)
        state.SkipWithError("capture pass failed");
    const auto library = capture.capturedLibrary();

    std::uint64_t insts = 0;
    for (auto _ : state) {
        sample::Sampler sampler(prog, cfg, params);
        sampler.setLibrary(library);
        sampler.setJobs(static_cast<unsigned>(state.range(0)));
        insts += sampler.run().instructions;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(insts));
}
BENCHMARK(BM_LivePointParallelSample)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_Instrumentation(benchmark::State &state)
{
    const isa::Program prog = workloads::build("compress");
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::instrument(
            prog, core::InformingMode::TrapUnique, {.length = 10}));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Instrumentation)->Unit(benchmark::kMicrosecond);

/** Coordinator-side telemetry bookkeeping for one farmed point: the
 *  full note-chain a slot travels (describe, enqueue, grant, worker
 *  stats, result, store put) with the lease-timeline trace attached.
 *  This is the per-point cost --trace-out / --manifest add to a farm
 *  run; the simulation itself is deliberately absent. */
void
BM_FarmOverhead(benchmark::State &state)
{
    farm::FarmOptions opt;
    obs::TraceSink trace;
    trace.enable(static_cast<std::uint32_t>(obs::Cat::Farm) |
                 static_cast<std::uint32_t>(obs::Cat::Store));
    opt.trace = &trace;
    farm::FarmTelemetry telemetry(opt, 0);
    farm::StatsMsg stats;
    stats.simulateMs = 3;
    stats.serializeMs = 1;
    stats.statsJson = "{\"cycles\":1000,\"instructions\":400}";
    std::uint64_t now = 1;
    std::size_t slot = 0;
    for (auto _ : state) {
        telemetry.describeSlot(slot, "0123456789abcdef", "bench point");
        telemetry.noteEnqueue(slot, now);
        telemetry.noteGrant(slot, slot % 4, false, 1, now + 1);
        stats.slot = slot;
        telemetry.noteWorkerStats(slot, stats, now + 5);
        telemetry.noteResult(slot, slot % 4, false, 512, now + 5);
        telemetry.noteStorePut(slot, 1, now + 6);
        now += 7;
        ++slot;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(slot));
}
BENCHMARK(BM_FarmOverhead)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
