/**
 * @file
 * Sections 3.2 / 4.2.2: branch-style vs. exception-style dispatch of
 * informing traps on the out-of-order machine.
 *
 * Branch-style redirects fetch as soon as the miss is detected (like a
 * mispredicted branch); exception-style postpones the trap until the
 * informing reference reaches the head of the reorder buffer and the
 * machine is flushed. The paper reports a 9% (1-instruction handlers)
 * and 7% (10-instruction handlers) execution-time increase for
 * exception-style on compress.
 */

#include "harness.hh"

int
main()
{
    using namespace imo;
    using namespace imo::bench;

    std::printf("== Trap dispatch style: branch vs. exception "
                "(out-of-order) ==\n\n");

    auto branch_cfg = pipeline::makeOutOfOrderConfig();
    branch_cfg.trapDispatch = pipeline::TrapDispatch::BranchStyle;
    auto exc_cfg = pipeline::makeOutOfOrderConfig();
    exc_cfg.trapDispatch = pipeline::TrapDispatch::ExceptionStyle;

    for (const std::uint32_t len : {1u, 10u}) {
        TextTable table("single " + std::to_string(len) +
                        "-instruction handler");
        table.header({"benchmark", "branch cyc", "exception cyc",
                      "exception/branch"});

        for (const auto &bm : workloads::suite()) {
            const isa::Program base = bm.build({});
            const isa::Program prog = core::instrument(
                base, core::InformingMode::TrapSingle, {.length = len});
            const pipeline::RunResult rb =
                pipeline::simulate(prog, branch_cfg);
            const pipeline::RunResult re =
                pipeline::simulate(prog, exc_cfg);
            table.row({bm.name, std::to_string(rb.cycles),
                       std::to_string(re.cycles),
                       TextTable::num(static_cast<double>(re.cycles)
                                      / rb.cycles, 3)});
        }
        table.print(std::cout);
        std::printf("\n");
    }

    std::printf("paper check: exception-style dispatch costs a few "
                "percent (compress: +9%% / +7%% in the paper), so the "
                "branch mechanism's extra complexity buys performance.\n");
    return 0;
}
