/**
 * @file
 * Workload characterization report: the calibration evidence behind
 * the SPEC92 substitution (DESIGN.md section 3). For each of the 14
 * synthetic benchmarks, prints the dynamic instruction mix, memory
 * behavior on both machines' hierarchies, branch predictability, and
 * baseline IPC — the properties Figures 2-3 depend on.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "func/executor.hh"
#include "isa/op.hh"
#include "pipeline/simulate.hh"
#include "workloads/suite.hh"

namespace
{

using namespace imo;

struct Mix
{
    std::uint64_t total = 0;
    std::uint64_t mem = 0;
    std::uint64_t fp = 0;
    std::uint64_t branch = 0;
};

Mix
instructionMix(const isa::Program &prog,
               const pipeline::MachineConfig &cfg)
{
    func::Executor exec(prog, {.l1 = cfg.l1, .l2 = cfg.l2});
    Mix mix;
    func::TraceRecord r;
    while (exec.next(r)) {
        ++mix.total;
        const isa::OpClass cls = isa::opClass(r.inst.op);
        mix.mem += isa::isDataRef(r.inst.op);
        mix.fp += cls == isa::OpClass::FpAlu ||
            cls == isa::OpClass::FpDiv || cls == isa::OpClass::FpSqrt;
        mix.branch += cls == isa::OpClass::Branch;
    }
    return mix;
}

std::string
pct(double v)
{
    return TextTable::num(100.0 * v, 1) + "%";
}

} // namespace

int
main()
{
    const auto ooo = pipeline::makeOutOfOrderConfig();
    const auto ino = pipeline::makeInOrderConfig();

    std::printf("== workload characterization (calibration evidence "
                "for the SPEC92 substitution) ==\n\n");

    TextTable table("suite");
    table.header({"benchmark", "class", "insts", "mem", "fp", "branch",
                  "miss(32K/2w)", "miss(8K/dm)", "bp acc",
                  "IPC ooo", "IPC ino"});

    for (const auto &bm : workloads::suite()) {
        const isa::Program prog = bm.build({});
        const Mix mix = instructionMix(prog, ooo);

        func::ExecStats eso, esi;
        const auto ro = pipeline::simulate(prog, ooo, &eso);
        const auto ri = pipeline::simulate(prog, ino, &esi);

        const double bp_acc = ro.condBranches
            ? 1.0 - static_cast<double>(ro.mispredicts) / ro.condBranches
            : 1.0;

        table.row({bm.name, bm.floatingPoint ? "fp" : "int",
                   std::to_string(mix.total),
                   pct(static_cast<double>(mix.mem) / mix.total),
                   pct(static_cast<double>(mix.fp) / mix.total),
                   pct(static_cast<double>(mix.branch) / mix.total),
                   TextTable::num(eso.l1MissRate(), 3),
                   TextTable::num(esi.l1MissRate(), 3),
                   pct(bp_acc),
                   TextTable::num(ro.ipc(), 2),
                   TextTable::num(ri.ipc(), 2)});
    }
    table.print(std::cout);

    std::printf("\nanchors (paper): ora ~zero misses; su2cor's "
                "direct-mapped miss rate far above its 2-way rate; "
                "compress/tomcatv miss-heavy; FP codes more "
                "predictable branches than integer codes.\n");
    return 0;
}
