/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef IMO_BENCH_HARNESS_HH
#define IMO_BENCH_HARNESS_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/informing.hh"
#include "pipeline/simulate.hh"
#include "workloads/suite.hh"

namespace imo::bench
{

/** One Figure-2-style configuration: mode + generic handler length. */
struct FigConfig
{
    const char *label;
    core::InformingMode mode;
    std::uint32_t handlerLength;
};

/** The five bars of Figures 2-3: N, S/U x 1/10-instruction handlers. */
inline const FigConfig fig2Configs[] = {
    {"N", core::InformingMode::None, 1},
    {"S-1", core::InformingMode::TrapSingle, 1},
    {"U-1", core::InformingMode::TrapUnique, 1},
    {"S-10", core::InformingMode::TrapSingle, 10},
    {"U-10", core::InformingMode::TrapUnique, 10},
};

/** Run one benchmark in one informing configuration on one machine. */
inline pipeline::RunResult
runConfig(const isa::Program &base, const FigConfig &fc,
          const pipeline::MachineConfig &machine)
{
    const isa::Program prog =
        core::instrument(base, fc.mode,
                         {.length = fc.handlerLength});
    return pipeline::simulate(prog, machine);
}

/** Print the machine's Table-1 parameters (provenance header). */
inline void
printMachineHeader(const pipeline::MachineConfig &m)
{
    std::printf("machine %s: %u-wide, %s, L1 %lluKB/%u-way, "
                "L2 %lluKB/%u-way, L2 lat %llu, mem lat %llu, "
                "%u MSHRs, %u banks\n",
                m.name.c_str(), m.issueWidth,
                m.outOfOrder ? "out-of-order (ROB 32)" : "in-order",
                static_cast<unsigned long long>(m.l1.sizeBytes / 1024),
                m.l1.assoc,
                static_cast<unsigned long long>(m.l2.sizeBytes / 1024),
                m.l2.assoc,
                static_cast<unsigned long long>(m.mem.l2Latency),
                static_cast<unsigned long long>(m.mem.memLatency),
                m.mem.mshrs, m.mem.banks);
}

/**
 * Format the paper's stacked-bar decomposition: total normalized time
 * split into busy / cache-stall / other-stall graduation slots, all
 * relative to the baseline's cycle count.
 */
inline std::vector<std::string>
barCells(const pipeline::RunResult &r, Cycle baseline_cycles)
{
    const double scale =
        static_cast<double>(r.cycles) / baseline_cycles;
    return {TextTable::num(scale, 3),
            TextTable::num(scale * r.busyFraction(), 3),
            TextTable::num(scale * r.cacheStallFraction(), 3),
            TextTable::num(scale * r.otherStallFraction(), 3)};
}

} // namespace imo::bench

#endif // IMO_BENCH_HARNESS_HH
