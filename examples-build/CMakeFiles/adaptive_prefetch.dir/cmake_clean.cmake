file(REMOVE_RECURSE
  "../examples/adaptive_prefetch"
  "../examples/adaptive_prefetch.pdb"
  "CMakeFiles/adaptive_prefetch.dir/adaptive_prefetch.cpp.o"
  "CMakeFiles/adaptive_prefetch.dir/adaptive_prefetch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
