# Empty compiler generated dependencies file for adaptive_prefetch.
# This may be replaced when dependencies are built.
