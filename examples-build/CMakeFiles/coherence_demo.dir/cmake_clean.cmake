file(REMOVE_RECURSE
  "../examples/coherence_demo"
  "../examples/coherence_demo.pdb"
  "CMakeFiles/coherence_demo.dir/coherence_demo.cpp.o"
  "CMakeFiles/coherence_demo.dir/coherence_demo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coherence_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
