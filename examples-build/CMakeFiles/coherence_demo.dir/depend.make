# Empty dependencies file for coherence_demo.
# This may be replaced when dependencies are built.
