file(REMOVE_RECURSE
  "../examples/miss_profiler"
  "../examples/miss_profiler.pdb"
  "CMakeFiles/miss_profiler.dir/miss_profiler.cpp.o"
  "CMakeFiles/miss_profiler.dir/miss_profiler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miss_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
