# Empty compiler generated dependencies file for miss_profiler.
# This may be replaced when dependencies are built.
