file(REMOVE_RECURSE
  "../examples/multithread_switch"
  "../examples/multithread_switch.pdb"
  "CMakeFiles/multithread_switch.dir/multithread_switch.cpp.o"
  "CMakeFiles/multithread_switch.dir/multithread_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithread_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
