# Empty compiler generated dependencies file for multithread_switch.
# This may be replaced when dependencies are built.
