# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/examples-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_miss_profiler "/root/repo/examples/miss_profiler")
set_tests_properties(example_miss_profiler PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_prefetch "/root/repo/examples/adaptive_prefetch")
set_tests_properties(example_adaptive_prefetch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_coherence_demo "/root/repo/examples/coherence_demo")
set_tests_properties(example_coherence_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multithread_switch "/root/repo/examples/multithread_switch")
set_tests_properties(example_multithread_switch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
