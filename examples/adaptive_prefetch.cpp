/**
 * @file
 * Prefetching from the miss handler (paper section 4.1.2): instead of
 * issuing prefetches unconditionally, the prefetches live in the miss
 * handler, so prefetch overhead is only paid when the loop is actually
 * suffering misses.
 *
 * Three variants of a streaming reduction are compared on the
 * in-order machine:
 *   1. no prefetching,
 *   2. unconditional software prefetching (overhead on every
 *      iteration, even when the data is already resident),
 *   3. informing-operation handler prefetching (overhead only on
 *      misses).
 *
 * The sweep alternates between a large (miss-heavy) and a small
 * (resident) working set, which is exactly the situation where
 * adaptive prefetching wins.
 */

#include <cstdio>

#include "core/handlers.hh"
#include "func/executor.hh"
#include "isa/builder.hh"
#include "pipeline/simulate.hh"

namespace
{

using namespace imo;
using isa::intReg;

enum class Variant
{
    None,
    Unconditional,
    HandlerAdaptive,
};

isa::Program
buildVariant(Variant v)
{
    isa::ProgramBuilder b("prefetch-variant");
    const std::int64_t big_words = 24 * 1024;   // 192 KiB: misses
    const std::int64_t small_words = 512;       // 4 KiB: resident
    const Addr big = b.allocData(big_words, 64);
    const Addr small = b.allocData(small_words, 64);

    isa::Label entry = b.newLabel();
    b.j(entry);
    isa::Label handler = core::emitPrefetcher(b, intReg(1),
                                              /*lines=*/4,
                                              /*line_bytes=*/32);
    b.bind(entry);
    if (v == Variant::HandlerAdaptive)
        b.setmhar(handler);

    // Alternate phases: stream the big array, then hammer the small
    // one (repeated passes), eight times.
    b.li(intReg(10), 0);
    b.li(intReg(11), 8);
    isa::Label phase = b.newLabel();
    b.bind(phase);

    auto sweep = [&](Addr base, std::int64_t words,
                     std::int64_t passes) {
        b.li(intReg(20), 0);
        b.li(intReg(21), passes);
        isa::Label pass_top = b.newLabel();
        b.bind(pass_top);
        b.li(intReg(1), static_cast<std::int64_t>(base));
        b.li(intReg(2), 0);
        b.li(intReg(3), words);
        isa::Label top = b.newLabel();
        b.bind(top);
        if (v == Variant::Unconditional)
            b.prefetch(intReg(1), 4 * 32);
        b.ld(intReg(4), intReg(1), 0);
        b.add(intReg(5), intReg(5), intReg(4));
        b.addi(intReg(1), intReg(1), 8);
        b.addi(intReg(2), intReg(2), 1);
        b.blt(intReg(2), intReg(3), top);
        b.addi(intReg(20), intReg(20), 1);
        b.blt(intReg(20), intReg(21), pass_top);
    };

    sweep(big, big_words / 8, 1);    // miss-heavy phase (24 KiB slice)
    sweep(small, small_words, 6);    // resident phase

    b.addi(intReg(10), intReg(10), 1);
    b.blt(intReg(10), intReg(11), phase);
    b.halt();
    return b.finish();
}

} // namespace

int
main()
{
    const auto machine = pipeline::makeInOrderConfig();

    std::printf("== software-controlled prefetching from the miss "
                "handler (in-order machine) ==\n\n");
    std::printf("%-22s %12s %10s %12s %10s\n", "variant", "cycles",
                "norm", "prefetches", "missrate");

    Cycle baseline = 0;
    for (const Variant v : {Variant::None, Variant::Unconditional,
                            Variant::HandlerAdaptive}) {
        const isa::Program prog = buildVariant(v);
        func::ExecStats es;
        const pipeline::RunResult r =
            pipeline::simulate(prog, machine, &es);
        if (v == Variant::None)
            baseline = r.cycles;
        const char *name = v == Variant::None ? "no prefetch"
            : v == Variant::Unconditional ? "unconditional"
            : "miss-handler (adaptive)";
        std::printf("%-22s %12llu %10.3f %12llu %10.3f\n", name,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(r.cycles) / baseline,
                    static_cast<unsigned long long>(es.prefetches),
                    es.l1MissRate());
    }

    std::printf("\nthe handler variant prefetches only during the "
                "miss-heavy phase, so it gets the latency benefit "
                "without paying prefetch overhead on the resident "
                "phase (the paper's 'on-the-fly adaptation').\n");
    return 0;
}
