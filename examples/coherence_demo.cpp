/**
 * @file
 * Fine-grained access control with informing memory operations (paper
 * section 4.3): a small producer-consumer workload on the 16-processor
 * machine, run under all three access-control methods with a full cost
 * breakdown, showing where each method pays.
 */

#include <cstdio>
#include <iostream>

#include "coherence/kernels.hh"
#include "common/table.hh"

int
main()
{
    using namespace imo;
    using namespace imo::coherence;

    const CoherenceParams cp;
    KernelParams kp;
    kp.scale = 0.5;

    std::printf("== fine-grained access control demo: "
                "producer-consumer pipeline, %u processors ==\n\n",
                cp.processors);

    TextTable table("cost breakdown (cycles summed over processors)");
    table.header({"method", "exec time", "memory", "access-ctl",
                  "network", "barrier-wait", "lookups", "faults",
                  "events"});

    const ParallelWorkload wl = makeProdCons(kp);
    for (auto method : {AccessMethod::ReferenceCheck,
                        AccessMethod::EccFault,
                        AccessMethod::Informing}) {
        CoherentMachine machine(cp, method);
        const CoherenceResult r = machine.run(wl);
        table.row({accessMethodName(method),
                   std::to_string(r.execTime),
                   std::to_string(r.memoryCycles),
                   std::to_string(r.accessControlCycles),
                   std::to_string(r.networkCycles),
                   std::to_string(r.barrierWaitCycles),
                   std::to_string(r.lookups),
                   std::to_string(r.faults),
                   std::to_string(r.protocolEvents)});
    }
    table.print(std::cout);

    std::printf(
        "\nhow to read this:\n"
        "  - ref-check pays its %llu-cycle software lookup on *every* "
        "shared reference;\n"
        "  - ecc-fault pays nothing on hits but %llu/%llu-cycle faults "
        "on coherence events\n"
        "    (plus page-granularity write faults);\n"
        "  - informing pays a %llu-cycle handler lookup only on shared "
        "primary-cache misses,\n"
        "    which is also exactly when protocol work can be needed.\n",
        static_cast<unsigned long long>(cp.refCheckLookup),
        static_cast<unsigned long long>(cp.eccReadFault),
        static_cast<unsigned long long>(cp.eccWriteFault),
        static_cast<unsigned long long>(cp.informingLookup));
    return 0;
}
