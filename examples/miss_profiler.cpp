/**
 * @file
 * Per-reference miss profiling (paper section 4.1.1): the hash-table
 * handler keyed by the MHRR return address attributes every primary
 * cache miss to the static reference that caused it — the
 * informing-operations version of a memory performance tool.
 *
 * The profiled program mixes a streaming reference (cold misses only),
 * a cache-resident reference (no misses), and a conflict pair that
 * thrashes a direct-mapped cache. The tool's report makes the culprit
 * obvious, and the run also reports the profiling overhead in cycles,
 * which the paper found to be low.
 */

#include <cstdio>
#include <map>
#include <string>

#include "core/handlers.hh"
#include "func/executor.hh"
#include "isa/builder.hh"
#include "pipeline/simulate.hh"

namespace
{

using namespace imo;
using isa::intReg;

struct ProfiledProgram
{
    isa::Program prog;
    Addr table = 0;
    std::uint32_t tableSlotsLog2 = 0;
    std::map<std::string, InstAddr> refs;  // name -> pc of the ref
};

ProfiledProgram
buildProfiled(bool with_profiler)
{
    ProfiledProgram out;
    isa::ProgramBuilder b("profiled");

    out.tableSlotsLog2 = 10;               // 1024 slots > program size
    out.table = b.allocData(1u << out.tableSlotsLog2, 64);
    const Addr stream = b.allocData(16384, 64);       // 128 KiB
    const Addr resident = b.allocData(256, 64);       // 2 KiB
    // Two arrays exactly one direct-mapped-cache apart (8 KiB).
    const Addr conflict_a = b.allocData(1024, 8192);
    const Addr conflict_b = conflict_a + 8 * 1024;

    isa::Label entry = b.newLabel();
    b.j(entry);
    isa::Label handler =
        core::emitHashProfiler(b, out.table, out.tableSlotsLog2);

    b.bind(entry);
    if (with_profiler)
        b.setmhar(handler);
    b.li(intReg(1), static_cast<std::int64_t>(stream));
    b.li(intReg(2), static_cast<std::int64_t>(resident));
    b.li(intReg(3), static_cast<std::int64_t>(conflict_a));
    b.li(intReg(4), static_cast<std::int64_t>(conflict_b));
    b.li(intReg(5), 0);
    b.li(intReg(6), 16384);
    b.li(intReg(11), 0);                    // resident-array offset
    isa::Label top = b.newLabel();
    b.bind(top);
    out.refs["stream[i]   (128KB sequential)"] = b.here();
    b.ld(intReg(7), intReg(1), 0);
    b.add(intReg(12), intReg(2), intReg(11));
    out.refs["resident[i] (2KB, cached)"] = b.here();
    b.ld(intReg(8), intReg(12), 0);
    out.refs["conflictA[i] (aliases B)"] = b.here();
    b.ld(intReg(9), intReg(3), 0);
    out.refs["conflictB[i] (aliases A)"] = b.here();
    b.ld(intReg(10), intReg(4), 0);
    b.addi(intReg(1), intReg(1), 8);
    b.addi(intReg(11), intReg(11), 8);
    b.andi(intReg(11), intReg(11), 0x7ff);  // wrap inside 2 KiB
    b.addi(intReg(3), intReg(3), 8);
    b.addi(intReg(4), intReg(4), 8);
    b.addi(intReg(5), intReg(5), 1);
    b.blt(intReg(5), intReg(6), top);
    b.halt();

    out.prog = b.finish();
    return out;
}

} // namespace

int
main()
{
    // Profile on the in-order machine: its 8 KiB direct-mapped primary
    // cache is where the conflict pair hurts.
    const auto machine = pipeline::makeInOrderConfig();

    ProfiledProgram plain = buildProfiled(false);
    ProfiledProgram profiled = buildProfiled(true);

    func::Executor exec(profiled.prog,
                        {.l1 = machine.l1, .l2 = machine.l2});
    exec.run();

    std::printf("== per-reference miss profile (in-order machine, 8KB "
                "direct-mapped L1) ==\n");
    const std::uint64_t mask = (1u << profiled.tableSlotsLog2) - 1;
    std::uint64_t attributed = 0;
    for (const auto &[name, pc] : profiled.refs) {
        const std::uint64_t count =
            exec.mem().read64(profiled.table + 8 * ((pc + 1) & mask));
        attributed += count;
        std::printf("  %-28s pc=%4u  misses=%8llu\n", name.c_str(), pc,
                    static_cast<unsigned long long>(count));
    }
    std::printf("attributed %llu of %llu workload misses (handler's "
                "own table traffic also misses)\n",
                static_cast<unsigned long long>(attributed),
                static_cast<unsigned long long>(exec.stats().traps));

    // Overhead of running the tool. The paper reports under 25% for
    // SPEC-like miss rates; this deliberately pathological program
    // (~80% of its references miss the direct-mapped cache, which is
    // the bug being diagnosed) is the worst case for a per-miss tool.
    for (const auto &m : {pipeline::makeInOrderConfig(),
                          pipeline::makeOutOfOrderConfig()}) {
        const auto r_plain = pipeline::simulate(plain.prog, m);
        const auto r_prof = pipeline::simulate(profiled.prog, m);
        std::printf("\nprofiling overhead on %s: %llu -> %llu cycles "
                    "(+%.1f%%, %llu traps)\n",
                    m.name.c_str(),
                    static_cast<unsigned long long>(r_plain.cycles),
                    static_cast<unsigned long long>(r_prof.cycles),
                    100.0 * (static_cast<double>(r_prof.cycles) /
                             r_plain.cycles - 1.0),
                    static_cast<unsigned long long>(r_prof.traps));
    }
    return 0;
}
