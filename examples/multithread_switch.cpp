/**
 * @file
 * Software-controlled multithreading (paper section 4.1.3): a miss
 * handler that context-switches between software threads whenever the
 * running thread takes a primary-cache miss, hiding memory latency
 * with useful work from another thread — no multithreading hardware.
 *
 * Four threads sum disjoint 32 KiB arrays whose misses would stall a
 * single-threaded machine; the switcher keeps the pipeline busy. The
 * demo prints per-thread results and compares detailed timing with
 * and without switching.
 */

#include <cstdio>
#include <vector>

#include "core/handlers.hh"
#include "func/executor.hh"
#include "isa/builder.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/simulate.hh"

namespace
{

using namespace imo;
using isa::intReg;

constexpr std::uint32_t numThreads = 4;
constexpr std::int64_t wordsPerThread = 4096;  // 32 KiB each

struct Built
{
    isa::Program prog;
    Addr tcb0 = 0;
    std::vector<Addr> tcbs;
    std::vector<Addr> outs;
    Addr flags = 0;
    std::vector<InstAddr> entries;
    std::uint64_t tcbWords = 0;
};

Built
buildProgram(int trap_level)
{
    Built out;
    isa::ProgramBuilder b("mt-switch");
    const core::ThreadSwitchParams tsp{.numSavedRegs = 8};
    out.tcbWords = core::tcbWords(tsp);

    for (std::uint32_t t = 0; t < numThreads; ++t)
        out.tcbs.push_back(b.allocData(out.tcbWords, 64));
    out.tcb0 = out.tcbs[0];
    out.flags = b.allocData(numThreads, 64);
    std::vector<Addr> arrays;
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        const Addr a = b.allocData(wordsPerThread, 64);
        arrays.push_back(a);
        std::vector<std::uint64_t> init(wordsPerThread);
        for (std::int64_t i = 0; i < wordsPerThread; ++i)
            init[i] = static_cast<std::uint64_t>(t + 1) * 1000 + i;
        b.initData(a, std::move(init));
        out.outs.push_back(b.allocData(1, 64));
    }
    const Addr yield_area = b.allocData(16384, 64);  // 128 KiB

    isa::Label entry = b.newLabel();
    b.j(entry);
    isa::Label switcher = core::emitThreadSwitcher(b, tsp);
    b.bind(entry);

    // Thread body: sum my array, publish, raise my flag, then yield
    // (deliberate misses) until all flags are up; thread code uses
    // only r1..r8, the switcher-saved set.
    auto emit_thread = [&](std::uint32_t t) {
        const InstAddr tentry = b.here();
        b.li(intReg(1), 0);
        // Two passes: the first misses to memory (always worth a
        // switch), the second misses the 8 KiB L1 but hits L2 (a
        // 12-cycle wait -- cheaper than the ~21-instruction switch,
        // which is why section 4.1.3 suggests switching only on
        // secondary misses).
        b.li(intReg(8), 0);
        isa::Label pass_top = b.newLabel();
        b.bind(pass_top);
        b.li(intReg(2), static_cast<std::int64_t>(arrays[t]));
        b.li(intReg(3), 0);
        b.li(intReg(4), wordsPerThread);
        isa::Label top = b.newLabel();
        b.bind(top);
        b.ld(intReg(5), intReg(2), 0);
        b.add(intReg(1), intReg(1), intReg(5));
        b.addi(intReg(2), intReg(2), 8);
        b.addi(intReg(3), intReg(3), 1);
        b.blt(intReg(3), intReg(4), top);
        b.addi(intReg(8), intReg(8), 1);
        b.slti(intReg(5), intReg(8), 2);
        b.bne(intReg(5), intReg(0), pass_top);
        b.li(intReg(6), static_cast<std::int64_t>(out.outs[t]));
        b.st(intReg(1), intReg(6), 0);
        b.li(intReg(6), static_cast<std::int64_t>(out.flags));
        b.li(intReg(5), 1);
        b.st(intReg(5), intReg(6), 8 * t);     // my done flag
        // Yield until every flag is set.
        b.li(intReg(2), static_cast<std::int64_t>(yield_area));
        isa::Label spin = b.newLabel(), fin = b.newLabel();
        b.bind(spin);
        b.li(intReg(1), 0);
        for (std::uint32_t k = 0; k < numThreads; ++k) {
            b.ld(intReg(5), intReg(6), 8 * k);
            b.add(intReg(1), intReg(1), intReg(5));
        }
        b.slti(intReg(5), intReg(1), numThreads);
        b.beq(intReg(5), intReg(0), fin);
        b.ld(intReg(7), intReg(2), 0);          // deliberate miss
        b.addi(intReg(2), intReg(2), 2048);
        b.j(spin);
        b.bind(fin);
        b.halt();
        return tentry;
    };

    isa::Label start = b.newLabel();
    b.j(start);
    for (std::uint32_t t = 0; t < numThreads; ++t)
        out.entries.push_back(emit_thread(t));

    b.bind(start);
    b.li(intReg(30), static_cast<std::int64_t>(out.tcb0));
    b.setmhar(switcher);
    b.setmhlvl(trap_level);
    b.emit({.op = isa::Op::J,
            .imm = static_cast<std::int64_t>(out.entries[0])});
    out.prog = b.finish();
    return out;
}

/** Run the program on the in-order timing model with TCBs set up. */
pipeline::RunResult
timeRun(const Built &mt, const pipeline::MachineConfig &machine)
{
    func::Executor exec(mt.prog, {.l1 = machine.l1, .l2 = machine.l2});
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        exec.mem().write64(mt.tcbs[t] + (mt.tcbWords - 1) * 8,
                           mt.tcbs[(t + 1) % numThreads]);
        if (t != 0)
            exec.mem().write64(mt.tcbs[t] + 0, mt.entries[t]);
    }
    pipeline::InOrderCpu cpu(machine);
    return cpu.run(exec);
}

} // namespace

int
main()
{
    const auto machine = pipeline::makeInOrderConfig();

    // --- Multithreaded run: one program, four software threads. -----
    Built mt = buildProgram(1);
    func::Executor exec(mt.prog, {.l1 = machine.l1, .l2 = machine.l2});
    // Initialize the TCB ring and thread entry points.
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        exec.mem().write64(mt.tcbs[t] + (mt.tcbWords - 1) * 8,
                           mt.tcbs[(t + 1) % numThreads]);
        if (t != 0)
            exec.mem().write64(mt.tcbs[t] + 0, mt.entries[t]);
    }
    exec.run();

    std::printf("== context-switch-on-miss multithreading "
                "(section 4.1.3) ==\n\n");
    const std::uint64_t expect_base =
        2 * (static_cast<std::uint64_t>(wordsPerThread) *
             (wordsPerThread - 1) / 2);
    for (std::uint32_t t = 0; t < numThreads; ++t) {
        const std::uint64_t got = exec.mem().read64(mt.outs[t]);
        const std::uint64_t expect =
            expect_base + 2 * static_cast<std::uint64_t>(t + 1) * 1000 *
            wordsPerThread;
        std::printf("thread %u: sum=%llu (%s)\n", t,
                    static_cast<unsigned long long>(got),
                    got == expect ? "correct" : "WRONG");
    }
    std::printf("context switches (traps): %llu\n\n",
                static_cast<unsigned long long>(exec.stats().traps));

    // --- Timing: switch-on-any-miss vs. switch-on-secondary-miss. ---
    // Section 4.1.3's first optimization: "invoke a thread switch only
    // on secondary (rather than primary) cache misses", here via the
    // trap-level threshold.
    Built mt_l1 = buildProgram(1);
    Built mt_l2 = buildProgram(2);
    const pipeline::RunResult r_any = timeRun(mt_l1, machine);
    const pipeline::RunResult r_sec = timeRun(mt_l2, machine);

    std::printf("switch on any L1 miss:      %8llu cycles, %5llu "
                "switches, IPC %.2f\n",
                static_cast<unsigned long long>(r_any.cycles),
                static_cast<unsigned long long>(r_any.traps),
                r_any.ipc());
    std::printf("switch on secondary miss:   %8llu cycles, %5llu "
                "switches, IPC %.2f\n",
                static_cast<unsigned long long>(r_sec.cycles),
                static_cast<unsigned long long>(r_sec.traps),
                r_sec.ipc());
    std::printf("secondary-only is %.1f%% faster: L2 hits (12 cycles) "
                "are cheaper than the ~21-instruction switch, so only "
                "memory-bound misses are worth switching on.\n",
                100.0 * (static_cast<double>(r_any.cycles) /
                         r_sec.cycles - 1.0));
    return 0;
}
