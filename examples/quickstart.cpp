/**
 * @file
 * Quickstart: write a small MRISC program, attach a miss-counting
 * handler through the low-overhead cache-miss-trap mechanism, and run
 * it both functionally and on the detailed out-of-order timing model.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/handlers.hh"
#include "func/executor.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "pipeline/simulate.hh"

int
main()
{
    using namespace imo;
    using isa::intReg;

    // --- 1. Build a program: sum a 64 KiB array. --------------------
    isa::ProgramBuilder b("quickstart");
    const Addr counter = b.allocData(1, 64);   // miss counter
    const std::int64_t words = 8192;
    const Addr array = b.allocData(words, 64); // 64 KiB
    {
        std::vector<std::uint64_t> init(words);
        for (std::int64_t i = 0; i < words; ++i)
            init[i] = static_cast<std::uint64_t>(i);
        b.initData(array, std::move(init));
    }

    // Handler first (skipped over by the entry jump): one of the
    // library handlers from paper section 4.1.1.
    isa::Label entry = b.newLabel();
    b.j(entry);
    isa::Label handler = core::emitMissCounter(b, counter);

    b.bind(entry);
    b.setmhar(handler);            // arm the informing mechanism
    b.li(intReg(1), static_cast<std::int64_t>(array));
    b.li(intReg(2), 0);            // index
    b.li(intReg(3), words);        // limit
    b.li(intReg(4), 0);            // sum
    isa::Label top = b.newLabel();
    b.bind(top);
    b.ld(intReg(5), intReg(1), 0); // informing load
    b.add(intReg(4), intReg(4), intReg(5));
    b.addi(intReg(1), intReg(1), 8);
    b.addi(intReg(2), intReg(2), 1);
    b.blt(intReg(2), intReg(3), top);
    b.halt();
    const isa::Program prog = b.finish();

    std::printf("program: %u instructions, %u static memory refs\n",
                prog.size(), prog.numStaticRefs());
    std::printf("first instructions:\n%s...\n",
                isa::disassemble(prog).substr(0, 300).c_str());

    // --- 2. Functional run against the R10000-like hierarchy. -------
    const auto machine = pipeline::makeOutOfOrderConfig();
    func::Executor exec(prog, {.l1 = machine.l1, .l2 = machine.l2});
    exec.run();

    const std::uint64_t expected =
        static_cast<std::uint64_t>(words) * (words - 1) / 2;
    std::printf("\nfunctional: sum = %llu (expected %llu)\n",
                static_cast<unsigned long long>(exec.state().ireg[4]),
                static_cast<unsigned long long>(expected));
    std::printf("the miss handler counted %llu misses "
                "(executor saw %llu; 64KB / 32B lines = 2048 cold "
                "misses)\n",
                static_cast<unsigned long long>(
                    exec.mem().read64(counter)),
                static_cast<unsigned long long>(exec.stats().l1Misses));

    // --- 3. Detailed timing run. -------------------------------------
    const pipeline::RunResult r = pipeline::simulate(prog, machine);
    std::printf("\ntiming (%s): %llu cycles, IPC %.2f\n",
                r.machine.c_str(),
                static_cast<unsigned long long>(r.cycles), r.ipc());
    std::printf("graduation slots: %.1f%% busy, %.1f%% cache stall, "
                "%.1f%% other\n",
                100 * r.busyFraction(), 100 * r.cacheStallFraction(),
                100 * r.otherStallFraction());
    std::printf("%llu informing traps were dispatched.\n",
                static_cast<unsigned long long>(r.traps));
    return 0;
}
