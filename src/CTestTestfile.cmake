# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("isa")
subdirs("memory")
subdirs("branch")
subdirs("func")
subdirs("core")
subdirs("pipeline")
subdirs("workloads")
subdirs("coherence")
subdirs("sample")
subdirs("sweep")
subdirs("farm")
