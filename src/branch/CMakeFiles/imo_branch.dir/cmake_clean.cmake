file(REMOVE_RECURSE
  "CMakeFiles/imo_branch.dir/predictor.cc.o"
  "CMakeFiles/imo_branch.dir/predictor.cc.o.d"
  "libimo_branch.a"
  "libimo_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
