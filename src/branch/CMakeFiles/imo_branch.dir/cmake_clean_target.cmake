file(REMOVE_RECURSE
  "libimo_branch.a"
)
