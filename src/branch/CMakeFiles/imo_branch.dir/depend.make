# Empty dependencies file for imo_branch.
# This may be replaced when dependencies are built.
