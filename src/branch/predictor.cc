#include "branch/predictor.hh"

#include "common/error.hh"

namespace imo::branch
{

TwoBitPredictor::TwoBitPredictor(std::uint32_t entries)
    : _counters(entries, 1), _mask(entries - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "predictor table size must be a power of two");
}

bool
TwoBitPredictor::predict(InstAddr pc) const
{
    return _counters[index(pc)] >= 2;
}

void
TwoBitPredictor::update(InstAddr pc, bool taken)
{
    std::uint8_t &ctr = _counters[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

bool
TwoBitPredictor::predictAndUpdate(InstAddr pc, bool taken)
{
    ++_lookups;
    const bool predicted = predict(pc);
    update(pc, taken);
    if (predicted != taken) {
        ++_mispredicts;
        return false;
    }
    return true;
}

GsharePredictor::GsharePredictor(std::uint32_t entries,
                                 std::uint32_t history_bits)
    : _counters(entries, 1), _mask(entries - 1),
      _historyMask((1u << history_bits) - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "gshare table size must be a power of two");
    sim_throw_if(history_bits == 0 || history_bits > 20,
                 ErrCode::BadConfig,
                 "unreasonable gshare history length");
}

bool
GsharePredictor::predict(InstAddr pc) const
{
    return _counters[index(pc)] >= 2;
}

void
GsharePredictor::update(InstAddr pc, bool taken)
{
    std::uint8_t &ctr = _counters[index(pc)];
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
    _history = ((_history << 1) | (taken ? 1 : 0)) & _historyMask;
}

bool
GsharePredictor::predictAndUpdate(InstAddr pc, bool taken)
{
    ++_lookups;
    const bool predicted = predict(pc);
    update(pc, taken);
    if (predicted != taken) {
        ++_mispredicts;
        return false;
    }
    return true;
}

Btb::Btb(std::uint32_t entries) : _entries(entries), _mask(entries - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "BTB size must be a power of two");
}

std::int64_t
Btb::lookup(InstAddr pc) const
{
    const Entry &e = _entries[index(pc)];
    if (e.valid && e.pc == pc)
        return e.target;
    return -1;
}

void
Btb::update(InstAddr pc, InstAddr target)
{
    Entry &e = _entries[index(pc)];
    e.valid = true;
    e.pc = pc;
    e.target = target;
}

} // namespace imo::branch
