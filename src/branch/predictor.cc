#include "branch/predictor.hh"

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::branch
{

TwoBitPredictor::TwoBitPredictor(std::uint32_t entries)
    : _counters(entries, 1), _mask(entries - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "predictor table size must be a power of two");
}

GsharePredictor::GsharePredictor(std::uint32_t entries,
                                 std::uint32_t history_bits)
    : _counters(entries, 1), _mask(entries - 1),
      _historyMask((1u << history_bits) - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "gshare table size must be a power of two");
    sim_throw_if(history_bits == 0 || history_bits > 20,
                 ErrCode::BadConfig,
                 "unreasonable gshare history length");
}

Btb::Btb(std::uint32_t entries) : _entries(entries), _mask(entries - 1)
{
    sim_throw_if(entries == 0 || (entries & (entries - 1)),
                 ErrCode::BadConfig,
                 "BTB size must be a power of two");
}

std::int64_t
Btb::lookup(InstAddr pc) const
{
    ++_lookups;
    const Entry &e = _entries[index(pc)];
    if (e.valid && e.pc == pc) {
        ++_hits;
        return e.target;
    }
    return -1;
}

void
Btb::update(InstAddr pc, InstAddr target)
{
    Entry &e = _entries[index(pc)];
    e.valid = true;
    e.pc = pc;
    e.target = target;
}

namespace
{

void
checkTableSize(std::uint64_t saved, std::size_t configured,
               const char *what)
{
    sim_throw_if(saved != configured, ErrCode::BadCheckpoint,
                 "checkpointed %s has %llu entries, configured one "
                 "has %zu", what,
                 static_cast<unsigned long long>(saved), configured);
}

} // namespace

void
TwoBitPredictor::save(Serializer &s) const
{
    // Zero-RLE: untrained entries dominate the table for short warm
    // spans, and per-window live-point images store one of these.
    s.u64(_counters.size());
    s.vecU8Rle(_counters);
    s.u64(_lookups);
    s.u64(_mispredicts);
}

void
TwoBitPredictor::restore(Deserializer &d)
{
    const std::size_t want = _counters.size();
    checkTableSize(d.u64(), want, "bimodal predictor");
    _counters = d.vecU8Rle();
    checkTableSize(_counters.size(), want, "bimodal predictor");
    _lookups = d.u64();
    _mispredicts = d.u64();
}

void
GsharePredictor::save(Serializer &s) const
{
    s.u64(_counters.size());
    s.vecU8Rle(_counters);
    s.u32(_history);
    s.u64(_lookups);
    s.u64(_mispredicts);
}

void
GsharePredictor::restore(Deserializer &d)
{
    const std::size_t want = _counters.size();
    checkTableSize(d.u64(), want, "gshare predictor");
    _counters = d.vecU8Rle();
    checkTableSize(_counters.size(), want, "gshare predictor");
    _history = d.u32() & _historyMask;
    _lookups = d.u64();
    _mispredicts = d.u64();
}

void
Btb::save(Serializer &s) const
{
    s.u64(_entries.size());
    for (const Entry &e : _entries) {
        s.b(e.valid);
        s.u32(e.pc);
        s.u32(e.target);
    }
    s.u64(_lookups);
    s.u64(_hits);
}

void
Btb::restore(Deserializer &d)
{
    checkTableSize(d.u64(), _entries.size(), "BTB");
    for (Entry &e : _entries) {
        e.valid = d.b();
        e.pc = d.u32();
        e.target = d.u32();
    }
    _lookups = d.u64();
    _hits = d.u64();
}

void
TwoBitPredictor::registerStats(stats::StatGroup &parent,
                               const std::string &name)
{
    auto &g = parent.childGroup(name);
    g.make<stats::Value>("lookups", "branches predicted",
                         [this] { return _lookups; });
    g.make<stats::Value>("mispredicts", "mispredicted branches",
                         [this] { return _mispredicts; });
    g.make<stats::Derived>("accuracy", "1 - mispredicts / lookups",
                           [this] { return accuracy(); });
}

void
GsharePredictor::registerStats(stats::StatGroup &parent,
                               const std::string &name)
{
    auto &g = parent.childGroup(name);
    g.make<stats::Value>("lookups", "branches predicted",
                         [this] { return _lookups; });
    g.make<stats::Value>("mispredicts", "mispredicted branches",
                         [this] { return _mispredicts; });
    g.make<stats::Derived>("accuracy", "1 - mispredicts / lookups",
                           [this] { return accuracy(); });
}

void
Btb::registerStats(stats::StatGroup &parent, const std::string &name)
{
    auto &g = parent.childGroup(name);
    g.make<stats::Value>("lookups", "BTB lookups",
                         [this] { return _lookups; });
    g.make<stats::Value>("hits", "BTB hits", [this] { return _hits; });
}

} // namespace imo::branch
