/**
 * @file
 * Branch prediction: a table of 2-bit saturating counters (the scheme
 * named in the paper's Table 1) and a direct-mapped branch target
 * buffer for taken-target supply.
 */

#ifndef IMO_BRANCH_PREDICTOR_HH
#define IMO_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::branch
{

/** Bimodal predictor: 2-bit saturating counters indexed by PC. */
class TwoBitPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit TwoBitPredictor(std::uint32_t entries = 2048);

    /** @return the predicted direction for the branch at @p pc. */
    bool predict(InstAddr pc) const { return _counters[index(pc)] >= 2; }

    /** Train with the resolved direction. */
    void
    update(InstAddr pc, bool taken)
    {
        std::uint8_t &ctr = _counters[index(pc)];
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
    }

    // Statistics.
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t mispredicts() const { return _mispredicts; }

    double
    accuracy() const
    {
        return _lookups
            ? 1.0 - static_cast<double>(_mispredicts) / _lookups
            : 1.0;
    }

    /**
     * Convenience: predict and update in one step (once per conditional
     * branch on the timing hot path, hence inline).
     * @return true if the prediction matched @p taken.
     */
    bool
    predictAndUpdate(InstAddr pc, bool taken)
    {
        ++_lookups;
        const bool predicted = predict(pc);
        update(pc, taken);
        if (predicted != taken) {
            ++_mispredicts;
            return false;
        }
        return true;
    }

    /** Expose lookup/mispredict stats under @p parent. */
    void registerStats(stats::StatGroup &parent, const std::string &name);

    /** Checkpoint hooks: counters and stats round-trip. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    std::uint32_t index(InstAddr pc) const { return pc & _mask; }

    std::vector<std::uint8_t> _counters; //!< 0..3, >=2 predicts taken
    std::uint32_t _mask;

    std::uint64_t _lookups = 0;
    std::uint64_t _mispredicts = 0;
};

/**
 * Gshare predictor: 2-bit counters indexed by PC xor global history.
 * Not part of the paper's Table 1 (which specifies 2-bit counters);
 * provided for the predictor ablation in bench_ablation.
 */
class GsharePredictor
{
  public:
    explicit GsharePredictor(std::uint32_t entries = 2048,
                             std::uint32_t history_bits = 8);

    bool predict(InstAddr pc) const { return _counters[index(pc)] >= 2; }

    void
    update(InstAddr pc, bool taken)
    {
        std::uint8_t &ctr = _counters[index(pc)];
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        _history = ((_history << 1) | (taken ? 1 : 0)) & _historyMask;
    }

    bool
    predictAndUpdate(InstAddr pc, bool taken)
    {
        ++_lookups;
        const bool predicted = predict(pc);
        update(pc, taken);
        if (predicted != taken) {
            ++_mispredicts;
            return false;
        }
        return true;
    }

    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t mispredicts() const { return _mispredicts; }

    double
    accuracy() const
    {
        return _lookups
            ? 1.0 - static_cast<double>(_mispredicts) / _lookups
            : 1.0;
    }

    /** Expose lookup/mispredict stats under @p parent. */
    void registerStats(stats::StatGroup &parent, const std::string &name);

    /** Checkpoint hooks: counters, history, and stats round-trip. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    std::uint32_t index(InstAddr pc) const
    {
        return (pc ^ _history) & _mask;
    }

    std::vector<std::uint8_t> _counters;
    std::uint32_t _mask;
    std::uint32_t _history = 0;
    std::uint32_t _historyMask;

    std::uint64_t _lookups = 0;
    std::uint64_t _mispredicts = 0;
};

/** Direct-mapped branch target buffer. */
class Btb
{
  public:
    explicit Btb(std::uint32_t entries = 512);

    /** @return the cached target for @p pc, or -1 if absent. */
    std::int64_t lookup(InstAddr pc) const;

    /** Install/refresh the target of the branch at @p pc. */
    void update(InstAddr pc, InstAddr target);

    // Statistics (lookup() is morally const; counting is bookkeeping).
    std::uint64_t lookups() const { return _lookups; }
    std::uint64_t hits() const { return _hits; }

    /** Expose lookup/hit stats under @p parent. */
    void registerStats(stats::StatGroup &parent, const std::string &name);

    /** Checkpoint hooks: entries and stats round-trip. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Entry
    {
        bool valid = false;
        InstAddr pc = 0;
        InstAddr target = 0;
    };

    std::uint32_t index(InstAddr pc) const { return pc & _mask; }

    std::vector<Entry> _entries;
    std::uint32_t _mask;

    mutable std::uint64_t _lookups = 0;
    mutable std::uint64_t _hits = 0;
};

} // namespace imo::branch

#endif // IMO_BRANCH_PREDICTOR_HH
