
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coherence/directory.cc" "src/coherence/CMakeFiles/imo_coherence.dir/directory.cc.o" "gcc" "src/coherence/CMakeFiles/imo_coherence.dir/directory.cc.o.d"
  "/root/repo/src/coherence/kernels.cc" "src/coherence/CMakeFiles/imo_coherence.dir/kernels.cc.o" "gcc" "src/coherence/CMakeFiles/imo_coherence.dir/kernels.cc.o.d"
  "/root/repo/src/coherence/machine.cc" "src/coherence/CMakeFiles/imo_coherence.dir/machine.cc.o" "gcc" "src/coherence/CMakeFiles/imo_coherence.dir/machine.cc.o.d"
  "/root/repo/src/coherence/params.cc" "src/coherence/CMakeFiles/imo_coherence.dir/params.cc.o" "gcc" "src/coherence/CMakeFiles/imo_coherence.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/imo_common.dir/DependInfo.cmake"
  "/root/repo/src/memory/CMakeFiles/imo_memory.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/imo_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
