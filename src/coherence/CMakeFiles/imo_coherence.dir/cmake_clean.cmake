file(REMOVE_RECURSE
  "CMakeFiles/imo_coherence.dir/directory.cc.o"
  "CMakeFiles/imo_coherence.dir/directory.cc.o.d"
  "CMakeFiles/imo_coherence.dir/kernels.cc.o"
  "CMakeFiles/imo_coherence.dir/kernels.cc.o.d"
  "CMakeFiles/imo_coherence.dir/machine.cc.o"
  "CMakeFiles/imo_coherence.dir/machine.cc.o.d"
  "CMakeFiles/imo_coherence.dir/params.cc.o"
  "CMakeFiles/imo_coherence.dir/params.cc.o.d"
  "libimo_coherence.a"
  "libimo_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
