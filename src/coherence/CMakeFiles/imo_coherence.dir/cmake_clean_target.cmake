file(REMOVE_RECURSE
  "libimo_coherence.a"
)
