# Empty compiler generated dependencies file for imo_coherence.
# This may be replaced when dependencies are built.
