#include "coherence/directory.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::coherence
{

Directory::Directory(std::uint32_t processors, std::uint32_t block_bytes)
    : _processors(processors), _blockBytes(block_bytes)
{
    // Bad construction parameters are an input error, not an internal
    // invariant violation: surface them as structured SimExceptions so
    // sweep drivers and tools can report and continue.
    sim_throw_if(processors == 0 || processors > 32, ErrCode::BadConfig,
                 "directory supports 1..32 processors, got %u",
                 processors);
    sim_throw_if(block_bytes == 0 || (block_bytes & (block_bytes - 1)),
                 ErrCode::BadConfig,
                 "directory block size must be a power of two, got %u",
                 block_bytes);
}

LineState
Directory::state(std::uint32_t proc, Addr addr) const
{
    const auto it = _blocks.find(blockOf(addr));
    if (it == _blocks.end())
        return LineState::Invalid;
    const Entry &e = it->second;
    if (e.owner == static_cast<std::int32_t>(proc))
        return LineState::ReadWrite;
    if (e.sharers & (1u << proc))
        return LineState::ReadOnly;
    return LineState::Invalid;
}

ProtocolAction
Directory::read(std::uint32_t proc, Addr addr)
{
    panic_if(proc >= _processors, "bad processor id %u", proc);
    Entry &e = _blocks[blockOf(addr)];
    ProtocolAction action;

    if (e.owner == static_cast<std::int32_t>(proc) ||
        (e.sharers & (1u << proc))) {
        action.satisfied = true;
        return action;
    }

    action.stateChange = true;
    action.networkRounds = 1;  // fetch a readable copy
    // 3-hop message count: requester -> home, then either home replies
    // or forwards to the owner which replies to the requester.
    const std::uint32_t home = homeOf(addr);
    action.messages += proc == home ? 0 : 1;
    if (e.owner >= 0) {
        // Downgrade the remote writer to READONLY (its cached data
        // stays valid for reads).
        action.networkRounds += 1;
        action.downgradedOwner = e.owner;
        const auto owner = static_cast<std::uint32_t>(e.owner);
        action.messages += home == owner ? 0 : 1;   // forward
        action.messages += owner == proc ? 0 : 1;   // data reply
        e.sharers |= (1u << e.owner);
        e.owner = -1;
    } else {
        action.messages += home == proc ? 0 : 1;    // data reply
    }
    e.sharers |= (1u << proc);
    return action;
}

ProtocolAction
Directory::write(std::uint32_t proc, Addr addr)
{
    panic_if(proc >= _processors, "bad processor id %u", proc);
    Entry &e = _blocks[blockOf(addr)];
    ProtocolAction action;

    if (e.owner == static_cast<std::int32_t>(proc)) {
        action.satisfied = true;
        return action;
    }

    action.stateChange = true;
    action.networkRounds = 1;  // obtain ownership

    const std::uint32_t home = homeOf(addr);
    action.messages += proc == home ? 0 : 2;        // request + grant

    std::uint32_t others = e.sharers & ~(1u << proc);
    action.roInvalidateMask = others;
    if (e.owner >= 0)
        others |= (1u << e.owner);
    if (others != 0) {
        // User-level DMA invalidations proceed in parallel at the
        // remote nodes: one additional (overlapped) round trip
        // (multicast + ack on the distributed-home model).
        action.networkRounds += 1;
        action.invalidateMask = others;
        action.messages += 2;
    }

    e.sharers = 0;
    e.owner = static_cast<std::int32_t>(proc);
    return action;
}

bool
Directory::invariantsHold() const
{
    for (const auto &[addr, e] : _blocks) {
        (void)addr;
        if (e.owner >= 0) {
            // A writer excludes every reader (itself included: the
            // owner is not also listed as a sharer).
            if (e.sharers != 0)
                return false;
            if (e.owner >= static_cast<std::int32_t>(_processors))
                return false;
        }
        if (std::popcount(e.sharers) > static_cast<int>(_processors))
            return false;
        if (e.sharers >> _processors)
            return false;
    }
    return true;
}

void
Directory::save(Serializer &s) const
{
    s.u32(_processors);
    s.u32(_blockBytes);
    // Blocks are written sorted by address so the image is independent
    // of hash-map iteration order.
    std::vector<Addr> order;
    order.reserve(_blocks.size());
    for (const auto &[addr, e] : _blocks)
        order.push_back(addr);
    std::sort(order.begin(), order.end());
    s.u64(order.size());
    for (const Addr addr : order) {
        const Entry &e = _blocks.at(addr);
        s.u64(addr);
        s.u32(e.sharers);
        s.i64(e.owner);
    }
}

void
Directory::restore(Deserializer &d)
{
    const std::uint32_t procs = d.u32();
    const std::uint32_t block = d.u32();
    sim_throw_if(procs != _processors || block != _blockBytes,
                 ErrCode::BadCheckpoint,
                 "checkpointed directory shape (%u procs, %u B blocks) "
                 "does not match the configured one (%u, %u)",
                 procs, block, _processors, _blockBytes);
    _blocks.clear();
    const std::uint64_t count = d.u64();
    for (std::uint64_t i = 0; i < count; ++i) {
        const Addr addr = d.u64();
        Entry e;
        e.sharers = d.u32();
        e.owner = static_cast<std::int32_t>(d.i64());
        _blocks[addr] = e;
    }
    sim_throw_if(!invariantsHold(), ErrCode::BadCheckpoint,
                 "checkpointed directory violates the single-writer/"
                 "multiple-reader invariant");
}

} // namespace imo::coherence
