/**
 * @file
 * Block-state directory for the access-control case study.
 *
 * Each coherence unit (32 B block) has, per processor, an access level
 * of INVALID, READONLY, or READWRITE (the protection levels of the
 * paper's section 4.3). Globally the directory enforces single-writer /
 * multiple-reader: one owner with READWRITE, or any number of sharers
 * with READONLY.
 */

#ifndef IMO_COHERENCE_DIRECTORY_HH
#define IMO_COHERENCE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "common/logging.hh"
#include "common/types.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::coherence
{

/** Per-processor access level for one block. */
enum class LineState : std::uint8_t
{
    Invalid,
    ReadOnly,
    ReadWrite,
};

/** Result of consulting the directory for one access. */
struct ProtocolAction
{
    /** The requester's protection level was already sufficient. */
    bool satisfied = false;
    /** A local state-table change is required. */
    bool stateChange = false;
    /** Request/response round trips to remote nodes (overlapped DMA
     *  invalidations count once). */
    std::uint32_t networkRounds = 0;
    /** One-way messages on the 3-hop distributed-home protocol
     *  (requester -> home -> owner -> requester; invalidation
     *  multicast + ack counts two). */
    std::uint32_t messages = 0;
    /** Processors whose cached copy must be invalidated. */
    std::uint32_t invalidateMask = 0;
    /** Subset of invalidateMask that held READONLY (for page-level
     *  write-protection bookkeeping). */
    std::uint32_t roInvalidateMask = 0;
    /** Remote writer downgraded to READONLY by a read, or -1. */
    std::int32_t downgradedOwner = -1;
};

/** Directory of block protection state over up to 32 processors. */
class Directory
{
  public:
    explicit Directory(std::uint32_t processors, std::uint32_t block_bytes);

    /** @return the access level processor @p proc holds on the block
     *  containing @p addr. */
    LineState state(std::uint32_t proc, Addr addr) const;

    /**
     * Process a read by @p proc: upgrades it to (at least) READONLY.
     * An existing remote writer is downgraded to READONLY.
     */
    ProtocolAction read(std::uint32_t proc, Addr addr);

    /**
     * Process a write by @p proc: upgrades it to READWRITE and
     * invalidates every other copy.
     */
    ProtocolAction write(std::uint32_t proc, Addr addr);

    /** Invariant check: one writer xor many readers, on every block. */
    bool invariantsHold() const;

    /** @return the home node of the block containing @p addr. */
    std::uint32_t
    homeOf(Addr addr) const
    {
        return static_cast<std::uint32_t>(
            (blockOf(addr) / _blockBytes) % _processors);
    }

    std::uint64_t blocksTracked() const { return _blocks.size(); }

    /**
     * Checkpoint hooks: block state round-trips (written sorted by
     * address for determinism). restore() requires a matching shape
     * and re-checks the protocol invariants before accepting.
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Entry
    {
        std::uint32_t sharers = 0;  //!< bitmask of READONLY holders
        std::int32_t owner = -1;    //!< READWRITE holder or -1
    };

    Addr blockOf(Addr addr) const
    {
        return addr & ~static_cast<Addr>(_blockBytes - 1);
    }

    std::uint32_t _processors;
    std::uint32_t _blockBytes;
    std::unordered_map<Addr, Entry> _blocks;
};

} // namespace imo::coherence

#endif // IMO_COHERENCE_DIRECTORY_HH
