#include "coherence/kernels.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace imo::coherence
{

namespace
{

constexpr Addr sharedBase = 0x100000;
constexpr Addr privateBase = 0x8000000;

/** Per-processor stream under construction. */
class StreamBuilder
{
  public:
    StreamBuilder(std::uint32_t proc, std::uint64_t seed)
        : _proc(proc), _rng(seed ^ (0x9e3779b9ull * (proc + 1)))
    {
    }

    void
    read(Addr addr, std::uint16_t compute = 2)
    {
        _items.push_back({TraceItem::Kind::Ref, addr, false, true,
                          compute});
        maybePrivate();
    }

    void
    write(Addr addr, std::uint16_t compute = 2)
    {
        _items.push_back({TraceItem::Kind::Ref, addr, true, true,
                          compute});
        maybePrivate();
    }

    void
    barrier()
    {
        _items.push_back({TraceItem::Kind::Barrier, 0, false, false, 0});
    }

    std::vector<TraceItem> take() { return std::move(_items); }

    Rng &rng() { return _rng; }

  private:
    /** Sprinkle private (stack/local) accesses between shared ones. */
    void
    maybePrivate()
    {
        if (_rng.chance(0.25)) {
            const Addr addr = privateBase +
                (static_cast<Addr>(_proc) << 16) +
                8 * _rng.below(256);   // 2 KiB private working set
            _items.push_back({TraceItem::Kind::Ref, addr,
                              _rng.chance(0.4), false, 1});
        }
    }

    std::uint32_t _proc;
    Rng _rng;
    std::vector<TraceItem> _items;
};

std::int64_t
scaledCount(const KernelParams &params, std::int64_t n)
{
    const double v = static_cast<double>(n) * params.scale;
    return v < 1.0 ? 1 : static_cast<std::int64_t>(v);
}

} // anonymous namespace

ParallelWorkload
makeStencil(const KernelParams &params)
{
    const std::uint32_t n = params.processors;
    const std::uint32_t rows_per_proc = 8;
    const std::uint32_t cols = 128;            // 1 KiB rows
    const std::uint32_t sample = 1;            // every word
    const std::int64_t phases = scaledCount(params, 6);

    auto row_addr = [&](std::uint32_t row, std::uint32_t col) {
        return sharedBase + (static_cast<Addr>(row) * cols + col) * 8;
    };

    ParallelWorkload wl;
    wl.name = "stencil";
    for (std::uint32_t p = 0; p < n; ++p) {
        StreamBuilder sb(p, params.seed);
        const std::uint32_t row0 = p * rows_per_proc;
        for (std::int64_t phase = 0; phase < phases; ++phase) {
            for (std::uint32_t r = 0; r < rows_per_proc; ++r) {
                const std::uint32_t row = row0 + r;
                for (std::uint32_t c = 0; c < cols; c += sample) {
                    // 5-point stencil: center, east, north, south. The
                    // north/south reads leave the band only on the
                    // boundary rows.
                    sb.read(row_addr(row, c), 3);
                    if (c + 1 < cols)
                        sb.read(row_addr(row, c + 1), 1);
                    if (row > 0)
                        sb.read(row_addr(row - 1, c), 1);
                    if (row + 1 < n * rows_per_proc)
                        sb.read(row_addr(row + 1, c), 1);
                    sb.write(row_addr(row, c), 4);
                }
            }
            sb.barrier();
        }
        wl.streams.push_back(sb.take());
    }
    return wl;
}

ParallelWorkload
makeProdCons(const KernelParams &params)
{
    const std::uint32_t n = params.processors;
    const std::uint32_t seg_words = 256;       // 2 KiB per segment
    const std::int64_t phases = scaledCount(params, 8);

    // Two buffers, each n segments.
    auto seg_addr = [&](std::uint32_t buf, std::uint32_t proc,
                        std::uint32_t word) {
        return sharedBase + 0x200000 +
            ((static_cast<Addr>(buf) * n + proc) * seg_words + word) * 8;
    };

    ParallelWorkload wl;
    wl.name = "prodcons";
    for (std::uint32_t p = 0; p < n; ++p) {
        StreamBuilder sb(p, params.seed);
        for (std::int64_t phase = 0; phase < phases; ++phase) {
            const std::uint32_t out_buf = phase & 1;
            const std::uint32_t in_buf = out_buf ^ 1;
            const std::uint32_t producer = (p + n - 1) % n;
            for (std::uint32_t w = 0; w < seg_words; ++w) {
                // Consume the upstream segment (with reuse: only the
                // first touch of each block misses), produce our own,
                // and re-read the produced value while transforming it.
                sb.read(seg_addr(in_buf, producer, w), 2);
                sb.read(seg_addr(in_buf, producer, w ^ 1), 1);
                sb.read(seg_addr(in_buf, producer, w ^ 2), 1);
                sb.write(seg_addr(out_buf, p, w), 3);
                sb.read(seg_addr(out_buf, p, w), 1);
                sb.read(seg_addr(out_buf, p, w ^ 1), 1);
            }
            sb.barrier();
        }
        wl.streams.push_back(sb.take());
    }
    return wl;
}

ParallelWorkload
makeMigratory(const KernelParams &params)
{
    const std::uint32_t n = params.processors;
    const std::uint32_t counters = 512;
    const std::int64_t iters = scaledCount(params, 1200);
    const Addr base = sharedBase + 0x400000;

    ParallelWorkload wl;
    wl.name = "migratory";
    for (std::uint32_t p = 0; p < n; ++p) {
        StreamBuilder sb(p, params.seed);
        Addr c = base;
        for (std::int64_t i = 0; i < iters; ++i) {
            // Temporal affinity: usually keep working on the same
            // object, occasionally migrate to a random one.
            if (sb.rng().chance(0.3))
                c = base + 32 * sb.rng().below(counters);
            // Acquire the object, then work on it locally before the
            // read-modify-write (local hits under every method).
            sb.read(c, 4);
            for (int k = 0; k < 16; ++k)
                sb.read(c + 8 * (k % 4), 2);
            sb.write(c, 6);
        }
        wl.streams.push_back(sb.take());
    }
    return wl;
}

ParallelWorkload
makeReadMostly(const KernelParams &params)
{
    const std::uint32_t n = params.processors;
    const std::uint32_t blocks = 256;          // 8 KiB: L1 resident
    const std::int64_t iters = scaledCount(params, 9000);
    const Addr base = sharedBase + 0x600000;

    ParallelWorkload wl;
    wl.name = "readmostly";
    for (std::uint32_t p = 0; p < n; ++p) {
        StreamBuilder sb(p, params.seed);
        for (std::int64_t i = 0; i < iters; ++i) {
            const Addr b = base + 32 * sb.rng().below(blocks);
            sb.read(b, 3);
            // Sparse rotating writers invalidate readers; updates are
            // rare enough that reads overwhelmingly hit.
            if (i % 900 == static_cast<std::int64_t>(p) * 55) {
                const Addr w = base + 32 * sb.rng().below(blocks);
                sb.write(w, 4);
            }
        }
        wl.streams.push_back(sb.take());
    }
    return wl;
}

ParallelWorkload
makeFalseShare(const KernelParams &params)
{
    const std::uint32_t n = params.processors;
    const std::uint32_t groups = (n + 3) / 4;  // 4 procs per block group
    const std::uint32_t blocks_per_group = 16;
    const std::int64_t iters = scaledCount(params, 1500);
    const Addr base = sharedBase + 0x800000;

    ParallelWorkload wl;
    wl.name = "falseshare";
    (void)groups;
    for (std::uint32_t p = 0; p < n; ++p) {
        StreamBuilder sb(p, params.seed);
        const std::uint32_t group = p / 4;
        const std::uint32_t word = p % 4;
        for (std::int64_t i = 0; i < iters; ++i) {
            const Addr block = base +
                32 * (static_cast<Addr>(group) * blocks_per_group +
                      i % blocks_per_group);
            // Read own word a few times (hits), then update it: the
            // update contends with the other three processors whose
            // words share the coherence unit.
            sb.read(block + 8 * word, 3);
            sb.read(block + 8 * word, 2);
            sb.read(block + 8 * word, 2);
            sb.read(block + 8 * word, 1);
            sb.write(block + 8 * word, 4);
        }
        wl.streams.push_back(sb.take());
    }
    return wl;
}

std::vector<ParallelWorkload>
makeAllKernels(const KernelParams &params)
{
    return {makeStencil(params), makeProdCons(params),
            makeMigratory(params), makeReadMostly(params),
            makeFalseShare(params)};
}

} // namespace imo::coherence
