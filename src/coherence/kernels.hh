/**
 * @file
 * Parallel application kernels for the access-control case study.
 *
 * The paper's Figure 4 compares the three access-control methods over
 * parallel applications with different sharing behavior. These five
 * kernels span the space those applications cover (see DESIGN.md):
 * neighbor sharing, producer-consumer hand-off, migratory objects,
 * read-mostly broadcast data, and false sharing at the coherence-unit
 * granularity.
 */

#ifndef IMO_COHERENCE_KERNELS_HH
#define IMO_COHERENCE_KERNELS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/machine.hh"

namespace imo::coherence
{

/** Generation knobs shared by all kernels. */
struct KernelParams
{
    std::uint32_t processors = 16;
    double scale = 1.0;
    std::uint64_t seed = 0x9a7a11e1;
};

/** Grid relaxation: each processor owns a band of rows and reads its
 *  neighbors' boundary rows every phase. */
ParallelWorkload makeStencil(const KernelParams &params);

/** Pipeline: each phase, processor p consumes the buffer segment that
 *  p-1 produced in the previous phase and produces its own. */
ParallelWorkload makeProdCons(const KernelParams &params);

/** Migratory counters: processors read-modify-write randomly chosen
 *  shared counters, migrating exclusive ownership. */
ParallelWorkload makeMigratory(const KernelParams &params);

/** Read-mostly table: all processors read a shared table that a single
 *  writer sparsely updates (broadcast invalidations). */
ParallelWorkload makeReadMostly(const KernelParams &params);

/** False sharing: processors update disjoint words that cohabit 32-byte
 *  coherence units, forcing ownership ping-pong. */
ParallelWorkload makeFalseShare(const KernelParams &params);

/** All five kernels, in presentation order. */
std::vector<ParallelWorkload> makeAllKernels(const KernelParams &params);

} // namespace imo::coherence

#endif // IMO_COHERENCE_KERNELS_HH
