#include "coherence/machine.hh"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"

namespace imo::coherence
{

namespace
{

/** Delivery attempts per invalidation message before the network is
 *  declared broken (a structured error, never silent corruption). */
constexpr std::uint32_t maxInvalDeliveryAttempts = 3;

/** Order-sensitive FNV-1a, shared with isa::Program::fingerprint(). */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(s.size());
        for (const char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ull;
        }
    }
};

} // namespace

const char *
accessMethodName(AccessMethod method)
{
    switch (method) {
      case AccessMethod::ReferenceCheck: return "ref-check";
      case AccessMethod::EccFault: return "ecc-fault";
      case AccessMethod::Informing: return "informing";
      case AccessMethod::Hardware: return "hardware";
    }
    return "?";
}

CoherentMachine::CoherentMachine(const CoherenceParams &params,
                                 AccessMethod method)
    : _params(params), _method(method),
      _directory(params.processors, params.coherenceUnitBytes),
      _ring(32)
{
    _params.validate();
    for (std::uint32_t p = 0; p < params.processors; ++p) {
        _procs.push_back(Proc{.clock = 0, .pos = 0, .atBarrier = false,
                              .l1 = memory::SetAssocCache(params.l1),
                              .l2 = memory::SetAssocCache(params.l2)});
    }
}

void
CoherentMachine::registerStats(stats::StatGroup &parent)
{
    const CoherenceResult *r = &_res;
    auto &g = parent.childGroup("coherence");
    auto val = [&](const char *name, const char *desc,
                   std::uint64_t CoherenceResult::*field) {
        g.make<stats::Value>(name, desc, [r, field] { return r->*field; });
    };
    g.make<stats::Value>("exec_time", "max processor completion time",
                         [r] { return r->execTime; });
    val("refs", "references processed", &CoherenceResult::refs);
    val("shared_refs", "references to potentially-shared data",
        &CoherenceResult::sharedRefs);
    val("l1_misses", "primary-cache misses across all processors",
        &CoherenceResult::l1Misses);
    val("lookups", "ref-check or informing protection lookups",
        &CoherenceResult::lookups);
    val("faults", "ECC faults taken", &CoherenceResult::faults);
    val("protocol_events", "directory state changes",
        &CoherenceResult::protocolEvents);
    val("network_rounds", "protocol network round trips",
        &CoherenceResult::networkRounds);
    val("invalidations", "remote copies invalidated",
        &CoherenceResult::invalidations);
    val("dropped_invalidations", "injected invalidation message losses",
        &CoherenceResult::droppedInvalidations);
    val("delayed_acks", "injected protocol ack delays",
        &CoherenceResult::delayedAcks);
    g.make<stats::Value>("compute_cycles", "cycles in local compute",
                         [r] { return r->computeCycles; });
    g.make<stats::Value>("memory_cycles", "cycles in the cache hierarchy",
                         [r] { return r->memoryCycles; });
    g.make<stats::Value>("access_control_cycles",
                         "cycles in lookup/fault/state-change overhead",
                         [r] { return r->accessControlCycles; });
    g.make<stats::Value>("network_cycles", "cycles waiting on the network",
                         [r] { return r->networkCycles; });
    g.make<stats::Value>("barrier_wait_cycles", "cycles waiting at barriers",
                         [r] { return r->barrierWaitCycles; });
    g.make<stats::Derived>("access_control_overhead",
                           "access-control cycles per shared reference",
                           [r] {
        return r->sharedRefs
            ? static_cast<double>(r->accessControlCycles) / r->sharedRefs
            : 0.0;
    });
}

std::uint64_t
CoherentMachine::fingerprintWorkload(const ParallelWorkload &workload)
{
    Fnv fnv;
    fnv.mix(workload.name);
    fnv.mix(workload.streams.size());
    for (const auto &stream : workload.streams) {
        fnv.mix(stream.size());
        for (const TraceItem &item : stream) {
            fnv.mix(static_cast<std::uint64_t>(item.kind));
            fnv.mix(item.addr);
            fnv.mix((item.write ? 1u : 0u) | (item.shared ? 2u : 0u));
            fnv.mix(item.computeBefore);
        }
    }
    return fnv.h;
}

bool
CoherentMachine::chargeCacheAccess(Proc &proc, Addr addr, bool write,
                                   bool force_miss)
{
    if (force_miss)
        proc.l1.invalidate(addr);

    Cycle cost = _params.l1HitCost;
    bool l1_miss = false;

    const memory::CacheAccessResult r1 = proc.l1.access(addr, write);
    if (!r1.hit) {
        l1_miss = true;
        ++_res.l1Misses;
        cost += _params.l1MissPenalty;
        if (r1.writeback)
            proc.l2.access(*r1.writeback, true);
        const memory::CacheAccessResult r2 = proc.l2.access(addr, write);
        if (!r2.hit)
            cost += _params.l2MissPenalty;
    }

    proc.clock += cost;
    _res.memoryCycles += cost;
    return l1_miss;
}

void
CoherentMachine::invalidateRemote(std::uint32_t p, std::uint32_t mask,
                                  Addr addr)
{
    Proc &requester = _procs[p];
    while (mask) {
        const std::uint32_t q = std::countr_zero(mask);
        mask &= mask - 1;

        // The network may lose the invalidation message (injected
        // DroppedInvalidation fault). The protocol retransmits after a
        // timeout -- charged to the requester, which cannot complete
        // its upgrade until every ack arrives. Persistent loss is a
        // structured failure; the directory has already committed the
        // state change atomically, so it stays consistent either way.
        std::uint32_t attempt = 0;
        while (_faults &&
               _faults->fire(FaultPoint::DroppedInvalidation)) {
            ++attempt;
            ++_res.droppedInvalidations;
            _ring.push(requester.clock, "dropped-inval", p, addr);
            IMO_TRACE(_trace, requester.clock, obs::Cat::Coh,
                      "dropped-inval", p, addr);
            if (attempt >= maxInvalDeliveryAttempts) {
                throwWithRing(
                    ErrCode::FaultInjected, _ring,
                    simFormat("invalidation of block 0x%llx on "
                              "processor %u lost %u times (injected "
                              "network fault)",
                              static_cast<unsigned long long>(addr), q,
                              attempt));
            }
            const Cycle retransmit = 2 * _params.messageLatency;
            requester.clock += retransmit;
            _res.networkCycles += retransmit;
        }

        _procs[q].l1.invalidate(addr);
        _procs[q].l2.invalidate(addr);
        ++_res.invalidations;
        IMO_TRACE(_trace, requester.clock, obs::Cat::Coh, "invalidate",
                  p, addr, q);
    }
}

void
CoherentMachine::noteReadonly(std::uint32_t p, Addr addr, bool entering)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p) << 52) | (addr / _params.pageBytes);
    if (entering) {
        ++_roBlocksPerPage[key];
    } else {
        auto it = _roBlocksPerPage.find(key);
        if (it != _roBlocksPerPage.end() && it->second > 0) {
            if (--it->second == 0)
                _roBlocksPerPage.erase(it);
        }
    }
}

bool
CoherentMachine::pageHasReadonly(std::uint32_t p, Addr addr) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p) << 52) | (addr / _params.pageBytes);
    return _roBlocksPerPage.contains(key);
}

void
CoherentMachine::step(std::uint32_t p, const TraceItem &item)
{
    Proc &proc = _procs[p];

    proc.clock += item.computeBefore;
    _res.computeCycles += item.computeBefore;

    ++_res.refs;
    if (item.shared)
        ++_res.sharedRefs;

    const LineState st =
        item.shared ? _directory.state(p, item.addr) : LineState::ReadWrite;

    // With informing access control, a store needing an upgrade must
    // take a miss so its handler runs (READONLY lines are held
    // non-writable); invalid lines were evicted at invalidation time.
    const bool force_miss = _method == AccessMethod::Informing &&
        item.shared && item.write && st != LineState::ReadWrite;

    const bool l1_miss =
        chargeCacheAccess(proc, item.addr, item.write, force_miss);

    // Detection / lookup overhead.
    Cycle ac = 0;
    switch (_method) {
      case AccessMethod::ReferenceCheck:
        if (item.shared) {
            ac += _params.refCheckLookup;
            ++_res.lookups;
        }
        break;
      case AccessMethod::EccFault:
        if (item.shared) {
            if (!item.write && st == LineState::Invalid) {
                ac += _params.eccReadFault;
                ++_res.faults;
            } else if (item.write &&
                       (st == LineState::Invalid ||
                        pageHasReadonly(p, item.addr))) {
                ac += _params.eccWriteFault;
                ++_res.faults;
            }
        }
        break;
      case AccessMethod::Informing:
        if (item.shared && l1_miss) {
            ac += _params.informingLookup;
            ++_res.lookups;
        }
        break;
      case AccessMethod::Hardware:
        // Dedicated hardware detects and resolves protection state
        // with no instruction overhead.
        break;
    }

    // Protocol work.
    if (item.shared) {
        const ProtocolAction action = item.write
            ? _directory.write(p, item.addr)
            : _directory.read(p, item.addr);

        if (action.stateChange) {
            ++_res.protocolEvents;
            _ring.push(proc.clock, item.write ? "dir-write" : "dir-read",
                       p, item.addr);
            IMO_TRACE(_trace, proc.clock, obs::Cat::Coh,
                      item.write ? "dir-write" : "dir-read", p, item.addr);

            // Local state-table update (the ECC faults' cost already
            // includes the handler's state change).
            if (_method == AccessMethod::ReferenceCheck)
                ac += _params.refCheckStateChange;
            else if (_method == AccessMethod::Informing)
                ac += _params.informingStateChange;

            // Page-protection bookkeeping for the ECC method.
            if (!item.write) {
                noteReadonly(p, item.addr, true);
                if (action.downgradedOwner >= 0)
                    noteReadonly(action.downgradedOwner, item.addr, true);
            } else {
                if (st == LineState::ReadOnly)
                    noteReadonly(p, item.addr, false);
                std::uint32_t ro = action.roInvalidateMask;
                while (ro) {
                    const std::uint32_t q = std::countr_zero(ro);
                    ro &= ro - 1;
                    noteReadonly(q, item.addr, false);
                }
            }

            invalidateRemote(p, action.invalidateMask, item.addr);

            Cycle net = _params.distributedHomes
                ? static_cast<Cycle>(action.messages) *
                  _params.messageLatency
                : static_cast<Cycle>(action.networkRounds) *
                  2 * _params.messageLatency;

            // An injected DelayedAck stretches the requester's stall:
            // the final acknowledgement of the protocol transaction
            // sits in the network for extra cycles. Purely a timing
            // perturbation -- protocol state is already committed.
            if (net > 0 && _faults &&
                _faults->fire(FaultPoint::DelayedAck)) {
                const Cycle delay = _faults->schedule().ackDelayCycles;
                net += delay;
                ++_res.delayedAcks;
                _ring.push(proc.clock, "delayed-ack", p, item.addr);
                IMO_TRACE(_trace, proc.clock, obs::Cat::Coh, "delayed-ack",
                          p, item.addr, delay);
            }

            proc.clock += net;
            _res.networkCycles += net;
            _res.networkRounds += action.networkRounds;
        }
    }

    proc.clock += ac;
    _res.accessControlCycles += ac;
}

CoherenceResult
CoherentMachine::run(const ParallelWorkload &workload)
{
    return run(workload, RunHooks{});
}

CoherenceResult
CoherentMachine::run(const ParallelWorkload &workload,
                     const RunHooks &hooks)
{
    sim_throw_if(workload.streams.size() != _procs.size(),
                 ErrCode::BadProgram,
                 "workload '%s' has %zu streams for %zu processors",
                 workload.name.c_str(), workload.streams.size(),
                 _procs.size());

    const std::uint64_t fp = fingerprintWorkload(workload);

    if (hooks.resumeImage) {
        Deserializer d(*hooks.resumeImage);
        d.openSection("meta");
        const std::uint64_t saved_fp = d.u64();
        sim_throw_if(saved_fp != fp, ErrCode::BadCheckpoint,
                     "checkpoint was taken for a different workload "
                     "(fingerprint 0x%llx, this one is 0x%llx)",
                     static_cast<unsigned long long>(saved_fp),
                     static_cast<unsigned long long>(fp));
        const std::string saved_name = d.str();
        (void)saved_name;
        const bool has_faults = d.b();
        const bool have_injector = _faults && _faults->enabled();
        sim_throw_if(has_faults && !have_injector, ErrCode::BadCheckpoint,
                     "checkpoint carries fault-injector state but no "
                     "injector is attached");
        sim_throw_if(!has_faults && have_injector, ErrCode::BadCheckpoint,
                     "fault injector attached but the checkpoint has no "
                     "fault-injector state");
        d.closeSection();
        d.openSection("machine");
        restore(d);
        d.closeSection();
        if (has_faults) {
            d.openSection("faults");
            _faults->restore(d);
            d.closeSection();
        }
    } else {
        for (Proc &proc : _procs) {
            proc.clock = 0;
            proc.pos = 0;
            proc.atBarrier = false;
            proc.l1.flushAll();
            proc.l2.flushAll();
        }
        _roBlocksPerPage.clear();
        _ring = DiagRing(32);
        _res = CoherenceResult{};
        _res.workload = workload.name;
        _res.method = _method;
    }

    const std::uint32_t n = static_cast<std::uint32_t>(_procs.size());

    // Forward-progress watchdog: consecutive scheduler iterations that
    // neither execute a trace item nor release a barrier. Barrier
    // entries are legitimate non-progress but bounded by the processor
    // count between releases, so any configured threshold above n
    // only fires on genuine livelock.
    std::uint64_t stuck = 0;

    for (;;) {
        if (_params.watchdogEvents && stuck > _params.watchdogEvents) {
            throwWithRing(
                ErrCode::Deadlock, _ring,
                simFormat("coherence machine made no forward progress "
                          "for %llu scheduler iterations on workload "
                          "'%s'",
                          static_cast<unsigned long long>(stuck),
                          workload.name.c_str()));
        }

        // Pick the runnable processor with the smallest local clock.
        std::int32_t best = -1;
        for (std::uint32_t p = 0; p < n; ++p) {
            const Proc &proc = _procs[p];
            if (proc.atBarrier || proc.pos >= workload.streams[p].size())
                continue;
            if (best < 0 || proc.clock < _procs[best].clock)
                best = static_cast<std::int32_t>(p);
        }

        if (best < 0) {
            // Everyone is finished or waiting at a barrier.
            std::uint32_t waiting = 0;
            Cycle maxc = 0;
            for (std::uint32_t p = 0; p < n; ++p) {
                if (_procs[p].atBarrier) {
                    ++waiting;
                    maxc = std::max(maxc, _procs[p].clock);
                }
            }
            if (waiting == 0)
                break;  // all streams exhausted
            for (std::uint32_t p = 0; p < n; ++p) {
                if (!_procs[p].atBarrier)
                    continue;
                _res.barrierWaitCycles += maxc - _procs[p].clock;
                _procs[p].clock = maxc + _params.barrierCost;
                _procs[p].atBarrier = false;
                ++_procs[p].pos;
            }
            _ring.push(maxc, "barrier-release", waiting);
            IMO_TRACE(_trace, maxc, obs::Cat::Coh, "barrier-release",
                      waiting);
            stuck = 0;
            continue;
        }

        const std::uint32_t p = static_cast<std::uint32_t>(best);
        const TraceItem &item = workload.streams[p][_procs[p].pos];
        if (item.kind == TraceItem::Kind::Barrier) {
            _procs[p].atBarrier = true;
            _ring.push(_procs[p].clock, "barrier-enter", p);
            IMO_TRACE(_trace, _procs[p].clock, obs::Cat::Coh,
                      "barrier-enter", p);
            ++stuck;
            continue;
        }
        step(p, item);
        ++_procs[p].pos;
        stuck = 0;

        if (hooks.checkpointEveryRefs && hooks.onCheckpoint &&
            _res.refs % hooks.checkpointEveryRefs == 0) {
            hooks.onCheckpoint(makeImage(fp), _res.refs);
        }
    }

    _res.execTime = 0;
    for (const Proc &proc : _procs)
        _res.execTime = std::max(_res.execTime, proc.clock);

    panic_if(!_directory.invariantsHold(),
             "coherence invariants violated after '%s'",
             workload.name.c_str());
    return _res;
}

std::vector<std::uint8_t>
CoherentMachine::makeImage(std::uint64_t workload_fp) const
{
    Serializer s;
    const bool has_faults = _faults && _faults->enabled();

    s.beginSection("meta");
    s.u64(workload_fp);
    s.str(_res.workload);
    s.b(has_faults);
    s.endSection();

    s.beginSection("machine");
    save(s);
    s.endSection();

    if (has_faults) {
        s.beginSection("faults");
        _faults->save(s);
        s.endSection();
    }
    return s.finish();
}

void
CoherentMachine::save(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(_procs.size()));
    s.u8(static_cast<std::uint8_t>(_method));
    for (const Proc &proc : _procs) {
        s.u64(proc.clock);
        s.u64(proc.pos);
        s.b(proc.atBarrier);
        proc.l1.save(s);
        proc.l2.save(s);
    }

    _directory.save(s);

    // Page-protection counters, sorted for image determinism.
    std::vector<std::uint64_t> keys;
    keys.reserve(_roBlocksPerPage.size());
    for (const auto &[key, count] : _roBlocksPerPage)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    s.u64(keys.size());
    for (const std::uint64_t key : keys) {
        s.u64(key);
        s.u32(_roBlocksPerPage.at(key));
    }

    _ring.save(s);

    s.str(_res.workload);
    s.u64(_res.execTime);
    s.u64(_res.refs);
    s.u64(_res.sharedRefs);
    s.u64(_res.l1Misses);
    s.u64(_res.lookups);
    s.u64(_res.faults);
    s.u64(_res.protocolEvents);
    s.u64(_res.networkRounds);
    s.u64(_res.invalidations);
    s.u64(_res.droppedInvalidations);
    s.u64(_res.delayedAcks);
    s.u64(_res.computeCycles);
    s.u64(_res.memoryCycles);
    s.u64(_res.accessControlCycles);
    s.u64(_res.networkCycles);
    s.u64(_res.barrierWaitCycles);
}

void
CoherentMachine::restore(Deserializer &d)
{
    const std::uint32_t procs = d.u32();
    sim_throw_if(procs != _procs.size(), ErrCode::BadCheckpoint,
                 "checkpointed machine has %u processors, configured "
                 "one has %zu", procs, _procs.size());
    const auto method = static_cast<AccessMethod>(d.u8());
    sim_throw_if(method != _method, ErrCode::BadCheckpoint,
                 "checkpointed machine used access method '%s', "
                 "configured one uses '%s'", accessMethodName(method),
                 accessMethodName(_method));

    for (Proc &proc : _procs) {
        proc.clock = d.u64();
        proc.pos = d.u64();
        proc.atBarrier = d.b();
        proc.l1.restore(d);
        proc.l2.restore(d);
    }

    _directory.restore(d);

    _roBlocksPerPage.clear();
    const std::uint64_t ro_count = d.u64();
    for (std::uint64_t i = 0; i < ro_count; ++i) {
        const std::uint64_t key = d.u64();
        _roBlocksPerPage[key] = d.u32();
    }

    _ring.restore(d);

    _res = CoherenceResult{};
    _res.method = _method;
    _res.workload = d.str();
    _res.execTime = d.u64();
    _res.refs = d.u64();
    _res.sharedRefs = d.u64();
    _res.l1Misses = d.u64();
    _res.lookups = d.u64();
    _res.faults = d.u64();
    _res.protocolEvents = d.u64();
    _res.networkRounds = d.u64();
    _res.invalidations = d.u64();
    _res.droppedInvalidations = d.u64();
    _res.delayedAcks = d.u64();
    _res.computeCycles = d.u64();
    _res.memoryCycles = d.u64();
    _res.accessControlCycles = d.u64();
    _res.networkCycles = d.u64();
    _res.barrierWaitCycles = d.u64();
}

} // namespace imo::coherence
