#include "coherence/machine.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace imo::coherence
{

const char *
accessMethodName(AccessMethod method)
{
    switch (method) {
      case AccessMethod::ReferenceCheck: return "ref-check";
      case AccessMethod::EccFault: return "ecc-fault";
      case AccessMethod::Informing: return "informing";
      case AccessMethod::Hardware: return "hardware";
    }
    return "?";
}

CoherentMachine::CoherentMachine(const CoherenceParams &params,
                                 AccessMethod method)
    : _params(params), _method(method),
      _directory(params.processors, params.coherenceUnitBytes)
{
    fatal_if(params.processors == 0 || params.processors > 32,
             "1..32 processors supported");
    for (std::uint32_t p = 0; p < params.processors; ++p) {
        _procs.push_back(Proc{.clock = 0, .pos = 0, .atBarrier = false,
                              .l1 = memory::SetAssocCache(params.l1),
                              .l2 = memory::SetAssocCache(params.l2)});
    }
}

bool
CoherentMachine::chargeCacheAccess(Proc &proc, Addr addr, bool write,
                                   bool force_miss, CoherenceResult &res)
{
    if (force_miss)
        proc.l1.invalidate(addr);

    Cycle cost = _params.l1HitCost;
    bool l1_miss = false;

    const memory::CacheAccessResult r1 = proc.l1.access(addr, write);
    if (!r1.hit) {
        l1_miss = true;
        ++res.l1Misses;
        cost += _params.l1MissPenalty;
        if (r1.writeback)
            proc.l2.access(*r1.writeback, true);
        const memory::CacheAccessResult r2 = proc.l2.access(addr, write);
        if (!r2.hit)
            cost += _params.l2MissPenalty;
    }

    proc.clock += cost;
    res.memoryCycles += cost;
    return l1_miss;
}

void
CoherentMachine::invalidateRemote(std::uint32_t mask, Addr addr,
                                  CoherenceResult &res)
{
    while (mask) {
        const std::uint32_t p = std::countr_zero(mask);
        mask &= mask - 1;
        _procs[p].l1.invalidate(addr);
        _procs[p].l2.invalidate(addr);
        ++res.invalidations;
    }
}

void
CoherentMachine::noteReadonly(std::uint32_t p, Addr addr, bool entering)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p) << 52) | (addr / _params.pageBytes);
    if (entering) {
        ++_roBlocksPerPage[key];
    } else {
        auto it = _roBlocksPerPage.find(key);
        if (it != _roBlocksPerPage.end() && it->second > 0) {
            if (--it->second == 0)
                _roBlocksPerPage.erase(it);
        }
    }
}

bool
CoherentMachine::pageHasReadonly(std::uint32_t p, Addr addr) const
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(p) << 52) | (addr / _params.pageBytes);
    return _roBlocksPerPage.contains(key);
}

void
CoherentMachine::step(std::uint32_t p, const TraceItem &item,
                      CoherenceResult &res)
{
    Proc &proc = _procs[p];

    proc.clock += item.computeBefore;
    res.computeCycles += item.computeBefore;

    ++res.refs;
    if (item.shared)
        ++res.sharedRefs;

    const LineState st =
        item.shared ? _directory.state(p, item.addr) : LineState::ReadWrite;

    // With informing access control, a store needing an upgrade must
    // take a miss so its handler runs (READONLY lines are held
    // non-writable); invalid lines were evicted at invalidation time.
    const bool force_miss = _method == AccessMethod::Informing &&
        item.shared && item.write && st != LineState::ReadWrite;

    const bool l1_miss =
        chargeCacheAccess(proc, item.addr, item.write, force_miss, res);

    // Detection / lookup overhead.
    Cycle ac = 0;
    switch (_method) {
      case AccessMethod::ReferenceCheck:
        if (item.shared) {
            ac += _params.refCheckLookup;
            ++res.lookups;
        }
        break;
      case AccessMethod::EccFault:
        if (item.shared) {
            if (!item.write && st == LineState::Invalid) {
                ac += _params.eccReadFault;
                ++res.faults;
            } else if (item.write &&
                       (st == LineState::Invalid ||
                        pageHasReadonly(p, item.addr))) {
                ac += _params.eccWriteFault;
                ++res.faults;
            }
        }
        break;
      case AccessMethod::Informing:
        if (item.shared && l1_miss) {
            ac += _params.informingLookup;
            ++res.lookups;
        }
        break;
      case AccessMethod::Hardware:
        // Dedicated hardware detects and resolves protection state
        // with no instruction overhead.
        break;
    }

    // Protocol work.
    if (item.shared) {
        const ProtocolAction action = item.write
            ? _directory.write(p, item.addr)
            : _directory.read(p, item.addr);

        if (action.stateChange) {
            ++res.protocolEvents;

            // Local state-table update (the ECC faults' cost already
            // includes the handler's state change).
            if (_method == AccessMethod::ReferenceCheck)
                ac += _params.refCheckStateChange;
            else if (_method == AccessMethod::Informing)
                ac += _params.informingStateChange;

            // Page-protection bookkeeping for the ECC method.
            if (!item.write) {
                noteReadonly(p, item.addr, true);
                if (action.downgradedOwner >= 0)
                    noteReadonly(action.downgradedOwner, item.addr, true);
            } else {
                if (st == LineState::ReadOnly)
                    noteReadonly(p, item.addr, false);
                std::uint32_t ro = action.roInvalidateMask;
                while (ro) {
                    const std::uint32_t q = std::countr_zero(ro);
                    ro &= ro - 1;
                    noteReadonly(q, item.addr, false);
                }
            }

            invalidateRemote(action.invalidateMask, item.addr, res);

            const Cycle net = _params.distributedHomes
                ? static_cast<Cycle>(action.messages) *
                  _params.messageLatency
                : static_cast<Cycle>(action.networkRounds) *
                  2 * _params.messageLatency;
            proc.clock += net;
            res.networkCycles += net;
            res.networkRounds += action.networkRounds;
        }
    }

    proc.clock += ac;
    res.accessControlCycles += ac;
}

CoherenceResult
CoherentMachine::run(const ParallelWorkload &workload)
{
    fatal_if(workload.streams.size() != _procs.size(),
             "workload '%s' has %zu streams for %zu processors",
             workload.name.c_str(), workload.streams.size(),
             _procs.size());

    CoherenceResult res;
    res.workload = workload.name;
    res.method = _method;

    for (Proc &proc : _procs) {
        proc.clock = 0;
        proc.pos = 0;
        proc.atBarrier = false;
        proc.l1.flushAll();
        proc.l2.flushAll();
    }
    _roBlocksPerPage.clear();

    const std::uint32_t n = static_cast<std::uint32_t>(_procs.size());

    for (;;) {
        // Pick the runnable processor with the smallest local clock.
        std::int32_t best = -1;
        for (std::uint32_t p = 0; p < n; ++p) {
            const Proc &proc = _procs[p];
            if (proc.atBarrier || proc.pos >= workload.streams[p].size())
                continue;
            if (best < 0 || proc.clock < _procs[best].clock)
                best = static_cast<std::int32_t>(p);
        }

        if (best < 0) {
            // Everyone is finished or waiting at a barrier.
            std::uint32_t waiting = 0;
            Cycle maxc = 0;
            for (std::uint32_t p = 0; p < n; ++p) {
                if (_procs[p].atBarrier) {
                    ++waiting;
                    maxc = std::max(maxc, _procs[p].clock);
                }
            }
            if (waiting == 0)
                break;  // all streams exhausted
            for (std::uint32_t p = 0; p < n; ++p) {
                if (!_procs[p].atBarrier)
                    continue;
                res.barrierWaitCycles += maxc - _procs[p].clock;
                _procs[p].clock = maxc + _params.barrierCost;
                _procs[p].atBarrier = false;
                ++_procs[p].pos;
            }
            continue;
        }

        const std::uint32_t p = static_cast<std::uint32_t>(best);
        const TraceItem &item = workload.streams[p][_procs[p].pos];
        if (item.kind == TraceItem::Kind::Barrier) {
            _procs[p].atBarrier = true;
            continue;
        }
        step(p, item, res);
        ++_procs[p].pos;
    }

    for (const Proc &proc : _procs)
        res.execTime = std::max(res.execTime, proc.clock);

    panic_if(!_directory.invariantsHold(),
             "coherence invariants violated after '%s'",
             workload.name.c_str());
    return res;
}

} // namespace imo::coherence
