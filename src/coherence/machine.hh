/**
 * @file
 * CoherentMachine: an event-driven 16-processor shared-memory machine
 * (TangoLite-style direct execution) used for the fine-grained
 * access-control case study of section 4.3.
 *
 * Each processor replays a reference stream (with embedded compute
 * delays and barriers) against its private two-level cache and the
 * global protection directory. The configured AccessMethod determines
 * where detection/lookup overhead is paid:
 *
 *  - ReferenceCheck: a protection-table lookup on every shared
 *    reference;
 *  - EccFault: a fault on reads of INVALID blocks and on writes to
 *    pages containing READONLY data;
 *  - Informing: a miss-handler lookup on shared references that miss
 *    the primary cache (invalid blocks are evicted, so accesses
 *    requiring protocol work always miss).
 *
 * Robustness features:
 *  - a forward-progress watchdog (CoherenceParams::watchdogEvents)
 *    converts scheduler livelock into a structured Deadlock error
 *    carrying the last protocol events;
 *  - an optional FaultInjector exercises lost invalidation messages
 *    (bounded retransmission, then a structured error — never a
 *    corrupt directory) and delayed protocol acknowledgements;
 *  - full checkpoint/restore at the event boundary (save()/restore(),
 *    or run() with RunHooks for periodic images and resume).
 */

#ifndef IMO_COHERENCE_MACHINE_HH
#define IMO_COHERENCE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/params.hh"
#include "common/diagring.hh"
#include "common/stats.hh"
#include "memory/cache.hh"
#include "obs/observer.hh"

namespace imo
{
class FaultInjector;
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::coherence
{

/** One element of a processor's reference stream. */
struct TraceItem
{
    enum class Kind : std::uint8_t { Ref, Barrier };

    Kind kind = Kind::Ref;
    Addr addr = 0;
    bool write = false;
    bool shared = false;     //!< accesses potentially-shared data
    std::uint16_t computeBefore = 0; //!< local compute preceding it
};

/** A complete parallel workload: one stream per processor. */
struct ParallelWorkload
{
    std::string name;
    std::vector<std::vector<TraceItem>> streams;
};

/** Outcome of one machine run. */
struct CoherenceResult
{
    std::string workload;
    AccessMethod method = AccessMethod::Informing;

    Cycle execTime = 0;          //!< max processor completion time
    std::uint64_t refs = 0;
    std::uint64_t sharedRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t lookups = 0;       //!< ref-check or informing lookups
    std::uint64_t faults = 0;        //!< ECC faults taken
    std::uint64_t protocolEvents = 0; //!< directory state changes
    std::uint64_t networkRounds = 0;
    std::uint64_t invalidations = 0; //!< remote copies invalidated
    std::uint64_t droppedInvalidations = 0; //!< injected message losses
    std::uint64_t delayedAcks = 0;          //!< injected ack delays

    Cycle computeCycles = 0;
    Cycle memoryCycles = 0;
    Cycle accessControlCycles = 0;  //!< lookup + fault + state change
    Cycle networkCycles = 0;
    Cycle barrierWaitCycles = 0;
};

/** The event-driven multiprocessor simulator. */
class CoherentMachine
{
  public:
    /** Checkpoint behavior of one run() call. */
    struct RunHooks
    {
        /** Image to resume from (nullptr: cold start). */
        const std::vector<std::uint8_t> *resumeImage = nullptr;

        /** Take an image every N processed references (0: none). */
        std::uint64_t checkpointEveryRefs = 0;

        /** Receives each periodic image and the reference count. */
        std::function<void(const std::vector<std::uint8_t> &,
                           std::uint64_t)> onCheckpoint;
    };

    CoherentMachine(const CoherenceParams &params, AccessMethod method);

    /**
     * Attach a fault injector (not owned; may be nullptr). The
     * DroppedInvalidation and DelayedAck points are then consulted on
     * protocol actions.
     */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /**
     * Attach observability sinks (not owned; may be nullptr). Protocol
     * events (directory reads/writes, invalidations, barriers, injected
     * faults) are then emitted as Cat::Coh trace events.
     */
    void
    setObserver(obs::Observer *o)
    {
        _obs = o;
        _trace = o ? o->traceSink() : nullptr;
    }

    /**
     * Expose the machine's counters as a "coherence" group under
     * @p parent. Valid for the machine's lifetime; values track the
     * current/most recent run.
     */
    void registerStats(stats::StatGroup &parent);

    /** Run @p workload to completion. */
    CoherenceResult run(const ParallelWorkload &workload);

    /** Run with checkpoint hooks (resume and/or periodic images). */
    CoherenceResult run(const ParallelWorkload &workload,
                        const RunHooks &hooks);

    /** @return the directory (for invariant checks in tests). */
    const Directory &directory() const { return _directory; }

    /**
     * Order-sensitive digest of @p workload (name, streams, items).
     * Embedded in checkpoints so an image cannot be resumed against a
     * different workload.
     */
    static std::uint64_t fingerprintWorkload(
        const ParallelWorkload &workload);

    /**
     * Checkpoint hooks: per-processor clocks, stream positions,
     * caches, the directory, page-protection bookkeeping, the
     * diagnostic ring, and the partial result all round-trip. Only
     * meaningful at the event boundary (between trace items). The
     * fault injector is checkpointed by the caller (see run()).
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Proc
    {
        Cycle clock = 0;
        std::size_t pos = 0;
        bool atBarrier = false;
        memory::SetAssocCache l1;
        memory::SetAssocCache l2;
    };

    /** Process one trace item on processor @p p; updates its clock. */
    void step(std::uint32_t p, const TraceItem &item);

    /** Charge the plain memory-hierarchy cost of a reference,
     *  optionally forcing a primary miss. @return true on L1 miss. */
    bool chargeCacheAccess(Proc &proc, Addr addr, bool write,
                           bool force_miss);

    /**
     * Invalidate remote cached copies named by @p mask on behalf of
     * requester @p p. Under injected DroppedInvalidation faults each
     * message is retransmitted a bounded number of times (charging the
     * requester); persistent loss raises a structured FaultInjected
     * error with the directory left consistent.
     */
    void invalidateRemote(std::uint32_t p, std::uint32_t mask, Addr addr);

    /** Track ECC page protection: blocks in READONLY per page. */
    void noteReadonly(std::uint32_t p, Addr addr, bool entering);
    bool pageHasReadonly(std::uint32_t p, Addr addr) const;

    /** Assemble a resumable image of the whole machine. */
    std::vector<std::uint8_t> makeImage(std::uint64_t workload_fp) const;

    CoherenceParams _params;
    AccessMethod _method;
    Directory _directory;
    std::vector<Proc> _procs;
    FaultInjector *_faults = nullptr;
    obs::Observer *_obs = nullptr;
    obs::TraceSink *_trace = nullptr;
    DiagRing _ring;
    CoherenceResult _res;

    /** (proc, page) -> count of READONLY blocks on that page. */
    std::unordered_map<std::uint64_t, std::uint32_t> _roBlocksPerPage;
};

} // namespace imo::coherence

#endif // IMO_COHERENCE_MACHINE_HH
