/**
 * @file
 * CoherentMachine: an event-driven 16-processor shared-memory machine
 * (TangoLite-style direct execution) used for the fine-grained
 * access-control case study of section 4.3.
 *
 * Each processor replays a reference stream (with embedded compute
 * delays and barriers) against its private two-level cache and the
 * global protection directory. The configured AccessMethod determines
 * where detection/lookup overhead is paid:
 *
 *  - ReferenceCheck: a protection-table lookup on every shared
 *    reference;
 *  - EccFault: a fault on reads of INVALID blocks and on writes to
 *    pages containing READONLY data;
 *  - Informing: a miss-handler lookup on shared references that miss
 *    the primary cache (invalid blocks are evicted, so accesses
 *    requiring protocol work always miss).
 */

#ifndef IMO_COHERENCE_MACHINE_HH
#define IMO_COHERENCE_MACHINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "coherence/directory.hh"
#include "coherence/params.hh"
#include "memory/cache.hh"

namespace imo::coherence
{

/** One element of a processor's reference stream. */
struct TraceItem
{
    enum class Kind : std::uint8_t { Ref, Barrier };

    Kind kind = Kind::Ref;
    Addr addr = 0;
    bool write = false;
    bool shared = false;     //!< accesses potentially-shared data
    std::uint16_t computeBefore = 0; //!< local compute preceding it
};

/** A complete parallel workload: one stream per processor. */
struct ParallelWorkload
{
    std::string name;
    std::vector<std::vector<TraceItem>> streams;
};

/** Outcome of one machine run. */
struct CoherenceResult
{
    std::string workload;
    AccessMethod method = AccessMethod::Informing;

    Cycle execTime = 0;          //!< max processor completion time
    std::uint64_t refs = 0;
    std::uint64_t sharedRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t lookups = 0;       //!< ref-check or informing lookups
    std::uint64_t faults = 0;        //!< ECC faults taken
    std::uint64_t protocolEvents = 0; //!< directory state changes
    std::uint64_t networkRounds = 0;
    std::uint64_t invalidations = 0; //!< remote copies invalidated

    Cycle computeCycles = 0;
    Cycle memoryCycles = 0;
    Cycle accessControlCycles = 0;  //!< lookup + fault + state change
    Cycle networkCycles = 0;
    Cycle barrierWaitCycles = 0;
};

/** The event-driven multiprocessor simulator. */
class CoherentMachine
{
  public:
    CoherentMachine(const CoherenceParams &params, AccessMethod method);

    /** Run @p workload to completion. */
    CoherenceResult run(const ParallelWorkload &workload);

    /** @return the directory (for invariant checks in tests). */
    const Directory &directory() const { return _directory; }

  private:
    struct Proc
    {
        Cycle clock = 0;
        std::size_t pos = 0;
        bool atBarrier = false;
        memory::SetAssocCache l1;
        memory::SetAssocCache l2;
    };

    /** Process one trace item on processor @p p; updates its clock. */
    void step(std::uint32_t p, const TraceItem &item,
              CoherenceResult &res);

    /** Charge the plain memory-hierarchy cost of a reference,
     *  optionally forcing a primary miss. @return true on L1 miss. */
    bool chargeCacheAccess(Proc &proc, Addr addr, bool write,
                           bool force_miss, CoherenceResult &res);

    /** Invalidate remote cached copies named by @p mask. */
    void invalidateRemote(std::uint32_t mask, Addr addr,
                          CoherenceResult &res);

    /** Track ECC page protection: blocks in READONLY per page. */
    void noteReadonly(std::uint32_t p, Addr addr, bool entering);
    bool pageHasReadonly(std::uint32_t p, Addr addr) const;

    CoherenceParams _params;
    AccessMethod _method;
    Directory _directory;
    std::vector<Proc> _procs;

    /** (proc, page) -> count of READONLY blocks on that page. */
    std::unordered_map<std::uint64_t, std::uint32_t> _roBlocksPerPage;
};

} // namespace imo::coherence

#endif // IMO_COHERENCE_MACHINE_HH
