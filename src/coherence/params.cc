#include "coherence/params.hh"

#include <string>

#include "common/error.hh"

namespace imo::coherence
{

void
CoherenceParams::validate() const
{
    sim_throw_if(processors == 0 || processors > 32, ErrCode::BadConfig,
                 "coherence machine supports 1..32 processors, got %u",
                 processors);

    std::string why;
    sim_throw_if(!l1.wellFormed(&why), ErrCode::BadConfig,
                 "coherence L1 geometry: %s", why.c_str());
    sim_throw_if(!l2.wellFormed(&why), ErrCode::BadConfig,
                 "coherence L2 geometry: %s", why.c_str());

    sim_throw_if(coherenceUnitBytes == 0 ||
                 (coherenceUnitBytes & (coherenceUnitBytes - 1)),
                 ErrCode::BadConfig,
                 "coherence unit must be a power of two, got %u",
                 coherenceUnitBytes);
    sim_throw_if(pageBytes == 0 || (pageBytes & (pageBytes - 1)),
                 ErrCode::BadConfig,
                 "page size must be a power of two, got %u", pageBytes);
    sim_throw_if(pageBytes < coherenceUnitBytes, ErrCode::BadConfig,
                 "page size %u smaller than the coherence unit %u",
                 pageBytes, coherenceUnitBytes);
    sim_throw_if(l1HitCost == 0, ErrCode::BadConfig,
                 "L1 hit cost must be nonzero");
    sim_throw_if(messageLatency == 0, ErrCode::BadConfig,
                 "network message latency must be nonzero");
}

} // namespace imo::coherence
