/**
 * @file
 * Machine and access-control parameters for the fine-grained
 * access-control case study (paper section 4.3, Table 2).
 */

#ifndef IMO_COHERENCE_PARAMS_HH
#define IMO_COHERENCE_PARAMS_HH

#include <cstdint>

#include "common/types.hh"
#include "memory/geometry.hh"

namespace imo::coherence
{

/** The three access-control implementations compared in Figure 4. */
enum class AccessMethod : std::uint8_t
{
    /** Software check instrumenting every potentially-shared reference
     *  (Blizzard-S style). */
    ReferenceCheck,
    /** ECC-fault based detection (Blizzard-E style): reads of invalid
     *  blocks fault; writes fault on pages holding READONLY data. */
    EccFault,
    /** Informing-memory-operation miss handlers (this paper). */
    Informing,
    /** Dedicated coherence hardware (footnote 8: FLASH/Typhoon-class
     *  machines): zero detection and state-change overhead, included
     *  as the performance upper bound the paper compares against. */
    Hardware,
};

/** @return a short display name for @p method. */
const char *accessMethodName(AccessMethod method);

/** Table 2: machine and per-method cost parameters. */
struct CoherenceParams
{
    std::uint32_t processors = 16;

    memory::CacheGeometry l1{.sizeBytes = 16 * 1024, .lineBytes = 32,
                             .assoc = 2};
    memory::CacheGeometry l2{.sizeBytes = 128 * 1024, .lineBytes = 32,
                             .assoc = 4};
    Cycle l1HitCost = 1;
    Cycle l1MissPenalty = 10;   //!< additional cycles for an L2 hit
    Cycle l2MissPenalty = 25;   //!< additional cycles beyond L2

    std::uint32_t coherenceUnitBytes = 32;
    std::uint32_t pageBytes = 4096;    //!< ECC write-protection grain
    Cycle messageLatency = 900;        //!< one-way network latency
    Cycle barrierCost = 100;

    /**
     * Network model. false (default): centralized protocol state, every
     * remote action costs full round trips (networkRounds x 2 x
     * latency) -- the conservative model the Figure 4 numbers use.
     * true: blocks are homed round-robin across processors and actions
     * pay per one-way message on a 3-hop protocol (requester -> home ->
     * owner -> requester), so home-local accesses are cheaper.
     */
    bool distributedHomes = false;

    // Reference-checking approach.
    Cycle refCheckLookup = 18;
    Cycle refCheckStateChange = 25;

    // ECC-based approach.
    Cycle eccReadFault = 250;   //!< read to an invalid block
    Cycle eccWriteFault = 230;  //!< write to a page with READONLY data

    // Informing-memory-operation approach.
    Cycle informingLookup = 33; //!< 6-cycle dispatch + 9-cycle handler
                                //!< + table probe, on shared misses
    Cycle informingStateChange = 25;

    /**
     * Forward-progress watchdog on the event loop: if this many
     * consecutive scheduler iterations pass without any processor
     * advancing in its stream (or a barrier releasing), the run is
     * aborted with a structured Deadlock error carrying the recent
     * protocol events. Barrier entries are bounded by the processor
     * count between real steps, so the default is far above any
     * legitimate workload. 0 disables the watchdog.
     */
    std::uint64_t watchdogEvents = 1'000'000;

    /**
     * Validate every field, throwing SimException(BadConfig) with the
     * first problem found. Called by CoherentMachine's constructor.
     */
    void validate() const;
};

} // namespace imo::coherence

#endif // IMO_COHERENCE_PARAMS_HH
