
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/checkpoint.cc" "src/common/CMakeFiles/imo_common.dir/checkpoint.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/checkpoint.cc.o.d"
  "/root/repo/src/common/diagring.cc" "src/common/CMakeFiles/imo_common.dir/diagring.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/diagring.cc.o.d"
  "/root/repo/src/common/error.cc" "src/common/CMakeFiles/imo_common.dir/error.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/error.cc.o.d"
  "/root/repo/src/common/faultinject.cc" "src/common/CMakeFiles/imo_common.dir/faultinject.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/faultinject.cc.o.d"
  "/root/repo/src/common/json.cc" "src/common/CMakeFiles/imo_common.dir/json.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/json.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/imo_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/logging.cc.o.d"
  "/root/repo/src/common/manifest.cc" "src/common/CMakeFiles/imo_common.dir/manifest.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/manifest.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/imo_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "src/common/CMakeFiles/imo_common.dir/table.cc.o" "gcc" "src/common/CMakeFiles/imo_common.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
