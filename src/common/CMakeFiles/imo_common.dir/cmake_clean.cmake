file(REMOVE_RECURSE
  "CMakeFiles/imo_common.dir/checkpoint.cc.o"
  "CMakeFiles/imo_common.dir/checkpoint.cc.o.d"
  "CMakeFiles/imo_common.dir/diagring.cc.o"
  "CMakeFiles/imo_common.dir/diagring.cc.o.d"
  "CMakeFiles/imo_common.dir/error.cc.o"
  "CMakeFiles/imo_common.dir/error.cc.o.d"
  "CMakeFiles/imo_common.dir/faultinject.cc.o"
  "CMakeFiles/imo_common.dir/faultinject.cc.o.d"
  "CMakeFiles/imo_common.dir/json.cc.o"
  "CMakeFiles/imo_common.dir/json.cc.o.d"
  "CMakeFiles/imo_common.dir/logging.cc.o"
  "CMakeFiles/imo_common.dir/logging.cc.o.d"
  "CMakeFiles/imo_common.dir/manifest.cc.o"
  "CMakeFiles/imo_common.dir/manifest.cc.o.d"
  "CMakeFiles/imo_common.dir/stats.cc.o"
  "CMakeFiles/imo_common.dir/stats.cc.o.d"
  "CMakeFiles/imo_common.dir/table.cc.o"
  "CMakeFiles/imo_common.dir/table.cc.o.d"
  "libimo_common.a"
  "libimo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
