file(REMOVE_RECURSE
  "libimo_common.a"
)
