# Empty dependencies file for imo_common.
# This may be replaced when dependencies are built.
