#include "common/checkpoint.hh"

#include <array>
#include <cstdio>

#include "common/logging.hh"

namespace imo
{

namespace
{

constexpr std::array<char, 8> kMagic =
    {'I', 'M', 'O', 'C', 'K', 'P', 'T', '\0'};

constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 4;

/** CRC-32 lookup tables for slicing-by-8: tables[0] is the classic
 *  byte-at-a-time table, tables[k][b] carries byte b through k further
 *  zero bytes, so the hot loop folds eight input bytes per step. */
std::array<std::array<std::uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (std::size_t k = 1; k < 8; ++k) {
        for (std::uint32_t i = 0; i < 256; ++i)
            tables[k][i] = tables[0][tables[k - 1][i] & 0xff] ^
                           (tables[k - 1][i] >> 8);
    }
    return tables;
}

void
append(std::vector<std::uint8_t> &out, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), p, p + len);
}

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    append(out, &v, 4);
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    append(out, &v, 8);
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::array<std::uint32_t, 256>, 8> tables =
        makeCrcTables();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    // Slicing-by-8: identical result to the byte loop below, ~6x the
    // throughput. The u32 loads lean on the same little-endian layout
    // the container format itself mandates.
    while (len >= 8) {
        std::uint32_t one, two;
        std::memcpy(&one, p, 4);
        std::memcpy(&two, p + 4, 4);
        one ^= c;
        c = tables[7][one & 0xff] ^ tables[6][(one >> 8) & 0xff] ^
            tables[5][(one >> 16) & 0xff] ^ tables[4][one >> 24] ^
            tables[3][two & 0xff] ^ tables[2][(two >> 8) & 0xff] ^
            tables[1][(two >> 16) & 0xff] ^ tables[0][two >> 24];
        p += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i)
        c = tables[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// --- Compression codecs ---------------------------------------------

namespace
{

/** LEB128 varint append. */
void
appendVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/** LEB128 varint read with bounds and overlong-encoding checks. */
std::uint64_t
readVarint(const std::uint8_t *data, std::size_t len, std::size_t *pos)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        sim_throw_if(*pos >= len, ErrCode::BadCheckpoint,
                     "packed array truncated inside a varint");
        const std::uint8_t b = data[(*pos)++];
        // The 10th byte holds the top bit only; anything above
        // overflows u64 (an overlong or corrupt encoding).
        sim_throw_if(shift == 63 && b > 1, ErrCode::BadCheckpoint,
                     "packed array varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throwSimError(ErrCode::BadCheckpoint,
                  "packed array varint longer than 10 bytes");
}

/** readVarint() minus the per-byte bounds checks: the caller has
 *  already proven at least 10 readable bytes (a varint's maximum
 *  length), so only the overlong-encoding checks remain. */
std::uint64_t
readVarintUnchecked(const std::uint8_t *data, std::size_t *pos)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const std::uint8_t b = data[(*pos)++];
        sim_throw_if(shift == 63 && b > 1, ErrCode::BadCheckpoint,
                     "packed array varint overflows 64 bits");
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throwSimError(ErrCode::BadCheckpoint,
                  "packed array varint longer than 10 bytes");
}

std::uint64_t
zigzag(std::uint64_t delta)
{
    return (delta << 1) ^
           static_cast<std::uint64_t>(
               static_cast<std::int64_t>(delta) >> 63);
}

std::uint64_t
unzigzag(std::uint64_t z)
{
    return (z >> 1) ^ (~(z & 1) + 1);
}

} // anonymous namespace

std::vector<std::uint8_t>
packDeltaU64(const std::vector<std::uint64_t> &v)
{
    std::vector<std::uint8_t> out;
    out.reserve(v.size() + v.size() / 4);
    std::uint64_t prev = 0;
    for (const std::uint64_t x : v) {
        appendVarint(out, zigzag(x - prev));
        prev = x;
    }
    return out;
}

std::vector<std::uint64_t>
unpackDeltaU64(const std::uint8_t *data, std::size_t len,
               std::uint64_t count)
{
    // Each element costs at least one byte, so a valid stream is never
    // shorter than its element count; rejecting that up front bounds
    // the allocation below against the input size. This decode is the
    // dominant cost of restoring a checkpoint or live-point image, so
    // the loop body stays branch-light: while a varint's maximum 10
    // bytes provably remain, elements decode with no per-byte bounds
    // checks, and the common one-byte delta (a run of equal values)
    // never enters the multi-byte loop at all.
    sim_throw_if(count > len, ErrCode::BadCheckpoint,
                 "packed u64 array claims %llu elements in %zu bytes",
                 static_cast<unsigned long long>(count), len);
    std::vector<std::uint64_t> v(count);
    std::size_t pos = 0;
    std::uint64_t prev = 0;
    const std::size_t safe = len >= 10 ? len - 10 : 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t z;
        if (pos <= safe) {
            const std::uint8_t b = data[pos];
            if (!(b & 0x80)) {
                ++pos;
                z = b;
            } else {
                z = readVarintUnchecked(data, &pos);
            }
        } else {
            z = readVarint(data, len, &pos);
        }
        prev += unzigzag(z);
        v[i] = prev;
    }
    sim_throw_if(pos != len, ErrCode::BadCheckpoint,
                 "packed u64 array has %zu trailing bytes",
                 len - pos);
    return v;
}

std::vector<std::uint8_t>
packDeltaU64Bounded(const std::vector<std::uint64_t> &v,
                    std::size_t bound)
{
    // Encodes through a small stack buffer flushed in chunks: the hot
    // loop writes through a raw pointer with no capacity checks, and
    // well-compressing arrays (the common case) never allocate more
    // than they produce. Abandons as soon as the output provably
    // reaches @p bound.
    std::vector<std::uint8_t> out;
    std::array<std::uint8_t, 4096> buf;
    std::size_t fill = 0;
    std::uint64_t prev = 0;
    for (const std::uint64_t x : v) {
        if (fill + 10 > buf.size()) {
            out.insert(out.end(), buf.data(), buf.data() + fill);
            fill = 0;
        }
        if (out.size() + fill >= bound)
            return {};
        std::uint8_t *p = buf.data() + fill;
        std::uint64_t z = zigzag(x - prev);
        prev = x;
        while (z >= 0x80) {
            *p++ = static_cast<std::uint8_t>(z) | 0x80;
            z >>= 7;
        }
        *p++ = static_cast<std::uint8_t>(z);
        fill = static_cast<std::size_t>(p - buf.data());
    }
    if (out.size() + fill >= bound)
        return {};
    out.insert(out.end(), buf.data(), buf.data() + fill);
    return out;
}

std::vector<std::uint8_t>
packZeroRleU8(const std::vector<std::uint8_t> &v)
{
    std::vector<std::uint8_t> out;
    out.reserve(v.size() / 4 + 16);
    for (std::size_t i = 0; i < v.size();) {
        const std::uint8_t b = v[i];
        out.push_back(b);
        if (b != 0) {
            ++i;
            continue;
        }
        std::size_t run = 1;
        while (i + run < v.size() && v[i + run] == 0)
            ++run;
        appendVarint(out, run);
        i += run;
    }
    return out;
}

std::vector<std::uint8_t>
unpackZeroRleU8(const std::uint8_t *data, std::size_t len,
                std::uint64_t count)
{
    std::vector<std::uint8_t> v;
    v.reserve(count);
    std::size_t pos = 0;
    while (v.size() < count) {
        sim_throw_if(pos >= len, ErrCode::BadCheckpoint,
                     "RLE byte array truncated at %zu of %llu bytes",
                     v.size(), static_cast<unsigned long long>(count));
        const std::uint8_t b = data[pos++];
        if (b != 0) {
            v.push_back(b);
            continue;
        }
        const std::uint64_t run = readVarint(data, len, &pos);
        sim_throw_if(run == 0 || run > count - v.size(),
                     ErrCode::BadCheckpoint,
                     "RLE zero run of %llu bytes overflows the %llu-byte "
                     "array at offset %zu",
                     static_cast<unsigned long long>(run),
                     static_cast<unsigned long long>(count), v.size());
        v.insert(v.end(), run, 0);
    }
    sim_throw_if(pos != len, ErrCode::BadCheckpoint,
                 "RLE byte array has %zu trailing bytes", len - pos);
    return v;
}

// --- Serializer -----------------------------------------------------

void
Serializer::beginSection(const std::string &name)
{
    panic_if(_open, "checkpoint section '%s' opened inside another",
             name.c_str());
    _sections.push_back(Section{name, {}});
    _open = true;
}

void
Serializer::endSection()
{
    panic_if(!_open, "endSection() with no open checkpoint section");
    _open = false;
}

void
Serializer::raw(const void *data, std::size_t len)
{
    panic_if(!_open, "checkpoint write outside any section");
    append(_sections.back().payload, data, len);
}

std::vector<std::uint8_t>
Serializer::finish() const
{
    panic_if(_open, "finish() with an unsealed checkpoint section");
    std::size_t total = kHeaderBytes;
    for (const Section &s : _sections)
        total += 4 + s.name.size() + 8 + 4 + s.payload.size();
    std::vector<std::uint8_t> out(kMagic.begin(), kMagic.end());
    out.reserve(total);
    appendU32(out, checkpointFormatVersion);
    appendU32(out, static_cast<std::uint32_t>(_sections.size()));
    for (const Section &s : _sections) {
        appendU32(out, static_cast<std::uint32_t>(s.name.size()));
        append(out, s.name.data(), s.name.size());
        appendU64(out, s.payload.size());
        appendU32(out, crc32(s.payload.data(), s.payload.size()));
        append(out, s.payload.data(), s.payload.size());
    }
    return out;
}

void
Serializer::writeFile(const std::string &path) const
{
    writeCheckpointFile(path, finish());
}

void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &image)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    sim_throw_if(!f, ErrCode::BadCheckpoint,
                 "cannot open '%s' for writing", tmp.c_str());
    const std::size_t written =
        std::fwrite(image.data(), 1, image.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != image.size() || !closed) {
        std::remove(tmp.c_str());
        throwSimError(ErrCode::BadCheckpoint,
                      "short write while saving checkpoint '%s'",
                      path.c_str());
    }
    sim_throw_if(std::rename(tmp.c_str(), path.c_str()) != 0,
                 ErrCode::BadCheckpoint,
                 "cannot move checkpoint into place at '%s'",
                 path.c_str());
}

// --- Deserializer ---------------------------------------------------

std::vector<std::uint8_t>
Deserializer::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    sim_throw_if(!f, ErrCode::BadCheckpoint,
                 "cannot open checkpoint '%s'", path.c_str());
    std::vector<std::uint8_t> image;
    std::array<std::uint8_t, 64 * 1024> buf;
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
        image.insert(image.end(), buf.data(), buf.data() + n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    sim_throw_if(failed, ErrCode::BadCheckpoint,
                 "read error on checkpoint '%s'", path.c_str());
    return image;
}

Deserializer::Deserializer(std::vector<std::uint8_t> image)
    : _image(std::move(image))
{
    sim_throw_if(_image.size() < kHeaderBytes, ErrCode::BadCheckpoint,
                 "checkpoint truncated: %zu bytes is smaller than the "
                 "%zu-byte header", _image.size(), kHeaderBytes);
    sim_throw_if(std::memcmp(_image.data(), kMagic.data(),
                             kMagic.size()) != 0,
                 ErrCode::BadCheckpoint,
                 "not a checkpoint (bad magic)");

    std::size_t off = kMagic.size();
    auto readU32 = [&]() {
        std::uint32_t v;
        std::memcpy(&v, _image.data() + off, 4);
        off += 4;
        return v;
    };

    const std::uint32_t version = readU32();
    sim_throw_if(version != checkpointFormatVersion,
                 ErrCode::BadCheckpoint,
                 "checkpoint format version %u unsupported (this build "
                 "reads version %u)", version, checkpointFormatVersion);

    const std::uint32_t count = readU32();
    for (std::uint32_t i = 0; i < count; ++i) {
        sim_throw_if(off + 4 > _image.size(), ErrCode::BadCheckpoint,
                     "checkpoint truncated in section %u header", i);
        const std::uint32_t name_len = readU32();
        sim_throw_if(off + name_len + 12 > _image.size(),
                     ErrCode::BadCheckpoint,
                     "checkpoint truncated in section %u header", i);
        Section s;
        s.name.assign(reinterpret_cast<const char *>(_image.data() + off),
                      name_len);
        off += name_len;
        std::uint64_t payload_len;
        std::memcpy(&payload_len, _image.data() + off, 8);
        off += 8;
        const std::uint32_t want_crc = readU32();
        sim_throw_if(payload_len > _image.size() - off,
                     ErrCode::BadCheckpoint,
                     "checkpoint truncated: section '%s' claims %llu "
                     "payload bytes but only %zu remain", s.name.c_str(),
                     static_cast<unsigned long long>(payload_len),
                     _image.size() - off);
        const std::uint32_t got_crc =
            crc32(_image.data() + off, payload_len);
        sim_throw_if(got_crc != want_crc, ErrCode::BadCheckpoint,
                     "checkpoint section '%s' is corrupt "
                     "(CRC %08x, expected %08x)", s.name.c_str(),
                     got_crc, want_crc);
        s.offset = off;
        s.length = payload_len;
        off += payload_len;
        _sections.push_back(std::move(s));
    }
    sim_throw_if(off != _image.size(), ErrCode::BadCheckpoint,
                 "checkpoint has %zu trailing bytes after the last "
                 "section", _image.size() - off);
}

bool
Deserializer::hasSection(const std::string &name) const
{
    for (const Section &s : _sections) {
        if (s.name == name)
            return true;
    }
    return false;
}

void
Deserializer::openSection(const std::string &name)
{
    for (std::size_t i = 0; i < _sections.size(); ++i) {
        if (_sections[i].name == name) {
            _current = i;
            _cursor = 0;
            return;
        }
    }
    throwSimError(ErrCode::BadCheckpoint,
                  "checkpoint has no '%s' section", name.c_str());
}

void
Deserializer::closeSection()
{
    panic_if(_current == static_cast<std::size_t>(-1),
             "closeSection() with no open checkpoint section");
    const Section &s = _sections[_current];
    sim_throw_if(_cursor != s.length, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' decoded %zu of %zu bytes "
                 "(format drift?)", s.name.c_str(), _cursor, s.length);
    _current = static_cast<std::size_t>(-1);
}

void
Deserializer::raw(void *out, std::size_t len)
{
    sim_throw_if(_current == static_cast<std::size_t>(-1),
                 ErrCode::BadCheckpoint,
                 "checkpoint read outside any section");
    const Section &s = _sections[_current];
    sim_throw_if(len > s.length - _cursor, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: read of %zu bytes "
                 "at offset %zu exceeds %zu-byte payload",
                 s.name.c_str(), len, _cursor, s.length);
    std::memcpy(out, _image.data() + s.offset + _cursor, len);
    _cursor += len;
}

void
Deserializer::requireRemaining(std::uint64_t bytes)
{
    sim_throw_if(_current == static_cast<std::size_t>(-1),
                 ErrCode::BadCheckpoint,
                 "checkpoint read outside any section");
    const Section &s = _sections[_current];
    sim_throw_if(bytes > s.length - _cursor, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: %llu bytes claimed "
                 "but only %zu remain", s.name.c_str(),
                 static_cast<unsigned long long>(bytes),
                 s.length - _cursor);
}

std::uint64_t
Deserializer::countedLength(std::size_t elem_bytes)
{
    const std::uint64_t n = u64();
    requireCount(n, elem_bytes);
    return n;
}

void
Deserializer::requireCount(std::uint64_t n, std::size_t elem_bytes)
{
    const Section &s = _sections[_current];
    sim_throw_if(n > (s.length - _cursor) / elem_bytes,
                 ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: %llu elements "
                 "do not fit in the remaining %zu bytes",
                 s.name.c_str(), static_cast<unsigned long long>(n),
                 s.length - _cursor);
}

} // namespace imo
