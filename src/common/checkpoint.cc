#include "common/checkpoint.hh"

#include <array>
#include <cstdio>

#include "common/logging.hh"

namespace imo
{

namespace
{

constexpr std::array<char, 8> kMagic =
    {'I', 'M', 'O', 'C', 'K', 'P', 'T', '\0'};

constexpr std::size_t kHeaderBytes = kMagic.size() + 4 + 4;

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

void
append(std::vector<std::uint8_t> &out, const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    out.insert(out.end(), p, p + len);
}

void
appendU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    append(out, &v, 4);
}

void
appendU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    append(out, &v, 8);
}

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t len)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

// --- Serializer -----------------------------------------------------

void
Serializer::beginSection(const std::string &name)
{
    panic_if(_open, "checkpoint section '%s' opened inside another",
             name.c_str());
    _sections.push_back(Section{name, {}});
    _open = true;
}

void
Serializer::endSection()
{
    panic_if(!_open, "endSection() with no open checkpoint section");
    _open = false;
}

void
Serializer::raw(const void *data, std::size_t len)
{
    panic_if(!_open, "checkpoint write outside any section");
    append(_sections.back().payload, data, len);
}

std::vector<std::uint8_t>
Serializer::finish() const
{
    panic_if(_open, "finish() with an unsealed checkpoint section");
    std::vector<std::uint8_t> out;
    append(out, kMagic.data(), kMagic.size());
    appendU32(out, checkpointFormatVersion);
    appendU32(out, static_cast<std::uint32_t>(_sections.size()));
    for (const Section &s : _sections) {
        appendU32(out, static_cast<std::uint32_t>(s.name.size()));
        append(out, s.name.data(), s.name.size());
        appendU64(out, s.payload.size());
        appendU32(out, crc32(s.payload.data(), s.payload.size()));
        append(out, s.payload.data(), s.payload.size());
    }
    return out;
}

void
Serializer::writeFile(const std::string &path) const
{
    writeCheckpointFile(path, finish());
}

void
writeCheckpointFile(const std::string &path,
                    const std::vector<std::uint8_t> &image)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    sim_throw_if(!f, ErrCode::BadCheckpoint,
                 "cannot open '%s' for writing", tmp.c_str());
    const std::size_t written =
        std::fwrite(image.data(), 1, image.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != image.size() || !closed) {
        std::remove(tmp.c_str());
        throwSimError(ErrCode::BadCheckpoint,
                      "short write while saving checkpoint '%s'",
                      path.c_str());
    }
    sim_throw_if(std::rename(tmp.c_str(), path.c_str()) != 0,
                 ErrCode::BadCheckpoint,
                 "cannot move checkpoint into place at '%s'",
                 path.c_str());
}

// --- Deserializer ---------------------------------------------------

std::vector<std::uint8_t>
Deserializer::readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    sim_throw_if(!f, ErrCode::BadCheckpoint,
                 "cannot open checkpoint '%s'", path.c_str());
    std::vector<std::uint8_t> image;
    std::array<std::uint8_t, 64 * 1024> buf;
    std::size_t n;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0)
        image.insert(image.end(), buf.data(), buf.data() + n);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    sim_throw_if(failed, ErrCode::BadCheckpoint,
                 "read error on checkpoint '%s'", path.c_str());
    return image;
}

Deserializer::Deserializer(std::vector<std::uint8_t> image)
    : _image(std::move(image))
{
    sim_throw_if(_image.size() < kHeaderBytes, ErrCode::BadCheckpoint,
                 "checkpoint truncated: %zu bytes is smaller than the "
                 "%zu-byte header", _image.size(), kHeaderBytes);
    sim_throw_if(std::memcmp(_image.data(), kMagic.data(),
                             kMagic.size()) != 0,
                 ErrCode::BadCheckpoint,
                 "not a checkpoint (bad magic)");

    std::size_t off = kMagic.size();
    auto readU32 = [&]() {
        std::uint32_t v;
        std::memcpy(&v, _image.data() + off, 4);
        off += 4;
        return v;
    };

    const std::uint32_t version = readU32();
    sim_throw_if(version != checkpointFormatVersion,
                 ErrCode::BadCheckpoint,
                 "checkpoint format version %u unsupported (this build "
                 "reads version %u)", version, checkpointFormatVersion);

    const std::uint32_t count = readU32();
    for (std::uint32_t i = 0; i < count; ++i) {
        sim_throw_if(off + 4 > _image.size(), ErrCode::BadCheckpoint,
                     "checkpoint truncated in section %u header", i);
        const std::uint32_t name_len = readU32();
        sim_throw_if(off + name_len + 12 > _image.size(),
                     ErrCode::BadCheckpoint,
                     "checkpoint truncated in section %u header", i);
        Section s;
        s.name.assign(reinterpret_cast<const char *>(_image.data() + off),
                      name_len);
        off += name_len;
        std::uint64_t payload_len;
        std::memcpy(&payload_len, _image.data() + off, 8);
        off += 8;
        const std::uint32_t want_crc = readU32();
        sim_throw_if(payload_len > _image.size() - off,
                     ErrCode::BadCheckpoint,
                     "checkpoint truncated: section '%s' claims %llu "
                     "payload bytes but only %zu remain", s.name.c_str(),
                     static_cast<unsigned long long>(payload_len),
                     _image.size() - off);
        const std::uint32_t got_crc =
            crc32(_image.data() + off, payload_len);
        sim_throw_if(got_crc != want_crc, ErrCode::BadCheckpoint,
                     "checkpoint section '%s' is corrupt "
                     "(CRC %08x, expected %08x)", s.name.c_str(),
                     got_crc, want_crc);
        s.offset = off;
        s.length = payload_len;
        off += payload_len;
        _sections.push_back(std::move(s));
    }
    sim_throw_if(off != _image.size(), ErrCode::BadCheckpoint,
                 "checkpoint has %zu trailing bytes after the last "
                 "section", _image.size() - off);
}

bool
Deserializer::hasSection(const std::string &name) const
{
    for (const Section &s : _sections) {
        if (s.name == name)
            return true;
    }
    return false;
}

void
Deserializer::openSection(const std::string &name)
{
    for (std::size_t i = 0; i < _sections.size(); ++i) {
        if (_sections[i].name == name) {
            _current = i;
            _cursor = 0;
            return;
        }
    }
    throwSimError(ErrCode::BadCheckpoint,
                  "checkpoint has no '%s' section", name.c_str());
}

void
Deserializer::closeSection()
{
    panic_if(_current == static_cast<std::size_t>(-1),
             "closeSection() with no open checkpoint section");
    const Section &s = _sections[_current];
    sim_throw_if(_cursor != s.length, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' decoded %zu of %zu bytes "
                 "(format drift?)", s.name.c_str(), _cursor, s.length);
    _current = static_cast<std::size_t>(-1);
}

void
Deserializer::raw(void *out, std::size_t len)
{
    sim_throw_if(_current == static_cast<std::size_t>(-1),
                 ErrCode::BadCheckpoint,
                 "checkpoint read outside any section");
    const Section &s = _sections[_current];
    sim_throw_if(len > s.length - _cursor, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: read of %zu bytes "
                 "at offset %zu exceeds %zu-byte payload",
                 s.name.c_str(), len, _cursor, s.length);
    std::memcpy(out, _image.data() + s.offset + _cursor, len);
    _cursor += len;
}

void
Deserializer::requireRemaining(std::uint64_t bytes)
{
    sim_throw_if(_current == static_cast<std::size_t>(-1),
                 ErrCode::BadCheckpoint,
                 "checkpoint read outside any section");
    const Section &s = _sections[_current];
    sim_throw_if(bytes > s.length - _cursor, ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: %llu bytes claimed "
                 "but only %zu remain", s.name.c_str(),
                 static_cast<unsigned long long>(bytes),
                 s.length - _cursor);
}

std::uint64_t
Deserializer::countedLength(std::size_t elem_bytes)
{
    const std::uint64_t n = u64();
    const Section &s = _sections[_current];
    sim_throw_if(n > (s.length - _cursor) / elem_bytes,
                 ErrCode::BadCheckpoint,
                 "checkpoint section '%s' truncated: %llu elements "
                 "do not fit in the remaining %zu bytes",
                 s.name.c_str(), static_cast<unsigned long long>(n),
                 s.length - _cursor);
    return n;
}

} // namespace imo
