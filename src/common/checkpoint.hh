/**
 * @file
 * Versioned, self-describing binary checkpoint container.
 *
 * A checkpoint is a sequence of named sections behind a fixed header:
 *
 *   magic "IMOCKPT\0" | u32 format version | u32 section count
 *   per section: u32 name length | name bytes
 *                u64 payload length | u32 CRC-32 of payload | payload
 *
 * Every stateful component contributes one section through its
 * save(Serializer&) / restore(Deserializer&) hooks; the container layer
 * owns framing and integrity. Corruption — bad magic, unknown version,
 * a CRC mismatch, truncation, a missing section, or a section whose
 * payload does not decode exactly — surfaces as a structured
 * SimException(ErrCode::BadCheckpoint): a damaged file must never be
 * able to crash or silently mis-restore the simulator.
 *
 * Integers are stored little-endian; doubles as their IEEE-754 bit
 * pattern. A checkpoint written on one little-endian host restores on
 * any other.
 */

#ifndef IMO_COMMON_CHECKPOINT_HH
#define IMO_COMMON_CHECKPOINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"

namespace imo
{

/** Bumped whenever the section layout changes incompatibly.
 *  v2: stats registry (histograms + pipeline counters) joins the
 *  component sections; MSHR entries record their allocation cycle.
 *  v3: the fault-injection section grows the four farm-level points
 *  (worker-kill, worker-stall, dropped-result, store-bit-flip). */
constexpr std::uint32_t checkpointFormatVersion = 3;

/** CRC-32 (IEEE 802.3 polynomial, as in zlib) of @p len bytes. */
std::uint32_t crc32(const void *data, std::size_t len);

/** Write an assembled image to @p path (atomically: temp+rename).
 *  Throws SimException(BadCheckpoint) on I/O failure. */
void writeCheckpointFile(const std::string &path,
                         const std::vector<std::uint8_t> &image);

/** Builds a checkpoint image section by section. */
class Serializer
{
  public:
    /** Start a named section; all writes go to it until endSection(). */
    void beginSection(const std::string &name);

    /** Seal the current section (computes its CRC). */
    void endSection();

    // Primitive writers (valid only inside a section).
    void u8(std::uint8_t v) { raw(&v, 1); }
    void u16(std::uint16_t v) { raw(&v, 2); }
    void u32(std::uint32_t v) { raw(&v, 4); }
    void u64(std::uint64_t v) { raw(&v, 8); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    /** Length-prefixed vector of u64 (the workhorse for tables). */
    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size() * 8);
    }

    void
    vecU8(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size());
    }

    /** @return the assembled image (header + all sealed sections). */
    std::vector<std::uint8_t> finish() const;

    /** Write the assembled image to @p path (atomically: temp+rename).
     *  Throws SimException(BadCheckpoint) on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    void raw(const void *data, std::size_t len);

    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> _sections;
    bool _open = false;
};

/** Parses and validates a checkpoint image; reads section by section. */
class Deserializer
{
  public:
    /** Parse @p image: header, framing, and every section CRC are
     *  validated up front. Throws SimException(BadCheckpoint). */
    explicit Deserializer(std::vector<std::uint8_t> image);

    /** Read a whole file into memory.
     *  Throws SimException(BadCheckpoint) if unreadable. */
    static std::vector<std::uint8_t> readFile(const std::string &path);

    bool hasSection(const std::string &name) const;

    /** Position the cursor at the start of section @p name.
     *  Throws BadCheckpoint if the section is absent. */
    void openSection(const std::string &name);

    /** Finish the current section; throws BadCheckpoint if the reader
     *  did not consume its payload exactly (layout drift). */
    void closeSection();

    // Primitive readers (throw BadCheckpoint on truncation).
    std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
    std::uint16_t u16() { std::uint16_t v; raw(&v, 2); return v; }
    std::uint32_t u32() { std::uint32_t v; raw(&v, 4); return v; }
    std::uint64_t u64() { std::uint64_t v; raw(&v, 8); return v; }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string
    str()
    {
        // Validate the length against the bytes actually remaining
        // BEFORE allocating: a hostile 4GB length prefix must produce
        // a structured error, not an allocation spike.
        const std::uint32_t n = u32();
        requireRemaining(n);
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        const std::uint64_t n = countedLength(8);
        std::vector<std::uint64_t> v(n);
        raw(v.data(), n * 8);
        return v;
    }

    std::vector<std::uint8_t>
    vecU8()
    {
        const std::uint64_t n = countedLength(1);
        std::vector<std::uint8_t> v(n);
        raw(v.data(), n);
        return v;
    }

  private:
    void raw(void *out, std::size_t len);

    /** Read an element count and bound it by the bytes remaining. */
    std::uint64_t countedLength(std::size_t elem_bytes);

    /** Throw BadCheckpoint unless @p bytes more payload remain. */
    void requireRemaining(std::uint64_t bytes);

    struct Section
    {
        std::string name;
        std::size_t offset = 0;  //!< payload start within _image
        std::size_t length = 0;
    };

    std::vector<std::uint8_t> _image;
    std::vector<Section> _sections;
    std::size_t _current = static_cast<std::size_t>(-1);
    std::size_t _cursor = 0;  //!< read offset within current payload
};

} // namespace imo

#endif // IMO_COMMON_CHECKPOINT_HH
