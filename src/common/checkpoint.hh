/**
 * @file
 * Versioned, self-describing binary checkpoint container.
 *
 * A checkpoint is a sequence of named sections behind a fixed header:
 *
 *   magic "IMOCKPT\0" | u32 format version | u32 section count
 *   per section: u32 name length | name bytes
 *                u64 payload length | u32 CRC-32 of payload | payload
 *
 * Every stateful component contributes one section through its
 * save(Serializer&) / restore(Deserializer&) hooks; the container layer
 * owns framing and integrity. Corruption — bad magic, unknown version,
 * a CRC mismatch, truncation, a missing section, or a section whose
 * payload does not decode exactly — surfaces as a structured
 * SimException(ErrCode::BadCheckpoint): a damaged file must never be
 * able to crash or silently mis-restore the simulator.
 *
 * Integers are stored little-endian; doubles as their IEEE-754 bit
 * pattern. A checkpoint written on one little-endian host restores on
 * any other.
 */

#ifndef IMO_COMMON_CHECKPOINT_HH
#define IMO_COMMON_CHECKPOINT_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"

namespace imo
{

/** Bumped whenever the section layout changes incompatibly.
 *  v2: stats registry (histograms + pipeline counters) joins the
 *  component sections; MSHR entries record their allocation cycle.
 *  v3: the fault-injection section grows the four farm-level points
 *  (worker-kill, worker-stall, dropped-result, store-bit-flip).
 *  v4: array-heavy sections are stored columnar and compressed
 *  (cache flag bytes zero-RLE; cache tag/LRU arrays, data-memory
 *  pages, and predictor counter tables delta-varint packed) so
 *  per-window live-point images stay small.
 *  v5: packed u64 arrays carry a one-byte encoding tag and fall back
 *  to raw little-endian words when delta-varint packing would expand
 *  them (floating-point bit patterns pack toward 10 bytes a word), so
 *  FP-heavy data pages stay at raw size and restore by memcpy. */
constexpr std::uint32_t checkpointFormatVersion = 5;

/** CRC-32 (IEEE 802.3 polynomial, as in zlib) of @p len bytes. */
std::uint32_t crc32(const void *data, std::size_t len);

// --- Compression codecs ---------------------------------------------
//
// Two helpers for the array-heavy component sections (cache tag/LRU
// arrays, data-memory pages, predictor tables). Both are byte-exact
// inverses of each other and reject malformed input with a structured
// BadCheckpoint error, never out-of-bounds reads or allocation spikes.

/**
 * Pack @p v as consecutive-element deltas, zigzag-mapped and
 * LEB128-varint encoded. Runs of equal values (invalid cache lines,
 * zeroed memory words) collapse to one byte per element, and
 * slowly-varying sequences (LRU stamps, sorted page numbers) to a few;
 * worst-case expansion is bounded at 10 bytes per element.
 */
std::vector<std::uint8_t> packDeltaU64(const std::vector<std::uint64_t> &v);

/**
 * packDeltaU64() with an early abandon: returns an empty vector as
 * soon as the packed form reaches @p bound bytes, signalling that
 * packing does not pay off for this array (the caller should store it
 * raw instead). Incompressible input is rejected after only a few
 * elements rather than fully encoded and thrown away.
 */
std::vector<std::uint8_t>
packDeltaU64Bounded(const std::vector<std::uint64_t> &v, std::size_t bound);

/**
 * Inverse of packDeltaU64(): decode exactly @p count elements from
 * @p len bytes. Throws BadCheckpoint when the stream is truncated,
 * over-long, or contains an overlong varint.
 */
std::vector<std::uint64_t> unpackDeltaU64(const std::uint8_t *data,
                                          std::size_t len,
                                          std::uint64_t count);

/** Allocation guard for RLE decoding: a corrupt or hostile stream may
 *  claim arbitrary decoded sizes, so readers cap them here. */
constexpr std::uint64_t maxRleDecodedBytes = 256ull << 20;

/**
 * Zero-run-length encode a byte blob: every 0x00 is followed by a
 * varint run length. Flag arrays that are mostly zero (cold cache
 * valid/dirty bits) collapse to a couple of bytes.
 */
std::vector<std::uint8_t> packZeroRleU8(const std::vector<std::uint8_t> &v);

/**
 * Inverse of packZeroRleU8(): decode exactly @p count bytes.
 * Throws BadCheckpoint on truncation or a run overshooting @p count.
 */
std::vector<std::uint8_t> unpackZeroRleU8(const std::uint8_t *data,
                                          std::size_t len,
                                          std::uint64_t count);

/** Write an assembled image to @p path (atomically: temp+rename).
 *  Throws SimException(BadCheckpoint) on I/O failure. */
void writeCheckpointFile(const std::string &path,
                         const std::vector<std::uint8_t> &image);

/** Builds a checkpoint image section by section. */
class Serializer
{
  public:
    /** Start a named section; all writes go to it until endSection(). */
    void beginSection(const std::string &name);

    /** Seal the current section (computes its CRC). */
    void endSection();

    // Primitive writers (valid only inside a section).
    void u8(std::uint8_t v) { raw(&v, 1); }
    void u16(std::uint16_t v) { raw(&v, 2); }
    void u32(std::uint32_t v) { raw(&v, 4); }
    void u64(std::uint64_t v) { raw(&v, 8); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }

    void
    f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    /** Length-prefixed vector of u64 (the workhorse for tables). */
    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size() * 8);
    }

    void
    vecU8(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        raw(v.data(), v.size());
    }

    /** vecU64 stored delta-varint packed (see packDeltaU64) when that
     *  is smaller, raw little-endian otherwise; a one-byte tag after
     *  the element count records which encoding won. Regular
     *  sequences (tags, page numbers, zeroed words) still collapse,
     *  while incompressible ones (FP bit patterns) stay at raw size
     *  instead of expanding toward 10 bytes a word. */
    void
    vecU64Packed(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        const std::vector<std::uint8_t> packed =
            packDeltaU64Bounded(v, v.size() * 8);
        if (!v.empty() && !packed.empty()) {
            u8(1);
            vecU8(packed);
        } else {
            u8(0);
            raw(v.data(), v.size() * 8);
        }
    }

    /** vecU8 stored zero-run-length packed (see packZeroRleU8). */
    void
    vecU8Rle(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        vecU8(packZeroRleU8(v));
    }

    /** @return the assembled image (header + all sealed sections). */
    std::vector<std::uint8_t> finish() const;

    /** Write the assembled image to @p path (atomically: temp+rename).
     *  Throws SimException(BadCheckpoint) on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    void raw(const void *data, std::size_t len);

    struct Section
    {
        std::string name;
        std::vector<std::uint8_t> payload;
    };

    std::vector<Section> _sections;
    bool _open = false;
};

/** Parses and validates a checkpoint image; reads section by section. */
class Deserializer
{
  public:
    /** Parse @p image: header, framing, and every section CRC are
     *  validated up front. Throws SimException(BadCheckpoint). */
    explicit Deserializer(std::vector<std::uint8_t> image);

    /** Read a whole file into memory.
     *  Throws SimException(BadCheckpoint) if unreadable. */
    static std::vector<std::uint8_t> readFile(const std::string &path);

    bool hasSection(const std::string &name) const;

    /** Position the cursor at the start of section @p name.
     *  Throws BadCheckpoint if the section is absent. */
    void openSection(const std::string &name);

    /** Finish the current section; throws BadCheckpoint if the reader
     *  did not consume its payload exactly (layout drift). */
    void closeSection();

    // Primitive readers (throw BadCheckpoint on truncation).
    std::uint8_t u8() { std::uint8_t v; raw(&v, 1); return v; }
    std::uint16_t u16() { std::uint16_t v; raw(&v, 2); return v; }
    std::uint32_t u32() { std::uint32_t v; raw(&v, 4); return v; }
    std::uint64_t u64() { std::uint64_t v; raw(&v, 8); return v; }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b() { return u8() != 0; }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string
    str()
    {
        // Validate the length against the bytes actually remaining
        // BEFORE allocating: a hostile 4GB length prefix must produce
        // a structured error, not an allocation spike.
        const std::uint32_t n = u32();
        requireRemaining(n);
        std::string s(n, '\0');
        raw(s.data(), n);
        return s;
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        const std::uint64_t n = countedLength(8);
        std::vector<std::uint64_t> v(n);
        raw(v.data(), n * 8);
        return v;
    }

    std::vector<std::uint8_t>
    vecU8()
    {
        const std::uint64_t n = countedLength(1);
        std::vector<std::uint8_t> v(n);
        raw(v.data(), n);
        return v;
    }

    /** Inverse of Serializer::vecU64Packed(). */
    std::vector<std::uint64_t>
    vecU64Packed()
    {
        // Every claimed length is validated against the bytes actually
        // remaining before any allocation: a hostile count cannot
        // outgrow the section payload. The payload decodes straight
        // out of the validated image — no intermediate copy; restoring
        // a live-point image runs through here once per data-memory
        // page and cache array, and the raw branch is a single memcpy.
        const std::uint64_t n = u64();
        const std::uint8_t tag = u8();
        if (tag == 0) {
            requireCount(n, 8);
            std::vector<std::uint64_t> v(n);
            raw(v.data(), n * 8);
            return v;
        }
        sim_throw_if(tag != 1, ErrCode::BadCheckpoint,
                     "packed u64 array has unknown encoding tag %u",
                     tag);
        const std::uint64_t m = countedLength(1);
        sim_throw_if(n > 0 && m < n, ErrCode::BadCheckpoint,
                     "packed u64 array claims %llu elements in %llu "
                     "bytes", static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(m));
        std::vector<std::uint64_t> v =
            unpackDeltaU64(cursorData(), m, n);
        _cursor += m;
        return v;
    }

    /** Inverse of Serializer::vecU8Rle(). */
    std::vector<std::uint8_t>
    vecU8Rle()
    {
        const std::uint64_t n = u64();
        const std::uint64_t m = countedLength(1);
        // Unlike the delta codec, RLE output is not bounded by its
        // input size (that is the point), so a hostile decoded-length
        // claim is capped explicitly instead of by the section length.
        sim_throw_if(n > maxRleDecodedBytes, ErrCode::BadCheckpoint,
                     "RLE byte array claims %llu decoded bytes "
                     "(limit %llu)", static_cast<unsigned long long>(n),
                     static_cast<unsigned long long>(maxRleDecodedBytes));
        sim_throw_if(n > 0 && m == 0, ErrCode::BadCheckpoint,
                     "RLE byte array claims %llu bytes in an empty "
                     "stream", static_cast<unsigned long long>(n));
        std::vector<std::uint8_t> v = unpackZeroRleU8(cursorData(), m, n);
        _cursor += m;
        return v;
    }

  private:
    void raw(void *out, std::size_t len);

    /** Pointer to the current cursor position inside the open
     *  section's payload. Valid only after a remaining-bytes check
     *  (countedLength / requireRemaining) has proven the section open
     *  and the read in bounds. */
    const std::uint8_t *
    cursorData() const
    {
        return _image.data() + _sections[_current].offset + _cursor;
    }

    /** Read an element count and bound it by the bytes remaining. */
    std::uint64_t countedLength(std::size_t elem_bytes);

    /** Throw BadCheckpoint unless @p n elements of @p elem_bytes fit
     *  in the bytes remaining (overflow-safe: divides, never
     *  multiplies the untrusted count). */
    void requireCount(std::uint64_t n, std::size_t elem_bytes);

    /** Throw BadCheckpoint unless @p bytes more payload remain. */
    void requireRemaining(std::uint64_t bytes);

    struct Section
    {
        std::string name;
        std::size_t offset = 0;  //!< payload start within _image
        std::size_t length = 0;
    };

    std::vector<std::uint8_t> _image;
    std::vector<Section> _sections;
    std::size_t _current = static_cast<std::size_t>(-1);
    std::size_t _cursor = 0;  //!< read offset within current payload
};

} // namespace imo

#endif // IMO_COMMON_CHECKPOINT_HH
