#include "common/diagring.hh"

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo
{

DiagRing::DiagRing(std::size_t capacity)
    : _events(capacity ? capacity : 1)
{
}

std::vector<std::string>
DiagRing::formatEvents() const
{
    const std::size_t cap = _events.size();
    const std::size_t held =
        _recorded < cap ? static_cast<std::size_t>(_recorded) : cap;

    std::vector<std::string> out;
    out.reserve(held);
    // The oldest retained event sits at _next when the ring has wrapped.
    std::size_t idx = _recorded < cap ? 0 : _next;
    for (std::size_t i = 0; i < held; ++i) {
        const DiagEvent &e = _events[idx];
        out.push_back(simFormat(
            "cycle %10llu  %-12s pc=%llu arg=%llu",
            static_cast<unsigned long long>(e.cycle), e.tag,
            static_cast<unsigned long long>(e.pc),
            static_cast<unsigned long long>(e.arg)));
        idx = (idx + 1) % cap;
    }
    return out;
}

void
DiagRing::save(Serializer &s) const
{
    s.u64(_events.size());
    s.u64(_next);
    s.u64(_recorded);
    for (const DiagEvent &e : _events) {
        s.u64(e.cycle);
        s.str(e.tag);
        s.u64(e.pc);
        s.u64(e.arg);
    }
}

void
DiagRing::restore(Deserializer &d)
{
    const std::uint64_t cap = d.u64();
    sim_throw_if(cap == 0 || cap > 4096, ErrCode::BadCheckpoint,
                 "diagnostic ring capacity %llu out of range",
                 static_cast<unsigned long long>(cap));
    _events.assign(cap, DiagEvent{});
    _next = static_cast<std::size_t>(d.u64());
    sim_throw_if(_next >= cap, ErrCode::BadCheckpoint,
                 "diagnostic ring cursor out of range");
    _recorded = d.u64();
    // Tags normally point at string literals; restored tags point into
    // an interned pool owned by the ring instead.
    _internedTags.clear();
    _internedTags.reserve(cap);
    for (DiagEvent &e : _events) {
        e.cycle = d.u64();
        _internedTags.push_back(d.str());
        e.tag = _internedTags.back().c_str();
        e.pc = d.u64();
        e.arg = d.u64();
    }
}

void
throwWithRing(ErrCode code, const DiagRing &ring, std::string message)
{
    SimException ex(code, std::move(message));
    std::vector<std::string> events = ring.formatEvents();
    ex.withContext(simFormat(
        "last %zu events (of %llu recorded), oldest first:",
        events.size(),
        static_cast<unsigned long long>(ring.recorded())));
    for (std::string &line : events)
        ex.withContext(std::move(line));
    throw ex;
}

} // namespace imo
