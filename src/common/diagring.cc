#include "common/diagring.hh"

#include "common/error.hh"

namespace imo
{

DiagRing::DiagRing(std::size_t capacity)
    : _events(capacity ? capacity : 1)
{
}

std::vector<std::string>
DiagRing::formatEvents() const
{
    const std::size_t cap = _events.size();
    const std::size_t held =
        _recorded < cap ? static_cast<std::size_t>(_recorded) : cap;

    std::vector<std::string> out;
    out.reserve(held);
    // The oldest retained event sits at _next when the ring has wrapped.
    std::size_t idx = _recorded < cap ? 0 : _next;
    for (std::size_t i = 0; i < held; ++i) {
        const DiagEvent &e = _events[idx];
        out.push_back(simFormat(
            "cycle %10llu  %-12s pc=%llu arg=%llu",
            static_cast<unsigned long long>(e.cycle), e.tag,
            static_cast<unsigned long long>(e.pc),
            static_cast<unsigned long long>(e.arg)));
        idx = (idx + 1) % cap;
    }
    return out;
}

} // namespace imo
