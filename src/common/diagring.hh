/**
 * @file
 * Last-K-events diagnostic ring buffer.
 *
 * The pipeline models record a cheap POD event per interesting action
 * (issue, memory reject, trap dispatch, graduation). When a watchdog
 * fires, the ring is formatted into the SimError context chain so a
 * Deadlock report carries the recent pipeline history instead of just
 * "it stopped". Recording is a few stores — no allocation, no
 * formatting — so it can sit on the per-instruction hot path.
 */

#ifndef IMO_COMMON_DIAGRING_HH
#define IMO_COMMON_DIAGRING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace imo
{

class Serializer;
class Deserializer;

/** One recorded event. @ref tag must point at a string literal. */
struct DiagEvent
{
    Cycle cycle = 0;
    const char *tag = "";
    std::uint64_t pc = 0;
    std::uint64_t arg = 0;
};

/** Fixed-capacity ring of the most recent DiagEvents. */
class DiagRing
{
  public:
    explicit DiagRing(std::size_t capacity = 32);

    /** Record one event, evicting the oldest when full. */
    void
    push(Cycle cycle, const char *tag, std::uint64_t pc = 0,
         std::uint64_t arg = 0)
    {
        DiagEvent &e = _events[_next];
        e.cycle = cycle;
        e.tag = tag;
        e.pc = pc;
        e.arg = arg;
        // Wrap with a compare instead of a per-push modulo; this sits
        // on the per-instruction hot path of both CPU models.
        if (++_next == _events.size())
            _next = 0;
        ++_recorded;
    }

    /** Total events ever recorded (>= events retained). */
    std::uint64_t recorded() const { return _recorded; }

    /** @return the retained events formatted oldest-first. */
    std::vector<std::string> formatEvents() const;

    /**
     * Checkpoint hooks. Restored tags are interned copies owned by the
     * ring (live tags point at string literals and cannot round-trip
     * as pointers).
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    std::vector<DiagEvent> _events;
    std::size_t _next = 0;
    std::uint64_t _recorded = 0;
    std::vector<std::string> _internedTags; //!< backing for restored tags
};

/**
 * Throw SimException(@p code, @p message) carrying the ring's recent
 * events as the context chain — the shared shape of every watchdog
 * report (pipeline deadlocks, coherence livelocks, injected faults).
 */
[[noreturn]] void throwWithRing(ErrCode code, const DiagRing &ring,
                                std::string message);

} // namespace imo

#endif // IMO_COMMON_DIAGRING_HH
