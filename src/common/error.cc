#include "common/error.hh"

#include <cstdarg>
#include <cstdio>

namespace imo
{

namespace
{

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n <= 0)
        return {};
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // anonymous namespace

const char *
errCodeName(ErrCode code)
{
    switch (code) {
      case ErrCode::None: return "None";
      case ErrCode::BadConfig: return "BadConfig";
      case ErrCode::BadProgram: return "BadProgram";
      case ErrCode::Deadlock: return "Deadlock";
      case ErrCode::RunawayExecution: return "RunawayExecution";
      case ErrCode::FaultInjected: return "FaultInjected";
      case ErrCode::BadCheckpoint: return "BadCheckpoint";
      case ErrCode::Internal: return "Internal";
      case ErrCode::Interrupted: return "Interrupted";
      case ErrCode::LeaseExpired: return "LeaseExpired";
      case ErrCode::WorkerLost: return "WorkerLost";
      case ErrCode::ResultMismatch: return "ResultMismatch";
      case ErrCode::StoreCorrupt: return "StoreCorrupt";
      case ErrCode::AuthFailed: return "AuthFailed";
    }
    return "?";
}

std::string
SimError::format() const
{
    std::string out = "[";
    out += errCodeName(code);
    out += "] ";
    out += message;
    for (const std::string &note : context) {
        out += "\n    ";
        out += note;
    }
    return out;
}

SimException::SimException(ErrCode code, std::string message)
{
    _error.code = code;
    _error.message = std::move(message);
}

SimException::SimException(SimError error) : _error(std::move(error)) {}

const char *
SimException::what() const noexcept
{
    if (_what.empty()) {
        try {
            _what = _error.format();
        } catch (...) {
            return _error.message.c_str();
        }
    }
    return _what.c_str();
}

std::string
simFormat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string out = vformat(fmt, args);
    va_end(args);
    return out;
}

void
throwSimError(ErrCode code, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string message = vformat(fmt, args);
    va_end(args);
    throw SimException(code, std::move(message));
}

} // namespace imo
