/**
 * @file
 * Structured, recoverable simulator errors.
 *
 * The logging layer (logging.hh) distinguishes internal invariant
 * violations — panic(), which still aborts — from errors caused by the
 * *inputs* to a simulation: a malformed program, an unrealizable machine
 * configuration, a run that stops making forward progress, or an
 * injected fault. The latter must never kill the process: a driver
 * sweeping thousands of configurations has to be able to record the
 * failure and move on. Those errors are carried by SimError and thrown
 * as SimException; pipeline::simulate() catches them at the library
 * boundary and surfaces them in RunResult.
 */

#ifndef IMO_COMMON_ERROR_HH
#define IMO_COMMON_ERROR_HH

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace imo
{

/** Category of a recoverable simulation error. */
enum class ErrCode : std::uint8_t
{
    None = 0,         //!< no error (default-constructed SimError)
    BadConfig,        //!< unrealizable or inconsistent machine config
    BadProgram,       //!< malformed program, statically or at runtime
    Deadlock,         //!< forward-progress watchdog fired
    RunawayExecution, //!< instruction budget exceeded (likely livelock)
    FaultInjected,    //!< an injected fault was configured to be fatal
    BadCheckpoint,    //!< corrupt, truncated, or mismatched checkpoint
    Internal,         //!< wrapped foreign exception (should not happen)
    Interrupted,      //!< run stopped cleanly by SIGINT/SIGTERM

    // Farm-level errors (src/farm/): failures of the distributed
    // execution tier, never of the simulation itself.
    LeaseExpired,     //!< a point exhausted its lease/retry budget
    WorkerLost,       //!< a worker died or spoke garbage on the wire
    ResultMismatch,   //!< duplicate results for one point disagree
    StoreCorrupt,     //!< result-store record failed key/CRC validation
    AuthFailed,       //!< worker admission rejected: protocol/schema
                      //!< version skew or a shared-token mismatch
};

/** @return a stable short name, e.g. "BadConfig". */
const char *errCodeName(ErrCode code);

/**
 * One structured error: code, primary message, and a chain of context
 * notes added as the error propagates outward (innermost first).
 */
struct SimError
{
    ErrCode code = ErrCode::None;
    std::string message;
    std::vector<std::string> context;

    bool ok() const { return code == ErrCode::None; }

    /** @return "[Code] message" plus one indented line per note. */
    std::string format() const;
};

/** The exception boundary for recoverable simulation errors. */
class SimException : public std::exception
{
  public:
    SimException(ErrCode code, std::string message);
    explicit SimException(SimError error);

    const SimError &error() const noexcept { return _error; }
    ErrCode code() const noexcept { return _error.code; }

    /** Append one context note (chainable). */
    SimException &
    withContext(std::string note)
    {
        _error.context.push_back(std::move(note));
        _what.clear();
        return *this;
    }

    const char *what() const noexcept override;

  private:
    SimError _error;
    mutable std::string _what;
};

/** printf-style std::string formatting for error messages. */
std::string simFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a message and throw SimException(@p code, message). */
[[noreturn]] void throwSimError(ErrCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace imo

/**
 * User-input check in the style of fatal_if(), but recoverable: throws
 * SimException instead of exiting the process.
 */
#define sim_throw_if(cond, code, ...)                                       \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            ::imo::throwSimError(code, __VA_ARGS__);                        \
    } while (0)

#endif // IMO_COMMON_ERROR_HH
