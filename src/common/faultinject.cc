#include "common/faultinject.hh"

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo
{

const char *
faultPointName(FaultPoint point)
{
    switch (point) {
      case FaultPoint::MemLatencySpike: return "mem-latency-spike";
      case FaultPoint::MshrExhaustion: return "mshr-exhaustion";
      case FaultPoint::MispredictStorm: return "mispredict-storm";
      case FaultPoint::StuckFill: return "stuck-fill";
      case FaultPoint::HardFault: return "hard-fault";
      case FaultPoint::DroppedInvalidation: return "dropped-inval";
      case FaultPoint::DelayedAck: return "delayed-ack";
      case FaultPoint::WorkerKill: return "worker-kill";
      case FaultPoint::WorkerStall: return "worker-stall";
      case FaultPoint::DroppedResult: return "dropped-result";
      case FaultPoint::StoreBitFlip: return "store-bit-flip";
      case FaultPoint::LeaseWriteFail: return "lease-write-fail";
      case FaultPoint::ConnDrop: return "conn-drop";
      case FaultPoint::ConnStutter: return "conn-stutter";
      case FaultPoint::HandshakeCorrupt: return "handshake-corrupt";
      case FaultPoint::NumPoints: break;
    }
    return "?";
}

bool
faultPointFromName(const std::string &name, FaultPoint *out)
{
    for (std::size_t i = 0; i < numFaultPoints; ++i) {
        const auto point = static_cast<FaultPoint>(i);
        if (name == faultPointName(point)) {
            if (out)
                *out = point;
            return true;
        }
    }
    return false;
}

double
FaultSchedule::probabilityOf(FaultPoint point) const
{
    switch (point) {
      case FaultPoint::MemLatencySpike: return memLatencySpike;
      case FaultPoint::MshrExhaustion: return mshrExhaustion;
      case FaultPoint::MispredictStorm: return mispredictStorm;
      case FaultPoint::StuckFill: return stuckFill;
      case FaultPoint::HardFault: return hardFault;
      case FaultPoint::DroppedInvalidation: return droppedInvalidation;
      case FaultPoint::DelayedAck: return delayedAck;
      case FaultPoint::WorkerKill: return workerKill;
      case FaultPoint::WorkerStall: return workerStall;
      case FaultPoint::DroppedResult: return droppedResult;
      case FaultPoint::StoreBitFlip: return storeBitFlip;
      case FaultPoint::LeaseWriteFail: return leaseWriteFail;
      case FaultPoint::ConnDrop: return connDrop;
      case FaultPoint::ConnStutter: return connStutter;
      case FaultPoint::HandshakeCorrupt: return handshakeCorrupt;
      case FaultPoint::NumPoints: break;
    }
    return 0.0;
}

void
FaultSchedule::setProbability(FaultPoint point, double p)
{
    switch (point) {
      case FaultPoint::MemLatencySpike: memLatencySpike = p; return;
      case FaultPoint::MshrExhaustion: mshrExhaustion = p; return;
      case FaultPoint::MispredictStorm: mispredictStorm = p; return;
      case FaultPoint::StuckFill: stuckFill = p; return;
      case FaultPoint::HardFault: hardFault = p; return;
      case FaultPoint::DroppedInvalidation:
        droppedInvalidation = p;
        return;
      case FaultPoint::DelayedAck: delayedAck = p; return;
      case FaultPoint::WorkerKill: workerKill = p; return;
      case FaultPoint::WorkerStall: workerStall = p; return;
      case FaultPoint::DroppedResult: droppedResult = p; return;
      case FaultPoint::StoreBitFlip: storeBitFlip = p; return;
      case FaultPoint::LeaseWriteFail: leaseWriteFail = p; return;
      case FaultPoint::ConnDrop: connDrop = p; return;
      case FaultPoint::ConnStutter: connStutter = p; return;
      case FaultPoint::HandshakeCorrupt: handshakeCorrupt = p; return;
      case FaultPoint::NumPoints: break;
    }
}

bool
FaultSchedule::any() const
{
    for (std::size_t i = 0; i < numFaultPoints; ++i) {
        if (probabilityOf(static_cast<FaultPoint>(i)) > 0.0)
            return true;
    }
    return false;
}

FaultInjector::FaultInjector(const FaultSchedule &schedule)
    : _enabled(schedule.any()), _schedule(schedule)
{
    // One independent stream per point: the golden-ratio stride keeps
    // the expanded seeds distinct even for small consecutive seeds.
    for (std::size_t i = 0; i < numFaultPoints; ++i)
        _rng[i] = Rng(schedule.seed + 0x9e3779b97f4a7c15ull * (i + 1));
}

std::uint64_t
FaultInjector::totalFired() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : _count)
        total += c;
    return total;
}

std::string
FaultInjector::summary() const
{
    std::string out;
    for (std::size_t i = 0; i < numFaultPoints; ++i) {
        if (_count[i] == 0)
            continue;
        if (!out.empty())
            out += ", ";
        out += simFormat("%s=%llu",
                         faultPointName(static_cast<FaultPoint>(i)),
                         static_cast<unsigned long long>(_count[i]));
    }
    return out.empty() ? "none" : out;
}

void
FaultInjector::save(Serializer &s) const
{
    s.b(_enabled);
    s.u64(_schedule.seed);
    s.u32(static_cast<std::uint32_t>(numFaultPoints));
    for (std::size_t i = 0; i < numFaultPoints; ++i)
        s.f64(_schedule.probabilityOf(static_cast<FaultPoint>(i)));
    s.u64(_schedule.spikeCycles);
    s.u64(_schedule.stuckCycles);
    s.u64(_schedule.ackDelayCycles);
    for (std::size_t i = 0; i < numFaultPoints; ++i) {
        std::uint64_t words[4];
        _rng[i].saveState(words);
        for (const std::uint64_t w : words)
            s.u64(w);
        s.u64(_count[i]);
    }
}

void
FaultInjector::restore(Deserializer &d)
{
    _enabled = d.b();
    _schedule.seed = d.u64();
    const std::uint32_t points = d.u32();
    sim_throw_if(points != numFaultPoints, ErrCode::BadCheckpoint,
                 "checkpoint has %u fault-injection points, this build "
                 "has %zu", points, numFaultPoints);
    for (std::size_t i = 0; i < numFaultPoints; ++i)
        _schedule.setProbability(static_cast<FaultPoint>(i), d.f64());
    _schedule.spikeCycles = d.u64();
    _schedule.stuckCycles = d.u64();
    _schedule.ackDelayCycles = d.u64();
    for (std::size_t i = 0; i < numFaultPoints; ++i) {
        std::uint64_t words[4];
        for (std::uint64_t &w : words)
            w = d.u64();
        _rng[i].restoreState(words);
        _count[i] = d.u64();
    }
}

} // namespace imo
