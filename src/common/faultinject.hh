/**
 * @file
 * Seed-deterministic fault injection.
 *
 * A FaultInjector is threaded (as a non-owning pointer on
 * pipeline::MachineConfig) into the timing memory system and both
 * pipeline models. Each named injection point draws from its own PRNG
 * stream, so a given (seed, schedule, program, config) tuple always
 * fires the same faults at the same dynamic sites — runs are exactly
 * reproducible, which is what makes fuzzing and regression triage
 * possible.
 *
 * Points and their semantics:
 *  - MemLatencySpike: a miss's fill is delayed by spikeCycles
 *    (transient slow DRAM / row conflict).
 *  - MshrExhaustion: one MSHR allocation attempt is refused
 *    (structural-hazard storm); the pipeline retries next cycle.
 *  - MispredictStorm: a correctly predicted conditional branch is
 *    treated as mispredicted.
 *  - StuckFill: a miss's fill is delayed by stuckCycles (effectively
 *    forever); the forward-progress watchdog converts the stall into a
 *    structured Deadlock error.
 *  - HardFault: the injection point throws SimException(FaultInjected)
 *    outright, exercising error propagation from deep inside the
 *    timing model.
 *  - DroppedInvalidation: a coherence invalidation message is lost in
 *    the network; the protocol retransmits (bounded), and persistent
 *    loss surfaces as a structured error, never directory corruption.
 *  - DelayedAck: a coherence acknowledgement is delayed by
 *    ackDelayCycles, stretching the requester's stall.
 *
 * Farm-level points (drawn by the src/farm/ execution tier, never by
 * the timing models):
 *  - WorkerKill: a worker SIGKILLs itself right after accepting a
 *    lease (crash / preemption); the coordinator re-dispatches.
 *  - WorkerStall: a worker stops heartbeating and hangs; the lease
 *    expires and the coordinator kills and replaces it.
 *  - DroppedResult: a worker completes a point but never sends the
 *    result (network loss); surfaces as a lease expiry and retry.
 *  - StoreBitFlip: a result-store record is corrupted after being
 *    written (disk rot); the store's CRC validation catches it and the
 *    point is recovered from memory or re-simulated.
 *  - LeaseWriteFail: an idle worker dies unseen (OOM-kill, external
 *    preemption) just before the coordinator writes it a lease; the
 *    write hits EPIPE, the slot returns to the queue, and the worker
 *    is replaced.
 *
 * Network-transport points (drawn in a worker's socket send path, for
 * multi-machine farms over TCP):
 *  - ConnDrop: the connection dies mid-frame — half the frame is
 *    written, then the socket is shut down. The coordinator sees a
 *    dirty EOF, requeues the slot, and the worker reconnects with
 *    backoff.
 *  - ConnStutter: a frame is delivered one byte per write() with a
 *    forced segment boundary, exercising the coordinator's
 *    incremental partial-read frame parsing.
 *  - HandshakeCorrupt: one byte of the Hello admission frame is
 *    corrupted on the wire; the coordinator's frame CRC rejects it
 *    and drops the connection, and the worker's reconnect retries the
 *    handshake cleanly.
 */

#ifndef IMO_COMMON_FAULTINJECT_HH
#define IMO_COMMON_FAULTINJECT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace imo
{

class Serializer;
class Deserializer;

/** Named fault-injection points. */
enum class FaultPoint : std::uint8_t
{
    MemLatencySpike,
    MshrExhaustion,
    MispredictStorm,
    StuckFill,
    HardFault,
    DroppedInvalidation,
    DelayedAck,
    WorkerKill,
    WorkerStall,
    DroppedResult,
    StoreBitFlip,
    LeaseWriteFail,
    ConnDrop,
    ConnStutter,
    HandshakeCorrupt,
    NumPoints
};

constexpr std::size_t numFaultPoints =
    static_cast<std::size_t>(FaultPoint::NumPoints);

/** @return the stable CLI name, e.g. "mem-latency-spike". */
const char *faultPointName(FaultPoint point);

/** Parse a CLI name. @return false if @p name is unknown. */
bool faultPointFromName(const std::string &name, FaultPoint *out);

/** Per-run fault plan: firing probabilities and magnitudes. */
struct FaultSchedule
{
    std::uint64_t seed = 0;

    /** Firing probability per visit of each injection point. */
    double memLatencySpike = 0.0;
    double mshrExhaustion = 0.0;
    double mispredictStorm = 0.0;
    double stuckFill = 0.0;
    double hardFault = 0.0;
    double droppedInvalidation = 0.0;
    double delayedAck = 0.0;
    double workerKill = 0.0;
    double workerStall = 0.0;
    double droppedResult = 0.0;
    double storeBitFlip = 0.0;
    double leaseWriteFail = 0.0;
    double connDrop = 0.0;
    double connStutter = 0.0;
    double handshakeCorrupt = 0.0;

    /** Extra fill latency added by MemLatencySpike. */
    Cycle spikeCycles = 200;
    /** Extra fill latency added by StuckFill (past any sane watchdog). */
    Cycle stuckCycles = 50'000'000;
    /** Extra latency a DelayedAck adds to a coherence action. */
    Cycle ackDelayCycles = 500;

    double probabilityOf(FaultPoint point) const;
    void setProbability(FaultPoint point, double p);
    bool any() const;
};

/** Deterministic per-point fault source. Default-constructed: inert. */
class FaultInjector
{
  public:
    FaultInjector() = default;
    explicit FaultInjector(const FaultSchedule &schedule);

    bool enabled() const { return _enabled; }
    const FaultSchedule &schedule() const { return _schedule; }

    /**
     * Draw at @p point. @return true if the fault fires this visit.
     * Each point consumes from its own stream, so adding a draw at one
     * point does not perturb the others.
     */
    bool
    fire(FaultPoint point)
    {
        if (!_enabled)
            return false;
        const auto i = static_cast<std::size_t>(point);
        const double p = _schedule.probabilityOf(point);
        if (p <= 0.0 || !_rng[i].chance(p))
            return false;
        ++_count[i];
        return true;
    }

    /** Number of times @p point has fired so far. */
    std::uint64_t
    fired(FaultPoint point) const
    {
        return _count[static_cast<std::size_t>(point)];
    }

    /** Total faults fired across all points. */
    std::uint64_t totalFired() const;

    /** One-line per-point firing summary for reports. */
    std::string summary() const;

    /**
     * Checkpoint hooks: the schedule, every per-point PRNG stream, and
     * the firing counts round-trip, so a restored run draws exactly
     * the faults an uninterrupted run would have drawn.
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    bool _enabled = false;
    FaultSchedule _schedule;
    std::array<Rng, numFaultPoints> _rng;
    std::array<std::uint64_t, numFaultPoints> _count{};
};

} // namespace imo

#endif // IMO_COMMON_FAULTINJECT_HH
