#include "common/json.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace imo::json
{

namespace
{

const Array kEmptyArray;
const Members kEmptyMembers;

/** Hand-rolled recursive-descent parser over a byte buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string &err)
        : _text(text), _err(err)
    {
    }

    bool
    document(Value &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (_pos != _text.size())
            return fail("trailing garbage after JSON document");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 256;

    bool
    fail(const std::string &what)
    {
        _err = what + " at byte " + std::to_string(_pos);
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size()) {
            char c = _text[_pos];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++_pos;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (_text.compare(_pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        _pos += n;
        return true;
    }

    bool
    value(Value &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (_pos >= _text.size())
            return fail("unexpected end of input");
        switch (_text[_pos]) {
          case 'n':
            if (!literal("null"))
                return false;
            out = Value::makeNull();
            return true;
          case 't':
            if (!literal("true"))
                return false;
            out = Value::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Value::makeBool(false);
            return true;
          case '"': {
            std::string s;
            if (!string(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
          }
          case '[':
            return array(out, depth);
          case '{':
            return object(out, depth);
          default:
            return number(out);
        }
    }

    bool
    string(std::string &out)
    {
        ++_pos; // opening quote
        while (true) {
            if (_pos >= _text.size())
                return fail("unterminated string");
            char c = _text[_pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (_pos >= _text.size())
                return fail("unterminated escape");
            char e = _text[_pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                if (!hex4(cp))
                    return false;
                // Surrogate pair?
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    _text.compare(_pos, 2, "\\u") == 0) {
                    std::size_t save = _pos;
                    _pos += 2;
                    unsigned lo = 0;
                    if (!hex4(lo))
                        return false;
                    if (lo >= 0xdc00 && lo <= 0xdfff) {
                        cp = 0x10000 + ((cp - 0xd800) << 10) +
                             (lo - 0xdc00);
                    } else {
                        _pos = save; // unpaired; emit replacement below
                    }
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("bad escape character");
            }
        }
    }

    bool
    hex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (_pos >= _text.size())
                return fail("unterminated \\u escape");
            char c = _text[_pos++];
            out <<= 4;
            if (c >= '0' && c <= '9')
                out |= unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                out |= unsigned(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                out |= unsigned(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp >= 0xd800 && cp <= 0xdfff)
            cp = 0xfffd; // unpaired surrogate
        if (cp < 0x80) {
            out.push_back(char(cp));
        } else if (cp < 0x800) {
            out.push_back(char(0xc0 | (cp >> 6)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
            out.push_back(char(0xe0 | (cp >> 12)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        } else {
            out.push_back(char(0xf0 | (cp >> 18)));
            out.push_back(char(0x80 | ((cp >> 12) & 0x3f)));
            out.push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(char(0x80 | (cp & 0x3f)));
        }
    }

    bool
    number(Value &out)
    {
        std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        bool digits = false;
        while (_pos < _text.size() && _text[_pos] >= '0' &&
               _text[_pos] <= '9') {
            ++_pos;
            digits = true;
        }
        if (!digits)
            return fail("expected a JSON value");
        if (_pos < _text.size() && _text[_pos] == '.') {
            ++_pos;
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9')
                ++_pos;
        }
        if (_pos < _text.size() &&
            (_text[_pos] == 'e' || _text[_pos] == 'E')) {
            ++_pos;
            if (_pos < _text.size() &&
                (_text[_pos] == '+' || _text[_pos] == '-'))
                ++_pos;
            while (_pos < _text.size() && _text[_pos] >= '0' &&
                   _text[_pos] <= '9')
                ++_pos;
        }
        std::string raw = _text.substr(start, _pos - start);
        // Convert before the call: argument evaluation order is
        // unspecified, and makeNumber takes raw by value — strtod must
        // not race the move that empties it.
        const double num = std::strtod(raw.c_str(), nullptr);
        out = Value::makeNumber(num, std::move(raw));
        return true;
    }

    bool
    array(Value &out, int depth)
    {
        ++_pos; // '['
        Array items;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == ']') {
            ++_pos;
            out = Value::makeArray(std::move(items));
            return true;
        }
        while (true) {
            skipWs();
            Value v;
            if (!value(v, depth + 1))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated array");
            char c = _text[_pos++];
            if (c == ']')
                break;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
        out = Value::makeArray(std::move(items));
        return true;
    }

    bool
    object(Value &out, int depth)
    {
        ++_pos; // '{'
        Members members;
        skipWs();
        if (_pos < _text.size() && _text[_pos] == '}') {
            ++_pos;
            out = Value::makeObject(std::move(members));
            return true;
        }
        while (true) {
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != '"')
                return fail("expected object key string");
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (_pos >= _text.size() || _text[_pos] != ':')
                return fail("expected ':' after object key");
            ++_pos;
            skipWs();
            Value v;
            if (!value(v, depth + 1))
                return false;
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (_pos >= _text.size())
                return fail("unterminated object");
            char c = _text[_pos++];
            if (c == '}')
                break;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
        out = Value::makeObject(std::move(members));
        return true;
    }

    const std::string &_text;
    std::string &_err;
    std::size_t _pos = 0;
};

} // anonymous namespace

const Array &
Value::array() const
{
    return _array ? *_array : kEmptyArray;
}

const Members &
Value::members() const
{
    return _members ? *_members : kEmptyMembers;
}

const Value *
Value::find(const std::string &key) const
{
    if (!_members)
        return nullptr;
    for (const auto &[k, v] : *_members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v._type = Type::Bool;
    v._bool = b;
    return v;
}

Value
Value::makeNumber(double d, std::string raw)
{
    Value v;
    v._type = Type::Number;
    v._num = d;
    v._str = std::move(raw);
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v._type = Type::String;
    v._str = std::move(s);
    return v;
}

Value
Value::makeArray(Array a)
{
    Value v;
    v._type = Type::Array;
    v._array = std::make_shared<Array>(std::move(a));
    return v;
}

Value
Value::makeObject(Members m)
{
    Value v;
    v._type = Type::Object;
    v._members = std::make_shared<Members>(std::move(m));
    return v;
}

bool
parse(const std::string &text, Value &out, std::string &err)
{
    Parser p(text, err);
    return p.document(out);
}

bool
parseFile(const std::string &path, Value &out, std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!parse(buf.str(), out, err)) {
        err = path + ": " + err;
        return false;
    }
    return true;
}

} // namespace imo::json
