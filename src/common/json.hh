/**
 * @file
 * Minimal JSON value tree + recursive-descent parser.
 *
 * The simulator *writes* JSON all over (stats dumps, sweep reports,
 * traces, manifests) via hand-rolled emitters; this is the matching
 * *reader* for the tools that must join those artifacts back together
 * (imo-report, tests). Scope is deliberately small: full JSON parsing
 * into an immutable tree, object key order preserved, numbers kept as
 * double plus the raw text (so 64-bit ids survive round-trips as
 * strings when needed). No serializer — emitters stay hand-rolled so
 * byte-exact report formats cannot drift.
 */

#ifndef IMO_COMMON_JSON_HH
#define IMO_COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace imo::json
{

enum class Type : std::uint8_t
{
    Null,
    Bool,
    Number,
    String,
    Array,
    Object,
};

class Value;

using Array = std::vector<Value>;
/** Key order preserved (insertion order) — mirrors emitter order. */
using Members = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    Value() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    bool asBool() const { return _bool; }
    double asDouble() const { return _num; }
    std::int64_t asInt() const { return static_cast<std::int64_t>(_num); }
    std::uint64_t asUint() const { return static_cast<std::uint64_t>(_num); }
    const std::string &asString() const { return _str; }
    /** Raw source text of a number (exact, before double conversion). */
    const std::string &numberText() const { return _str; }

    const Array &array() const;
    const Members &members() const;

    /** Object member lookup; @return nullptr when absent (or not an
     *  object). */
    const Value *find(const std::string &key) const;

    /** find() for nested paths: obj.find2("a", "b") == obj["a"]["b"]. */
    const Value *
    find2(const std::string &k1, const std::string &k2) const
    {
        const Value *v = find(k1);
        return v ? v->find(k2) : nullptr;
    }

    // Construction (used by the parser; public so tests can build trees).
    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d, std::string raw);
    static Value makeString(std::string s);
    static Value makeArray(Array a);
    static Value makeObject(Members m);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _num = 0.0;
    std::string _str; // string value, or raw number text
    std::shared_ptr<Array> _array;
    std::shared_ptr<Members> _members;
};

/**
 * Parse @p text as one JSON document. @return false and set @p err
 * (with a byte offset) on malformed input; trailing garbage after the
 * document is an error.
 */
bool parse(const std::string &text, Value &out, std::string &err);

/** parse() from a file. @return false on I/O or parse errors. */
bool parseFile(const std::string &path, Value &out, std::string &err);

} // namespace imo::json

#endif // IMO_COMMON_JSON_HH
