#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace imo
{

namespace
{

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fflush(stdout);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // anonymous namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::fprintf(stderr, "  at %s:%d\n", file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::fprintf(stderr, "  at %s:%d\n", file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::fprintf(stdout, "info: ");
    std::vfprintf(stdout, fmt, args);
    std::fprintf(stdout, "\n");
    va_end(args);
}

} // namespace imo
