#include "common/logging.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace imo
{

namespace
{

LogLevel gLogLevel = LogLevel::Info;

void
vreport(const char *tag, const char *fmt, va_list args)
{
    std::fflush(stdout);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

LogLevel
logLevel()
{
    return gLogLevel;
}

bool
initLogLevelFromEnv()
{
    const char *raw = std::getenv("IMO_LOG");
    if (!raw)
        return false;
    std::string value(raw);
    for (char &c : value)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (value == "quiet" || value == "none") {
        gLogLevel = LogLevel::Quiet;
    } else if (value == "warn") {
        gLogLevel = LogLevel::Warn;
    } else if (value == "info" || value == "verbose") {
        gLogLevel = LogLevel::Info;
    } else {
        return false;
    }
    return true;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::fprintf(stderr, "  at %s:%d\n", file, line);
    // Flush both streams so no diagnostic is lost when abort() tears
    // the process down without running stdio cleanup.
    std::fflush(stderr);
    std::fflush(stdout);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::fprintf(stderr, "  at %s:%d\n", file, line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Warn)
        return;
    va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
informImpl(const char *fmt, ...)
{
    if (gLogLevel < LogLevel::Info)
        return;
    // Diagnostics consistently go to stderr so that stdout stays clean
    // for machine-readable output (CSV rows, dumps).
    va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "info: ");
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
    va_end(args);
}

} // namespace imo
