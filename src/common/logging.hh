/**
 * @file
 * Error-reporting helpers in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — unrecoverable user error in a *tool* context; exits.
 * warn()   — something suspicious happened but simulation continues.
 * inform() — plain status output.
 *
 * Library code must not call fatal() for user-input errors (bad
 * configs, malformed programs): throw a SimException from
 * common/error.hh instead so drivers can recover. fatal() remains only
 * for top-of-main tool code where exiting is the right answer.
 */

#ifndef IMO_COMMON_LOGGING_HH
#define IMO_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace imo
{

/**
 * Runtime verbosity. panic()/fatal() always print; warn() requires at
 * least Warn, inform() requires Info. Default is Info (the historical
 * unconditional behavior).
 */
enum class LogLevel : int
{
    Quiet = 0,  //!< suppress warn() and inform()
    Warn = 1,   //!< warnings only
    Info = 2,   //!< everything (default)
};

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** @return the current global log level. */
LogLevel logLevel();

/**
 * Initialize the log level from the IMO_LOG environment variable
 * (quiet | warn | info, case-insensitive). Unset or unrecognized
 * values leave the level unchanged. @return true if IMO_LOG was
 * recognized and applied.
 */
bool initLogLevelFromEnv();

/** Print a formatted message tagged "panic:" and abort(). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "fatal:" and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a formatted message tagged "warn:". */
void warnImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a formatted status message. */
void informImpl(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace imo

#define panic(...) ::imo::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::imo::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::imo::warnImpl(__VA_ARGS__)
#define inform(...) ::imo::informImpl(__VA_ARGS__)

/**
 * Internal consistency check. Unlike assert(), panic_if() is always
 * compiled in and prints a formatted explanation.
 */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            panic(__VA_ARGS__);                                            \
    } while (0)

/** User-error check: abort the run with a clean message. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) [[unlikely]]                                              \
            fatal(__VA_ARGS__);                                            \
    } while (0)

#endif // IMO_COMMON_LOGGING_HH
