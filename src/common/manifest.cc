#include "common/manifest.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/stats.hh"

namespace imo::manifest
{

std::string
makeRunId(const std::string &tool)
{
    auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
    return tool + "-" + std::to_string(now) + "-" +
           std::to_string(::getpid());
}

namespace
{

void
emitString(std::ostream &os, const char *key, const std::string &val)
{
    os << "\"" << key << "\":\"" << stats::jsonEscape(val) << "\"";
}

} // anonymous namespace

void
writeManifestJson(std::ostream &os, const Manifest &m)
{
    os << "{\"manifest_schema_version\":" << manifestSchemaVersion << ",\n ";
    emitString(os, "tool", m.tool);
    os << ",\n ";
    emitString(os, "run_id", m.runId);
    os << ",\n \"args\":[";
    for (std::size_t i = 0; i < m.args.size(); ++i) {
        os << (i ? "," : "") << "\"" << stats::jsonEscape(m.args[i])
           << "\"";
    }
    os << "],\n \"report_schema_version\":" << m.reportSchemaVersion
       << ",\n \"protocol_version\":" << m.protocolVersion << ",\n ";
    emitString(os, "fault_spec", m.faultSpec);
    os << ",\n \"fault_seed\":" << m.faultSeed << ",\n ";
    emitString(os, "status", m.status);
    os << ",\n ";
    emitString(os, "error_code", m.errorCode);
    os << ",\n ";
    emitString(os, "error_message", m.errorMessage);
    os << ",\n \"elapsed_ms\":" << m.elapsedMs
       << ",\n \"points_total\":" << m.pointsTotal
       << ",\n \"points_done\":" << m.pointsDone << ",\n ";
    emitString(os, "library_mode", m.libraryMode);
    os << ",\n ";
    emitString(os, "library_path", m.libraryPath);
    os << ",\n ";
    emitString(os, "library_hash", m.libraryHash);
    os << ",\n \"library_windows\":" << m.libraryWindows
       << ",\n \"multi_cache_groups\":[";
    for (std::size_t i = 0; i < m.multiCacheGroups.size(); ++i) {
        const MultiCacheGroupEntry &g = m.multiCacheGroups[i];
        os << (i ? "," : "") << "\n  {\"members\":" << g.members
           << ",\"configs\":" << g.configs
           << ",\"stream_length\":" << g.streamLength
           << ",\"prefetches\":" << g.prefetches
           << ",\"windows\":" << g.windows << ",\"shared\":"
           << (g.shared ? "true" : "false") << "}";
    }
    os << (m.multiCacheGroups.empty() ? "]" : "\n ]")
       << ",\n \"points\":[";
    for (std::size_t i = 0; i < m.points.size(); ++i) {
        const PointEntry &p = m.points[i];
        os << (i ? "," : "") << "\n  {";
        emitString(os, "key", p.key);
        os << ",";
        emitString(os, "desc", p.desc);
        os << ",";
        emitString(os, "status", p.status);
        os << ",\"store_hit\":" << (p.storeHit ? "true" : "false")
           << ",\"attempts\":" << p.attempts
           << ",\"queue_wait_ms\":" << p.queueWaitMs
           << ",\"simulate_ms\":" << p.simulateMs
           << ",\"serialize_ms\":" << p.serializeMs
           << ",\"store_put_ms\":" << p.storePutMs
           << ",\"start_ms\":" << p.startMs << ",\"end_ms\":" << p.endMs
           << ",\"multi_cache_group\":" << p.multiCacheGroup << ",";
        emitString(os, "error", p.error);
        os << "}";
    }
    os << "\n ],\n \"stats\":";
    if (m.statsJson.empty()) {
        os << "null";
    } else {
        // Embedded verbatim; the producer's stats dump is already JSON
        // (possibly newline-terminated — trim so the document stays
        // well-formed).
        std::string s = m.statsJson;
        while (!s.empty() && (s.back() == '\n' || s.back() == '\r'))
            s.pop_back();
        os << s;
    }
    os << "}\n";
}

bool
writeManifestFile(const std::string &path, const Manifest &m,
                  std::string &err)
{
    std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            err = "cannot open " + tmp + " for writing";
            return false;
        }
        writeManifestJson(out, m);
        out.flush();
        if (!out) {
            err = "write failed for " + tmp;
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        err = "rename " + tmp + " -> " + path + " failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace imo::manifest
