/**
 * @file
 * Versioned run manifests.
 *
 * A manifest is the durable record of one CLI invocation (imo-run,
 * imo-sweep, imo-farm): what was asked for, what happened to every
 * point, and how the run ended — so any fragment in the memoized
 * result store can be traced back to the run that produced it, and a
 * failed overnight sweep can be post-mortemed without re-running it
 * (tools/imo-report joins a manifest with the store and a trace).
 *
 * Manifests are deliberately separate from reports: reports stay
 * byte-deterministic (timestamp-free, identical across sweep/farm/
 * worker-count/fault-schedule), while manifests carry exactly the
 * nondeterministic operational truth (wall times, attempt counts,
 * run ids) that reports must exclude.
 */

#ifndef IMO_COMMON_MANIFEST_HH
#define IMO_COMMON_MANIFEST_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace imo::manifest
{

/** Bump on any incompatible change to the manifest JSON layout.
 *  v2: live-point library provenance (mode/path/hash/window count)
 *  joins the top level.
 *  v3: multi-cache shared-pass provenance — a top-level group table
 *  (configs served, stream length, windows) plus a per-point group
 *  index. */
constexpr std::uint32_t manifestSchemaVersion = 3;

/** Per-point outcome and timings. Fields a tool cannot know stay 0 /
 *  empty and are still emitted (fixed schema beats optional keys). */
struct PointEntry
{
    std::string key;  //!< store key (hex), empty when no store is used
    std::string desc; //!< human-readable point description
    std::string status = "ok"; //!< "ok" | "failed"
    bool storeHit = false;     //!< served from the memoized store
    std::uint32_t attempts = 0; //!< farm lease attempts (0 = no farm)
    std::uint64_t queueWaitMs = 0; //!< enqueue -> first lease grant
    std::uint64_t simulateMs = 0;  //!< worker simulate wall time
    std::uint64_t serializeMs = 0; //!< worker fragment serialize time
    std::uint64_t storePutMs = 0;  //!< coordinator store-put time
    std::uint64_t startMs = 0;     //!< start, ms since run start
    std::uint64_t endMs = 0;       //!< end, ms since run start
    std::string error;             //!< "[Code] message" when failed
    /** Index into Manifest::multiCacheGroups of the shared pass that
     *  served this point; -1 = ran on its own. */
    std::int32_t multiCacheGroup = -1;
};

/** Provenance of one multi-cache shared pass (see
 *  sweep::MultiCacheGroup): which reference stream served how many
 *  configs, so any grouped point's result can be traced back to the
 *  single pass that produced it. */
struct MultiCacheGroupEntry
{
    std::uint64_t members = 0;      //!< points served by the group
    std::uint64_t configs = 0;      //!< distinct (L1, L2) classes
    std::uint64_t streamLength = 0; //!< demand references classified
    std::uint64_t prefetches = 0;   //!< prefetches observed
    std::uint64_t windows = 0;      //!< SMARTS windows served
    bool shared = false; //!< false = fell back to dedicated points
};

struct Manifest
{
    std::string tool;  //!< "imo-run" | "imo-sweep" | "imo-farm"
    std::string runId;
    std::vector<std::string> args; //!< argv[1..] verbatim
    std::uint32_t reportSchemaVersion = 0;
    std::uint32_t protocolVersion = 0; //!< farm wire version; 0 = n/a
    std::string faultSpec;             //!< CLI fault spec(s), "" = none
    std::uint64_t faultSeed = 0;
    std::string status = "ok"; //!< "ok" | "failed" | "interrupted"
    std::string errorCode;     //!< errCodeName() when failed
    std::string errorMessage;
    std::uint64_t elapsedMs = 0;
    std::uint64_t pointsTotal = 0;
    std::uint64_t pointsDone = 0;

    // Live-point library provenance (sampled runs; see
    // src/sample/livepoint.hh). Empty/0 when no library was involved.
    std::string libraryMode; //!< "" | "capture" | "load"
    std::string libraryPath;
    std::string libraryHash; //!< contentHash as 16 hex digits
    std::uint64_t libraryWindows = 0;

    /** Multi-cache shared-pass provenance; empty when --multi-cache was
     *  off or nothing grouped. PointEntry::multiCacheGroup indexes it. */
    std::vector<MultiCacheGroupEntry> multiCacheGroups;

    std::vector<PointEntry> points;
    std::string statsJson; //!< embedded stats dump (raw JSON), "" = none
};

/** Fresh process-unique run id: `<tool>-<epoch_ms>-<pid>`. */
std::string makeRunId(const std::string &tool);

/** Emit the manifest as pretty-stable JSON (one point per line). */
void writeManifestJson(std::ostream &os, const Manifest &m);

/** writeManifestJson() to @p path (atomic tmp+rename). @return false
 *  and set @p err on I/O failure. */
bool writeManifestFile(const std::string &path, const Manifest &m,
                       std::string &err);

} // namespace imo::manifest

#endif // IMO_COMMON_MANIFEST_HH
