/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (workload address streams,
 * kernel interleavings, failure injection in tests) draws from this
 * xoshiro256** generator so that runs are reproducible from a seed.
 */

#ifndef IMO_COMMON_RNG_HH
#define IMO_COMMON_RNG_HH

#include <cstdint>

namespace imo
{

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state)
            word = splitmix64(x);
    }

    /** @return the next raw 64-bit sample. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** @return a uniform sample in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection-free multiply-shift; bias is negligible for the
        // bounds used in this simulator (< 2^40).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniform sample in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** @return a uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return true with probability p. */
    bool chance(double p) { return real() < p; }

    /** Export the raw generator state (for checkpointing). */
    void
    saveState(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = state[i];
    }

    /** Replace the generator state with @p in (from saveState()). */
    void
    restoreState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            state[i] = in[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t &x)
    {
        x += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::uint64_t state[4];
};

} // namespace imo

#endif // IMO_COMMON_RNG_HH
