#include "common/stats.hh"

#include <bit>
#include <cmath>
#include <cstdio>

#include "common/checkpoint.hh"
#include "common/logging.hh"

namespace imo::stats
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << "0";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

StatBase::StatBase(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.addStat(this);
}

StatBase::StatBase(std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
}

void
StatBase::save(Serializer &) const
{
}

void
StatBase::restore(Deserializer &)
{
}

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << _value << " # " << desc() << "\n";
}

void
Counter::dumpJson(std::ostream &os) const
{
    os << _value;
}

void
Counter::save(Serializer &s) const
{
    s.u64(_value);
}

void
Counter::restore(Deserializer &d)
{
    _value = d.u64();
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << " (n=" << _count
       << " min=" << min() << " max=" << max() << ") # " << desc() << "\n";
}

void
Average::dumpJson(std::ostream &os) const
{
    os << "{\"mean\":";
    jsonNumber(os, mean());
    os << ",\"count\":" << _count << ",\"min\":";
    jsonNumber(os, min());
    os << ",\"max\":";
    jsonNumber(os, max());
    os << "}";
}

void
Average::save(Serializer &s) const
{
    s.f64(_sum);
    s.u64(_count);
    s.f64(_min);
    s.f64(_max);
}

void
Average::restore(Deserializer &d)
{
    _sum = d.f64();
    _count = d.u64();
    _min = d.f64();
    _max = d.f64();
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

double
Distribution::ci95() const
{
    return _count ? 1.96 * std::sqrt(variance() /
                                     static_cast<double>(_count))
                  : 0.0;
}

double
Distribution::relativeError() const
{
    const double m = std::abs(mean());
    return m > 0.0 ? ci95() / m : 0.0;
}

void
Distribution::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << " +/- " << ci95()
       << " (n=" << _count << " var=" << variance() << ") # " << desc()
       << "\n";
}

void
Distribution::dumpJson(std::ostream &os) const
{
    os << "{\"mean\":";
    jsonNumber(os, mean());
    os << ",\"count\":" << _count << ",\"variance\":";
    jsonNumber(os, variance());
    os << ",\"ci95\":";
    jsonNumber(os, ci95());
    os << "}";
}

void
Distribution::save(Serializer &s) const
{
    s.u64(_count);
    s.f64(_mean);
    s.f64(_m2);
}

void
Distribution::restore(Deserializer &d)
{
    _count = d.u64();
    _mean = d.f64();
    _m2 = d.f64();
}

namespace
{

std::uint8_t
widthShift(std::uint64_t width)
{
    return std::has_single_bit(width)
        ? static_cast<std::uint8_t>(std::countr_zero(width))
        : std::uint8_t{0xff};
}

} // anonymous namespace

Histogram::Histogram(StatGroup &parent, std::string name, std::string desc,
                     std::size_t buckets, std::uint64_t bucket_width)
    : StatBase(parent, std::move(name), std::move(desc)),
      _bucketWidth(bucket_width), _shift(widthShift(bucket_width)),
      _counts(buckets, 0)
{
    panic_if(buckets == 0 || bucket_width == 0,
             "histogram needs nonzero geometry");
}

Histogram::Histogram(std::string name, std::string desc, std::size_t buckets,
                     std::uint64_t bucket_width)
    : StatBase(std::move(name), std::move(desc)),
      _bucketWidth(bucket_width), _shift(widthShift(bucket_width)),
      _counts(buckets, 0)
{
    panic_if(buckets == 0 || bucket_width == 0,
             "histogram needs nonzero geometry");
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " mean=" << mean() << " total=" << _total
       << " # " << desc() << "\n";
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        os << prefix << "  [" << i * _bucketWidth << ","
           << (i + 1) * _bucketWidth << ") " << _counts[i] << "\n";
    }
    if (_overflow)
        os << prefix << "  overflow " << _overflow << "\n";
}

void
Histogram::dumpJson(std::ostream &os) const
{
    os << "{\"mean\":";
    jsonNumber(os, mean());
    os << ",\"total\":" << _total << ",\"bucket_width\":" << _bucketWidth
       << ",\"counts\":[";
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (i)
            os << ",";
        os << _counts[i];
    }
    os << "],\"overflow\":" << _overflow << "}";
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _overflow = 0;
    _total = 0;
    _sum = 0.0;
}

void
Histogram::save(Serializer &s) const
{
    s.u64(_counts.size());
    for (const std::uint64_t c : _counts)
        s.u64(c);
    s.u64(_overflow);
    s.u64(_total);
    s.f64(_sum);
}

void
Histogram::restore(Deserializer &d)
{
    const std::uint64_t n = d.u64();
    if (n != _counts.size()) {
        throw SimException(ErrCode::BadCheckpoint,
                           "histogram '" + name() + "' bucket count " +
                               std::to_string(n) + " != configured " +
                               std::to_string(_counts.size()));
    }
    for (std::uint64_t &c : _counts)
        c = d.u64();
    _overflow = d.u64();
    _total = d.u64();
    _sum = d.f64();
}

void
Value::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

void
Value::dumpJson(std::ostream &os) const
{
    os << value();
}

void
Derived::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << value() << " # " << desc() << "\n";
}

void
Derived::dumpJson(std::ostream &os) const
{
    jsonNumber(os, value());
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

StatGroup &
StatGroup::childGroup(std::string name)
{
    auto child = std::make_unique<StatGroup>(std::move(name), this);
    StatGroup &ref = *child;
    _ownedChildren.push_back(std::move(child));
    return ref;
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string inner = prefix + _name + ".";
    for (const StatBase *stat : _stats)
        stat->dump(os, inner);
    for (const StatGroup *child : _children)
        child->dump(os, inner);
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (const StatBase *stat : _stats) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(stat->name()) << "\":";
        stat->dumpJson(os);
    }
    for (const StatGroup *child : _children) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(child->name()) << "\":";
        child->dumpJson(os);
    }
    os << "}";
}

void
StatGroup::resetAll()
{
    for (StatBase *stat : _stats)
        stat->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

void
StatGroup::save(Serializer &s) const
{
    s.u32(static_cast<std::uint32_t>(_stats.size()));
    for (const StatBase *stat : _stats) {
        s.str(stat->name());
        stat->save(s);
    }
    s.u32(static_cast<std::uint32_t>(_children.size()));
    for (const StatGroup *child : _children) {
        s.str(child->name());
        child->save(s);
    }
}

void
StatGroup::restore(Deserializer &d)
{
    const std::uint32_t nstats = d.u32();
    if (nstats != _stats.size()) {
        throw SimException(ErrCode::BadCheckpoint,
                           "stat group '" + _name + "' has " +
                               std::to_string(_stats.size()) +
                               " stats, checkpoint has " +
                               std::to_string(nstats));
    }
    for (StatBase *stat : _stats) {
        const std::string name = d.str();
        if (name != stat->name()) {
            throw SimException(ErrCode::BadCheckpoint,
                               "stat name mismatch in group '" + _name +
                                   "': expected '" + stat->name() +
                                   "', checkpoint has '" + name + "'");
        }
        stat->restore(d);
    }
    const std::uint32_t nchildren = d.u32();
    if (nchildren != _children.size()) {
        throw SimException(ErrCode::BadCheckpoint,
                           "stat group '" + _name + "' has " +
                               std::to_string(_children.size()) +
                               " children, checkpoint has " +
                               std::to_string(nchildren));
    }
    for (StatGroup *child : _children) {
        const std::string name = d.str();
        if (name != child->name()) {
            throw SimException(ErrCode::BadCheckpoint,
                               "child group name mismatch in '" + _name +
                                   "': expected '" + child->name() +
                                   "', checkpoint has '" + name + "'");
        }
        child->restore(d);
    }
}

} // namespace imo::stats
