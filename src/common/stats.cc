#include "common/stats.hh"

#include <iomanip>

#include "common/logging.hh"

namespace imo::stats
{

StatBase::StatBase(StatGroup &parent, std::string name, std::string desc)
    : _name(std::move(name)), _desc(std::move(desc))
{
    parent.addStat(this);
}

void
Counter::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << _value << " # " << desc() << "\n";
}

void
Average::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " " << mean() << " (n=" << _count << ") # "
       << desc() << "\n";
}

Histogram::Histogram(StatGroup &parent, std::string name, std::string desc,
                     std::size_t buckets, std::uint64_t bucket_width)
    : StatBase(parent, std::move(name), std::move(desc)),
      _bucketWidth(bucket_width), _counts(buckets, 0)
{
    panic_if(buckets == 0 || bucket_width == 0,
             "histogram needs nonzero geometry");
}

void
Histogram::sample(std::uint64_t v)
{
    const std::size_t idx = v / _bucketWidth;
    if (idx < _counts.size())
        ++_counts[idx];
    else
        ++_overflow;
    ++_total;
    _sum += static_cast<double>(v);
}

void
Histogram::dump(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << " mean=" << mean() << " total=" << _total
       << " # " << desc() << "\n";
    for (std::size_t i = 0; i < _counts.size(); ++i) {
        if (_counts[i] == 0)
            continue;
        os << prefix << "  [" << i * _bucketWidth << ","
           << (i + 1) * _bucketWidth << ") " << _counts[i] << "\n";
    }
    if (_overflow)
        os << prefix << "  overflow " << _overflow << "\n";
}

void
Histogram::reset()
{
    std::fill(_counts.begin(), _counts.end(), 0);
    _overflow = 0;
    _total = 0;
    _sum = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name))
{
    if (parent)
        parent->addChild(this);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string inner = prefix + _name + ".";
    for (const StatBase *stat : _stats)
        stat->dump(os, inner);
    for (const StatGroup *child : _children)
        child->dump(os, inner);
}

void
StatGroup::resetAll()
{
    for (StatBase *stat : _stats)
        stat->reset();
    for (StatGroup *child : _children)
        child->resetAll();
}

} // namespace imo::stats
