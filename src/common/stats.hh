/**
 * @file
 * Lightweight statistics package: named scalar counters, averages and
 * histograms grouped under a StatGroup that can dump itself as text.
 *
 * Modeled loosely on gem5's Stats package but intentionally minimal:
 * stats register themselves with their group at construction, values
 * are plain 64-bit integers or doubles, and dumping is deterministic
 * (registration order).
 */

#ifndef IMO_COMMON_STATS_HH
#define IMO_COMMON_STATS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace imo::stats
{

class StatGroup;

/** Base class for anything dumpable inside a StatGroup. */
class StatBase
{
  public:
    StatBase(StatGroup &parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Append one or more formatted lines describing this stat. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Reset the stat to its initial value. */
    virtual void reset() = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically updated 64-bit counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void set(std::uint64_t v) { _value = v; }

    std::uint64_t value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running mean of a stream of samples. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override { _sum = 0.0; _count = 0; }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &parent, std::string name, std::string desc,
              std::size_t buckets, std::uint64_t bucket_width);

    void sample(std::uint64_t v);

    std::uint64_t bucketCount(std::size_t i) const { return _counts.at(i); }
    std::uint64_t overflowCount() const { return _overflow; }
    std::uint64_t total() const { return _total; }
    double mean() const { return _total ? _sum / _total : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

  private:
    std::uint64_t _bucketWidth;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
    double _sum = 0.0;
};

/**
 * A named collection of stats. Groups may nest; dump() walks the whole
 * subtree in registration order.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Dump every stat in this group and its children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset every stat in this group and its children. */
    void resetAll();

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { _stats.push_back(stat); }
    void addChild(StatGroup *child) { _children.push_back(child); }

    std::string _name;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
};

} // namespace imo::stats

#endif // IMO_COMMON_STATS_HH
