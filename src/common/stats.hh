/**
 * @file
 * Lightweight statistics package: named scalar counters, averages,
 * histograms and pull-based values grouped under a StatGroup that can
 * dump itself as text or JSON.
 *
 * Modeled loosely on gem5's Stats package but intentionally minimal:
 * stats register themselves with their group at construction, values
 * are plain 64-bit integers or doubles, and dumping is deterministic
 * (registration order).
 *
 * Two kinds of stats coexist:
 *  - push stats (Counter, Average, Histogram) live inside the component
 *    that updates them on the hot path; they checkpoint via
 *    save()/restore() so a resumed run's final stats are bit-identical.
 *  - pull stats (Value, Derived) wrap a closure that reads component
 *    state at dump time; they carry no state of their own.
 *
 * A component exposes its push stats to a report tree either by
 * constructing them against a parent group, or by constructing them
 * parentless and calling StatGroup::adopt() on a transient report root
 * at capture time (adoption never mutates the stat).
 */

#ifndef IMO_COMMON_STATS_HH
#define IMO_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::stats
{

class StatGroup;

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Write @p v as a JSON number (non-finite values degrade to 0). */
void jsonNumber(std::ostream &os, double v);

/** Base class for anything dumpable inside a StatGroup. */
class StatBase
{
  public:
    StatBase(StatGroup &parent, std::string name, std::string desc);

    /** Parentless construction; expose later via StatGroup::adopt(). */
    StatBase(std::string name, std::string desc);

    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Append one or more formatted lines describing this stat. */
    virtual void dump(std::ostream &os, const std::string &prefix) const = 0;

    /** Emit this stat's value as a single JSON value (no key). */
    virtual void dumpJson(std::ostream &os) const = 0;

    /** Reset the stat to its initial value. */
    virtual void reset() = 0;

    /** Checkpoint hooks; pull stats are stateless and serialize
     *  nothing, push stats round-trip exactly. */
    virtual void save(Serializer &s) const;
    virtual void restore(Deserializer &d);

  private:
    std::string _name;
    std::string _desc;
};

/** A monotonically updated 64-bit counter. */
class Counter : public StatBase
{
  public:
    using StatBase::StatBase;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }
    void set(std::uint64_t v) { _value = v; }

    std::uint64_t value() const { return _value; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override { _value = 0; }
    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::uint64_t _value = 0;
};

/** Running mean of a stream of samples, with min/max tracking. */
class Average : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        if (v < _min || _count == 1)
            _min = v;
        if (v > _max || _count == 1)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;

    void
    reset() override
    {
        _sum = 0.0;
        _count = 0;
        _min = 0.0;
        _max = 0.0;
    }

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Streaming distribution of double samples: Welford's online algorithm
 * maintains the mean and unbiased variance in O(1) state, from which a
 * normal-approximation 95% confidence interval of the mean follows.
 * This is the reporting primitive of the SMARTS-style sampling
 * controller (per-window CPI and miss-rate estimates).
 */
class Distribution : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        ++_count;
        const double delta = v - _mean;
        _mean += delta / static_cast<double>(_count);
        _m2 += delta * (v - _mean);
    }

    std::uint64_t count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two samples. */
    double
    variance() const
    {
        return _count > 1 ? _m2 / static_cast<double>(_count - 1) : 0.0;
    }

    double stddev() const;

    /**
     * Half-width of the 95% confidence interval of the mean:
     * 1.96 * sqrt(variance / n) (normal approximation).
     */
    double ci95() const;

    /** ci95() / |mean()|: the relative error sampling targets. */
    double relativeError() const;

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;

    void
    reset() override
    {
        _count = 0;
        _mean = 0.0;
        _m2 = 0.0;
    }

    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    std::uint64_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Histogram : public StatBase
{
  public:
    Histogram(StatGroup &parent, std::string name, std::string desc,
              std::size_t buckets, std::uint64_t bucket_width);

    Histogram(std::string name, std::string desc, std::size_t buckets,
              std::uint64_t bucket_width);

    void
    sample(std::uint64_t v)
    {
        // Power-of-two bucket widths (the common case on hot paths)
        // index with a shift instead of a 64-bit divide.
        const std::size_t idx = _shift != kNoShift
            ? static_cast<std::size_t>(v >> _shift)
            : static_cast<std::size_t>(v / _bucketWidth);
        if (idx < _counts.size())
            ++_counts[idx];
        else
            ++_overflow;
        ++_total;
        _sum += static_cast<double>(v);
    }

    std::size_t buckets() const { return _counts.size(); }
    std::uint64_t bucketWidth() const { return _bucketWidth; }
    std::uint64_t bucketCount(std::size_t i) const { return _counts.at(i); }
    std::uint64_t overflowCount() const { return _overflow; }
    std::uint64_t total() const { return _total; }
    double mean() const { return _total ? _sum / _total : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override;
    void save(Serializer &s) const override;
    void restore(Deserializer &d) override;

  private:
    static constexpr std::uint8_t kNoShift = 0xff;

    std::uint64_t _bucketWidth;
    std::uint8_t _shift = kNoShift;
    std::vector<std::uint64_t> _counts;
    std::uint64_t _overflow = 0;
    std::uint64_t _total = 0;
    double _sum = 0.0;
};

/** Pull-based integer stat: reads component state at dump time. */
class Value : public StatBase
{
  public:
    Value(StatGroup &parent, std::string name, std::string desc,
          std::function<std::uint64_t()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          _fn(std::move(fn))
    {}

    std::uint64_t value() const { return _fn ? _fn() : 0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<std::uint64_t()> _fn;
};

/** Pull-based floating-point stat (rates, fractions, means). */
class Derived : public StatBase
{
  public:
    Derived(StatGroup &parent, std::string name, std::string desc,
            std::function<double()> fn)
        : StatBase(parent, std::move(name), std::move(desc)),
          _fn(std::move(fn))
    {}

    double value() const { return _fn ? _fn() : 0.0; }

    void dump(std::ostream &os, const std::string &prefix) const override;
    void dumpJson(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> _fn;
};

/**
 * A named collection of stats. Groups may nest; dump() walks the whole
 * subtree in registration order.
 *
 * Groups can own children and stats created through childGroup() /
 * make(), and can additionally reference externally owned ones through
 * adopt() / adoptChild() — the report tree built at capture time adopts
 * the push stats living inside components.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &name() const { return _name; }

    /** Reference an externally owned stat (lifetime not managed). */
    void adopt(StatBase &stat) { _stats.push_back(&stat); }

    /** Reference an externally owned child group. */
    void adoptChild(StatGroup &child) { _children.push_back(&child); }

    /** Create (and own) a nested child group. */
    StatGroup &childGroup(std::string name);

    /** Create (and own) a stat registered in this group. */
    template <typename T, typename... Args>
    T &
    make(Args &&...args)
    {
        auto stat = std::make_unique<T>(*this, std::forward<Args>(args)...);
        T &ref = *stat;
        _owned.push_back(std::move(stat));
        return ref;
    }

    /** Dump every stat in this group and its children. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Dump the subtree as a JSON object: stats then child groups. */
    void dumpJson(std::ostream &os) const;

    /** Reset every stat in this group and its children. */
    void resetAll();

    /** Serialize every stat in the subtree, each tagged by name so
     *  restore() can detect layout drift. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

    const std::vector<StatBase *> &statList() const { return _stats; }
    const std::vector<StatGroup *> &childList() const { return _children; }

  private:
    friend class StatBase;

    void addStat(StatBase *stat) { _stats.push_back(stat); }
    void addChild(StatGroup *child) { _children.push_back(child); }

    std::string _name;
    std::vector<StatBase *> _stats;
    std::vector<StatGroup *> _children;
    std::vector<std::unique_ptr<StatBase>> _owned;
    std::vector<std::unique_ptr<StatGroup>> _ownedChildren;
};

} // namespace imo::stats

#endif // IMO_COMMON_STATS_HH
