#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace imo
{

TextTable::TextTable(std::string title) : _title(std::move(title))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    _header = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    panic_if(!_header.empty() && cells.size() != _header.size(),
             "table row has %zu cells, header has %zu",
             cells.size(), _header.size());
    _rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_header.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(_header);
    for (const auto &r : _rows)
        widen(r);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << std::string(widths[i] - cells[i].size() + 2, ' ');
        }
        os << "\n";
    };

    if (!_title.empty())
        os << "== " << _title << " ==\n";
    if (!_header.empty()) {
        emit(_header);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    }
    for (const auto &r : _rows)
        emit(r);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << cells[i];
            if (i + 1 < cells.size())
                os << ",";
        }
        os << "\n";
    };
    if (!_header.empty())
        emit(_header);
    for (const auto &r : _rows)
        emit(r);
}

} // namespace imo
