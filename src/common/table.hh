/**
 * @file
 * Plain-text result tables for the benchmark harnesses.
 *
 * Every figure/table reproduction prints its rows through TextTable so
 * that the harness output is aligned, diffable, and mechanically
 * convertible to CSV.
 */

#ifndef IMO_COMMON_TABLE_HH
#define IMO_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace imo
{

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the column headers; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

    /** Render with aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return _rows.size(); }

  private:
    std::string _title;
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace imo

#endif // IMO_COMMON_TABLE_HH
