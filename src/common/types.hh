/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef IMO_COMMON_TYPES_HH
#define IMO_COMMON_TYPES_HH

#include <cstdint>

namespace imo
{

/** A byte address in the simulated data address space. */
using Addr = std::uint64_t;

/** A simulated processor cycle count. */
using Cycle = std::uint64_t;

/** An instruction address: an index into a Program's instruction list. */
using InstAddr = std::uint32_t;

/** A dynamic instruction sequence number (program order). */
using SeqNum = std::uint64_t;

/**
 * Level of the memory hierarchy that serviced a data reference.
 * The ordering is significant: higher enum values are further from the
 * processor and therefore slower.
 */
enum class MemLevel : std::uint8_t
{
    L1 = 0,     //!< primary-cache hit
    L2 = 1,     //!< primary miss, secondary hit
    Memory = 2, //!< missed both cache levels
};

/** @return a short human-readable name for a hierarchy level. */
inline const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::Memory: return "Memory";
    }
    return "?";
}

} // namespace imo

#endif // IMO_COMMON_TYPES_HH
