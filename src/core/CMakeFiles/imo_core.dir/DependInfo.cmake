
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/handlers.cc" "src/core/CMakeFiles/imo_core.dir/handlers.cc.o" "gcc" "src/core/CMakeFiles/imo_core.dir/handlers.cc.o.d"
  "/root/repo/src/core/informing.cc" "src/core/CMakeFiles/imo_core.dir/informing.cc.o" "gcc" "src/core/CMakeFiles/imo_core.dir/informing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/imo_common.dir/DependInfo.cmake"
  "/root/repo/src/isa/CMakeFiles/imo_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
