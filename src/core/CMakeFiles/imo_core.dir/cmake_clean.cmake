file(REMOVE_RECURSE
  "CMakeFiles/imo_core.dir/handlers.cc.o"
  "CMakeFiles/imo_core.dir/handlers.cc.o.d"
  "CMakeFiles/imo_core.dir/informing.cc.o"
  "CMakeFiles/imo_core.dir/informing.cc.o.d"
  "libimo_core.a"
  "libimo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
