file(REMOVE_RECURSE
  "libimo_core.a"
)
