# Empty compiler generated dependencies file for imo_core.
# This may be replaced when dependencies are built.
