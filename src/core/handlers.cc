#include "core/handlers.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace imo::core
{

using isa::intReg;
using isa::Label;
using isa::ProgramBuilder;

isa::Label
emitMissCounter(ProgramBuilder &b, Addr counter_addr)
{
    const std::uint8_t s0 = intReg(handlerScratchBase);
    const std::uint8_t s1 = intReg(handlerScratchBase + 1);
    Label entry = b.newLabel();
    b.bind(entry);
    b.li(s1, static_cast<std::int64_t>(counter_addr));
    b.ld(s0, s1, 0);
    b.addi(s0, s0, 1);
    b.st(s0, s1, 0);
    b.retmh();
    return entry;
}

isa::Label
emitHashProfiler(ProgramBuilder &b, Addr table_base,
                 std::uint32_t table_slots_log2)
{
    sim_throw_if(table_slots_log2 == 0 || table_slots_log2 > 30,
                 ErrCode::BadConfig, "unreasonable hash table size");
    const std::int64_t mask = (std::int64_t{1} << table_slots_log2) - 1;
    const std::uint8_t s0 = intReg(handlerScratchBase);
    const std::uint8_t s1 = intReg(handlerScratchBase + 1);

    Label entry = b.newLabel();
    b.bind(entry);
    b.getmhrr(s0);                 // return address names the reference
    b.andi(s0, s0, mask);          // hash: low bits of the return PC
    b.sll(s0, s0, 3);              // scale to a word offset
    b.li(s1, static_cast<std::int64_t>(table_base));
    b.add(s1, s1, s0);             // table slot address
    b.ld(s0, s1, 0);
    b.addi(s0, s0, 1);             // bump the per-reference miss count
    b.st(s0, s1, 0);
    b.retmh();
    return entry;
}

isa::Label
emitPrefetcher(ProgramBuilder &b, std::uint8_t addr_reg,
               std::uint32_t lines, std::uint32_t line_bytes)
{
    sim_throw_if(lines == 0, ErrCode::BadConfig,
                 "prefetch handler needs at least one line");
    Label entry = b.newLabel();
    b.bind(entry);
    for (std::uint32_t i = 1; i <= lines; ++i) {
        b.prefetch(addr_reg,
                   static_cast<std::int64_t>(i) * line_bytes);
    }
    b.retmh();
    return entry;
}

isa::Label
emitSampledHandler(ProgramBuilder &b, Addr state_addr,
                   std::uint32_t period, std::uint32_t work_insts)
{
    sim_throw_if(period == 0, ErrCode::BadConfig,
                 "sampling period must be nonzero");
    const std::uint8_t s0 = intReg(handlerScratchBase);
    const std::uint8_t s1 = intReg(handlerScratchBase + 1);
    const std::uint8_t s2 = intReg(handlerScratchBase + 2);

    Label entry = b.newLabel();
    Label out = b.newLabel();
    b.bind(entry);
    // Fast path: decrement the skip counter and return.
    b.li(s1, static_cast<std::int64_t>(state_addr));
    b.ld(s0, s1, 0);
    b.addi(s0, s0, -1);
    b.st(s0, s1, 0);
    b.bne(s0, intReg(0), out);
    // Sampled path: reset the counter and do the expensive work.
    b.li(s0, period);
    b.st(s0, s1, 0);
    for (std::uint32_t i = 0; i < work_insts; ++i)
        b.addi(s2, s2, 1);
    b.bind(out);
    b.retmh();
    return entry;
}

isa::Label
emitThreadSwitcher(ProgramBuilder &b, const ThreadSwitchParams &params)
{
    sim_throw_if(params.numSavedRegs == 0 || params.numSavedRegs > 23,
                 ErrCode::BadConfig,
                 "thread switcher can save r1..r23 only");
    const std::uint8_t tcb = intReg(30);
    const std::uint8_t scratch = intReg(31);
    const std::int64_t next_off =
        static_cast<std::int64_t>(1 + params.numSavedRegs) * 8;

    Label entry = b.newLabel();
    b.bind(entry);
    // Save the interrupted thread: resume PC, then its registers.
    b.getmhrr(scratch);
    b.st(scratch, tcb, 0);
    for (std::uint8_t r = 1; r <= params.numSavedRegs; ++r)
        b.st(intReg(r), tcb, r * 8);
    // Round-robin to the next thread's TCB.
    b.ld(tcb, tcb, next_off);
    // Restore its state and return into it.
    b.ld(scratch, tcb, 0);
    b.setmhrr(scratch);
    for (std::uint8_t r = 1; r <= params.numSavedRegs; ++r)
        b.ld(intReg(r), tcb, r * 8);
    b.retmh();
    return entry;
}

} // namespace imo::core
