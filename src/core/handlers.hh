/**
 * @file
 * A library of real (non-generic) miss handlers, emitted through the
 * ProgramBuilder. These implement the software techniques of the
 * paper's section 4.1: miss counting and per-reference profiling
 * (4.1.1), prefetching from the miss handler (4.1.2), and
 * software-controlled context-switch-on-miss multithreading (4.1.3).
 *
 * Register conventions: handlers may clobber integer registers r24-r31
 * ("handler scratch"); workload code must confine itself to r1-r23.
 * The thread switcher additionally reserves r30 as the current
 * thread-control-block pointer.
 */

#ifndef IMO_CORE_HANDLERS_HH
#define IMO_CORE_HANDLERS_HH

#include <cstdint>

#include "common/types.hh"
#include "isa/builder.hh"

namespace imo::core
{

/** First integer register reserved for handler scratch. */
constexpr std::uint8_t handlerScratchBase = 24;

/**
 * Emit a miss handler that increments the 64-bit counter at
 * @p counter_addr (the paper's "single register-increment miss
 * handler"; here it lives in memory so it survives arbitrarily many
 * static references). Code is emitted at the current position;
 * @return the bound entry label.
 */
isa::Label emitMissCounter(isa::ProgramBuilder &b, Addr counter_addr);

/**
 * Emit the hash-table profiling handler of section 4.1.1 (~10
 * instructions): the branch-and-link return address in the MHRR
 * indexes a table of per-reference miss counters.
 *
 * With @p table_slots_log2 >= ceil(log2(program size)) every static
 * reference maps to a unique slot; the table must hold
 * 2^table_slots_log2 words at @p table_base.
 */
isa::Label emitHashProfiler(isa::ProgramBuilder &b, Addr table_base,
                            std::uint32_t table_slots_log2);

/**
 * Emit a prefetching miss handler (section 4.1.2): on a miss it issues
 * @p lines prefetches for the lines following address register
 * @p addr_reg (the register the enclosing loop streams through), then
 * returns. Intended for per-reference (unique-handler) use where the
 * handler statically knows the access pattern.
 */
isa::Label emitPrefetcher(isa::ProgramBuilder &b, std::uint8_t addr_reg,
                          std::uint32_t lines, std::uint32_t line_bytes);

/**
 * Emit a sampling miss handler (the optimization suggested in section
 * 4.2.2 for expensive monitoring tools): a short decrement-and-return
 * fast path on most misses, with the expensive @p work_insts
 * data-dependent chain executed only every @p period-th miss. The
 * one-word skip counter at @p state_addr must be initialized nonzero
 * (1 samples the first miss).
 */
isa::Label emitSampledHandler(isa::ProgramBuilder &b, Addr state_addr,
                              std::uint32_t period,
                              std::uint32_t work_insts);

/**
 * Layout of a thread control block used by the context-switch-on-miss
 * handler: word 0 holds the saved resume PC, words 1..numSavedRegs hold
 * the saved integer registers r1..rN, and the following word links to
 * the next TCB (round-robin).
 */
struct ThreadSwitchParams
{
    /** Thread-visible integer registers r1..numSavedRegs are saved. */
    std::uint8_t numSavedRegs = 8;
};

/** @return the size of one TCB in 64-bit words. */
constexpr std::uint64_t
tcbWords(const ThreadSwitchParams &p)
{
    return 1 + p.numSavedRegs + 1;
}

/**
 * Emit the software-multithreading miss handler (section 4.1.3): saves
 * the current thread's resume PC and registers into the TCB pointed to
 * by r30, advances r30 to the next TCB, restores that thread's state,
 * and returns into it. r31 is used as scratch.
 */
isa::Label emitThreadSwitcher(isa::ProgramBuilder &b,
                              const ThreadSwitchParams &params);

} // namespace imo::core

#endif // IMO_CORE_HANDLERS_HH
