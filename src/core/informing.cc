#include "core/informing.hh"

#include <bit>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "core/handlers.hh"
#include "isa/op.hh"

namespace imo::core
{

using isa::Instruction;
using isa::Op;
using isa::Program;

const char *
informingModeName(InformingMode mode)
{
    switch (mode) {
      case InformingMode::None: return "N";
      case InformingMode::TrapSingle: return "S";
      case InformingMode::TrapUnique: return "U";
      case InformingMode::CondCode: return "CC";
    }
    return "?";
}

std::uint32_t
perRefOverheadInsts(InformingMode mode)
{
    switch (mode) {
      case InformingMode::None:
      case InformingMode::TrapSingle:
        return 0;
      case InformingMode::TrapUnique:
      case InformingMode::CondCode:
        return 1;
    }
    return 0;
}

namespace
{

/** Append one generic k-instruction dependent-chain handler; return its
 *  entry address. The chain is ADDI scratch, scratch, 1 repeated. */
InstAddr
appendHandler(std::vector<Instruction> &out,
              const GenericHandlerParams &params, std::uint32_t which)
{
    const InstAddr entry = static_cast<InstAddr>(out.size());
    const std::uint8_t reg = static_cast<std::uint8_t>(
        params.firstScratchReg + which % params.rotateRegs);
    sim_throw_if(reg >= isa::numIntRegs, ErrCode::BadConfig,
                 "handler scratch registers out of range");
    for (std::uint32_t i = 0; i < params.length; ++i)
        out.push_back({.op = Op::ADDI, .rd = reg, .rs1 = reg, .imm = 1});
    out.push_back({.op = Op::RETMH});
    return entry;
}

} // anonymous namespace

Program
instrument(const Program &base, InformingMode mode,
           const GenericHandlerParams &params)
{
    sim_throw_if(params.length == 0, ErrCode::BadConfig,
                 "generic handler length must be nonzero");
    sim_throw_if(params.rotateRegs == 0, ErrCode::BadConfig,
                 "rotateRegs must be nonzero");

    const auto &insts = base.insts();
    const InstAddr n = base.size();

    if (mode == InformingMode::None) {
        Program copy = base;
        copy.setName(base.name() + ".N");
        return copy;
    }

    // Pass 1: lay out the rewritten text. Each original instruction may
    // get one inserted instruction before (TrapUnique: SETMHAR) or
    // after (CondCode: BRMISS) it. oldToNew maps an original address to
    // the first instruction executed at that point in the new text.
    std::vector<InstAddr> old_to_new(n + 1);
    InstAddr cursor = mode == InformingMode::TrapSingle ? 1 : 0;
    for (InstAddr pc = 0; pc < n; ++pc) {
        old_to_new[pc] = cursor;
        ++cursor; // the instruction itself
        if (isa::isDataRef(insts[pc].op) &&
            (mode == InformingMode::TrapUnique ||
             mode == InformingMode::CondCode)) {
            ++cursor; // its companion SETMHAR / BRMISS
        }
    }
    old_to_new[n] = cursor;
    const InstAddr handler_base = cursor;

    // Pass 2: emit. Handler entries are assigned on first use so their
    // addresses are known before the handler bodies are appended; we
    // compute them up front instead: handlers are laid out in static-
    // reference order, each (length + 1) instructions long.
    const std::uint32_t handler_size = params.length + 1;
    auto handler_entry = [&](std::uint32_t ref_id) -> InstAddr {
        if (mode == InformingMode::TrapSingle)
            return handler_base;
        return handler_base + ref_id * handler_size;
    };

    std::vector<Instruction> out;
    out.reserve(handler_base + handler_size *
                (mode == InformingMode::TrapSingle
                 ? 1 : base.numStaticRefs()));

    if (mode == InformingMode::TrapSingle) {
        out.push_back({.op = Op::SETMHAR,
                       .imm = static_cast<std::int64_t>(handler_base)});
    }

    auto patch_target = [&](std::int64_t old_imm) -> std::int64_t {
        panic_if(old_imm < 0 || old_imm > static_cast<std::int64_t>(n),
                 "control target out of range during instrumentation");
        return old_to_new[old_imm];
    };

    for (InstAddr pc = 0; pc < n; ++pc) {
        Instruction in = insts[pc];
        const bool is_ref = isa::isDataRef(in.op);

        if (is_ref && mode == InformingMode::TrapUnique) {
            out.push_back({.op = Op::SETMHAR,
                           .imm = static_cast<std::int64_t>(
                               handler_entry(in.staticRefId))});
        }

        switch (in.op) {
          case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
          case Op::J: case Op::JAL: case Op::BRMISS: case Op::BRMISS2:
            in.imm = patch_target(in.imm);
            break;
          case Op::SETMHAR:
            if (in.imm != 0)
                in.imm = patch_target(in.imm);
            break;
          default:
            break;
        }
        out.push_back(in);

        if (is_ref && mode == InformingMode::CondCode) {
            out.push_back({.op = Op::BRMISS,
                           .imm = static_cast<std::int64_t>(
                               handler_entry(in.staticRefId))});
        }
    }

    panic_if(out.size() != handler_base,
             "instrumentation layout mismatch: %zu vs %u",
             out.size(), handler_base);

    // Append the handlers.
    if (mode == InformingMode::TrapSingle) {
        appendHandler(out, params, 0);
    } else {
        for (std::uint32_t ref = 0; ref < base.numStaticRefs(); ++ref) {
            const InstAddr entry = appendHandler(out, params, ref);
            panic_if(entry != handler_entry(ref),
                     "handler %u landed at %u, expected %u",
                     ref, entry, handler_entry(ref));
        }
    }

    Program prog(base.name() + "." + informingModeName(mode));
    prog.insts() = std::move(out);
    for (const isa::DataSegment &seg : base.data())
        prog.addData(seg);

    // Reassign dense static-reference ids (the original ids survive the
    // rewrite, but validation requires density and the handler bodies
    // contain no references, so the originals are still dense).
    std::uint32_t next_ref = 0;
    for (Instruction &in : prog.insts()) {
        if (isa::isDataRef(in.op))
            in.staticRefId = next_ref++;
    }
    prog.setNumStaticRefs(next_ref);

    std::string why;
    sim_throw_if(!prog.validate(&why), ErrCode::BadProgram,
                 "instrumented program '%s' invalid: %s",
                 prog.name().c_str(), why.c_str());
    return prog;
}

MissProfilerProgram
instrumentWithMissProfiler(const isa::Program &base, Addr table_base)
{
    const auto &insts = base.insts();
    const InstAddr n = base.size();

    // TrapSingle layout: one SETMHAR prelude, originals shifted by one.
    const InstAddr handler_base = n + 1;

    // Return addresses delivered to the handler are missed-reference
    // pcs plus one, all below handler_base (handler code runs with the
    // trap disarmed and never shows up), so this many low bits of the
    // MHRR name each static reference uniquely.
    const std::uint32_t slots_log2 = std::bit_width(
        static_cast<std::uint64_t>(handler_base));
    const std::int64_t mask =
        (std::int64_t{1} << slots_log2) - 1;
    sim_throw_if(table_base & 7, ErrCode::BadConfig,
                 "profiler table must be 8-byte aligned");

    std::vector<Instruction> out;
    out.reserve(handler_base + 9);
    out.push_back({.op = Op::SETMHAR,
                   .imm = static_cast<std::int64_t>(handler_base)});

    for (InstAddr pc = 0; pc < n; ++pc) {
        Instruction in = insts[pc];
        switch (in.op) {
          case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
          case Op::J: case Op::JAL: case Op::BRMISS: case Op::BRMISS2:
            in.imm += 1;
            break;
          case Op::SETMHAR:
            if (in.imm != 0)
                in.imm += 1;
            break;
          default:
            break;
        }
        out.push_back(in);
    }

    // The section-4.1.1 hash-table profiler (see emitHashProfiler),
    // emitted as raw text so it can be appended to a finished program.
    const std::uint8_t s0 = handlerScratchBase;
    const std::uint8_t s1 = handlerScratchBase + 1;
    out.push_back({.op = Op::GETMHRR, .rd = s0});
    out.push_back({.op = Op::ANDI, .rd = s0, .rs1 = s0, .imm = mask});
    out.push_back({.op = Op::SLL, .rd = s0, .rs1 = s0, .imm = 3});
    out.push_back({.op = Op::LI, .rd = s1,
                   .imm = static_cast<std::int64_t>(table_base)});
    out.push_back({.op = Op::ADD, .rd = s1, .rs1 = s1, .rs2 = s0});
    out.push_back({.op = Op::LD, .rd = s0, .rs1 = s1, .imm = 0});
    out.push_back({.op = Op::ADDI, .rd = s0, .rs1 = s0, .imm = 1});
    out.push_back({.op = Op::ST, .rs1 = s1, .rs2 = s0, .imm = 0});
    out.push_back({.op = Op::RETMH});

    MissProfilerProgram result;
    result.tableBase = table_base;
    result.slotsLog2 = slots_log2;

    isa::Program prog(base.name() + ".profiled");
    prog.insts() = std::move(out);
    for (const isa::DataSegment &seg : base.data())
        prog.addData(seg);

    std::uint32_t next_ref = 0;
    for (Instruction &in : prog.insts()) {
        if (isa::isDataRef(in.op))
            in.staticRefId = next_ref++;
    }
    prog.setNumStaticRefs(next_ref);

    std::string why;
    sim_throw_if(!prog.validate(&why), ErrCode::BadProgram,
                 "profiled program '%s' invalid: %s",
                 prog.name().c_str(), why.c_str());
    result.program = std::move(prog);
    return result;
}

} // namespace imo::core
