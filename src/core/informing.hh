/**
 * @file
 * Informing-memory-operation instrumentation.
 *
 * The paper evaluates four configurations per workload (Figures 2-3):
 *   N  no informing operations (baseline),
 *   S  low-overhead miss traps with one global handler (zero overhead
 *      on hits),
 *   U  a unique handler per static reference, selected by one extra
 *      SETMHAR instruction before every memory operation,
 *   CC the cache-outcome condition-code mechanism: one explicit BRMISS
 *      check instruction after every memory operation.
 *
 * The Instrumentor rewrites a finished program into any of these forms,
 * appending generic miss handlers (dependent chains of k instructions,
 * the paper's "generic miss handlers") and re-patching every absolute
 * control target.
 */

#ifndef IMO_CORE_INFORMING_HH
#define IMO_CORE_INFORMING_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace imo::core
{

/** Informing mechanism / handler-management policy. */
enum class InformingMode : std::uint8_t
{
    None,        //!< N: MHAR stays zero, no checks
    TrapSingle,  //!< S: one handler installed once
    TrapUnique,  //!< U: SETMHAR before every data reference
    CondCode,    //!< explicit BRMISS after every data reference
};

/** @return a short name: "N", "S", "U", "CC". */
const char *informingModeName(InformingMode mode);

/** Parameters of the generic miss handlers of section 4.2. */
struct GenericHandlerParams
{
    /**
     * Number of handler instructions excluding the return. The paper
     * evaluates 1, 10 and 100, pessimistically all data-dependent.
     */
    std::uint32_t length = 10;

    /**
     * Scratch registers rotated across unique handlers. The paper notes
     * that distinct handlers are not data-dependent on each other while
     * a single handler depends on its previous invocation; rotating the
     * chain register across static references reproduces that.
     */
    std::uint32_t rotateRegs = 8;

    /** First integer scratch register used by handler chains. */
    std::uint8_t firstScratchReg = 24;
};

/**
 * Rewrite @p base into informing mode @p mode with generic handlers.
 *
 * Control-flow targets are re-patched across insertions; handler code
 * is appended after the original text. The result validates.
 */
isa::Program instrument(const isa::Program &base, InformingMode mode,
                        const GenericHandlerParams &params);

/** Static cost model: instructions inserted per data reference. */
std::uint32_t perRefOverheadInsts(InformingMode mode);

/**
 * A program rewritten with the section-4.1.1 miss-counting profiler
 * handler, plus the table layout needed to read its results back.
 *
 * The handler hashes the trap return address (MHRR == missed pc + 1)
 * into a table of per-reference 64-bit miss counters: slot
 * (pc + 1) & (slots() - 1). slotsLog2 exceeds log2(program size), so
 * every static reference maps to a unique slot and the handler-
 * collected profile can be compared exactly against a simulator-side
 * per-PC miss profile (obs::PcProfiler) of the same run.
 */
struct MissProfilerProgram
{
    isa::Program program;
    Addr tableBase = 0;
    std::uint32_t slotsLog2 = 0;

    std::uint64_t slots() const { return std::uint64_t{1} << slotsLog2; }

    /** Table address of the counter for the (rewritten-program)
     *  reference at @p pc. */
    Addr
    slotAddr(InstAddr pc) const
    {
        return tableBase + ((pc + 1) & (slots() - 1)) * 8;
    }
};

/**
 * Rewrite @p base in TrapSingle fashion (one SETMHAR prelude, every
 * original instruction shifted by one) with the hash-table profiling
 * handler of section 4.1.1 as the single global handler. The counter
 * table lives at @p table_base (uninitialized memory reads as zero,
 * so no data segment is needed); it must not overlap workload data.
 */
MissProfilerProgram instrumentWithMissProfiler(
    const isa::Program &base, Addr table_base = 0x1000'0000);

} // namespace imo::core

#endif // IMO_CORE_INFORMING_HH
