file(REMOVE_RECURSE
  "CMakeFiles/imo_farm.dir/farm.cc.o"
  "CMakeFiles/imo_farm.dir/farm.cc.o.d"
  "CMakeFiles/imo_farm.dir/proto.cc.o"
  "CMakeFiles/imo_farm.dir/proto.cc.o.d"
  "CMakeFiles/imo_farm.dir/store.cc.o"
  "CMakeFiles/imo_farm.dir/store.cc.o.d"
  "CMakeFiles/imo_farm.dir/telemetry.cc.o"
  "CMakeFiles/imo_farm.dir/telemetry.cc.o.d"
  "CMakeFiles/imo_farm.dir/transport.cc.o"
  "CMakeFiles/imo_farm.dir/transport.cc.o.d"
  "CMakeFiles/imo_farm.dir/worker.cc.o"
  "CMakeFiles/imo_farm.dir/worker.cc.o.d"
  "libimo_farm.a"
  "libimo_farm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_farm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
