file(REMOVE_RECURSE
  "libimo_farm.a"
)
