# Empty dependencies file for imo_farm.
# This may be replaced when dependencies are built.
