#include "farm/farm.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/manifest.hh"
#include "common/rng.hh"
#include "core/informing.hh"
#include "farm/proto.hh"
#include "farm/store.hh"
#include "farm/telemetry.hh"
#include "farm/transport.hh"
#include "farm/worker.hh"
#include "sweep/engine.hh"
#include "workloads/suite.hh"

namespace imo::farm
{

namespace
{

std::uint64_t
nowMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
            .count());
}

/** Worker-side fault plan: a fresh PRNG stream per spawned process, so
 *  a replacement for a killed worker draws differently than its
 *  predecessor and retries converge. */
FaultSchedule
scheduleForSpawn(const FaultSchedule &base, std::uint64_t spawn_index)
{
    FaultSchedule s = base;
    s.seed = base.seed + spawn_index * 0x9e3779b97f4a7c15ull;
    return s;
}

// --- Coordinator ----------------------------------------------------

/** One unique content-addressed unit of work: a whole sweep point, or
 *  (window sharding) one measurement window of a sampled point. */
struct Slot
{
    PointKey key;
    sweep::SweepPoint point;
    std::string desc; //!< describePoint(), plus the window for shards

    /** Window shard: which library point to ship with the lease.
     *  library == nullptr marks a whole-point slot. */
    std::shared_ptr<const sample::LivePointLibrary> library;
    std::uint64_t windowIndex = LeaseMsg::noWindow;

    /** Multi-cache group slot: the members served by one shared-pass
     *  lease (empty = a plain point or window slot). The fragment is
     *  then an encodeFragmentBundle() of the members' fragments. */
    std::vector<sweep::SweepPoint> groupPoints;
    std::uint64_t groupConfigs = 0; //!< distinct (L1, L2) classes

    std::vector<std::uint8_t> fragment;
    bool done = false;
    bool queued = false;       //!< sitting in the pending queue
    unsigned attempts = 0;     //!< failure-path leases granted
    int activeLeases = 0;      //!< workers currently running it
    std::uint64_t readyAtMs = 0; //!< backoff gate for re-dispatch
    std::uint64_t leaseStartMs = 0; //!< earliest active lease start
};

/**
 * Coordinator-side view of one worker peer. Local fork+pipe workers
 * (pid > 0) and remote TCP daemons (pid == -1) differ only in how they
 * are created and destroyed; the lease protocol between admission and
 * loss is identical.
 */
struct Peer
{
    std::unique_ptr<Transport> io;
    pid_t pid = -1;    //!< > 0 for a local fork+pipe worker
    bool alive = false;
    bool ready = false; //!< admitted: authenticated Hello accepted
    std::uint64_t nonce = 0;     //!< challenge nonce awaiting its echo
    std::uint64_t admitByMs = 0; //!< admission (handshake) deadline
    long slot = -1;               //!< active lease, -1 when idle
    std::uint64_t deadlineMs = 0; //!< lease expiry (heartbeat-refreshed)
};

class Coordinator
{
  public:
    Coordinator(std::vector<Slot> slots, const FarmOptions &opt,
                ResultStore *store, FarmTelemetry &tel,
                const volatile std::sig_atomic_t *stop)
        : _slots(std::move(slots)), _opt(opt), _store(store), _tel(tel),
          _stop(stop), _inject(opt.faults),
          _nonceRng(opt.faults.seed ^ 0xa11ce5ced0c05eedull)
    {
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            if (_slots[i].done)
                ++_doneCount;
            else
                enqueue(i, 0);
        }
    }

    FarmStats &stats() { return _stats; }

    /** Drive the farm to completion (or failure). @return the error. */
    SimError
    run()
    {
        // A worker dying mid-write must be an EPIPE we handle, not a
        // process-killing SIGPIPE. (Socket sends additionally use
        // MSG_NOSIGNAL, so worker threads sharing this process are
        // safe even after the handler is restored.)
        struct sigaction ignore_pipe{}, old_pipe{};
        ignore_pipe.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

        try {
            if (_opt.listen) {
                _listener.emplace(_opt.listenHost, _opt.listenPort);
                if (_opt.onListen)
                    _opt.onListen(_listener->boundPort());
            }
            const std::uint64_t now = nowMs();
            for (unsigned i = 0; i < _opt.workers && !allDone(); ++i)
                spawnWorker(now);
            loop();
        } catch (const SimException &e) {
            fail(e.error());
        }

        teardown();
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        return _error;
    }

    std::vector<Slot> takeSlots() { return std::move(_slots); }

  private:
    bool allDone() const { return _doneCount == _slots.size(); }
    bool failed() const { return !_error.ok(); }

    void
    fail(SimError error)
    {
        if (_error.ok())
            _error = std::move(error);
    }

    void
    enqueue(std::size_t slot, std::uint64_t ready_at)
    {
        _slots[slot].queued = true;
        _slots[slot].readyAtMs = ready_at;
        _pending.push_back(slot);
        _tel.noteEnqueue(slot, nowMs());
    }

    /** Stable seat index of a peer (its position in the poll set). */
    unsigned
    seatIndex(const Peer &p) const
    {
        return static_cast<unsigned>(&p - _peers.data());
    }

    /** Seat a new peer, reusing a dead seat so the poll set (and the
     *  iterator stability loseWorker-inside-iteration relies on) stays
     *  intact. @return the seated peer. */
    Peer &
    seat(Peer &&p)
    {
        for (Peer &s : _peers) {
            if (!s.alive) {
                s = std::move(p);
                return s;
            }
        }
        _peers.push_back(std::move(p));
        return _peers.back();
    }

    /** Open admission: send the versioned challenge and start the
     *  handshake deadline. */
    void
    sendChallenge(Peer &p, std::uint64_t now)
    {
        p.nonce = _nonceRng.next();
        p.admitByMs = now + _opt.leaseMs;
        ChallengeMsg challenge;
        challenge.nonce = p.nonce;
        challenge.runId = _opt.runId;
        try {
            p.io->sendFrame(FrameType::Challenge,
                            encodeChallenge(challenge));
        } catch (const SimException &) {
            losePeer(p, now);
        }
    }

    void
    spawnWorker(std::uint64_t now)
    {
        int to_pipe[2], from_pipe[2];
        sim_throw_if(::pipe(to_pipe) != 0, ErrCode::WorkerLost,
                     "farm: cannot create worker pipe: %s",
                     std::strerror(errno));
        if (::pipe(from_pipe) != 0) {
            ::close(to_pipe[0]);
            ::close(to_pipe[1]);
            throwSimError(ErrCode::WorkerLost,
                          "farm: cannot create worker pipe: %s",
                          std::strerror(errno));
        }

        const std::uint64_t spawn_index = _spawnCounter++;
        const pid_t pid = ::fork();
        sim_throw_if(pid < 0, ErrCode::WorkerLost,
                     "farm: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: keep only this worker's two pipe ends.
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            for (Peer &p : _peers)
                if (p.alive)
                    p.io->close();
            if (_listener)
                _listener->close();
            try {
                FaultInjector inject(
                    scheduleForSpawn(_opt.faults, spawn_index));
                SessionParams params;
                params.token = _opt.token;
                params.heartbeatMs = _opt.heartbeatMs;
                serveSession(to_pipe[0], from_pipe[1], params, inject,
                             nullptr);
            } catch (const SimException &e) {
                std::fprintf(stderr, "imo-farm worker: %s\n",
                             e.error().format().c_str());
                _exit(1);
            } catch (...) {
                _exit(1);
            }
            _exit(0);
        }

        ::close(to_pipe[0]);
        ::close(from_pipe[1]);

        Peer p;
        p.io = Transport::pipePair(from_pipe[0], to_pipe[1]);
        p.pid = pid;
        p.alive = true;
        Peer &seated = seat(std::move(p));
        _tel.noteSpawn(seatIndex(seated), /*remote=*/false, now);
        sendChallenge(seated, now);
    }

    /** Admit every connection queued on the listener. */
    void
    acceptPeers(std::uint64_t now)
    {
        while (std::unique_ptr<Transport> io = _listener->accept()) {
            Peer p;
            p.io = std::move(io);
            p.pid = -1;
            p.alive = true;
            Peer &seated = seat(std::move(p));
            _tel.noteSpawn(seatIndex(seated), /*remote=*/true, now);
            sendChallenge(seated, now);
        }
    }

    /** The peer died or spoke garbage: kill (local), requeue, replace
     *  (local — a remote daemon replaces itself by reconnecting). */
    void
    losePeer(Peer &p, std::uint64_t now)
    {
        if (!p.alive)
            return;
        ++_stats.workersLost;
        _tel.notePeerLost(seatIndex(p), now);
        if (p.pid > 0) {
            ::kill(p.pid, SIGKILL);
            ::waitpid(p.pid, nullptr, 0);
        }
        p.io->close();
        p.alive = false;
        p.ready = false;
        if (p.slot >= 0) {
            const auto slot = static_cast<std::size_t>(p.slot);
            p.slot = -1;
            --_slots[slot].activeLeases;
            requeueAfterFailure(slot, now);
        }
        if (p.pid > 0 && !failed() && !allDone())
            spawnWorker(now);
    }

    /** Admission denied: tell the peer why (structured AuthFailed) and
     *  drop it. A deliberate rejection, not a lost worker — and no
     *  local respawn, which could only fail the same way forever. */
    void
    rejectPeer(Peer &p, SimError err, std::uint64_t now)
    {
        ++_stats.authFailures;
        _tel.noteAuthReject(seatIndex(p), now);
        warn("farm: %s", err.format().c_str());
        ErrorMsg msg;
        msg.error = std::move(err);
        try {
            p.io->sendFrame(FrameType::AuthReject, encodeError(msg));
        } catch (const SimException &) {
        }
        if (p.pid > 0) {
            ::kill(p.pid, SIGKILL);
            ::waitpid(p.pid, nullptr, 0);
        }
        p.io->close();
        p.alive = false;
        p.ready = false;
    }

    /** First frame from an unadmitted peer: verify the challenge
     *  response. Throws (to the caller's losePeer) on a malformed
     *  payload; a *well-formed* mismatch is an AuthFailed rejection. */
    void
    admitPeer(Peer &p, const Frame &frame, std::uint64_t now)
    {
        const HelloMsg hello = decodeHello(frame.payload);
        if (hello.protoVersion != protocolVersion ||
            hello.schemaVersion != sweep::reportSchemaVersion) {
            rejectPeer(p, SimError{
                ErrCode::AuthFailed,
                simFormat("farm: peer speaks protocol v%u / report "
                          "schema v%u; this coordinator speaks "
                          "v%u / v%u — upgrade the older side",
                          hello.protoVersion, hello.schemaVersion,
                          protocolVersion, sweep::reportSchemaVersion),
                {}}, now);
            return;
        }
        if (hello.response != authDigest(_opt.token, p.nonce)) {
            rejectPeer(p, SimError{
                ErrCode::AuthFailed,
                "farm: peer failed the shared-token challenge; check "
                "--token on both sides",
                {}}, now);
            return;
        }
        p.ready = true;
        _tel.noteAdmit(seatIndex(p), p.pid < 0, now);
        if (p.pid < 0)
            ++_stats.remotesAdmitted;
    }

    void
    requeueAfterFailure(std::size_t slot, std::uint64_t now)
    {
        Slot &s = _slots[slot];
        if (s.done || s.queued || s.activeLeases > 0)
            return; // a twin lease is still running, or already handled
        if (s.attempts >= _opt.maxAttempts) {
            fail(SimError{
                ErrCode::LeaseExpired,
                simFormat("farm: point gave up after %u lease attempts",
                          s.attempts),
                {s.desc}});
            return;
        }
        ++_stats.retries;
        std::uint64_t backoff = _opt.backoffBaseMs;
        for (unsigned i = 1; i < s.attempts && backoff < _opt.backoffCapMs;
             ++i)
            backoff *= 2;
        if (backoff > _opt.backoffCapMs)
            backoff = _opt.backoffCapMs;
        _tel.noteRetry(slot, s.attempts, backoff, now);
        enqueue(slot, now + backoff);
    }

    void
    grantLease(Peer &w, std::size_t slot, bool straggler,
               std::uint64_t now)
    {
        if (_inject.fire(FaultPoint::LeaseWriteFail) && w.pid > 0) {
            // Injected "idle worker died unseen" (OOM-kill, external
            // preemption): kill it and wait for its fd teardown —
            // WNOWAIT leaves the zombie for losePeer() to reap —
            // so the write below hits the genuine EPIPE path.
            ::kill(w.pid, SIGKILL);
            siginfo_t info{};
            ::waitid(P_PID, static_cast<id_t>(w.pid), &info,
                     WEXITED | WNOWAIT);
        }
        LeaseMsg msg;
        msg.slot = slot;
        msg.point = _slots[slot].point;
        if (_slots[slot].library) {
            // Window shard: ship the live point with the lease.
            const Slot &s = _slots[slot];
            msg.windowIndex = s.windowIndex;
            msg.libraryHash = s.library->contentHash;
            const sample::LivePoint &lp =
                s.library->points[s.windowIndex];
            msg.warmImage = lp.warmImage;
            msg.execImage = lp.execImage;
        } else if (!_slots[slot].groupPoints.empty()) {
            msg.groupPoints = _slots[slot].groupPoints;
        }
        try {
            w.io->sendFrame(FrameType::Lease, encodeLease(msg));
        } catch (const SimException &) {
            // The lease never reached the worker. Put the slot back
            // exactly as dispatch() found it (still queued, backoff
            // unchanged) before replacing the worker — w.slot is
            // still -1, so losePeer() alone would orphan the slot
            // with queued=true and the farm would hang forever. A
            // straggler grant has nothing to restore: the original
            // lease is still active.
            if (!straggler)
                _pending.push_back(slot);
            losePeer(w, now);
            return;
        }
        w.slot = static_cast<long>(slot);
        w.deadlineMs = now + _opt.leaseMs;
        Slot &s = _slots[slot];
        if (s.activeLeases++ == 0)
            s.leaseStartMs = now;
        if (straggler) {
            ++_stats.redispatches;
        } else {
            s.queued = false;
            ++s.attempts;
        }
        _tel.noteGrant(slot, seatIndex(w), straggler, s.attempts, now);
    }

    void
    dispatch(std::uint64_t now)
    {
        for (Peer &w : _peers) {
            if (failed() || allDone())
                return;
            if (!w.alive || !w.ready || w.slot >= 0)
                continue;

            // Oldest pending slot whose backoff has elapsed.
            std::size_t pick = _pending.size();
            for (std::size_t i = 0; i < _pending.size(); ++i) {
                if (_slots[_pending[i]].readyAtMs <= now) {
                    pick = i;
                    break;
                }
            }
            if (pick < _pending.size()) {
                const std::size_t slot = _pending[pick];
                _pending.erase(_pending.begin() +
                               static_cast<long>(pick));
                grantLease(w, slot, /*straggler=*/false, now);
                continue;
            }

            // Nothing queued: duplicate the longest-running healthy
            // lease past the straggler threshold. First result wins;
            // the duplicate doubles as a determinism cross-check.
            if (_opt.stragglerMs == 0)
                continue;
            std::size_t straggler = _slots.size();
            for (std::size_t s = 0; s < _slots.size(); ++s) {
                const Slot &slot = _slots[s];
                if (slot.done || slot.activeLeases != 1 ||
                    now - slot.leaseStartMs < _opt.stragglerMs)
                    continue;
                if (straggler == _slots.size() ||
                    slot.leaseStartMs < _slots[straggler].leaseStartMs)
                    straggler = s;
            }
            if (straggler < _slots.size())
                grantLease(w, straggler, /*straggler=*/true, now);
        }
    }

    void
    expireLeases(std::uint64_t now)
    {
        for (Peer &w : _peers) {
            if (!w.alive)
                continue;
            if (!w.ready) {
                // Connected but never finished the handshake: a
                // half-open socket or a peer wedged mid-Hello.
                if (now >= w.admitByMs)
                    losePeer(w, now);
                continue;
            }
            if (w.slot < 0 || now < w.deadlineMs)
                continue;
            ++_stats.leasesExpired;
            _tel.noteLeaseExpired(seatIndex(w),
                                  static_cast<std::size_t>(w.slot), now);
            losePeer(w, now);
        }
    }

    /**
     * Fail fast instead of waiting forever when the farm cannot make
     * progress: if fewer than minWorkers admitted peers have been
     * available for a full lease period while work is pending, there
     * is no evidence more capacity is coming.
     */
    void
    checkMinWorkers(std::uint64_t now)
    {
        unsigned avail = 0;
        for (const Peer &p : _peers)
            if (p.alive && p.ready)
                ++avail;
        if (avail >= _opt.minWorkers) {
            _belowMinSinceMs = 0;
            return;
        }
        if (_belowMinSinceMs == 0) {
            _belowMinSinceMs = now;
            return;
        }
        if (now - _belowMinSinceMs <= _opt.leaseMs)
            return;
        fail(SimError{
            ErrCode::WorkerLost,
            simFormat("farm: only %u of the required --min-workers=%u "
                      "workers have been available for %llums; "
                      "aborting instead of waiting forever — finished "
                      "points are in the result store",
                      avail, _opt.minWorkers,
                      static_cast<unsigned long long>(
                          now - _belowMinSinceMs)),
            {}});
    }

    void
    acceptResult(Peer &w, ResultMsg msg, std::uint64_t now)
    {
        sim_throw_if(w.slot < 0 ||
                         msg.slot != static_cast<std::uint64_t>(w.slot),
                     ErrCode::WorkerLost,
                     "farm: worker delivered slot %llu while leased "
                     "slot %ld",
                     static_cast<unsigned long long>(msg.slot), w.slot);
        Slot &s = _slots[msg.slot];
        _tel.noteResult(msg.slot, seatIndex(w), s.done,
                        msg.fragment.size(), now);
        w.slot = -1;
        --s.activeLeases;

        if (s.done) {
            // A straggler's twin finished too: the determinism
            // contract says both runs produced identical bytes.
            ++_stats.duplicateResults;
            if (msg.fragment != s.fragment)
                fail(SimError{
                    ErrCode::ResultMismatch,
                    "farm: duplicate results for one point disagree",
                    {s.desc}});
            return;
        }

        s.fragment = std::move(msg.fragment);
        s.done = true;
        ++_doneCount;
        ++_stats.simulated;
        if (_store)
            storeResult(s, now);
    }

    /** The simulator rejected the worker's point: deterministic, so
     *  fail the farm with the worker's own diagnosis, not a generic
     *  LeaseExpired after maxAttempts wasted re-simulations. */
    void
    acceptWorkerError(Peer &w, ErrorMsg msg)
    {
        sim_throw_if(w.slot < 0 ||
                         msg.slot != static_cast<std::uint64_t>(w.slot),
                     ErrCode::WorkerLost,
                     "farm: worker reported an error for slot %llu "
                     "while leased slot %ld",
                     static_cast<unsigned long long>(msg.slot), w.slot);
        Slot &s = _slots[msg.slot];
        w.slot = -1;
        --s.activeLeases;

        if (s.done) {
            // A straggler twin already delivered a *successful* result
            // for this point: determinism is broken either way.
            fail(SimError{ErrCode::ResultMismatch,
                          "farm: duplicate runs of one point disagree "
                          "(one succeeded, one failed)",
                          {msg.error.format(),
                           s.desc}});
            return;
        }
        SimError err = std::move(msg.error);
        err.context.push_back(s.desc);
        fail(std::move(err));
    }

    void
    storeResult(Slot &s, std::uint64_t now)
    {
        (void)now;
        const std::uint64_t put_start = nowMs();
        try {
            _store->put(s.key, s.fragment);
        } catch (const SimException &e) {
            // A write failure only costs memoization; the in-memory
            // fragment still reaches the report.
            warn("farm: %s", e.error().format().c_str());
            return;
        }
        const std::uint64_t put_end = nowMs();
        _tel.noteStorePut(static_cast<std::size_t>(&s - _slots.data()),
                          put_end - put_start, put_end);
        if (_inject.fire(FaultPoint::StoreBitFlip))
            flipStoredBit(s);
    }

    /** Injected disk rot: flip one payload bit of the record just
     *  written. The integrity pass (or the next run's CRC check) must
     *  catch and repair it. */
    void
    flipStoredBit(const Slot &s)
    {
        const std::string path = _store->recordPath(s.key);
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        if (!f)
            return;
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        if (size > 0) {
            const long at = size / 2;
            std::fseek(f, at, SEEK_SET);
            int byte = std::fgetc(f);
            if (byte != EOF) {
                std::fseek(f, at, SEEK_SET);
                std::fputc(byte ^ 0x10, f);
            }
        }
        std::fclose(f);
    }

    /** Drain everything readable from one peer, then dispatch every
     *  complete frame. */
    void
    drainPeer(Peer &w, std::uint64_t now)
    {
        bool open;
        try {
            open = w.io->pump();
        } catch (const SimException &) {
            losePeer(w, now); // unparseable stream
            return;
        }

        Frame frame;
        for (;;) {
            try {
                if (!w.io->nextFrame(&frame))
                    break;
            } catch (const SimException &) {
                losePeer(w, now);
                return;
            }

            if (!w.ready) {
                // Admission: the first frame must be the challenge
                // response; anything else is protocol garbage.
                if (frame.type != FrameType::Hello) {
                    losePeer(w, now);
                    return;
                }
                try {
                    admitPeer(w, frame, now);
                } catch (const SimException &) {
                    losePeer(w, now); // malformed Hello payload
                    return;
                }
                if (!w.alive)
                    return; // rejected
                continue;
            }

            switch (frame.type) {
            case FrameType::Heartbeat:
                try {
                    if (w.slot >= 0 &&
                        decodeHeartbeat(frame.payload) ==
                            static_cast<std::uint64_t>(w.slot)) {
                        w.deadlineMs = now + _opt.leaseMs;
                        _tel.noteHeartbeat(
                            seatIndex(w),
                            static_cast<std::size_t>(w.slot), now);
                    }
                } catch (const SimException &) {
                    losePeer(w, now);
                    return;
                }
                break;
            case FrameType::Stats:
                // Observational only: record the worker's per-point
                // telemetry, never let it steer scheduling.
                try {
                    const StatsMsg msg = decodeStats(frame.payload);
                    sim_throw_if(
                        w.slot < 0 ||
                            msg.slot !=
                                static_cast<std::uint64_t>(w.slot),
                        ErrCode::WorkerLost,
                        "farm: worker sent stats for slot %llu while "
                        "leased slot %ld",
                        static_cast<unsigned long long>(msg.slot),
                        w.slot);
                    _tel.noteWorkerStats(msg.slot, msg, now);
                } catch (const SimException &) {
                    losePeer(w, now);
                    return;
                }
                break;
            case FrameType::Result:
                try {
                    acceptResult(w, decodeResult(frame.payload), now);
                } catch (const SimException &) {
                    losePeer(w, now);
                    return;
                }
                if (failed())
                    return;
                break;
            case FrameType::Error:
                try {
                    acceptWorkerError(w, decodeError(frame.payload));
                } catch (const SimException &) {
                    losePeer(w, now);
                    return;
                }
                if (failed())
                    return;
                break;
            default:
                losePeer(w, now); // Lease/Shutdown/a second Hello:
                return;           // no business here
            }
            if (!w.alive)
                return;
        }

        if (!open)
            losePeer(w, now); // EOF (after honoring buffered frames)
    }

    void
    loop()
    {
        while (!allDone() && !failed()) {
            if (_stop && *_stop) {
                fail(SimError{ErrCode::Interrupted,
                              "farm interrupted; finished points are in "
                              "the result store — re-run with --resume "
                              "to continue",
                              {}});
                break;
            }
            std::uint64_t now = nowMs();
            unsigned active = 0;
            for (const Peer &p : _peers)
                if (p.alive && p.ready)
                    ++active;
            _tel.tick(_doneCount, _slots.size(), active, _stats.retries,
                      now);
            expireLeases(now);
            checkMinWorkers(now);
            if (failed())
                break;
            dispatch(now);
            if (allDone() || failed())
                break;

            // Poll set: the listener, every alive peer's read side,
            // and the write side of any peer with queued frame bytes
            // (short-write completion).
            std::vector<struct pollfd> fds;
            fds.reserve(_peers.size() + 1);
            const std::size_t listener_at = fds.size();
            if (_listener)
                fds.push_back({_listener->fd(), POLLIN, 0});
            for (const Peer &p : _peers) {
                if (!p.alive)
                    continue;
                short events = POLLIN;
                if (p.io->wantsWrite() &&
                    p.io->writeFd() == p.io->readFd())
                    events |= POLLOUT;
                fds.push_back({p.io->readFd(), events, 0});
                if (p.io->wantsWrite() &&
                    p.io->writeFd() != p.io->readFd())
                    fds.push_back({p.io->writeFd(), POLLOUT, 0});
            }
            if (fds.empty()) {
                // Everything pending is in backoff; just wait it out.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            const int rc =
                ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), 50);
            if (rc < 0 && errno != EINTR)
                throwSimError(ErrCode::WorkerLost,
                              "farm: poll failed: %s",
                              std::strerror(errno));
            if (rc <= 0)
                continue;

            now = nowMs();
            if (_listener && (fds[listener_at].revents & POLLIN))
                acceptPeers(now);
            for (std::size_t i = 0; i < fds.size(); ++i) {
                if (_listener && i == listener_at)
                    continue;
                const struct pollfd &fd = fds[i];
                if (fd.revents == 0)
                    continue;
                Peer *peer = nullptr;
                for (Peer &p : _peers) {
                    if (p.alive && (p.io->readFd() == fd.fd ||
                                    p.io->writeFd() == fd.fd)) {
                        peer = &p;
                        break;
                    }
                }
                if (!peer)
                    continue; // lost (or replaced) since poll returned
                if (fd.revents & POLLOUT) {
                    try {
                        peer->io->flush();
                    } catch (const SimException &) {
                        losePeer(*peer, now);
                        continue;
                    }
                }
                if (fd.revents & (POLLIN | POLLHUP | POLLERR))
                    drainPeer(*peer, now);
                if (failed())
                    break;
            }
        }
    }

    void
    teardown()
    {
        for (Peer &p : _peers) {
            if (!p.alive)
                continue;
            try {
                p.io->sendFrame(FrameType::Shutdown, {});
            } catch (const SimException &) {
            }
        }
        // Remote daemons exit on the Shutdown frame (or reconnect and
        // give up when nobody answers); nothing to reap here.
        for (Peer &p : _peers) {
            if (p.alive && p.pid < 0) {
                p.io->close();
                p.alive = false;
            }
        }

        // Brief grace for clean local exits, then SIGKILL the rest
        // (stalled or mid-simulation workers have nothing we still
        // need).
        const std::uint64_t grace_until = nowMs() + 200;
        for (;;) {
            bool any_alive = false;
            for (Peer &p : _peers) {
                if (!p.alive)
                    continue;
                if (::waitpid(p.pid, nullptr, WNOHANG) == p.pid) {
                    p.io->close();
                    p.alive = false;
                } else {
                    any_alive = true;
                }
            }
            if (!any_alive || nowMs() >= grace_until)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        for (Peer &p : _peers) {
            if (!p.alive)
                continue;
            ::kill(p.pid, SIGKILL);
            ::waitpid(p.pid, nullptr, 0);
            p.io->close();
            p.alive = false;
        }
        if (_listener)
            _listener->close();
    }

    std::vector<Slot> _slots;
    const FarmOptions &_opt;
    ResultStore *_store;
    FarmTelemetry &_tel;
    const volatile std::sig_atomic_t *_stop;
    FaultInjector _inject; //!< coordinator-side draws (StoreBitFlip,
                           //!< LeaseWriteFail)
    Rng _nonceRng;         //!< deterministic admission nonces

    std::optional<Listener> _listener;
    std::vector<Peer> _peers;
    std::vector<std::size_t> _pending; //!< slot indices awaiting a lease
    std::size_t _doneCount = 0;
    std::uint64_t _spawnCounter = 0;
    std::uint64_t _belowMinSinceMs = 0; //!< min-workers watchdog epoch
    FarmStats _stats;
    SimError _error;
};

/** Input checks shared by runFarm() and runFarmWindows(). */
void
validateFarmOptions(const FarmOptions &options)
{
    sim_throw_if(options.workers == 0 && !options.listen,
                 ErrCode::BadConfig,
                 "farm: worker count must be at least 1 (0 means "
                 "remote-only and requires --listen)");
    sim_throw_if(options.maxAttempts == 0, ErrCode::BadConfig,
                 "farm: lease attempt budget must be at least 1");
    sim_throw_if(options.leaseMs == 0, ErrCode::BadConfig,
                 "farm: lease deadline must be nonzero");
    sim_throw_if(options.heartbeatMs == 0, ErrCode::BadConfig,
                 "farm: --heartbeat-ms must be nonzero");
    sim_throw_if(options.heartbeatMs >= options.leaseMs,
                 ErrCode::BadConfig,
                 "farm: --heartbeat-ms (%llu) must be smaller than "
                 "--lease-ms (%llu), or every lease expires between "
                 "heartbeats",
                 static_cast<unsigned long long>(options.heartbeatMs),
                 static_cast<unsigned long long>(options.leaseMs));
    sim_throw_if(options.minWorkers == 0, ErrCode::BadConfig,
                 "farm: --min-workers must be at least 1");
}

/**
 * Shared back half of runFarm() / runFarmWindows(): telemetry setup,
 * store pre-hits, the coordinator itself, the post-run integrity pass,
 * and the stats fold. Fills everything in @p res except fragments.
 * @return the driven slots.
 */
std::vector<Slot>
driveSlots(std::vector<Slot> slots, const FarmOptions &opt,
           std::uint64_t farm_start, FarmResult &res,
           const volatile std::sig_atomic_t *stop)
{
    res.stats.uniqueSlots = slots.size();

    FarmTelemetry tel(opt, farm_start);
    for (std::size_t i = 0; i < slots.size(); ++i)
        tel.describeSlot(i, slots[i].key.hex(), slots[i].desc,
                         slots[i].groupPoints.size(),
                         slots[i].groupConfigs);

    std::optional<ResultStore> store;
    if (!opt.storeDir.empty()) {
        store.emplace(opt.storeDir, opt.resume);
        for (std::size_t i = 0; i < slots.size(); ++i) {
            Slot &s = slots[i];
            if (store->get(s.key, &s.fragment) == StoreGet::Hit) {
                s.done = true;
                ++res.stats.storeHits;
                tel.noteStoreHit(i, nowMs());
            }
        }
    }

    Coordinator coord(std::move(slots), opt,
                      store ? &*store : nullptr, tel, stop);
    res.error = coord.run();
    res.stats.simulated = coord.stats().simulated;
    res.stats.retries = coord.stats().retries;
    res.stats.workersLost = coord.stats().workersLost;
    res.stats.leasesExpired = coord.stats().leasesExpired;
    res.stats.redispatches = coord.stats().redispatches;
    res.stats.duplicateResults = coord.stats().duplicateResults;
    res.stats.authFailures = coord.stats().authFailures;
    res.stats.remotesAdmitted = coord.stats().remotesAdmitted;
    slots = coord.takeSlots();

    res.ok = res.error.ok();
    if (res.ok && store) {
        // Integrity pass: every record on disk must round-trip before
        // the report ships; a record the fault injector rotted (or a
        // foreign writer damaged) is repaired from memory.
        for (const Slot &s : slots)
            store->verifyOrRepair(s.key, s.fragment);
    }
    if (store)
        res.stats.storeCorrupt = store->corruptRecords();

    const std::uint64_t farm_end = nowMs();
    res.elapsedMs = farm_end - farm_start;
    std::size_t done_slots = 0;
    for (const Slot &s : slots)
        if (s.done)
            ++done_slots;
    const std::string status =
        res.ok ? "ok"
               : (res.error.code == ErrCode::Interrupted ? "interrupted"
                                                         : "failed");
    tel.finish(status, done_slots, slots.size(), res.stats.retries,
               farm_end);
    tel.dumpStats(res.stats, res.elapsedMs, &res.statsText,
                  &res.statsJson);
    res.slotRecords = tel.takeSlotRecords();
    return slots;
}

} // anonymous namespace

FarmResult
runFarm(const std::vector<sweep::SweepPoint> &points,
        const FarmOptions &options,
        const volatile std::sig_atomic_t *stop)
{
    validateFarmOptions(options);

    // Telemetry identity: stamp a run id before anything observable
    // happens (the Challenge frame, progress files, and the manifest
    // all carry it).
    FarmOptions opt = options;
    if (opt.runId.empty())
        opt.runId = manifest::makeRunId("imo-farm");

    const std::uint64_t farm_start = nowMs();
    FarmResult res;
    res.runId = opt.runId;
    res.stats.points = points.size();

    // Multi-cache planning first: every grouped point is served by its
    // group's single shared-pass lease and skips per-point content
    // addressing entirely. The plan is a pure function of the point
    // list, so a resumed farm derives identical slots and keys.
    std::vector<std::vector<std::size_t>> plan;
    std::vector<long> group_of(points.size(), -1);
    if (opt.multiCache) {
        plan = sweep::planMultiCacheGroups(points);
        for (std::size_t g = 0; g < plan.size(); ++g)
            for (const std::size_t i : plan[g])
                group_of[i] = static_cast<long>(g);
        res.stats.multiCacheGroups = plan.size();
    }

    // Content addressing builds and instruments each point's program,
    // which can rival a short simulation in cost — so first collapse
    // structurally identical points (their wire encoding covers every
    // field) and fingerprint only the distinct ones, in parallel
    // across the worker budget.
    std::vector<sweep::SweepPoint> distinct;
    std::map<std::string, std::size_t> by_struct;
    std::vector<std::size_t> struct_of(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (group_of[i] >= 0)
            continue;
        LeaseMsg probe;
        probe.point = points[i];
        const std::vector<std::uint8_t> enc = encodeLease(probe);
        const auto [it, inserted] = by_struct.emplace(
            std::string(enc.begin(), enc.end()), distinct.size());
        if (inserted)
            distinct.push_back(points[i]);
        struct_of[i] = it->second;
    }
    std::vector<std::function<PointKey()>> key_tasks;
    key_tasks.reserve(distinct.size() + plan.size());
    for (const sweep::SweepPoint &p : distinct)
        key_tasks.emplace_back([&p] { return keyForPoint(p); });
    std::vector<std::vector<sweep::SweepPoint>> group_members(
        plan.size());
    for (std::size_t g = 0; g < plan.size(); ++g) {
        for (const std::size_t i : plan[g])
            group_members[g].push_back(points[i]);
        const std::vector<sweep::SweepPoint> &m = group_members[g];
        key_tasks.emplace_back([&m] { return keyForGroup(m); });
    }
    const std::vector<PointKey> keys =
        sweep::runOrdered(key_tasks, std::max(1u, options.workers));

    // Collapse content-identical points into unique slots: overlapping
    // grids simulate once, and every input index maps to its slot.
    std::vector<Slot> slots;
    std::map<std::string, std::size_t> slot_by_key;
    std::vector<std::size_t> slot_of(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (group_of[i] >= 0)
            continue;
        const PointKey &key = keys[struct_of[i]];
        const auto [it, inserted] =
            slot_by_key.emplace(key.hex(), slots.size());
        if (inserted) {
            Slot s;
            s.key = key;
            s.point = points[i];
            s.desc = sweep::describePoint(points[i]);
            slots.push_back(std::move(s));
        }
        slot_of[i] = it->second;
    }
    std::vector<std::size_t> group_slot(plan.size());
    for (std::size_t g = 0; g < plan.size(); ++g) {
        Slot s;
        s.key = keys[distinct.size() + g];
        s.point = group_members[g].front();
        s.groupPoints = group_members[g];
        // Same distinct-class count the shared pass derives, so the
        // manifest's "configs" means one thing farm-wide.
        for (const sweep::SweepPoint &p : s.groupPoints) {
            const pipeline::MachineConfig cfg = p.resolveConfig();
            bool fresh = true;
            for (std::size_t j = 0; fresh && j < s.groupConfigs; ++j) {
                const pipeline::MachineConfig other =
                    s.groupPoints[j].resolveConfig();
                fresh = !(other.l1.sizeBytes == cfg.l1.sizeBytes &&
                          other.l1.lineBytes == cfg.l1.lineBytes &&
                          other.l1.assoc == cfg.l1.assoc &&
                          other.l2.sizeBytes == cfg.l2.sizeBytes &&
                          other.l2.lineBytes == cfg.l2.lineBytes &&
                          other.l2.assoc == cfg.l2.assoc);
            }
            if (fresh)
                ++s.groupConfigs;
        }
        s.desc = simFormat(
            "multi-cache group of %zu (%llu configs): %s",
            s.groupPoints.size(),
            static_cast<unsigned long long>(s.groupConfigs),
            sweep::describePoint(s.point).c_str());
        group_slot[g] = slots.size();
        slots.push_back(std::move(s));
        res.stats.pointsGrouped += plan[g].size();
    }

    slots = driveSlots(std::move(slots), opt, farm_start, res, stop);

    if (res.ok) {
        // Split every group bundle back into member fragments before
        // assembling the report, validating the member count against
        // the plan (a short bundle is a protocol violation, not a
        // retryable fault).
        std::vector<std::vector<std::vector<std::uint8_t>>> split(
            plan.size());
        for (std::size_t g = 0; g < plan.size(); ++g) {
            try {
                split[g] = decodeFragmentBundle(
                    slots[group_slot[g]].fragment);
                sim_throw_if(split[g].size() != plan[g].size(),
                             ErrCode::WorkerLost,
                             "farm: multi-cache group bundle holds %zu "
                             "fragments for %zu members",
                             split[g].size(), plan[g].size());
            } catch (const SimException &e) {
                res.ok = false;
                res.error = e.error();
                return res;
            }
        }
        std::vector<std::size_t> member_pos(plan.size(), 0);
        res.fragments.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (group_of[i] >= 0) {
                const std::size_t g =
                    static_cast<std::size_t>(group_of[i]);
                res.fragments.push_back(split[g][member_pos[g]++]);
            } else {
                res.fragments.push_back(slots[slot_of[i]].fragment);
            }
        }
    }
    return res;
}

FarmResult
runFarmWindows(const sweep::SweepPoint &point,
               const std::shared_ptr<const sample::LivePointLibrary>
                   &library,
               const FarmOptions &options,
               const volatile std::sig_atomic_t *stop)
{
    validateFarmOptions(options);
    sim_throw_if(!library, ErrCode::BadConfig,
                 "farm: window sharding needs a live-point library");
    sim_throw_if(point.sample.empty(), ErrCode::BadConfig,
                 "farm: window sharding needs a sampled point "
                 "(--samples U:W:M)");
    sim_throw_if(!sweep::libraryMatchesPoint(*library, point),
                 ErrCode::BadConfig,
                 "farm: live-point library does not match the point "
                 "(machine kind, workload program, U:W:M schedule, and "
                 "capture digest must all agree)");

    FarmOptions opt = options;
    if (opt.runId.empty())
        opt.runId = manifest::makeRunId("imo-farm");

    const std::uint64_t farm_start = nowMs();
    FarmResult res;
    res.runId = opt.runId;
    res.stats.points = library->points.size();

    // One slot per measurement window; the lease ships the window's
    // live point, so workers need neither the library file nor any
    // shared filesystem.
    const std::string desc = sweep::describePoint(point);
    std::vector<Slot> slots;
    slots.reserve(library->points.size());
    for (std::size_t w = 0; w < library->points.size(); ++w) {
        Slot s;
        s.key = keyForWindow(point, library->contentHash, w);
        s.point = point;
        s.desc = simFormat("%s window %zu/%zu", desc.c_str(), w,
                           library->points.size());
        s.library = library;
        s.windowIndex = w;
        slots.push_back(std::move(s));
    }

    slots = driveSlots(std::move(slots), opt, farm_start, res, stop);
    if (!res.ok)
        return res;

    // Fold the shards in window order — the exact merge the sequential
    // sampler performs — into the point's estimate, then emit its one
    // report fragment. Byte-identical to imo-sweep over this point.
    std::vector<sample::WindowSample> samples;
    samples.reserve(slots.size());
    for (const Slot &s : slots)
        samples.push_back(sample::decodeWindowSample(
            std::string(s.fragment.begin(), s.fragment.end())));

    workloads::WorkloadParams wp;
    wp.scale = point.scale;
    wp.seed = point.seed;
    const isa::Program prog =
        core::instrument(workloads::build(point.workload, wp),
                         point.mode, {.length = point.handlerLen});
    sample::Sampler sampler(prog, point.resolveConfig(),
                            sample::SampleParams::parse(point.sample));
    sampler.setLibrary(library);

    sweep::SweepOutcome outcome;
    outcome.point = point;
    outcome.estimate = sampler.runFromWindowSamples(samples);

    std::ostringstream fragment;
    sweep::writePointJson(fragment, outcome);
    const std::string text = fragment.str();
    res.fragments.emplace_back(text.begin(), text.end());
    return res;
}

void
writeFarmReportJson(std::ostream &os, const FarmResult &result)
{
    os << sweep::reportJsonPrefix;
    bool first = true;
    for (const std::vector<std::uint8_t> &frag : result.fragments) {
        if (!first)
            os << ',';
        first = false;
        os.write(reinterpret_cast<const char *>(frag.data()),
                 static_cast<std::streamsize>(frag.size()));
    }
    os << sweep::reportJsonSuffix;
}

} // namespace imo::farm
