#include "farm/farm.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/logging.hh"
#include "farm/proto.hh"
#include "farm/store.hh"
#include "sweep/engine.hh"

namespace imo::farm
{

namespace
{

std::uint64_t
nowMs()
{
    using namespace std::chrono;
    return static_cast<std::uint64_t>(
        duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
            .count());
}

/** Worker-side fault plan: a fresh PRNG stream per spawned process, so
 *  a replacement for a killed worker draws differently than its
 *  predecessor and retries converge. */
FaultSchedule
scheduleForSpawn(const FaultSchedule &base, std::uint64_t spawn_index)
{
    FaultSchedule s = base;
    s.seed = base.seed + spawn_index * 0x9e3779b97f4a7c15ull;
    return s;
}

// --- Worker process -------------------------------------------------

/**
 * Worker main loop, run in a fork()ed child. Blocking reads on
 * @p rfd, frames out on @p wfd. Never returns normally to the
 * caller's stack — the child _exit()s.
 */
void
workerMain(int rfd, int wfd, const FarmOptions &opt,
           std::uint64_t spawn_index)
{
    FaultInjector inject(scheduleForSpawn(opt.faults, spawn_index));

    // The heartbeat thread and the main thread share the result pipe;
    // frames must not interleave mid-frame.
    std::mutex write_mutex;
    const auto send = [&](FrameType type,
                          const std::vector<std::uint8_t> &payload) {
        std::lock_guard<std::mutex> lock(write_mutex);
        writeFrame(wfd, type, payload);
    };

    send(FrameType::Hello, {});

    Frame frame;
    while (readFrame(rfd, &frame)) {
        if (frame.type == FrameType::Shutdown)
            break;
        sim_throw_if(frame.type != FrameType::Lease, ErrCode::WorkerLost,
                     "farm worker: unexpected frame type %u from "
                     "coordinator",
                     static_cast<unsigned>(frame.type));
        const LeaseMsg lease = decodeLease(frame.payload);

        if (inject.fire(FaultPoint::WorkerKill)) {
            // Crash / preemption: die without a word mid-lease.
            ::kill(::getpid(), SIGKILL);
        }
        if (inject.fire(FaultPoint::WorkerStall)) {
            // Hang without heartbeats; the coordinator's lease expiry
            // reclaims the slot and SIGKILLs us.
            for (;;)
                ::pause();
        }

        // Heartbeat while the simulation runs, so a long point is
        // distinguishable from a dead worker.
        std::atomic<bool> beat{true};
        std::thread heartbeat([&] {
            while (beat.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(opt.heartbeatMs));
                if (!beat.load(std::memory_order_relaxed))
                    break;
                try {
                    send(FrameType::Heartbeat,
                         encodeHeartbeat(lease.slot));
                } catch (const SimException &) {
                    break; // coordinator is gone; main loop will see EOF
                }
            }
        });

        std::ostringstream fragment;
        bool sim_ok = true;
        SimError sim_err;
        try {
            sweep::writePointJson(fragment,
                                  sweep::runPoint(lease.point));
        } catch (const SimException &e) {
            sim_ok = false;
            sim_err = e.error();
        }
        beat.store(false, std::memory_order_relaxed);
        heartbeat.join();

        if (!sim_ok) {
            // A point the simulator itself rejects fails
            // deterministically — retrying cannot help. Carry the
            // structured diagnosis back so the coordinator fails the
            // farm fast with the real error instead of burning the
            // lease/retry budget.
            std::fprintf(stderr, "imo-farm worker: point failed: %s\n",
                         sim_err.format().c_str());
            ErrorMsg err;
            err.slot = lease.slot;
            err.error = std::move(sim_err);
            send(FrameType::Error, encodeError(err));
            continue;
        }

        if (inject.fire(FaultPoint::DroppedResult)) {
            // Completed but the result is lost in transit: fall
            // silent. The lease expires and the point is retried.
            for (;;)
                ::pause();
        }

        ResultMsg result;
        result.slot = lease.slot;
        const std::string &text = fragment.str();
        result.fragment.assign(text.begin(), text.end());
        send(FrameType::Result, encodeResult(result));
    }
}

// --- Coordinator ----------------------------------------------------

/** One unique content-addressed unit of work. */
struct Slot
{
    PointKey key;
    sweep::SweepPoint point;
    std::vector<std::uint8_t> fragment;
    bool done = false;
    bool queued = false;       //!< sitting in the pending queue
    unsigned attempts = 0;     //!< failure-path leases granted
    int activeLeases = 0;      //!< workers currently running it
    std::uint64_t readyAtMs = 0; //!< backoff gate for re-dispatch
    std::uint64_t leaseStartMs = 0; //!< earliest active lease start
};

/** Coordinator-side view of one worker process. */
struct Worker
{
    pid_t pid = -1;
    int toFd = -1;   //!< leases/shutdown out
    int fromFd = -1; //!< hello/heartbeat/result in
    FrameParser parser;
    bool alive = false;
    bool ready = false;           //!< Hello received
    long slot = -1;               //!< active lease, -1 when idle
    std::uint64_t deadlineMs = 0; //!< lease expiry (heartbeat-refreshed)
};

class Coordinator
{
  public:
    Coordinator(std::vector<Slot> slots, const FarmOptions &opt,
                ResultStore *store,
                const volatile std::sig_atomic_t *stop)
        : _slots(std::move(slots)), _opt(opt), _store(store), _stop(stop),
          _inject(opt.faults)
    {
        for (std::size_t i = 0; i < _slots.size(); ++i) {
            if (_slots[i].done)
                ++_doneCount;
            else
                enqueue(i, 0);
        }
    }

    FarmStats &stats() { return _stats; }

    /** Drive the farm to completion (or failure). @return the error. */
    SimError
    run()
    {
        // A worker dying mid-write must be an EPIPE we handle, not a
        // process-killing SIGPIPE.
        struct sigaction ignore_pipe{}, old_pipe{};
        ignore_pipe.sa_handler = SIG_IGN;
        ::sigaction(SIGPIPE, &ignore_pipe, &old_pipe);

        try {
            for (unsigned i = 0; i < _opt.workers && !allDone(); ++i)
                spawnWorker();
            loop();
        } catch (const SimException &e) {
            fail(e.error());
        }

        teardown();
        ::sigaction(SIGPIPE, &old_pipe, nullptr);
        return _error;
    }

    std::vector<Slot> takeSlots() { return std::move(_slots); }

  private:
    bool allDone() const { return _doneCount == _slots.size(); }
    bool failed() const { return !_error.ok(); }

    void
    fail(SimError error)
    {
        if (_error.ok())
            _error = std::move(error);
    }

    void
    enqueue(std::size_t slot, std::uint64_t ready_at)
    {
        _slots[slot].queued = true;
        _slots[slot].readyAtMs = ready_at;
        _pending.push_back(slot);
    }

    void
    spawnWorker()
    {
        int to_pipe[2], from_pipe[2];
        sim_throw_if(::pipe(to_pipe) != 0, ErrCode::WorkerLost,
                     "farm: cannot create worker pipe: %s",
                     std::strerror(errno));
        if (::pipe(from_pipe) != 0) {
            ::close(to_pipe[0]);
            ::close(to_pipe[1]);
            throwSimError(ErrCode::WorkerLost,
                          "farm: cannot create worker pipe: %s",
                          std::strerror(errno));
        }

        const std::uint64_t spawn_index = _spawnCounter++;
        const pid_t pid = ::fork();
        sim_throw_if(pid < 0, ErrCode::WorkerLost,
                     "farm: fork failed: %s", std::strerror(errno));
        if (pid == 0) {
            // Child: keep only this worker's two pipe ends.
            ::close(to_pipe[1]);
            ::close(from_pipe[0]);
            for (const Worker &w : _workers) {
                if (!w.alive)
                    continue;
                ::close(w.toFd);
                ::close(w.fromFd);
            }
            try {
                workerMain(to_pipe[0], from_pipe[1], _opt, spawn_index);
            } catch (const SimException &e) {
                std::fprintf(stderr, "imo-farm worker: %s\n",
                             e.error().format().c_str());
                _exit(1);
            } catch (...) {
                _exit(1);
            }
            _exit(0);
        }

        ::close(to_pipe[0]);
        ::close(from_pipe[1]);
        ::fcntl(from_pipe[0], F_SETFL,
                ::fcntl(from_pipe[0], F_GETFL) | O_NONBLOCK);

        Worker w;
        w.pid = pid;
        w.toFd = to_pipe[1];
        w.fromFd = from_pipe[0];
        w.alive = true;
        // Reuse a dead worker's seat so the poll set stays compact.
        for (Worker &seat : _workers) {
            if (!seat.alive) {
                seat = std::move(w);
                return;
            }
        }
        _workers.push_back(std::move(w));
    }

    /** The worker died or spoke garbage: kill, reap, requeue, replace. */
    void
    loseWorker(Worker &w, std::uint64_t now)
    {
        if (!w.alive)
            return;
        ++_stats.workersLost;
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, nullptr, 0);
        ::close(w.toFd);
        ::close(w.fromFd);
        w.alive = false;
        w.ready = false;
        if (w.slot >= 0) {
            const auto slot = static_cast<std::size_t>(w.slot);
            w.slot = -1;
            --_slots[slot].activeLeases;
            requeueAfterFailure(slot, now);
        }
        if (!failed() && !allDone())
            spawnWorker();
    }

    void
    requeueAfterFailure(std::size_t slot, std::uint64_t now)
    {
        Slot &s = _slots[slot];
        if (s.done || s.queued || s.activeLeases > 0)
            return; // a twin lease is still running, or already handled
        if (s.attempts >= _opt.maxAttempts) {
            fail(SimError{
                ErrCode::LeaseExpired,
                simFormat("farm: point gave up after %u lease attempts",
                          s.attempts),
                {sweep::describePoint(s.point)}});
            return;
        }
        ++_stats.retries;
        std::uint64_t backoff = _opt.backoffBaseMs;
        for (unsigned i = 1; i < s.attempts && backoff < _opt.backoffCapMs;
             ++i)
            backoff *= 2;
        if (backoff > _opt.backoffCapMs)
            backoff = _opt.backoffCapMs;
        enqueue(slot, now + backoff);
    }

    void
    grantLease(Worker &w, std::size_t slot, bool straggler,
               std::uint64_t now)
    {
        if (_inject.fire(FaultPoint::LeaseWriteFail)) {
            // Injected "idle worker died unseen" (OOM-kill, external
            // preemption): kill it and wait for its fd teardown —
            // WNOWAIT leaves the zombie for loseWorker() to reap —
            // so the write below hits the genuine EPIPE path.
            ::kill(w.pid, SIGKILL);
            siginfo_t info{};
            ::waitid(P_PID, static_cast<id_t>(w.pid), &info,
                     WEXITED | WNOWAIT);
        }
        LeaseMsg msg;
        msg.slot = slot;
        msg.point = _slots[slot].point;
        try {
            writeFrame(w.toFd, FrameType::Lease, encodeLease(msg));
        } catch (const SimException &) {
            // The lease never reached the worker. Put the slot back
            // exactly as dispatch() found it (still queued, backoff
            // unchanged) before replacing the worker — w.slot is
            // still -1, so loseWorker() alone would orphan the slot
            // with queued=true and the farm would hang forever. A
            // straggler grant has nothing to restore: the original
            // lease is still active.
            if (!straggler)
                _pending.push_back(slot);
            loseWorker(w, now);
            return;
        }
        w.slot = static_cast<long>(slot);
        w.deadlineMs = now + _opt.leaseMs;
        Slot &s = _slots[slot];
        if (s.activeLeases++ == 0)
            s.leaseStartMs = now;
        if (straggler) {
            ++_stats.redispatches;
        } else {
            s.queued = false;
            ++s.attempts;
        }
    }

    void
    dispatch(std::uint64_t now)
    {
        for (Worker &w : _workers) {
            if (failed() || allDone())
                return;
            if (!w.alive || !w.ready || w.slot >= 0)
                continue;

            // Oldest pending slot whose backoff has elapsed.
            std::size_t pick = _pending.size();
            for (std::size_t i = 0; i < _pending.size(); ++i) {
                if (_slots[_pending[i]].readyAtMs <= now) {
                    pick = i;
                    break;
                }
            }
            if (pick < _pending.size()) {
                const std::size_t slot = _pending[pick];
                _pending.erase(_pending.begin() +
                               static_cast<long>(pick));
                grantLease(w, slot, /*straggler=*/false, now);
                continue;
            }

            // Nothing queued: duplicate the longest-running healthy
            // lease past the straggler threshold. First result wins;
            // the duplicate doubles as a determinism cross-check.
            if (_opt.stragglerMs == 0)
                continue;
            std::size_t straggler = _slots.size();
            for (std::size_t s = 0; s < _slots.size(); ++s) {
                const Slot &slot = _slots[s];
                if (slot.done || slot.activeLeases != 1 ||
                    now - slot.leaseStartMs < _opt.stragglerMs)
                    continue;
                if (straggler == _slots.size() ||
                    slot.leaseStartMs < _slots[straggler].leaseStartMs)
                    straggler = s;
            }
            if (straggler < _slots.size())
                grantLease(w, straggler, /*straggler=*/true, now);
        }
    }

    void
    expireLeases(std::uint64_t now)
    {
        for (Worker &w : _workers) {
            if (!w.alive || w.slot < 0 || now < w.deadlineMs)
                continue;
            ++_stats.leasesExpired;
            loseWorker(w, now);
        }
    }

    void
    acceptResult(Worker &w, ResultMsg msg, std::uint64_t now)
    {
        sim_throw_if(w.slot < 0 ||
                         msg.slot != static_cast<std::uint64_t>(w.slot),
                     ErrCode::WorkerLost,
                     "farm: worker delivered slot %llu while leased "
                     "slot %ld",
                     static_cast<unsigned long long>(msg.slot), w.slot);
        Slot &s = _slots[msg.slot];
        w.slot = -1;
        --s.activeLeases;

        if (s.done) {
            // A straggler's twin finished too: the determinism
            // contract says both runs produced identical bytes.
            ++_stats.duplicateResults;
            if (msg.fragment != s.fragment)
                fail(SimError{
                    ErrCode::ResultMismatch,
                    "farm: duplicate results for one point disagree",
                    {sweep::describePoint(s.point)}});
            return;
        }

        s.fragment = std::move(msg.fragment);
        s.done = true;
        ++_doneCount;
        ++_stats.simulated;
        if (_store)
            storeResult(s, now);
    }

    /** The simulator rejected the worker's point: deterministic, so
     *  fail the farm with the worker's own diagnosis, not a generic
     *  LeaseExpired after maxAttempts wasted re-simulations. */
    void
    acceptWorkerError(Worker &w, ErrorMsg msg)
    {
        sim_throw_if(w.slot < 0 ||
                         msg.slot != static_cast<std::uint64_t>(w.slot),
                     ErrCode::WorkerLost,
                     "farm: worker reported an error for slot %llu "
                     "while leased slot %ld",
                     static_cast<unsigned long long>(msg.slot), w.slot);
        Slot &s = _slots[msg.slot];
        w.slot = -1;
        --s.activeLeases;

        if (s.done) {
            // A straggler twin already delivered a *successful* result
            // for this point: determinism is broken either way.
            fail(SimError{ErrCode::ResultMismatch,
                          "farm: duplicate runs of one point disagree "
                          "(one succeeded, one failed)",
                          {msg.error.format(),
                           sweep::describePoint(s.point)}});
            return;
        }
        SimError err = std::move(msg.error);
        err.context.push_back(sweep::describePoint(s.point));
        fail(std::move(err));
    }

    void
    storeResult(Slot &s, std::uint64_t now)
    {
        (void)now;
        try {
            _store->put(s.key, s.fragment);
        } catch (const SimException &e) {
            // A write failure only costs memoization; the in-memory
            // fragment still reaches the report.
            warn("farm: %s", e.error().format().c_str());
            return;
        }
        if (_inject.fire(FaultPoint::StoreBitFlip))
            flipStoredBit(s);
    }

    /** Injected disk rot: flip one payload bit of the record just
     *  written. The integrity pass (or the next run's CRC check) must
     *  catch and repair it. */
    void
    flipStoredBit(const Slot &s)
    {
        const std::string path = _store->recordPath(s.key);
        std::FILE *f = std::fopen(path.c_str(), "r+b");
        if (!f)
            return;
        std::fseek(f, 0, SEEK_END);
        const long size = std::ftell(f);
        if (size > 0) {
            const long at = size / 2;
            std::fseek(f, at, SEEK_SET);
            int byte = std::fgetc(f);
            if (byte != EOF) {
                std::fseek(f, at, SEEK_SET);
                std::fputc(byte ^ 0x10, f);
            }
        }
        std::fclose(f);
    }

    /** Drain everything readable from one worker. */
    void
    drainWorker(Worker &w, std::uint64_t now)
    {
        std::uint8_t buf[65536];
        for (;;) {
            const ssize_t n = ::read(w.fromFd, buf, sizeof buf);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    break;
                loseWorker(w, now);
                return;
            }
            if (n == 0) { // EOF: the worker is gone
                loseWorker(w, now);
                return;
            }
            try {
                w.parser.feed(buf, static_cast<std::size_t>(n));
            } catch (const SimException &) {
                loseWorker(w, now);
                return;
            }
            if (n < static_cast<ssize_t>(sizeof buf))
                break;
        }

        Frame frame;
        for (;;) {
            try {
                if (!w.parser.next(&frame))
                    return;
            } catch (const SimException &) {
                loseWorker(w, now);
                return;
            }
            switch (frame.type) {
            case FrameType::Hello:
                w.ready = true;
                break;
            case FrameType::Heartbeat:
                try {
                    if (w.slot >= 0 &&
                        decodeHeartbeat(frame.payload) ==
                            static_cast<std::uint64_t>(w.slot))
                        w.deadlineMs = now + _opt.leaseMs;
                } catch (const SimException &) {
                    loseWorker(w, now);
                    return;
                }
                break;
            case FrameType::Result:
                try {
                    acceptResult(w, decodeResult(frame.payload), now);
                } catch (const SimException &) {
                    loseWorker(w, now);
                    return;
                }
                if (failed())
                    return;
                break;
            case FrameType::Error:
                try {
                    acceptWorkerError(w, decodeError(frame.payload));
                } catch (const SimException &) {
                    loseWorker(w, now);
                    return;
                }
                if (failed())
                    return;
                break;
            default:
                loseWorker(w, now); // Lease/Shutdown have no business here
                return;
            }
            if (!w.alive)
                return;
        }
    }

    void
    loop()
    {
        while (!allDone() && !failed()) {
            if (_stop && *_stop) {
                fail(SimError{ErrCode::Interrupted,
                              "farm interrupted; finished points are in "
                              "the result store — re-run with --resume "
                              "to continue",
                              {}});
                break;
            }
            std::uint64_t now = nowMs();
            expireLeases(now);
            if (failed())
                break;
            dispatch(now);
            if (allDone() || failed())
                break;

            std::vector<struct pollfd> fds;
            fds.reserve(_workers.size());
            for (const Worker &w : _workers)
                if (w.alive)
                    fds.push_back({w.fromFd, POLLIN, 0});
            if (fds.empty()) {
                // Everything pending is in backoff; just wait it out.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            const int rc =
                ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), 50);
            if (rc < 0 && errno != EINTR)
                throwSimError(ErrCode::WorkerLost,
                              "farm: poll failed: %s",
                              std::strerror(errno));
            if (rc <= 0)
                continue;

            now = nowMs();
            for (const struct pollfd &fd : fds) {
                if (!(fd.revents & (POLLIN | POLLHUP | POLLERR)))
                    continue;
                for (Worker &w : _workers) {
                    if (w.alive && w.fromFd == fd.fd) {
                        drainWorker(w, now);
                        break;
                    }
                }
                if (failed())
                    break;
            }
        }
    }

    void
    teardown()
    {
        for (Worker &w : _workers) {
            if (!w.alive)
                continue;
            try {
                writeFrame(w.toFd, FrameType::Shutdown, {});
            } catch (const SimException &) {
            }
            ::close(w.toFd);
        }

        // Brief grace for clean exits, then SIGKILL the rest (stalled
        // or mid-simulation workers have nothing we still need).
        const std::uint64_t grace_until = nowMs() + 200;
        for (;;) {
            bool any_alive = false;
            for (Worker &w : _workers) {
                if (!w.alive)
                    continue;
                if (::waitpid(w.pid, nullptr, WNOHANG) == w.pid) {
                    ::close(w.fromFd);
                    w.alive = false;
                } else {
                    any_alive = true;
                }
            }
            if (!any_alive || nowMs() >= grace_until)
                break;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        for (Worker &w : _workers) {
            if (!w.alive)
                continue;
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, nullptr, 0);
            ::close(w.fromFd);
            w.alive = false;
        }
    }

    std::vector<Slot> _slots;
    const FarmOptions &_opt;
    ResultStore *_store;
    const volatile std::sig_atomic_t *_stop;
    FaultInjector _inject; //!< coordinator-side draws (StoreBitFlip,
                           //!< LeaseWriteFail)

    std::vector<Worker> _workers;
    std::vector<std::size_t> _pending; //!< slot indices awaiting a lease
    std::size_t _doneCount = 0;
    std::uint64_t _spawnCounter = 0;
    FarmStats _stats;
    SimError _error;
};

} // anonymous namespace

FarmResult
runFarm(const std::vector<sweep::SweepPoint> &points,
        const FarmOptions &options,
        const volatile std::sig_atomic_t *stop)
{
    sim_throw_if(options.workers == 0, ErrCode::BadConfig,
                 "farm: worker count must be at least 1");
    sim_throw_if(options.maxAttempts == 0, ErrCode::BadConfig,
                 "farm: lease attempt budget must be at least 1");
    sim_throw_if(options.leaseMs == 0, ErrCode::BadConfig,
                 "farm: lease deadline must be nonzero");

    FarmResult res;
    res.stats.points = points.size();

    // Content addressing builds and instruments each point's program,
    // which can rival a short simulation in cost — so first collapse
    // structurally identical points (their wire encoding covers every
    // field) and fingerprint only the distinct ones, in parallel
    // across the worker budget.
    std::vector<sweep::SweepPoint> distinct;
    std::map<std::string, std::size_t> by_struct;
    std::vector<std::size_t> struct_of(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        LeaseMsg probe;
        probe.point = points[i];
        const std::vector<std::uint8_t> enc = encodeLease(probe);
        const auto [it, inserted] = by_struct.emplace(
            std::string(enc.begin(), enc.end()), distinct.size());
        if (inserted)
            distinct.push_back(points[i]);
        struct_of[i] = it->second;
    }
    std::vector<std::function<PointKey()>> key_tasks;
    key_tasks.reserve(distinct.size());
    for (const sweep::SweepPoint &p : distinct)
        key_tasks.emplace_back([&p] { return keyForPoint(p); });
    const std::vector<PointKey> keys =
        sweep::runOrdered(key_tasks, options.workers);

    // Collapse content-identical points into unique slots: overlapping
    // grids simulate once, and every input index maps to its slot.
    std::vector<Slot> slots;
    std::map<std::string, std::size_t> slot_by_key;
    std::vector<std::size_t> slot_of(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointKey &key = keys[struct_of[i]];
        const auto [it, inserted] =
            slot_by_key.emplace(key.hex(), slots.size());
        if (inserted) {
            Slot s;
            s.key = key;
            s.point = points[i];
            slots.push_back(std::move(s));
        }
        slot_of[i] = it->second;
    }
    res.stats.uniqueSlots = slots.size();

    std::optional<ResultStore> store;
    if (!options.storeDir.empty()) {
        store.emplace(options.storeDir, options.resume);
        for (Slot &s : slots) {
            if (store->get(s.key, &s.fragment) == StoreGet::Hit) {
                s.done = true;
                ++res.stats.storeHits;
            }
        }
    }

    Coordinator coord(std::move(slots), options,
                      store ? &*store : nullptr, stop);
    res.error = coord.run();
    res.stats.simulated = coord.stats().simulated;
    res.stats.retries = coord.stats().retries;
    res.stats.workersLost = coord.stats().workersLost;
    res.stats.leasesExpired = coord.stats().leasesExpired;
    res.stats.redispatches = coord.stats().redispatches;
    res.stats.duplicateResults = coord.stats().duplicateResults;
    slots = coord.takeSlots();

    res.ok = res.error.ok();
    if (res.ok && store) {
        // Integrity pass: every record on disk must round-trip before
        // the report ships; a record the fault injector rotted (or a
        // foreign writer damaged) is repaired from memory.
        for (const Slot &s : slots)
            store->verifyOrRepair(s.key, s.fragment);
    }
    if (store)
        res.stats.storeCorrupt = store->corruptRecords();

    if (res.ok) {
        res.fragments.reserve(points.size());
        for (std::size_t i = 0; i < points.size(); ++i)
            res.fragments.push_back(slots[slot_of[i]].fragment);
    }
    return res;
}

void
writeFarmReportJson(std::ostream &os, const FarmResult &result)
{
    os << sweep::reportJsonPrefix;
    bool first = true;
    for (const std::vector<std::uint8_t> &frag : result.fragments) {
        if (!first)
            os << ',';
        first = false;
        os.write(reinterpret_cast<const char *>(frag.data()),
                 static_cast<std::streamsize>(frag.size()));
    }
    os << sweep::reportJsonSuffix;
}

} // namespace imo::farm
