/**
 * @file
 * Fault-tolerant coordinator/worker execution tier for sweeps.
 *
 * runFarm() shards a set of SweepPoints across worker peers — local
 * processes fork()ed from the coordinator (pipes as the transport)
 * and, with listen=true, remote imo-worker daemons over TCP; the
 * framed protocol in proto.hh is identical on both — under a leasing
 * discipline:
 *
 *  - Points with identical content addresses (store.hh) collapse into
 *    one *slot*; overlapping grids are simulated once.
 *  - A slot is leased to a worker with a deadline. Heartbeats refresh
 *    the deadline while the worker makes progress; a worker that
 *    crashes (EOF), stalls (deadline passes), or drops its result is
 *    SIGKILLed, replaced, and the slot is retried with exponential
 *    backoff — up to maxAttempts, after which the farm fails with a
 *    structured LeaseExpired error. A lease write that fails because
 *    an idle worker died unseen returns the slot to the queue and
 *    replaces the worker.
 *  - A point the *simulator* rejects fails deterministically; the
 *    worker reports the structured error back and the farm fails fast
 *    with that diagnosis instead of retrying.
 *  - A healthy-but-slow slot past stragglerMs is re-dispatched to an
 *    idle worker; the first result wins and any duplicate result must
 *    be byte-identical (ResultMismatch otherwise — the determinism
 *    contract is enforced, not assumed).
 *  - Finished fragments land in the content-addressed ResultStore (if
 *    configured); before the merged report is emitted, an integrity
 *    pass re-validates every record's key and CRC on disk.
 *
 * The merged report is assembled from per-point JSON fragments in grid
 * order, so it is byte-identical to single-process imo-sweep for any
 * worker count and any failure schedule.
 */

#ifndef IMO_FARM_FARM_HH
#define IMO_FARM_FARM_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/faultinject.hh"
#include "sweep/sweep.hh"

namespace imo::obs
{
class TraceSink;
} // namespace imo::obs

namespace imo::farm
{

/** Knobs of one farm run. */
struct FarmOptions
{
    /** Local worker processes. With listen=true, 0 means "remote
     *  workers only"; otherwise at least 1 is required. */
    unsigned workers = 1;

    /** Accept remote imo-worker daemons over TCP. */
    bool listen = false;

    /** Listen address; port 0 binds an ephemeral port reported via
     *  onListen. */
    std::string listenHost = "127.0.0.1";
    std::uint16_t listenPort = 0;

    /** Called once the listener is bound, with the real port — how
     *  the CLI's --port-file and in-process tests learn an ephemeral
     *  port. */
    std::function<void(std::uint16_t)> onListen;

    /** Shared admission secret; every worker (local or remote) must
     *  prove knowledge of it during the Challenge/Hello handshake. */
    std::string token;

    /** Minimum admitted-and-ready peers: if the farm stays below this
     *  for a full lease period while work is pending, it fails with a
     *  structured error instead of waiting forever. */
    unsigned minWorkers = 1;

    /** Result-store directory; empty disables memoization. */
    std::string storeDir;

    /** Allow reusing a store that already holds records (resume or
     *  memoized re-run). */
    bool resume = false;

    /** Single-pass multi-configuration cache simulation: sampled
     *  points differing only in cache geometry / timing knobs form
     *  group leases — one worker classifies every member geometry in
     *  one pass over the shared reference stream (sweep::MultiCache)
     *  and returns a fragment bundle. Report bytes are unchanged. */
    bool multiCache = false;

    /** Lease deadline: a worker that neither heartbeats nor delivers
     *  for this long is declared lost. */
    std::uint64_t leaseMs = 10'000;

    /** Worker heartbeat period while simulating. */
    std::uint64_t heartbeatMs = 200;

    /** Lease attempts per slot before the farm fails (>= 1). */
    unsigned maxAttempts = 30;

    /** Exponential backoff: base * 2^(attempt-1), capped. */
    std::uint64_t backoffBaseMs = 20;
    std::uint64_t backoffCapMs = 2'000;

    /** Re-dispatch a still-leased slot to an idle worker after this
     *  long (straggler mitigation; 0 disables). */
    std::uint64_t stragglerMs = 30'000;

    /** Farm-level fault plan (worker-kill / worker-stall /
     *  dropped-result / store-bit-flip / lease-write-fail); other
     *  points are ignored here. Seed-deterministic per spawned
     *  worker. */
    FaultSchedule faults;

    // --- Telemetry (observational only: none of these may change the
    // --- merged report's bytes) -------------------------------------

    /** Lease-timeline trace sink (categories farm/store/net); null
     *  disables orchestration tracing. Not owned. */
    obs::TraceSink *trace = nullptr;

    /** Emit a rate-limited progress line on stderr. */
    bool progress = false;

    /** Minimum interval between progress emissions. */
    std::uint64_t progressIntervalMs = 500;

    /** Heartbeat JSON file rewritten (atomically) at the progress
     *  cadence; empty disables. */
    std::string progressJsonPath;

    /** Run id stamped into manifests, worker logs (via the Challenge
     *  frame), and the progress file. Generated when empty. */
    std::string runId;
};

/** Observability counters of one farm run. */
struct FarmStats
{
    std::uint64_t points = 0;       //!< grid points requested
    std::uint64_t uniqueSlots = 0;  //!< distinct content addresses
    std::uint64_t storeHits = 0;    //!< slots served from the store
    std::uint64_t simulated = 0;    //!< slots simulated by workers
    std::uint64_t retries = 0;      //!< slot re-queues after a failure
    std::uint64_t workersLost = 0;  //!< worker deaths (crash or kill)
    std::uint64_t leasesExpired = 0;
    std::uint64_t redispatches = 0; //!< straggler duplicate leases
    std::uint64_t duplicateResults = 0;
    std::uint64_t storeCorrupt = 0; //!< records failing key/CRC checks
    std::uint64_t authFailures = 0; //!< peers rejected at admission
    std::uint64_t remotesAdmitted = 0; //!< TCP peers through admission
    std::uint64_t multiCacheGroups = 0; //!< group leases planned
    std::uint64_t pointsGrouped = 0; //!< points served by group leases
};

/** Per-unique-slot operational record of one farm run: attempt counts
 *  and wall-clock timings, in slot (first-appearance) order. Feeds the
 *  run manifest; never feeds the report. */
struct SlotRecord
{
    std::string keyHex; //!< content address, "" without a store
    std::string desc;   //!< describePoint() of the slot's point
    bool storeHit = false;
    bool done = false;
    std::uint32_t attempts = 0;    //!< lease grants (excl. stragglers)
    std::uint64_t queueWaitMs = 0; //!< first enqueue -> first grant
    std::uint64_t simulateMs = 0;  //!< worker-reported simulate wall
    std::uint64_t serializeMs = 0; //!< worker-reported serialize wall
    std::uint64_t storePutMs = 0;  //!< coordinator store-put wall
    std::uint64_t startMs = 0;     //!< first grant, ms since run start
    std::uint64_t endMs = 0;       //!< result accepted (or store hit)
    std::uint64_t fragmentBytes = 0;
    /** Members of a multi-cache group slot (0 = a plain point or
     *  window slot). Drives manifest group provenance. */
    std::uint64_t groupMembers = 0;
    std::uint64_t groupConfigs = 0; //!< distinct (L1, L2) classes
};

/** Outcome of a farm run. */
struct FarmResult
{
    bool ok = true;
    SimError error; //!< set when !ok (LeaseExpired, ResultMismatch, ...)
    FarmStats stats;

    /** Per input point, in grid order: the exact report-JSON fragment
     *  bytes (empty when !ok). */
    std::vector<std::vector<std::uint8_t>> fragments;

    // --- Telemetry (always filled, ok or not) -----------------------
    std::string runId;
    std::uint64_t elapsedMs = 0;
    std::vector<SlotRecord> slotRecords; //!< per unique slot
    std::string statsText; //!< aggregated farm registry, text dump
    std::string statsJson; //!< same registry as {"farm":{...}} JSON
};

/**
 * Run @p points on a local worker farm. Never throws for run-level
 * failures: lease exhaustion, protocol garbage, result mismatches,
 * and interruption all surface in FarmResult::error. @p stop is an
 * optional cooperative stop flag (SIGINT/SIGTERM): when it fires, the
 * farm shuts down cleanly — the store keeps every finished point, so
 * a re-run with resume=true continues where it left off.
 */
FarmResult runFarm(const std::vector<sweep::SweepPoint> &points,
                   const FarmOptions &options,
                   const volatile std::sig_atomic_t *stop = nullptr);

/**
 * Window-sharded sampled run of one point: every measurement window of
 * @p library becomes its own leased unit of work, so a single sampled
 * point spreads across all workers (and machines) of the farm. The
 * lease/retry/straggler/store machinery is exactly runFarm()'s —
 * window shards are memoized under keyForWindow(), duplicate shards
 * are byte-compared, and a resumed farm re-runs only missing windows.
 * On success the shards are folded in window order into the point's
 * estimate, and FarmResult::fragments holds the point's single
 * report-JSON fragment — byte-identical to imo-sweep over this point.
 *
 * Throws SimException(BadConfig) when @p point is not sampled or the
 * library does not match it (sweep::libraryMatchesPoint()).
 */
FarmResult
runFarmWindows(const sweep::SweepPoint &point,
               const std::shared_ptr<const sample::LivePointLibrary> &library,
               const FarmOptions &options,
               const volatile std::sig_atomic_t *stop = nullptr);

/**
 * Write the merged sweep report from a successful farm run. The bytes
 * equal sweep::writeReportJson() over the same points by construction.
 */
void writeFarmReportJson(std::ostream &os, const FarmResult &result);

} // namespace imo::farm

#endif // IMO_FARM_FARM_HH
