#include "farm/proto.hh"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::farm
{

namespace
{

constexpr std::uint32_t kFrameMagic = 0x464f4d49u; // "IMOF" little-endian

constexpr std::size_t kFrameHeaderBytes = frameHeaderBytes;

bool
validFrameType(std::uint32_t t)
{
    return t >= static_cast<std::uint32_t>(FrameType::Hello) &&
           t <= static_cast<std::uint32_t>(FrameType::Stats);
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + 4);
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *p = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), p, p + 8);
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/**
 * Validate a parsed header. Throws WorkerLost on garbage so both the
 * blocking reader and the incremental parser reject identically.
 */
void
checkHeader(std::uint32_t magic, std::uint32_t type, std::uint64_t len)
{
    sim_throw_if(magic != kFrameMagic, ErrCode::WorkerLost,
                 "farm protocol: bad frame magic %08x", magic);
    sim_throw_if(!validFrameType(type), ErrCode::WorkerLost,
                 "farm protocol: unknown frame type %u", type);
    sim_throw_if(len > maxFramePayload, ErrCode::WorkerLost,
                 "farm protocol: frame claims %llu payload bytes "
                 "(limit %llu)",
                 static_cast<unsigned long long>(len),
                 static_cast<unsigned long long>(maxFramePayload));
}

void
checkPayloadCrc(const std::vector<std::uint8_t> &payload,
                std::uint32_t want)
{
    const std::uint32_t got = crc32(payload.data(), payload.size());
    sim_throw_if(got != want, ErrCode::WorkerLost,
                 "farm protocol: frame payload CRC %08x, expected %08x",
                 got, want);
}

/** Read exactly @p len bytes. @return bytes read (< len only at EOF). */
std::size_t
readFull(int fd, std::uint8_t *out, std::size_t len)
{
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::read(fd, out + done, len - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwSimError(ErrCode::WorkerLost,
                          "farm protocol: read failed: %s",
                          std::strerror(errno));
        }
        if (n == 0)
            break;
        done += static_cast<std::size_t>(n);
    }
    return done;
}

} // anonymous namespace

std::vector<std::uint8_t>
buildFrame(FrameType type, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> buf;
    buf.reserve(kFrameHeaderBytes + payload.size());
    putU32(buf, kFrameMagic);
    putU32(buf, static_cast<std::uint32_t>(type));
    putU64(buf, payload.size());
    putU32(buf, crc32(payload.data(), payload.size()));
    buf.insert(buf.end(), payload.begin(), payload.end());
    return buf;
}

void
writeFrame(int fd, FrameType type,
           const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> buf = buildFrame(type, payload);

    std::size_t done = 0;
    while (done < buf.size()) {
        const ssize_t n = ::write(fd, buf.data() + done,
                                  buf.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throwSimError(ErrCode::WorkerLost,
                          "farm protocol: write failed: %s",
                          std::strerror(errno));
        }
        done += static_cast<std::size_t>(n);
    }
}

bool
readFrame(int fd, Frame *out)
{
    std::uint8_t header[kFrameHeaderBytes];
    const std::size_t got = readFull(fd, header, sizeof header);
    if (got == 0)
        return false; // clean EOF between frames
    sim_throw_if(got < sizeof header, ErrCode::WorkerLost,
                 "farm protocol: EOF inside a frame header");

    const std::uint32_t magic = getU32(header);
    const std::uint32_t type = getU32(header + 4);
    const std::uint64_t len = getU64(header + 8);
    const std::uint32_t crc = getU32(header + 16);
    checkHeader(magic, type, len);

    out->type = static_cast<FrameType>(type);
    out->payload.resize(static_cast<std::size_t>(len));
    sim_throw_if(readFull(fd, out->payload.data(), out->payload.size()) <
                     out->payload.size(),
                 ErrCode::WorkerLost,
                 "farm protocol: EOF inside a frame payload");
    checkPayloadCrc(out->payload, crc);
    return true;
}

void
FrameParser::feed(const std::uint8_t *data, std::size_t len)
{
    _buf.insert(_buf.end(), data, data + len);
}

bool
FrameParser::next(Frame *out)
{
    if (_buf.size() < kFrameHeaderBytes)
        return false;
    const std::uint32_t magic = getU32(_buf.data());
    const std::uint32_t type = getU32(_buf.data() + 4);
    const std::uint64_t len = getU64(_buf.data() + 8);
    const std::uint32_t crc = getU32(_buf.data() + 16);
    checkHeader(magic, type, len);
    if (_buf.size() < kFrameHeaderBytes + len)
        return false;

    out->type = static_cast<FrameType>(type);
    out->payload.assign(_buf.begin() + kFrameHeaderBytes,
                        _buf.begin() + kFrameHeaderBytes +
                            static_cast<std::size_t>(len));
    _buf.erase(_buf.begin(),
               _buf.begin() + kFrameHeaderBytes +
                   static_cast<std::size_t>(len));
    checkPayloadCrc(out->payload, crc);
    return true;
}

// --- Message payload codecs -----------------------------------------

namespace
{

void
savePoint(Serializer &s, const sweep::SweepPoint &p)
{
    s.str(p.machine);
    s.str(p.workload);
    s.u8(static_cast<std::uint8_t>(p.mode));
    s.u32(p.handlerLen);
    s.f64(p.scale);
    s.u64(p.seed);
    s.u64(p.l1SizeBytes);
    s.u32(p.l1Assoc);
    s.u64(p.l2SizeBytes);
    s.u32(p.l2Assoc);
    s.u64(p.l2Latency);
    s.u64(p.memLatency);
    s.u32(p.mshrs);
    s.str(p.sample);
}

sweep::SweepPoint
restorePoint(Deserializer &d)
{
    sweep::SweepPoint p;
    p.machine = d.str();
    p.workload = d.str();
    p.mode = static_cast<core::InformingMode>(d.u8());
    p.handlerLen = d.u32();
    p.scale = d.f64();
    p.seed = d.u64();
    p.l1SizeBytes = d.u64();
    p.l1Assoc = d.u32();
    p.l2SizeBytes = d.u64();
    p.l2Assoc = d.u32();
    p.l2Latency = d.u64();
    p.memLatency = d.u64();
    p.mshrs = d.u32();
    p.sample = d.str();
    return p;
}

/** Rethrow container decode errors as protocol (WorkerLost) errors. */
template <typename Fn>
auto
decodePayload(const char *what, Fn &&fn)
{
    try {
        return fn();
    } catch (const SimException &e) {
        throw SimException(
            SimError{ErrCode::WorkerLost,
                     simFormat("farm protocol: bad %s payload", what),
                     {e.error().message}});
    }
}

} // anonymous namespace

std::uint64_t
authDigest(const std::string &token, std::uint64_t nonce)
{
    // FNV-1a over token || nonce || token: the token both prefixes and
    // suffixes the nonce so neither an empty token nor a truncated
    // token aliases another. Intentionally lightweight — see proto.hh.
    std::uint64_t h = 0xcbf29ce484222325ull;
    const auto mix = [&h](const std::uint8_t *p, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    const auto *tok =
        reinterpret_cast<const std::uint8_t *>(token.data());
    const std::uint64_t len = token.size();
    mix(reinterpret_cast<const std::uint8_t *>(&len), 8);
    mix(tok, token.size());
    mix(reinterpret_cast<const std::uint8_t *>(&nonce), 8);
    mix(tok, token.size());
    return h;
}

std::vector<std::uint8_t>
encodeChallenge(const ChallengeMsg &msg)
{
    Serializer s;
    s.beginSection("challenge");
    s.u32(msg.protoVersion);
    s.u32(msg.schemaVersion);
    s.u64(msg.nonce);
    s.str(msg.runId);
    s.endSection();
    return s.finish();
}

ChallengeMsg
decodeChallenge(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("challenge", [&] {
        Deserializer d(payload);
        d.openSection("challenge");
        ChallengeMsg msg;
        msg.protoVersion = d.u32();
        msg.schemaVersion = d.u32();
        msg.nonce = d.u64();
        msg.runId = d.str();
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    Serializer s;
    s.beginSection("hello");
    s.u32(msg.protoVersion);
    s.u32(msg.schemaVersion);
    s.u64(msg.response);
    s.endSection();
    return s.finish();
}

HelloMsg
decodeHello(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("hello", [&] {
        Deserializer d(payload);
        d.openSection("hello");
        HelloMsg msg;
        msg.protoVersion = d.u32();
        msg.schemaVersion = d.u32();
        msg.response = d.u64();
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeLease(const LeaseMsg &msg)
{
    Serializer s;
    s.beginSection("lease");
    s.u64(msg.slot);
    savePoint(s, msg.point);
    s.u64(msg.windowIndex);
    s.u64(msg.libraryHash);
    s.vecU8(msg.warmImage);
    s.vecU8(msg.execImage);
    s.u32(static_cast<std::uint32_t>(msg.groupPoints.size()));
    for (const sweep::SweepPoint &p : msg.groupPoints)
        savePoint(s, p);
    s.endSection();
    return s.finish();
}

LeaseMsg
decodeLease(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("lease", [&] {
        Deserializer d(payload);
        d.openSection("lease");
        LeaseMsg msg;
        msg.slot = d.u64();
        msg.point = restorePoint(d);
        msg.windowIndex = d.u64();
        msg.libraryHash = d.u64();
        msg.warmImage = d.vecU8();
        msg.execImage = d.vecU8();
        const std::uint32_t group = d.u32();
        msg.groupPoints.reserve(group);
        for (std::uint32_t i = 0; i < group; ++i)
            msg.groupPoints.push_back(restorePoint(d));
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeHeartbeat(std::uint64_t slot)
{
    Serializer s;
    s.beginSection("heartbeat");
    s.u64(slot);
    s.endSection();
    return s.finish();
}

std::uint64_t
decodeHeartbeat(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("heartbeat", [&] {
        Deserializer d(payload);
        d.openSection("heartbeat");
        const std::uint64_t slot = d.u64();
        d.closeSection();
        return slot;
    });
}

std::vector<std::uint8_t>
encodeResult(const ResultMsg &msg)
{
    Serializer s;
    s.beginSection("result");
    s.u64(msg.slot);
    s.vecU8(msg.fragment);
    s.endSection();
    return s.finish();
}

ResultMsg
decodeResult(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("result", [&] {
        Deserializer d(payload);
        d.openSection("result");
        ResultMsg msg;
        msg.slot = d.u64();
        msg.fragment = d.vecU8();
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeError(const ErrorMsg &msg)
{
    Serializer s;
    s.beginSection("error");
    s.u64(msg.slot);
    s.u8(static_cast<std::uint8_t>(msg.error.code));
    s.str(msg.error.message);
    s.u32(static_cast<std::uint32_t>(msg.error.context.size()));
    for (const std::string &note : msg.error.context)
        s.str(note);
    s.endSection();
    return s.finish();
}

ErrorMsg
decodeError(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("error", [&] {
        Deserializer d(payload);
        d.openSection("error");
        ErrorMsg msg;
        msg.slot = d.u64();
        const std::uint8_t code = d.u8();
        // A "no error" or out-of-range code is wire garbage, not a
        // valid diagnosis.
        sim_throw_if(code == 0 ||
                         code > static_cast<std::uint8_t>(
                                    ErrCode::AuthFailed),
                     ErrCode::WorkerLost,
                     "farm protocol: invalid error code %u", code);
        msg.error.code = static_cast<ErrCode>(code);
        msg.error.message = d.str();
        const std::uint32_t notes = d.u32();
        for (std::uint32_t i = 0; i < notes; ++i)
            msg.error.context.push_back(d.str());
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeStats(const StatsMsg &msg)
{
    Serializer s;
    s.beginSection("stats");
    s.u64(msg.slot);
    s.u64(msg.simulateMs);
    s.u64(msg.serializeMs);
    s.str(msg.statsJson);
    s.endSection();
    return s.finish();
}

StatsMsg
decodeStats(const std::vector<std::uint8_t> &payload)
{
    return decodePayload("stats", [&] {
        Deserializer d(payload);
        d.openSection("stats");
        StatsMsg msg;
        msg.slot = d.u64();
        msg.simulateMs = d.u64();
        msg.serializeMs = d.u64();
        msg.statsJson = d.str();
        d.closeSection();
        return msg;
    });
}

std::vector<std::uint8_t>
encodeFragmentBundle(
    const std::vector<std::vector<std::uint8_t>> &fragments)
{
    Serializer s;
    s.beginSection("bundle");
    s.u32(static_cast<std::uint32_t>(fragments.size()));
    for (const std::vector<std::uint8_t> &f : fragments)
        s.vecU8(f);
    s.endSection();
    return s.finish();
}

std::vector<std::vector<std::uint8_t>>
decodeFragmentBundle(const std::vector<std::uint8_t> &bundle)
{
    return decodePayload("bundle", [&] {
        Deserializer d(bundle);
        d.openSection("bundle");
        const std::uint32_t n = d.u32();
        std::vector<std::vector<std::uint8_t>> fragments;
        fragments.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            fragments.push_back(d.vecU8());
        d.closeSection();
        return fragments;
    });
}

} // namespace imo::farm
