/**
 * @file
 * Framed coordinator/worker wire protocol for the sweep farm.
 *
 * Every message is one frame on a byte stream:
 *
 *   u32 magic "IMOF" | u32 type | u64 payload length
 *   u32 CRC-32 of payload | payload bytes
 *
 * The framing carries no file descriptors, shared memory, or process
 * assumptions — today it runs over pipes to local worker processes,
 * and the same byte stream works over a socket for multi-machine
 * farms. Structured payloads reuse the checkpoint container
 * (Serializer/Deserializer), so every field is length-checked and
 * CRC'd twice: once by the frame, once by the container.
 *
 * A frame that fails validation (bad magic, oversized payload, CRC
 * mismatch, truncated container) surfaces as a structured
 * SimException(WorkerLost): a misbehaving peer is indistinguishable
 * from a dead one and is handled by the same kill-and-retry path.
 */

#ifndef IMO_FARM_PROTO_HH
#define IMO_FARM_PROTO_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sweep/sweep.hh"

namespace imo::farm
{

/**
 * Version of the wire protocol itself (frame types, payload layouts,
 * handshake shape). Both sides verify it during admission; a mismatch
 * is a structured AuthFailed rejection, never silent misparsing.
 *  v1: Hello/Lease/Heartbeat/Result/Shutdown/Error over pipes.
 *  v2: Challenge/AuthReject admission handshake (versioned,
 *      token-authenticated) for socket transports.
 *  v3: Stats telemetry frame (worker per-point timings + stats JSON);
 *      Challenge carries the coordinator's run id.
 *  v4: Lease optionally carries one live-point window (index, library
 *      hash, warm/executor images) so a sampled point's measurement
 *      windows shard across workers.
 *  v5: Lease optionally carries a multi-cache point group; the worker
 *      answers with a fragment bundle (one report fragment per
 *      member, produced by a single shared pass).
 */
constexpr std::uint32_t protocolVersion = 5;

/** Wire message types. */
enum class FrameType : std::uint32_t
{
    Hello = 1,      //!< worker -> coordinator: challenge response,
                    //!< version report, ready for leases
    Lease = 2,      //!< coordinator -> worker: run this point
    Heartbeat = 3,  //!< worker -> coordinator: still alive on a point
    Result = 4,     //!< worker -> coordinator: point finished
    Shutdown = 5,   //!< coordinator -> worker: exit cleanly
    Error = 6,      //!< worker -> coordinator: the simulator rejected
                    //!< the point (deterministic; retry cannot help)
    Challenge = 7,  //!< coordinator -> worker: admission nonce +
                    //!< protocol/schema versions
    AuthReject = 8, //!< coordinator -> worker: admission denied
                    //!< (structured AuthFailed; do not reconnect)
    Stats = 9,      //!< worker -> coordinator: per-point telemetry
                    //!< (timings + stats JSON), sent before Result
};

/** One parsed frame. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::vector<std::uint8_t> payload;
};

/** Upper bound on a frame payload; larger is treated as garbage. */
constexpr std::uint64_t maxFramePayload = 64ull << 20;

/** Serialize one complete frame (header + CRC + payload) to bytes —
 *  the transport-independent building block behind writeFrame() and
 *  the buffered socket send path. */
std::vector<std::uint8_t> buildFrame(FrameType type,
                                     const std::vector<std::uint8_t> &payload);

/** Size of the fixed frame header (magic, type, length, CRC). */
constexpr std::size_t frameHeaderBytes = 4 + 4 + 8 + 4;

/**
 * Write one frame to @p fd, retrying on EINTR.
 * Throws SimException(WorkerLost) on EPIPE or any short write.
 */
void writeFrame(int fd, FrameType type,
                const std::vector<std::uint8_t> &payload);

/**
 * Blocking read of one frame from @p fd (worker side).
 * @return false on clean EOF at a frame boundary.
 * Throws SimException(WorkerLost) on mid-frame EOF or a bad frame.
 */
bool readFrame(int fd, Frame *out);

/**
 * Incremental frame parser (coordinator side, for poll()-driven
 * non-blocking reads): feed() raw bytes as they arrive, next() yields
 * complete frames. Throws SimException(WorkerLost) when the stream is
 * unparseable — the connection cannot be resynchronized after that.
 */
class FrameParser
{
  public:
    void feed(const std::uint8_t *data, std::size_t len);

    /** @return true and fill @p out if a complete frame is buffered. */
    bool next(Frame *out);

    /** @return true if partial frame bytes are buffered (dirty EOF). */
    bool midFrame() const { return !_buf.empty(); }

  private:
    std::vector<std::uint8_t> _buf;
};

// --- Message payload codecs -----------------------------------------

/** Challenge: the coordinator's half of the admission handshake. The
 *  worker must echo versions that match and prove knowledge of the
 *  shared token by responding with authDigest(token, nonce). */
struct ChallengeMsg
{
    std::uint32_t protoVersion = protocolVersion;
    std::uint32_t schemaVersion = sweep::reportSchemaVersion;
    std::uint64_t nonce = 0;
    std::string runId; //!< coordinator run id, for joinable worker logs
};

/** Hello: the worker's challenge response. */
struct HelloMsg
{
    std::uint32_t protoVersion = protocolVersion;
    std::uint32_t schemaVersion = sweep::reportSchemaVersion;
    std::uint64_t response = 0; //!< authDigest(token, challenge nonce)
};

/**
 * Keyed admission digest: a 64-bit FNV-style mix of the shared token
 * around the per-connection nonce. This gates against version skew,
 * cross-farm joins, and typo'd tokens — it is NOT cryptography and
 * must not be exposed to untrusted networks (run farms on a trusted
 * LAN or tunnel).
 */
std::uint64_t authDigest(const std::string &token, std::uint64_t nonce);

/**
 * Lease: which grid slot to run and the full point description.
 *
 * A lease is either a whole point (windowIndex == noWindow, the
 * images empty) or one measurement window of a sampled point: the
 * worker then rebuilds the point's program and config, restores the
 * shipped live point, runs the W+M detailed window, and returns the
 * fixed-width WindowSample encoding as its fragment. The library
 * content hash pins which capture the images came from (it is part of
 * the result-store key, so shards of different captures never mix).
 */
struct LeaseMsg
{
    /** windowIndex value marking a whole-point lease. */
    static constexpr std::uint64_t noWindow =
        ~static_cast<std::uint64_t>(0);

    std::uint64_t slot = 0;
    sweep::SweepPoint point;

    std::uint64_t windowIndex = noWindow;
    std::uint64_t libraryHash = 0;         //!< LivePointLibrary::contentHash
    std::vector<std::uint8_t> warmImage;   //!< predictor warm state
    std::vector<std::uint8_t> execImage;   //!< functional executor state

    /** Multi-cache group lease (v5): when nonempty, the worker runs
     *  sweep::runPointGroup() over these members (point is then the
     *  first member, kept for logs) and its Result fragment is a
     *  fragment *bundle* — encodeFragmentBundle() of one report-JSON
     *  fragment per member, in member order. */
    std::vector<sweep::SweepPoint> groupPoints;
};

/** Result: the slot and the point's report-JSON fragment bytes. */
struct ResultMsg
{
    std::uint64_t slot = 0;
    std::vector<std::uint8_t> fragment;
};

/** Error: the simulator itself rejected the slot's point. Since a
 *  point is a pure function, the failure is deterministic — the
 *  coordinator fails the farm with this diagnosis instead of burning
 *  the lease/retry budget on re-simulations. */
struct ErrorMsg
{
    std::uint64_t slot = 0;
    SimError error;
};

/** Stats: one point's worker-side telemetry, sent immediately before
 *  the matching Result. Purely observational — a coordinator may drop
 *  it without affecting the merged report. */
struct StatsMsg
{
    std::uint64_t slot = 0;
    std::uint64_t simulateMs = 0;  //!< wall time in sweep::runPoint
    std::uint64_t serializeMs = 0; //!< wall time serializing the fragment
    std::string statsJson;         //!< per-point stats dump, may be empty
};

std::vector<std::uint8_t> encodeChallenge(const ChallengeMsg &msg);
ChallengeMsg decodeChallenge(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
HelloMsg decodeHello(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeLease(const LeaseMsg &msg);
LeaseMsg decodeLease(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeHeartbeat(std::uint64_t slot);
std::uint64_t decodeHeartbeat(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeResult(const ResultMsg &msg);
ResultMsg decodeResult(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeError(const ErrorMsg &msg);
ErrorMsg decodeError(const std::vector<std::uint8_t> &payload);

std::vector<std::uint8_t> encodeStats(const StatsMsg &msg);
StatsMsg decodeStats(const std::vector<std::uint8_t> &payload);

/** Fragment bundle: the Result payload of a multi-cache group lease —
 *  every member's report-JSON fragment, in member order, in one
 *  length-checked container. Also the store record format of a group
 *  slot, so memoized group results split identically. */
std::vector<std::uint8_t>
encodeFragmentBundle(const std::vector<std::vector<std::uint8_t>> &fragments);
std::vector<std::vector<std::uint8_t>>
decodeFragmentBundle(const std::vector<std::uint8_t> &bundle);

} // namespace imo::farm

#endif // IMO_FARM_PROTO_HH
