#include "farm/store.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "core/informing.hh"
#include "workloads/suite.hh"

namespace imo::farm
{

namespace
{

/** FNV-1a 64-bit over an incremental byte stream. */
class Fnv64
{
  public:
    void
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            _h ^= p[i];
            _h *= 0x100000001b3ull;
        }
    }

    void
    str(const std::string &s)
    {
        const std::uint64_t n = s.size();
        bytes(&n, 8); // length prefix: ("ab","c") != ("a","bc")
        bytes(s.data(), s.size());
    }

    void u32(std::uint32_t v) { bytes(&v, 4); }
    void u64(std::uint64_t v) { bytes(&v, 8); }

    void
    f64(double v)
    {
        std::uint64_t b;
        std::memcpy(&b, &v, 8);
        u64(b);
    }

    std::uint64_t value() const { return _h; }

  private:
    std::uint64_t _h = 0xcbf29ce484222325ull;
};

const char *const kRecordSuffix = ".imores";

} // anonymous namespace

std::string
PointKey::hex() const
{
    return simFormat("%016llx%016llx%08x",
                     static_cast<unsigned long long>(configHash),
                     static_cast<unsigned long long>(programHash),
                     schemaVersion);
}

namespace
{

/** The point fields every key digests, in declaration order. */
void
mixPoint(Fnv64 &cfg, const sweep::SweepPoint &point)
{
    cfg.str(point.machine);
    cfg.str(point.workload);
    cfg.u32(static_cast<std::uint32_t>(point.mode));
    cfg.u32(point.handlerLen);
    cfg.f64(point.scale);
    cfg.u64(point.seed);
    cfg.u64(point.l1SizeBytes);
    cfg.u32(point.l1Assoc);
    cfg.u64(point.l2SizeBytes);
    cfg.u32(point.l2Assoc);
    cfg.u64(point.l2Latency);
    cfg.u64(point.memLatency);
    cfg.u32(point.mshrs);
    cfg.str(point.sample);
}

} // anonymous namespace

PointKey
keyForPoint(const sweep::SweepPoint &point)
{
    PointKey key;

    Fnv64 cfg;
    mixPoint(cfg, point);
    key.configHash = cfg.value();

    // Fingerprint the *instrumented* program: any change to a workload
    // generator, the instrumenter, or the handler library changes the
    // address and invalidates cached results for exactly the affected
    // points.
    workloads::WorkloadParams wp;
    wp.scale = point.scale;
    wp.seed = point.seed;
    const isa::Program base = workloads::build(point.workload, wp);
    const isa::Program prog =
        core::instrument(base, point.mode, {.length = point.handlerLen});
    key.programHash = prog.fingerprint();

    key.schemaVersion = sweep::reportSchemaVersion;
    return key;
}

PointKey
keyForGroup(const std::vector<sweep::SweepPoint> &members)
{
    sim_throw_if(members.empty(), ErrCode::BadConfig,
                 "result store: cannot key an empty point group");
    PointKey key;
    Fnv64 cfg;
    cfg.str("multicache-group"); // domain tag: never aliases a point
    cfg.u64(members.size());
    for (const sweep::SweepPoint &p : members)
        mixPoint(cfg, p);
    key.configHash = cfg.value();

    // Members agree on workload/mode/handlerLen/scale/seed (the
    // multi-cache grouping key), so the shared program fingerprints
    // once for the whole group.
    workloads::WorkloadParams wp;
    wp.scale = members.front().scale;
    wp.seed = members.front().seed;
    const isa::Program base =
        workloads::build(members.front().workload, wp);
    const isa::Program prog =
        core::instrument(base, members.front().mode,
                         {.length = members.front().handlerLen});
    key.programHash = prog.fingerprint();

    key.schemaVersion = sweep::reportSchemaVersion;
    return key;
}

PointKey
keyForWindow(const sweep::SweepPoint &point, std::uint64_t libraryHash,
             std::uint64_t windowIndex)
{
    PointKey key;
    Fnv64 cfg;
    cfg.str("window"); // domain tag: never aliases a whole-point key
    mixPoint(cfg, point);
    cfg.u64(windowIndex);
    key.configHash = cfg.value();
    key.programHash = libraryHash;
    key.schemaVersion = sweep::reportSchemaVersion;
    return key;
}

ResultStore::ResultStore(std::string dir, bool allowExisting)
    : _dir(std::move(dir))
{
    sim_throw_if(_dir.empty(), ErrCode::BadConfig,
                 "result store: empty directory path");

    struct stat st;
    if (::stat(_dir.c_str(), &st) == 0) {
        sim_throw_if(!S_ISDIR(st.st_mode), ErrCode::BadConfig,
                     "result store: '%s' exists and is not a directory",
                     _dir.c_str());
        if (!allowExisting) {
            // Count existing records; an empty directory is fine.
            DIR *d = ::opendir(_dir.c_str());
            sim_throw_if(!d, ErrCode::BadConfig,
                         "result store: cannot open '%s': %s",
                         _dir.c_str(), std::strerror(errno));
            bool has_records = false;
            while (const dirent *e = ::readdir(d)) {
                const std::string name = e->d_name;
                if (name.size() > std::strlen(kRecordSuffix) &&
                    name.rfind(kRecordSuffix) ==
                        name.size() - std::strlen(kRecordSuffix)) {
                    has_records = true;
                    break;
                }
            }
            ::closedir(d);
            sim_throw_if(has_records, ErrCode::BadConfig,
                         "result store '%s' already holds records; pass "
                         "--resume to reuse them (memoized re-run or "
                         "resume of an interrupted farm)",
                         _dir.c_str());
        }
    } else {
        sim_throw_if(::mkdir(_dir.c_str(), 0777) != 0 && errno != EEXIST,
                     ErrCode::BadConfig,
                     "result store: cannot create '%s': %s",
                     _dir.c_str(), std::strerror(errno));
    }
}

std::string
ResultStore::recordPath(const PointKey &key) const
{
    return _dir + "/" + key.hex() + kRecordSuffix;
}

StoreGet
ResultStore::get(const PointKey &key, std::vector<std::uint8_t> *fragment)
{
    const std::string path = recordPath(key);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return StoreGet::Miss;

    try {
        Deserializer d(Deserializer::readFile(path));
        d.openSection("key");
        PointKey stored;
        stored.configHash = d.u64();
        stored.programHash = d.u64();
        stored.schemaVersion = d.u32();
        d.closeSection();
        sim_throw_if(!(stored == key), ErrCode::StoreCorrupt,
                     "store record '%s' embeds key %s", path.c_str(),
                     stored.hex().c_str());
        d.openSection("fragment");
        std::vector<std::uint8_t> bytes = d.vecU8();
        d.closeSection();
        if (fragment)
            *fragment = std::move(bytes);
        return StoreGet::Hit;
    } catch (const SimException &e) {
        // Quarantine the damaged record (keep the evidence) and treat
        // the key as absent: corruption costs a re-simulation, never a
        // wrong report.
        ++_corrupt;
        warn("result store: quarantining corrupt record %s: %s",
             path.c_str(), e.error().message.c_str());
        // Uniquify the quarantine name: repeated corruption of the
        // same key (re-simulated, re-stored, rotted again) must keep
        // every piece of evidence, not overwrite the previous one.
        std::string bad;
        for (unsigned n = 1;; ++n) {
            bad = path + ".bad." + std::to_string(n);
            struct stat bad_st;
            if (::stat(bad.c_str(), &bad_st) != 0)
                break;
        }
        if (std::rename(path.c_str(), bad.c_str()) != 0)
            std::remove(path.c_str());
        return StoreGet::Corrupt;
    }
}

void
ResultStore::put(const PointKey &key,
                 const std::vector<std::uint8_t> &fragment)
{
    Serializer s;
    s.beginSection("key");
    s.u64(key.configHash);
    s.u64(key.programHash);
    s.u32(key.schemaVersion);
    s.endSection();
    s.beginSection("fragment");
    s.vecU8(fragment);
    s.endSection();
    try {
        writeCheckpointFile(recordPath(key), s.finish());
    } catch (const SimException &e) {
        throw SimException(SimError{ErrCode::StoreCorrupt,
                                    simFormat("result store: cannot "
                                              "write record for %s",
                                              key.hex().c_str()),
                                    {e.error().message}});
    }
}

bool
ResultStore::verifyOrRepair(const PointKey &key,
                            const std::vector<std::uint8_t> &expect)
{
    std::vector<std::uint8_t> stored;
    const StoreGet got = get(key, &stored);
    if (got == StoreGet::Hit && stored == expect)
        return true;
    if (got == StoreGet::Hit) {
        // Valid container, wrong bytes: a key collision or a foreign
        // writer. Count it as corruption and restore the truth.
        ++_corrupt;
        warn("result store: record %s holds mismatching bytes; "
             "rewriting", recordPath(key).c_str());
    }
    put(key, expect);
    return false;
}

} // namespace imo::farm
