/**
 * @file
 * Content-addressed, memoized result store for sweep points.
 *
 * Sweep reports are byte-identical by construction (the per-point JSON
 * fragment is a pure function of the SweepPoint), so a finished point
 * can be cached and replayed verbatim. A record is keyed by
 *
 *   (config hash, program fingerprint, report-schema version)
 *
 * where the config hash digests every SweepPoint field that selects
 * machine behavior, the program fingerprint is the instrumented
 * program's order-sensitive digest (isa::Program::fingerprint(), so a
 * workload-generator change invalidates cached results), and the
 * schema version pins the report format. Repeated or overlapping
 * sweeps — the common case for a shared service — become store hits
 * instead of simulations, and an interrupted farm resumes from the
 * records already on disk.
 *
 * Each record is one file, <dir>/<40-hex-key>.imores, holding a
 * checkpoint container (src/common/checkpoint.*) with a "key" section
 * (the three key components, verified on read) and a "fragment"
 * section (the exact report bytes). The container's per-section CRC
 * is the integrity layer: a flipped bit anywhere surfaces as a
 * structured StoreCorrupt condition, the record is quarantined to
 * <name>.bad, and the point is re-simulated — corruption can cost a
 * simulation, never a wrong report.
 */

#ifndef IMO_FARM_STORE_HH
#define IMO_FARM_STORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace imo::farm
{

/** The content address of one sweep point's result. */
struct PointKey
{
    std::uint64_t configHash = 0;
    std::uint64_t programHash = 0;
    std::uint32_t schemaVersion = sweep::reportSchemaVersion;

    /** 40-hex-char stable file name stem. */
    std::string hex() const;

    bool operator==(const PointKey &o) const = default;
};

/**
 * Compute the content address of @p point. Builds and instruments the
 * point's program to fingerprint the actual instruction stream; the
 * result depends only on the point (and the binary's workload
 * generators), never on wall clock or host.
 * Throws SimException(BadConfig/BadProgram) for an invalid point.
 */
PointKey keyForPoint(const sweep::SweepPoint &point);

/**
 * Content address of one live-point window shard. The config hash
 * digests the point plus the window index (under a distinct domain
 * tag, so a window record can never alias a whole-point record), and
 * the program-hash component carries the library's content hash — the
 * library image already pins the program fingerprint, the capture
 * digest, and the U:W:M schedule, so shards of different captures
 * land under different keys. Cheap: no program is built.
 */
PointKey keyForWindow(const sweep::SweepPoint &point,
                      std::uint64_t libraryHash,
                      std::uint64_t windowIndex);

/**
 * Content address of one multi-cache group slot. The config hash
 * digests every member point under a distinct domain tag (a group
 * record — a fragment bundle — can never alias a whole-point record);
 * the program hash fingerprints the shared instrumented program, which
 * every member agrees on by the grouping key. Builds the program once.
 */
PointKey keyForGroup(const std::vector<sweep::SweepPoint> &members);

/** Outcome of a store lookup. */
enum class StoreGet : std::uint8_t
{
    Hit,     //!< record present and valid; fragment returned
    Miss,    //!< no record for this key
    Corrupt, //!< record present but failed validation; quarantined
};

/** Directory-backed store of finished point fragments. */
class ResultStore
{
  public:
    /**
     * Open (creating if needed) the store at @p dir. Unless
     * @p allowExisting, a directory that already holds records is
     * rejected with BadConfig — reusing a store (resume / memoized
     * re-run) must be an explicit decision, not an accident.
     */
    ResultStore(std::string dir, bool allowExisting);

    const std::string &dir() const { return _dir; }

    /** Number of records quarantined as corrupt so far. */
    std::uint64_t corruptRecords() const { return _corrupt; }

    /**
     * Look up @p key. On Hit, @p fragment receives the stored report
     * bytes verbatim. A record whose container fails CRC/framing or
     * whose embedded key disagrees with its file name is quarantined
     * (renamed to .bad) and reported as Corrupt.
     */
    StoreGet get(const PointKey &key, std::vector<std::uint8_t> *fragment);

    /**
     * Persist @p fragment under @p key (atomic temp+rename, so a
     * concurrent reader never sees a torn record).
     * Throws SimException(StoreCorrupt) on I/O failure.
     */
    void put(const PointKey &key,
             const std::vector<std::uint8_t> &fragment);

    /**
     * Integrity pass for one record: re-read it from disk and verify
     * container CRCs, the embedded key, and byte-equality with
     * @p expect. A failed record is rewritten from @p expect.
     * @return true if the on-disk record was already valid.
     */
    bool verifyOrRepair(const PointKey &key,
                        const std::vector<std::uint8_t> &expect);

    /** Path of the record file for @p key. */
    std::string recordPath(const PointKey &key) const;

  private:
    std::string _dir;
    std::uint64_t _corrupt = 0;
};

} // namespace imo::farm

#endif // IMO_FARM_STORE_HH
