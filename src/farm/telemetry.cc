#include "farm/telemetry.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/json.hh"
#include "common/manifest.hh"
#include "obs/trace.hh"

namespace imo::farm
{

namespace
{

// Queue-to-grant latency distribution: 64 buckets x 16 ms covers one
// second at fine grain; anything slower lands in the overflow bucket.
constexpr std::size_t kLatencyBuckets = 64;
constexpr std::uint64_t kLatencyBucketMs = 16;

} // anonymous namespace

FarmTelemetry::FarmTelemetry(const FarmOptions &opt,
                             std::uint64_t start_ms)
    : _trace(opt.trace), _progress(opt.progress),
      _progressIntervalMs(opt.progressIntervalMs),
      _progressJsonPath(opt.progressJsonPath), _runId(opt.runId),
      _t0(start_ms),
      _leaseLatency("lease_latency_ms",
                    "queue-to-grant lease latency (ms)", kLatencyBuckets,
                    kLatencyBucketMs),
      _queueWait("queue_wait_ms", "enqueue-to-grant wait per lease (ms)"),
      _simulateWall("simulate_ms", "worker simulate wall time per point"),
      _serializeWall("serialize_ms",
                     "worker fragment serialize time per point"),
      _storePut("store_put_ms", "result-store put time per record")
{
    if (_runId.empty())
        _runId = manifest::makeRunId("imo-farm");
}

void
FarmTelemetry::emit(std::uint32_t cat_bit, const char *name,
                    std::uint64_t ts, std::uint64_t dur, std::uint64_t a0,
                    std::uint64_t a1, std::uint32_t tid)
{
    if (_trace)
        _trace->record(ts, static_cast<obs::Cat>(cat_bit), name, 0, a0,
                       a1, dur, tid);
}

FarmTelemetry::SeatState &
FarmTelemetry::seatState(unsigned seat)
{
    if (_seats.size() <= seat)
        _seats.resize(seat + 1);
    return _seats[seat];
}

FarmTelemetry::SlotState &
FarmTelemetry::slotState(std::size_t slot)
{
    if (_slots.size() <= slot)
        _slots.resize(slot + 1);
    return _slots[slot];
}

void
FarmTelemetry::describeSlot(std::size_t slot, std::string key_hex,
                            std::string desc,
                            std::uint64_t group_members,
                            std::uint64_t group_configs)
{
    SlotState &s = slotState(slot);
    s.rec.keyHex = std::move(key_hex);
    s.rec.desc = std::move(desc);
    s.rec.groupMembers = group_members;
    s.rec.groupConfigs = group_configs;
}

void
FarmTelemetry::noteStoreHit(std::size_t slot, std::uint64_t now)
{
    SlotState &s = slotState(slot);
    s.rec.storeHit = true;
    s.rec.done = true;
    s.finished = true;
    s.rec.endMs = rel(now);
    ++_doneAtStart;
    emit(static_cast<std::uint32_t>(obs::Cat::Store), "store-hit",
         rel(now), 0, slot, 0, 0);
}

void
FarmTelemetry::noteEnqueue(std::size_t slot, std::uint64_t now)
{
    slotState(slot).enqueueMs = now;
}

void
FarmTelemetry::noteRetry(std::size_t slot, unsigned attempts,
                         std::uint64_t backoff_ms, std::uint64_t now)
{
    emit(static_cast<std::uint32_t>(obs::Cat::Farm), "retry", rel(now),
         0, slot, attempts, 0);
    (void)backoff_ms;
}

void
FarmTelemetry::noteGrant(std::size_t slot, unsigned seat, bool straggler,
                         unsigned attempts, std::uint64_t now)
{
    SlotState &s = slotState(slot);
    SeatState &w = seatState(seat);
    w.seen = true;
    w.slot = static_cast<long>(slot);
    w.straggler = straggler;
    w.grantMs = now;
    if (!straggler) {
        const std::uint64_t wait =
            now >= s.enqueueMs ? now - s.enqueueMs : 0;
        _queueWait.sample(static_cast<double>(wait));
        _leaseLatency.sample(wait);
        s.rec.attempts = attempts;
        if (!s.started) {
            s.started = true;
            s.rec.startMs = rel(now);
            s.rec.queueWaitMs = wait;
        }
    } else {
        emit(static_cast<std::uint32_t>(obs::Cat::Farm),
             "straggler-grant", rel(now), 0, slot, attempts,
             seatTid(seat));
    }
}

void
FarmTelemetry::noteWorkerStats(std::size_t slot, const StatsMsg &msg,
                               std::uint64_t now)
{
    (void)now;
    SlotState &s = slotState(slot);
    if (s.finished)
        return; // straggler duplicate: first result's telemetry wins
    s.rec.simulateMs = msg.simulateMs;
    s.rec.serializeMs = msg.serializeMs;
    _simulateWall.sample(static_cast<double>(msg.simulateMs));
    _serializeWall.sample(static_cast<double>(msg.serializeMs));
    if (!msg.statsJson.empty()) {
        json::Value v;
        std::string err;
        if (json::parse(msg.statsJson, v, err)) {
            if (const json::Value *c = v.find("cycles"))
                _workerCycles += c->asUint();
            if (const json::Value *i = v.find("instructions"))
                _workerInstructions += i->asUint();
        }
    }
}

void
FarmTelemetry::closeLease(unsigned seat, const char *name,
                          std::uint64_t now)
{
    SeatState &w = seatState(seat);
    if (w.slot < 0)
        return;
    const std::uint64_t dur =
        now >= w.grantMs ? now - w.grantMs : 0;
    w.busyMs += dur;
    emit(static_cast<std::uint32_t>(obs::Cat::Farm), name,
         rel(w.grantMs), dur ? dur : 1,
         static_cast<std::uint64_t>(w.slot),
         slotState(static_cast<std::size_t>(w.slot)).rec.attempts,
         seatTid(seat));
    w.slot = -1;
    w.straggler = false;
}

void
FarmTelemetry::noteResult(std::size_t slot, unsigned seat, bool duplicate,
                          std::uint64_t fragment_bytes, std::uint64_t now)
{
    SeatState &w = seatState(seat);
    ++w.points;
    closeLease(seat, w.straggler ? "lease-straggler" : "lease", now);
    SlotState &s = slotState(slot);
    if (duplicate || s.finished)
        return;
    s.finished = true;
    s.rec.done = true;
    s.rec.endMs = rel(now);
    s.rec.fragmentBytes = fragment_bytes;
}

void
FarmTelemetry::noteStorePut(std::size_t slot, std::uint64_t dur_ms,
                            std::uint64_t now)
{
    slotState(slot).rec.storePutMs = dur_ms;
    _storePut.sample(static_cast<double>(dur_ms));
    const std::uint64_t end = rel(now);
    emit(static_cast<std::uint32_t>(obs::Cat::Store), "store-put",
         end >= dur_ms ? end - dur_ms : 0, dur_ms ? dur_ms : 1, slot, 0,
         0);
}

void
FarmTelemetry::noteSpawn(unsigned seat, bool remote, std::uint64_t now)
{
    SeatState &w = seatState(seat);
    w.seen = true;
    w.remote = remote;
    emit(static_cast<std::uint32_t>(obs::Cat::Net),
         remote ? "connect" : "spawn", rel(now), 0, 0, 0,
         seatTid(seat));
}

void
FarmTelemetry::noteAdmit(unsigned seat, bool remote, std::uint64_t now)
{
    seatState(seat).remote = remote;
    emit(static_cast<std::uint32_t>(obs::Cat::Net), "admit", rel(now), 0,
         remote ? 1 : 0, 0, seatTid(seat));
}

void
FarmTelemetry::noteAuthReject(unsigned seat, std::uint64_t now)
{
    emit(static_cast<std::uint32_t>(obs::Cat::Net), "auth-reject",
         rel(now), 0, 0, 0, seatTid(seat));
}

void
FarmTelemetry::noteHeartbeat(unsigned seat, std::size_t slot,
                             std::uint64_t now)
{
    emit(static_cast<std::uint32_t>(obs::Cat::Farm), "heartbeat",
         rel(now), 0, slot, 0, seatTid(seat));
}

void
FarmTelemetry::noteLeaseExpired(unsigned seat, std::size_t slot,
                                std::uint64_t now)
{
    emit(static_cast<std::uint32_t>(obs::Cat::Farm), "lease-expired",
         rel(now), 0, slot, 0, seatTid(seat));
}

void
FarmTelemetry::notePeerLost(unsigned seat, std::uint64_t now)
{
    closeLease(seat, "lease-lost", now);
    emit(static_cast<std::uint32_t>(obs::Cat::Net), "worker-lost",
         rel(now), 0, 0, 0, seatTid(seat));
}

std::uint64_t
FarmTelemetry::etaMs(std::size_t done, std::size_t total,
                     std::uint64_t now) const
{
    // Rate from work done *this run* (store prefill excluded): with
    // nothing finished yet there is no estimate, reported as 0.
    if (done <= _doneAtStart || done >= total)
        return 0;
    const std::uint64_t elapsed = rel(now);
    if (elapsed == 0)
        return 0;
    const double rate =
        static_cast<double>(done - _doneAtStart) / elapsed;
    return static_cast<std::uint64_t>(
        static_cast<double>(total - done) / rate);
}

void
FarmTelemetry::writeProgressJson(const std::string &status,
                                 std::size_t done, std::size_t total,
                                 unsigned active, std::uint64_t retries,
                                 std::uint64_t eta_ms, std::uint64_t now)
{
    if (_progressJsonPath.empty())
        return;
    std::ostringstream os;
    os << "{\"progress_schema_version\":1,\"run_id\":\""
       << stats::jsonEscape(_runId) << "\",\"status\":\""
       << stats::jsonEscape(status) << "\",\"done\":" << done
       << ",\"total\":" << total << ",\"active_workers\":" << active
       << ",\"retries\":" << retries << ",\"elapsed_ms\":" << rel(now)
       << ",\"eta_ms\":" << eta_ms << "}\n";
    // Atomic replace: a monitor never reads a half-written heartbeat.
    const std::string tmp = _progressJsonPath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out << os.str();
    }
    std::rename(tmp.c_str(), _progressJsonPath.c_str());
}

void
FarmTelemetry::tick(std::size_t done, std::size_t total, unsigned active,
                    std::uint64_t retries, std::uint64_t now)
{
    if (!_progress && _progressJsonPath.empty())
        return;
    if (_lastProgressMs != 0 &&
        now - _lastProgressMs < _progressIntervalMs)
        return;
    _lastProgressMs = now;
    const std::uint64_t eta = etaMs(done, total, now);
    if (_progress) {
        char eta_buf[32];
        if (eta)
            std::snprintf(eta_buf, sizeof eta_buf, "%.1fs",
                          static_cast<double>(eta) / 1000.0);
        else
            std::snprintf(eta_buf, sizeof eta_buf, "--");
        std::fprintf(stderr,
                     "imo-farm: %zu/%zu points, %u active workers, "
                     "%llu retries, ETA %s\n",
                     done, total, active,
                     static_cast<unsigned long long>(retries), eta_buf);
    }
    writeProgressJson("running", done, total, active, retries, eta, now);
}

void
FarmTelemetry::finish(const std::string &status, std::size_t done,
                      std::size_t total, std::uint64_t retries,
                      std::uint64_t now)
{
    if (_progress) {
        std::fprintf(stderr,
                     "imo-farm: %s — %zu/%zu points in %.1fs, %llu "
                     "retries\n",
                     status.c_str(), done, total,
                     static_cast<double>(rel(now)) / 1000.0,
                     static_cast<unsigned long long>(retries));
    }
    writeProgressJson(status, done, total, 0, retries, 0, now);
}

std::vector<SlotRecord>
FarmTelemetry::takeSlotRecords()
{
    std::vector<SlotRecord> out;
    out.reserve(_slots.size());
    for (SlotState &s : _slots)
        out.push_back(std::move(s.rec));
    return out;
}

void
FarmTelemetry::dumpStats(const FarmStats &totals,
                         std::uint64_t elapsed_ms, std::string *text,
                         std::string *json)
{
    stats::StatGroup root("farm");
    const FarmStats t = totals;
    root.make<stats::Value>("points", "grid points requested",
                            [t] { return t.points; });
    root.make<stats::Value>("unique_slots", "distinct content addresses",
                            [t] { return t.uniqueSlots; });
    root.make<stats::Value>("store_hits",
                            "slots served from the memoized store",
                            [t] { return t.storeHits; });
    root.make<stats::Value>("simulated", "slots simulated by workers",
                            [t] { return t.simulated; });
    root.make<stats::Value>("retries", "slot re-queues after a failure",
                            [t] { return t.retries; });
    root.make<stats::Value>("workers_lost",
                            "worker deaths (crash or kill)",
                            [t] { return t.workersLost; });
    root.make<stats::Value>("leases_expired", "leases past deadline",
                            [t] { return t.leasesExpired; });
    root.make<stats::Value>("redispatches", "straggler duplicate leases",
                            [t] { return t.redispatches; });
    root.make<stats::Value>("duplicate_results",
                            "results delivered for finished slots",
                            [t] { return t.duplicateResults; });
    root.make<stats::Value>("store_corrupt",
                            "records failing key/CRC checks",
                            [t] { return t.storeCorrupt; });
    root.make<stats::Value>("auth_failures",
                            "peers rejected at admission",
                            [t] { return t.authFailures; });
    root.make<stats::Value>("remotes_admitted",
                            "TCP peers through admission",
                            [t] { return t.remotesAdmitted; });
    root.make<stats::Derived>(
        "store_hit_rate", "fraction of unique slots served memoized",
        [t] {
            return t.uniqueSlots ? static_cast<double>(t.storeHits) /
                                       static_cast<double>(t.uniqueSlots)
                                 : 0.0;
        });
    root.make<stats::Derived>(
        "points_per_sec", "farm-wide simulated-point throughput",
        [t, elapsed_ms] {
            return elapsed_ms ? static_cast<double>(t.simulated) *
                                    1000.0 /
                                    static_cast<double>(elapsed_ms)
                              : 0.0;
        });
    root.make<stats::Value>("worker_cycles",
                            "simulated cycles aggregated from workers",
                            [this] { return _workerCycles; });
    root.make<stats::Value>(
        "worker_instructions",
        "graduated instructions aggregated from workers",
        [this] { return _workerInstructions; });
    root.adopt(_leaseLatency);
    root.adopt(_queueWait);
    root.adopt(_simulateWall);
    root.adopt(_serializeWall);
    root.adopt(_storePut);

    stats::StatGroup &workers = root.childGroup("workers");
    for (std::size_t i = 0; i < _seats.size(); ++i) {
        const SeatState &w = _seats[i];
        if (!w.seen)
            continue;
        stats::StatGroup &g =
            workers.childGroup("worker" + std::to_string(i));
        const std::uint64_t points = w.points;
        const std::uint64_t busy = w.busyMs;
        g.make<stats::Value>("points", "results delivered by this seat",
                             [points] { return points; });
        g.make<stats::Value>("busy_ms", "total leased wall time",
                             [busy] { return busy; });
        g.make<stats::Derived>(
            "points_per_sec", "per-seat delivered throughput",
            [points, elapsed_ms] {
                return elapsed_ms ? static_cast<double>(points) *
                                        1000.0 /
                                        static_cast<double>(elapsed_ms)
                                  : 0.0;
            });
        g.make<stats::Value>("remote",
                             "1 when this seat is a TCP daemon",
                             [r = w.remote] {
                                 return static_cast<std::uint64_t>(r);
                             });
    }

    if (text) {
        std::ostringstream os;
        root.dump(os);
        *text = os.str();
    }
    if (json) {
        std::ostringstream os;
        os << "{\"farm\":";
        root.dumpJson(os);
        os << "}\n";
        *json = os.str();
    }
}

} // namespace imo::farm
