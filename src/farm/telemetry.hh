/**
 * @file
 * Farm run telemetry: the observational side-channel of a coordinator
 * run.
 *
 * FarmTelemetry turns the coordinator's scheduling decisions (lease
 * grants, retries, straggler duplicates, store traffic, admission
 * events) into three artifacts:
 *
 *  - a lease timeline on an obs::TraceSink (categories farm/store/net,
 *    one Chrome-trace track per worker seat) loadable in Perfetto next
 *    to per-cycle simulation traces;
 *  - aggregated farm-level registry stats (lease-latency histogram,
 *    queue-wait/simulate/serialize averages, per-worker throughput,
 *    store hit rate) rendered through the common text/JSON dumpers;
 *  - rate-limited live progress: a stderr line and/or a machine-
 *    readable heartbeat JSON file for daemon-mode monitoring.
 *
 * The standing contract: telemetry observes, never steers. No code
 * path in here may influence scheduling, fragments, or the merged
 * report — reports stay byte-identical with telemetry on or off.
 * Orchestration trace timestamps are wall-clock milliseconds since
 * the run started (1 trace tick = 1 ms).
 */

#ifndef IMO_FARM_TELEMETRY_HH
#define IMO_FARM_TELEMETRY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "farm/farm.hh"
#include "farm/proto.hh"

namespace imo::obs
{
class TraceSink;
} // namespace imo::obs

namespace imo::farm
{

class FarmTelemetry
{
  public:
    /** @p start_ms anchors the run's trace/progress time base. */
    FarmTelemetry(const FarmOptions &opt, std::uint64_t start_ms);

    const std::string &runId() const { return _runId; }
    std::uint64_t startMs() const { return _t0; }

    // --- Slot lifecycle ---------------------------------------------
    void describeSlot(std::size_t slot, std::string key_hex,
                      std::string desc,
                      std::uint64_t group_members = 0,
                      std::uint64_t group_configs = 0);
    void noteStoreHit(std::size_t slot, std::uint64_t now);
    void noteEnqueue(std::size_t slot, std::uint64_t now);
    void noteRetry(std::size_t slot, unsigned attempts,
                   std::uint64_t backoff_ms, std::uint64_t now);
    void noteGrant(std::size_t slot, unsigned seat, bool straggler,
                   unsigned attempts, std::uint64_t now);
    void noteWorkerStats(std::size_t slot, const StatsMsg &msg,
                         std::uint64_t now);
    void noteResult(std::size_t slot, unsigned seat, bool duplicate,
                    std::uint64_t fragment_bytes, std::uint64_t now);
    void noteStorePut(std::size_t slot, std::uint64_t dur_ms,
                      std::uint64_t now);

    // --- Peer lifecycle ---------------------------------------------
    void noteSpawn(unsigned seat, bool remote, std::uint64_t now);
    void noteAdmit(unsigned seat, bool remote, std::uint64_t now);
    void noteAuthReject(unsigned seat, std::uint64_t now);
    void noteHeartbeat(unsigned seat, std::size_t slot,
                       std::uint64_t now);
    void noteLeaseExpired(unsigned seat, std::size_t slot,
                          std::uint64_t now);
    void notePeerLost(unsigned seat, std::uint64_t now);

    // --- Live progress ----------------------------------------------
    /** Rate-limited: emits at most once per progressIntervalMs. */
    void tick(std::size_t done, std::size_t total, unsigned active,
              std::uint64_t retries, std::uint64_t now);

    /** Final progress emission (unconditional) with a terminal
     *  status: "ok", "failed", or "interrupted". */
    void finish(const std::string &status, std::size_t done,
                std::size_t total, std::uint64_t retries,
                std::uint64_t now);

    // --- Run extraction ---------------------------------------------
    std::vector<SlotRecord> takeSlotRecords();

    /** Render the aggregated farm registry (counters from @p totals
     *  plus the accumulated histograms/averages/per-seat throughput)
     *  through the common dumpers. */
    void dumpStats(const FarmStats &totals, std::uint64_t elapsed_ms,
                   std::string *text, std::string *json);

  private:
    struct SeatState
    {
        bool seen = false;
        bool remote = false;
        long slot = -1;              //!< open lease, -1 when idle
        bool straggler = false;
        std::uint64_t grantMs = 0;   //!< open lease grant time (abs)
        std::uint64_t points = 0;    //!< results delivered
        std::uint64_t busyMs = 0;    //!< total leased wall time
    };

    struct SlotState
    {
        SlotRecord rec;
        std::uint64_t enqueueMs = 0; //!< latest enqueue (abs)
        bool started = false;        //!< first lease granted
        bool finished = false;
    };

    /** Worker seat N renders on Chrome-trace track N+2 (track 1 is
     *  the coordinator's). */
    static std::uint32_t seatTid(unsigned seat) { return seat + 2; }

    std::uint64_t
    rel(std::uint64_t now) const
    {
        return now >= _t0 ? now - _t0 : 0;
    }

    void emit(std::uint32_t cat_bit, const char *name, std::uint64_t ts,
              std::uint64_t dur, std::uint64_t a0, std::uint64_t a1,
              std::uint32_t tid);
    void closeLease(unsigned seat, const char *name, std::uint64_t now);
    SeatState &seatState(unsigned seat);
    SlotState &slotState(std::size_t slot);
    void writeProgressJson(const std::string &status, std::size_t done,
                           std::size_t total, unsigned active,
                           std::uint64_t retries, std::uint64_t eta_ms,
                           std::uint64_t now);
    std::uint64_t etaMs(std::size_t done, std::size_t total,
                        std::uint64_t now) const;

    obs::TraceSink *_trace = nullptr;
    bool _progress = false;
    std::uint64_t _progressIntervalMs = 500;
    std::string _progressJsonPath;
    std::string _runId;
    std::uint64_t _t0 = 0;
    std::uint64_t _lastProgressMs = 0;
    std::size_t _doneAtStart = 0; //!< store prefill, excluded from rate

    std::vector<SlotState> _slots;
    std::vector<SeatState> _seats;

    // Accumulated distributions (parentless; adopted into the
    // transient dump root).
    stats::Histogram _leaseLatency;
    stats::Average _queueWait;
    stats::Average _simulateWall;
    stats::Average _serializeWall;
    stats::Average _storePut;
    std::uint64_t _workerCycles = 0;
    std::uint64_t _workerInstructions = 0;
};

} // namespace imo::farm

#endif // IMO_FARM_TELEMETRY_HH
