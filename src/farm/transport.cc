#include "farm/transport.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/error.hh"

namespace imo::farm
{

namespace
{

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    sim_throw_if(flags < 0 ||
                     ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0,
                 ErrCode::WorkerLost,
                 "farm transport: cannot set O_NONBLOCK: %s",
                 std::strerror(errno));
}

void
setBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL);
    sim_throw_if(flags < 0 ||
                     ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0,
                 ErrCode::WorkerLost,
                 "farm transport: cannot clear O_NONBLOCK: %s",
                 std::strerror(errno));
}

struct sockaddr_in
parseAddr(const std::string &host, std::uint16_t port, ErrCode errCode)
{
    struct sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    sim_throw_if(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1,
                 errCode,
                 "farm transport: '%s' is not an IPv4 address",
                 host.c_str());
    return addr;
}

} // anonymous namespace

Transport::Transport(int rfd, int wfd, bool socket)
    : _rfd(rfd), _wfd(wfd), _socket(socket)
{
    setNonBlocking(_rfd);
    if (_wfd != _rfd)
        setNonBlocking(_wfd);
}

Transport::~Transport()
{
    close();
}

std::unique_ptr<Transport>
Transport::pipePair(int rfd, int wfd)
{
    return std::unique_ptr<Transport>(new Transport(rfd, wfd, false));
}

std::unique_ptr<Transport>
Transport::socket(int fd)
{
    return std::unique_ptr<Transport>(new Transport(fd, fd, true));
}

void
Transport::close()
{
    if (_rfd >= 0)
        ::close(_rfd);
    if (_wfd >= 0 && _wfd != _rfd)
        ::close(_wfd);
    _rfd = _wfd = -1;
}

void
Transport::sendFrame(FrameType type,
                     const std::vector<std::uint8_t> &payload)
{
    const std::vector<std::uint8_t> bytes = buildFrame(type, payload);
    // Compact the queue before growing it: everything before _outAt is
    // already on the wire.
    if (_outAt > 0) {
        _out.erase(_out.begin(),
                   _out.begin() + static_cast<long>(_outAt));
        _outAt = 0;
    }
    _out.insert(_out.end(), bytes.begin(), bytes.end());
    flush();
}

void
Transport::flush()
{
    sim_throw_if(_wfd < 0, ErrCode::WorkerLost,
                 "farm transport: write on a closed connection");
    while (_outAt < _out.size()) {
        const std::uint8_t *data = _out.data() + _outAt;
        const std::size_t len = _out.size() - _outAt;
        const ssize_t n =
            _socket ? ::send(_wfd, data, len, MSG_NOSIGNAL)
                    : ::write(_wfd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return; // completion queue: retry on the next POLLOUT
            throwSimError(ErrCode::WorkerLost,
                          "farm transport: write failed: %s",
                          std::strerror(errno));
        }
        _outAt += static_cast<std::size_t>(n);
    }
    _out.clear();
    _outAt = 0;
}

bool
Transport::pump()
{
    std::uint8_t buf[65536];
    for (;;) {
        const ssize_t n = ::read(_rfd, buf, sizeof buf);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true;
            return false; // ECONNRESET and friends: the peer is gone
        }
        if (n == 0)
            return false; // EOF
        _parser.feed(buf, static_cast<std::size_t>(n));
        if (n < static_cast<ssize_t>(sizeof buf))
            return true;
    }
}

Listener::Listener(const std::string &host, std::uint16_t port)
{
    struct sockaddr_in addr =
        parseAddr(host, port, ErrCode::BadConfig);

    _fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sim_throw_if(_fd < 0, ErrCode::BadConfig,
                 "farm listener: cannot create socket: %s",
                 std::strerror(errno));
    const int one = 1;
    ::setsockopt(_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(_fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(_fd, 64) != 0) {
        const int err = errno;
        ::close(_fd);
        _fd = -1;
        throwSimError(ErrCode::BadConfig,
                      "farm listener: cannot listen on %s:%u: %s",
                      host.c_str(), static_cast<unsigned>(port),
                      std::strerror(err));
    }
    setNonBlocking(_fd);

    struct sockaddr_in bound{};
    socklen_t len = sizeof bound;
    sim_throw_if(::getsockname(_fd,
                               reinterpret_cast<struct sockaddr *>(&bound),
                               &len) != 0,
                 ErrCode::BadConfig,
                 "farm listener: getsockname failed: %s",
                 std::strerror(errno));
    _port = ntohs(bound.sin_port);
}

Listener::~Listener()
{
    close();
}

void
Listener::close()
{
    if (_fd >= 0)
        ::close(_fd);
    _fd = -1;
}

std::unique_ptr<Transport>
Listener::accept()
{
    for (;;) {
        const int fd = ::accept4(_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return nullptr; // EAGAIN, or a connection that went away
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return Transport::socket(fd);
    }
}

int
connectTcp(const std::string &host, std::uint16_t port,
           std::uint64_t timeoutMs)
{
    struct sockaddr_in addr =
        parseAddr(host, port, ErrCode::WorkerLost);

    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sim_throw_if(fd < 0, ErrCode::WorkerLost,
                 "farm connect: cannot create socket: %s",
                 std::strerror(errno));
    try {
        setNonBlocking(fd);
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof addr) != 0) {
            sim_throw_if(errno != EINPROGRESS, ErrCode::WorkerLost,
                         "farm connect: cannot reach %s:%u: %s",
                         host.c_str(), static_cast<unsigned>(port),
                         std::strerror(errno));
            struct pollfd pfd = {fd, POLLOUT, 0};
            const int rc = ::poll(&pfd, 1,
                                  static_cast<int>(timeoutMs));
            sim_throw_if(rc <= 0, ErrCode::WorkerLost,
                         "farm connect: %s:%u did not answer within "
                         "%llums",
                         host.c_str(), static_cast<unsigned>(port),
                         static_cast<unsigned long long>(timeoutMs));
            int err = 0;
            socklen_t len = sizeof err;
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
            sim_throw_if(err != 0, ErrCode::WorkerLost,
                         "farm connect: cannot reach %s:%u: %s",
                         host.c_str(), static_cast<unsigned>(port),
                         std::strerror(err));
        }
        setBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    } catch (...) {
        ::close(fd);
        throw;
    }
    return fd;
}

} // namespace imo::farm
