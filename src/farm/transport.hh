/**
 * @file
 * Byte-stream transports for the farm protocol.
 *
 * The coordinator's poll loop drives every peer — a fork+pipe local
 * worker or a TCP socket from another machine — through one seam:
 *
 *  - Transport: a non-blocking bidirectional framed stream. Reads are
 *    pumped into the incremental FrameParser (partial frames buffer
 *    until complete), writes go through a completion queue so a short
 *    write never tears a frame: sendFrame() flushes what the kernel
 *    accepts and queues the rest, and flush() finishes the job when
 *    poll() reports the fd writable again.
 *  - Listener: a non-blocking TCP accept socket (loopback or LAN) the
 *    coordinator polls alongside its peers.
 *  - connectTcp(): the worker daemon's non-blocking connect with a
 *    deadline, returned in blocking mode for the worker's simple
 *    read loop.
 *
 * Socket sends use MSG_NOSIGNAL so a vanished peer surfaces as a
 * structured WorkerLost error, never a process-killing SIGPIPE.
 */

#ifndef IMO_FARM_TRANSPORT_HH
#define IMO_FARM_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "farm/proto.hh"

namespace imo::farm
{

/** One peer connection as the coordinator sees it. */
class Transport
{
  public:
    /** Adopt a pipe pair (coordinator side of a fork+pipe worker).
     *  Both fds are switched to non-blocking. */
    static std::unique_ptr<Transport> pipePair(int rfd, int wfd);

    /** Adopt a connected TCP socket (switched to non-blocking). */
    static std::unique_ptr<Transport> socket(int fd);

    ~Transport();
    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;

    int readFd() const { return _rfd; }
    int writeFd() const { return _wfd; }
    bool isSocket() const { return _socket; }

    /**
     * Queue one frame and flush as much as the kernel will take.
     * Throws SimException(WorkerLost) on a hard connection error; a
     * full kernel buffer (EAGAIN) just leaves bytes queued.
     */
    void sendFrame(FrameType type, const std::vector<std::uint8_t> &payload);

    /** Continue draining the write queue (call when poll() reports the
     *  write fd ready). Throws WorkerLost on a hard error. */
    void flush();

    /** @return true while queued bytes await a writable fd. */
    bool wantsWrite() const { return _outAt < _out.size(); }

    /**
     * Drain everything readable into the frame parser.
     * @return false on EOF (peer closed). Throws WorkerLost if the
     * stream is unparseable (cannot be resynchronized).
     */
    bool pump();

    /** @return true and fill @p out if a complete frame is buffered. */
    bool nextFrame(Frame *out) { return _parser.next(out); }

    /** @return true if a partial frame is buffered (dirty EOF). */
    bool midFrame() const { return _parser.midFrame(); }

    /** Close both fds (idempotent). */
    void close();

  private:
    Transport(int rfd, int wfd, bool socket);

    int _rfd = -1;
    int _wfd = -1;
    bool _socket = false;
    FrameParser _parser;
    std::vector<std::uint8_t> _out; //!< unflushed frame bytes
    std::size_t _outAt = 0;         //!< first unsent byte in _out
};

/** Non-blocking TCP listening socket. */
class Listener
{
  public:
    /**
     * Bind and listen on @p host:@p port (port 0 picks an ephemeral
     * port; boundPort() reports the real one).
     * Throws SimException(BadConfig) on a bad address or bind failure.
     */
    Listener(const std::string &host, std::uint16_t port);
    ~Listener();
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    int fd() const { return _fd; }
    std::uint16_t boundPort() const { return _port; }

    /** Accept one pending connection; nullptr when none is queued. */
    std::unique_ptr<Transport> accept();

    void close();

  private:
    int _fd = -1;
    std::uint16_t _port = 0;
};

/**
 * Worker-side connect: non-blocking connect to @p host:@p port with a
 * @p timeoutMs deadline, returned as a *blocking* fd for the worker's
 * sequential frame loop. Throws SimException(WorkerLost) on refusal,
 * timeout, or resolution failure.
 */
int connectTcp(const std::string &host, std::uint16_t port,
               std::uint64_t timeoutMs);

} // namespace imo::farm

#endif // IMO_FARM_TRANSPORT_HH
