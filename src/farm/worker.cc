#include "farm/worker.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "core/informing.hh"
#include "farm/transport.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"
#include "sample/livepoint.hh"
#include "sweep/engine.hh"
#include "sweep/sweep.hh"
#include "workloads/suite.hh"

namespace imo::farm
{

namespace
{

/** Wall-clock milliseconds (steady), for worker-side timings. */
std::uint64_t
steadyMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Frame writer shared by the session's main loop and its heartbeat
 * side thread (frames must never interleave mid-frame), with the
 * network fault points injected per send.
 */
class Writer
{
  public:
    Writer(int wfd, bool isSocket, FaultInjector &inject)
        : _wfd(wfd), _socket(isSocket), _inject(inject)
    {
    }

    /** Send one whole frame; may fire conn-drop / conn-stutter. */
    void
    send(FrameType type, const std::vector<std::uint8_t> &payload)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        const std::vector<std::uint8_t> bytes =
            buildFrame(type, payload);
        if (_inject.fire(FaultPoint::ConnDrop)) {
            // The link dies mid-frame: half the bytes make it out,
            // then the connection is torn down. The coordinator sees
            // a dirty EOF; the daemon reconnects.
            writeAll(bytes.data(), bytes.size() / 2);
            if (_socket)
                ::shutdown(_wfd, SHUT_RDWR);
            else
                ::close(_wfd);
            throwSimError(ErrCode::WorkerLost,
                          "farm worker: injected conn-drop mid-frame");
        }
        if (_inject.fire(FaultPoint::ConnStutter)) {
            // One byte per write(), with a forced segment boundary
            // after the first: the coordinator must reassemble the
            // frame from arbitrary fragments.
            for (std::size_t i = 0; i < bytes.size(); ++i) {
                writeAll(bytes.data() + i, 1);
                if (i == 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
            }
            return;
        }
        writeAll(bytes.data(), bytes.size());
    }

    /** Send pre-built frame bytes verbatim (handshake path, where the
     *  caller may have corrupted them deliberately). */
    void
    sendRaw(const std::vector<std::uint8_t> &bytes)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        writeAll(bytes.data(), bytes.size());
    }

  private:
    void
    writeAll(const std::uint8_t *data, std::size_t len)
    {
        std::size_t done = 0;
        while (done < len) {
            const ssize_t n =
                _socket ? ::send(_wfd, data + done, len - done,
                                 MSG_NOSIGNAL)
                        : ::write(_wfd, data + done, len - done);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                throwSimError(ErrCode::WorkerLost,
                              "farm worker: write failed: %s",
                              std::strerror(errno));
            }
            done += static_cast<std::size_t>(n);
        }
    }

    std::mutex _mutex;
    int _wfd;
    bool _socket;
    FaultInjector &_inject;
};

enum class Wait : std::uint8_t
{
    GotFrame,
    Eof,
    Stopped,
};

/** Block for the next frame, polling @p stop every 200ms. */
Wait
waitFrame(int rfd, Frame *out, const volatile std::sig_atomic_t *stop)
{
    for (;;) {
        if (stop && *stop)
            return Wait::Stopped;
        struct pollfd pfd = {rfd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throwSimError(ErrCode::WorkerLost,
                          "farm worker: poll failed: %s",
                          std::strerror(errno));
        }
        if (rc == 0)
            continue;
        return readFrame(rfd, out) ? Wait::GotFrame : Wait::Eof;
    }
}

/**
 * Injected stall: go silent until the coordinator gives up on us (it
 * SIGKILLs local workers and closes remote sockets). A remote worker
 * recovers by reconnecting once the peer is gone.
 */
[[noreturn]] void
hangUntilPeerGone(int rfd, const volatile std::sig_atomic_t *stop)
{
    for (;;) {
        if (stop && *stop)
            throwSimError(ErrCode::Interrupted,
                          "farm worker: interrupted while stalled");
        struct pollfd pfd = {rfd, 0, 0};
        const int rc = ::poll(&pfd, 1, 500);
        if (rc > 0 && (pfd.revents & (POLLHUP | POLLERR)))
            throwSimError(ErrCode::WorkerLost,
                          "farm worker: coordinator dropped a stalled "
                          "worker");
    }
}

/**
 * Executes window leases, caching the expensive per-point setup — the
 * instrumented program, machine config, and the executor inside the
 * WindowRunner — across consecutive leases of the same sweep point.
 * The coordinator shards one capture's windows across workers, so a
 * session typically sees a long run of leases whose point is
 * identical; rebuilding the workload and instrumenting it per window
 * would rival the window itself. Each run() is still a pure function
 * of the lease bytes (restoreExecImage() overwrites all executor
 * state), so shards of one capture produce identical samples wherever
 * they run; restoreExecImage() rejects images whose program
 * fingerprint disagrees with the rebuilt program (deterministic
 * BadCheckpoint).
 */
class WindowLeaseRunner
{
  public:
    sample::WindowSample
    run(const LeaseMsg &lease)
    {
        if (!_ready || !(lease.point == _point))
            rebuild(lease.point);
        sample::LivePoint point;
        point.warmImage = lease.warmImage;
        point.execImage = lease.execImage;
        return _cfg.outOfOrder
                   ? _ooo->run(point, _sp.warmup, _sp.measure)
                   : _inorder->run(point, _sp.warmup, _sp.measure);
    }

  private:
    void
    rebuild(const sweep::SweepPoint &p)
    {
        _ready = false;
        _ooo.reset();
        _inorder.reset();
        _point = p;
        _cfg = p.resolveConfig();
        _sp = sample::SampleParams::parse(p.sample);
        workloads::WorkloadParams wp;
        wp.scale = p.scale;
        wp.seed = p.seed;
        const isa::Program prog =
            core::instrument(workloads::build(p.workload, wp), p.mode,
                             {.length = p.handlerLen});
        // The runner keeps a reference to the config, so it must point
        // at the stable member, not a local.
        if (_cfg.outOfOrder)
            _ooo.emplace(prog, _cfg);
        else
            _inorder.emplace(prog, _cfg);
        _ready = true;
    }

    bool _ready = false;
    sweep::SweepPoint _point;
    pipeline::MachineConfig _cfg;
    sample::SampleParams _sp;
    std::optional<sample::WindowRunner<pipeline::OooCpu>> _ooo;
    std::optional<sample::WindowRunner<pipeline::InOrderCpu>> _inorder;
};

} // anonymous namespace

SessionEnd
serveSession(int rfd, int wfd, const SessionParams &params,
             FaultInjector &inject,
             const volatile std::sig_atomic_t *stop, bool *admitted)
{
    const bool is_socket = rfd == wfd;
    Writer writer(wfd, is_socket, inject);

    std::string run_id;
    const auto event = [&](const char *name, std::uint64_t slot,
                           std::string detail = {}) {
        if (params.onEvent)
            params.onEvent(
                SessionEvent{name, slot, run_id, std::move(detail)});
    };

    // --- Admission handshake ----------------------------------------
    Frame frame;
    switch (waitFrame(rfd, &frame, stop)) {
      case Wait::Eof: return SessionEnd::PeerClosed;
      case Wait::Stopped: return SessionEnd::Stopped;
      case Wait::GotFrame: break;
    }
    sim_throw_if(frame.type != FrameType::Challenge, ErrCode::WorkerLost,
                 "farm worker: expected Challenge, got frame type %u",
                 static_cast<unsigned>(frame.type));
    const ChallengeMsg challenge = decodeChallenge(frame.payload);
    sim_throw_if(challenge.protoVersion != protocolVersion ||
                     challenge.schemaVersion !=
                         sweep::reportSchemaVersion,
                 ErrCode::AuthFailed,
                 "farm worker: coordinator speaks protocol v%u / "
                 "report schema v%u; this worker speaks v%u / v%u",
                 challenge.protoVersion, challenge.schemaVersion,
                 protocolVersion, sweep::reportSchemaVersion);
    run_id = challenge.runId;
    event("challenge", 0);

    HelloMsg hello;
    hello.response = authDigest(params.token, challenge.nonce);
    std::vector<std::uint8_t> hello_frame =
        buildFrame(FrameType::Hello, encodeHello(hello));
    if (inject.fire(FaultPoint::HandshakeCorrupt)) {
        // Wire corruption after the CRC was computed: the coordinator
        // rejects the frame and drops us; the reconnect handshake
        // heals it. (A *valid* Hello with a wrong digest would be a
        // deterministic AuthFailed instead.)
        hello_frame[frameHeaderBytes +
                    (hello_frame.size() - frameHeaderBytes) / 2] ^= 0x40;
    }
    writer.sendRaw(hello_frame);

    // --- Lease loop -------------------------------------------------
    WindowLeaseRunner window_runner;
    for (;;) {
        switch (waitFrame(rfd, &frame, stop)) {
          case Wait::Eof: return SessionEnd::PeerClosed;
          case Wait::Stopped: return SessionEnd::Stopped;
          case Wait::GotFrame: break;
        }
        if (frame.type == FrameType::Shutdown) {
            if (admitted)
                *admitted = true;
            event("shutdown", 0);
            return SessionEnd::ShutdownReceived;
        }
        if (frame.type == FrameType::AuthReject) {
            // Carry the coordinator's structured rejection out as our
            // own failure; reconnecting cannot fix a version or token
            // mismatch.
            SimError err = decodeError(frame.payload).error;
            if (err.code != ErrCode::AuthFailed)
                err.code = ErrCode::AuthFailed;
            event("auth-reject", 0, err.format());
            throw SimException(std::move(err));
        }
        sim_throw_if(frame.type != FrameType::Lease, ErrCode::WorkerLost,
                     "farm worker: unexpected frame type %u from "
                     "coordinator",
                     static_cast<unsigned>(frame.type));
        if (admitted)
            *admitted = true;
        const LeaseMsg lease = decodeLease(frame.payload);
        const bool is_window = lease.windowIndex != LeaseMsg::noWindow;
        const bool is_group = !lease.groupPoints.empty();
        event("lease", lease.slot,
              is_window
                  ? simFormat("%s window %llu",
                              sweep::describePoint(lease.point).c_str(),
                              static_cast<unsigned long long>(
                                  lease.windowIndex))
                  : (is_group
                         ? simFormat(
                               "multi-cache group of %zu: %s",
                               lease.groupPoints.size(),
                               sweep::describePoint(lease.point).c_str())
                         : sweep::describePoint(lease.point)));

        if (inject.fire(FaultPoint::WorkerKill)) {
            // Crash / preemption: die without a word mid-lease.
            event("fault-worker-kill", lease.slot);
            ::kill(::getpid(), SIGKILL);
        }
        if (inject.fire(FaultPoint::WorkerStall)) {
            event("fault-worker-stall", lease.slot);
            hangUntilPeerGone(rfd, stop);
        }

        // Heartbeat while the simulation runs, so a long point is
        // distinguishable from a dead worker.
        std::atomic<bool> beat{true};
        std::thread heartbeat([&] {
            while (beat.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(params.heartbeatMs));
                if (!beat.load(std::memory_order_relaxed))
                    break;
                try {
                    writer.send(FrameType::Heartbeat,
                                encodeHeartbeat(lease.slot));
                } catch (const SimException &) {
                    break; // peer is gone; main loop will see EOF
                }
            }
        });

        std::ostringstream fragment;
        std::vector<std::uint8_t> bundle;
        bool sim_ok = true;
        SimError sim_err;
        StatsMsg point_stats;
        point_stats.slot = lease.slot;
        try {
            if (is_group) {
                // Multi-cache group: one shared pass classifies every
                // member geometry; the fragment is a bundle of the
                // members' report fragments, split by the coordinator.
                const std::uint64_t t0 = steadyMs();
                const std::vector<sweep::SweepOutcome> outcomes =
                    sweep::runPointGroup(lease.groupPoints);
                const std::uint64_t t1 = steadyMs();
                std::vector<std::vector<std::uint8_t>> frags;
                frags.reserve(outcomes.size());
                for (const sweep::SweepOutcome &o : outcomes) {
                    std::ostringstream one;
                    sweep::writePointJson(one, o);
                    const std::string text = one.str();
                    frags.emplace_back(text.begin(), text.end());
                }
                bundle = encodeFragmentBundle(frags);
                const std::uint64_t t2 = steadyMs();
                point_stats.simulateMs = t1 - t0;
                point_stats.serializeMs = t2 - t1;
                point_stats.statsJson = simFormat(
                    "{\"cycles\":0,\"instructions\":0}");
            } else if (is_window) {
                // Window shard: the fragment is the fixed-width
                // WindowSample encoding, not report JSON — the
                // coordinator folds the shards into the point's
                // estimate itself.
                const std::uint64_t t0 = steadyMs();
                const sample::WindowSample ws =
                    window_runner.run(lease);
                const std::uint64_t t1 = steadyMs();
                fragment << sample::encodeWindowSample(ws);
                point_stats.simulateMs = t1 - t0;
                point_stats.serializeMs = 0;
                point_stats.statsJson = simFormat(
                    "{\"cycles\":%llu,\"instructions\":%llu}",
                    static_cast<unsigned long long>(ws.cycles),
                    static_cast<unsigned long long>(ws.measured));
            } else {
                const std::uint64_t t0 = steadyMs();
                const sweep::SweepOutcome outcome =
                    sweep::runPoint(lease.point);
                const std::uint64_t t1 = steadyMs();
                sweep::writePointJson(fragment, outcome);
                const std::uint64_t t2 = steadyMs();
                point_stats.simulateMs = t1 - t0;
                point_stats.serializeMs = t2 - t1;
                // Compact per-point stats for farm-level aggregation
                // (zeros for a sampled point, whose result is an
                // estimate). The report fragment stays the only source
                // of truth for the merged report.
                point_stats.statsJson = simFormat(
                    "{\"cycles\":%llu,\"instructions\":%llu}",
                    static_cast<unsigned long long>(
                        outcome.result.cycles),
                    static_cast<unsigned long long>(
                        outcome.result.instructions));
            }
        } catch (const SimException &e) {
            sim_ok = false;
            sim_err = e.error();
        }
        beat.store(false, std::memory_order_relaxed);
        heartbeat.join();

        if (!sim_ok) {
            // A point the simulator itself rejects fails
            // deterministically — retrying cannot help. Carry the
            // structured diagnosis back so the coordinator fails the
            // farm fast with the real error instead of burning the
            // lease/retry budget.
            std::fprintf(stderr, "imo-farm worker: point failed: %s\n",
                         sim_err.format().c_str());
            event("error", lease.slot, sim_err.format());
            ErrorMsg err;
            err.slot = lease.slot;
            err.error = std::move(sim_err);
            writer.send(FrameType::Error, encodeError(err));
            continue;
        }

        if (inject.fire(FaultPoint::DroppedResult)) {
            // Completed but the result is lost in transit: fall
            // silent. The lease expires and the point is retried —
            // the Stats frame below is intentionally dropped with it.
            event("fault-dropped-result", lease.slot);
            hangUntilPeerGone(rfd, stop);
        }

        // Per-point timings/stats ride immediately ahead of the
        // result, so the coordinator attributes them to this lease.
        // Protocol v2 coordinators never see this frame (the version
        // handshake rejects the session first).
        writer.send(FrameType::Stats, encodeStats(point_stats));

        ResultMsg result;
        result.slot = lease.slot;
        const std::string &text = fragment.str();
        if (is_group)
            result.fragment = std::move(bundle);
        else
            result.fragment.assign(text.begin(), text.end());
        writer.send(FrameType::Result, encodeResult(result));
        event("result", lease.slot,
              simFormat("%zu bytes, %llu ms simulate",
                        result.fragment.size(),
                        static_cast<unsigned long long>(
                            point_stats.simulateMs)));
    }
}

SimError
runWorker(const WorkerOptions &options,
          const volatile std::sig_atomic_t *stop)
{
    if (options.port == 0)
        return SimError{ErrCode::BadConfig,
                        "worker: coordinator port must be nonzero", {}};
    if (options.heartbeatMs == 0)
        return SimError{ErrCode::BadConfig,
                        "worker: --heartbeat-ms must be nonzero", {}};

    FaultInjector inject(options.faults);
    SessionParams params;
    params.token = options.token;
    params.heartbeatMs = options.heartbeatMs;
    params.onEvent = options.onEvent;

    unsigned failures = 0;
    for (;;) {
        if (stop && *stop)
            return SimError{ErrCode::Interrupted,
                            "worker: interrupted", {}};

        try {
            const int fd = connectTcp(options.host, options.port,
                                      options.connectTimeoutMs);
            bool admitted = false;
            SessionEnd end;
            try {
                end = serveSession(fd, fd, params, inject, stop,
                                   &admitted);
            } catch (...) {
                ::close(fd);
                throw;
            }
            ::close(fd);
            switch (end) {
              case SessionEnd::ShutdownReceived:
                return {}; // clean exit
              case SessionEnd::Stopped:
                return SimError{ErrCode::Interrupted,
                                "worker: interrupted", {}};
              case SessionEnd::PeerClosed:
                break; // transient: reconnect below
            }
            if (admitted)
                failures = 0;
        } catch (const SimException &e) {
            if (e.code() == ErrCode::AuthFailed ||
                e.code() == ErrCode::Interrupted)
                return e.error(); // deterministic / final: do not retry
            warn("imo-worker: %s", e.error().format().c_str());
        }

        ++failures;
        if (options.maxRetries != 0 && failures > options.maxRetries)
            return SimError{
                ErrCode::WorkerLost,
                simFormat("worker: giving up on %s:%u after %u failed "
                          "connection attempts",
                          options.host.c_str(),
                          static_cast<unsigned>(options.port),
                          failures),
                {}};

        // Capped exponential backoff, sliced so a stop signal lands
        // promptly.
        std::uint64_t backoff = options.backoffBaseMs;
        for (unsigned i = 1; i < failures && backoff < options.backoffCapMs;
             ++i)
            backoff *= 2;
        if (backoff > options.backoffCapMs)
            backoff = options.backoffCapMs;
        while (backoff > 0) {
            if (stop && *stop)
                return SimError{ErrCode::Interrupted,
                                "worker: interrupted", {}};
            const std::uint64_t slice = backoff > 100 ? 100 : backoff;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            backoff -= slice;
        }
    }
}

} // namespace imo::farm
