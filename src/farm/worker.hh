/**
 * @file
 * Worker-side farm protocol: one lease-serving session, shared by the
 * fork+pipe local workers (src/farm/farm.cc spawns them) and the
 * standalone imo-worker TCP daemon (tools/imo_worker.cc).
 *
 * A session is: read the coordinator's Challenge, answer it with an
 * authenticated Hello (protocol version, report schema version, and
 * the token digest), then serve Lease frames — heartbeating from a
 * side thread while simulating — until Shutdown, EOF, or a stop
 * signal. The network fault points (conn-drop, conn-stutter,
 * handshake-corrupt) are drawn in this file's send path, so the same
 * seed-deterministic chaos schedule drives both transports.
 *
 * runWorker() wraps a session in the daemon's reconnect loop: capped
 * exponential backoff after a drop, a fresh handshake per attempt,
 * and a hard stop on AuthFailed (a deterministic rejection that
 * reconnecting cannot fix).
 */

#ifndef IMO_FARM_WORKER_HH
#define IMO_FARM_WORKER_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>

#include "common/error.hh"
#include "common/faultinject.hh"

namespace imo::farm
{

/** One observable moment of a worker session, surfaced to the
 *  embedding tool (imo-worker --log-json). The run id is the
 *  coordinator's, learned from the Challenge frame, so logs from many
 *  machines join on it. */
struct SessionEvent
{
    const char *name = ""; //!< "admitted", "lease", "result", ...
    std::uint64_t slot = 0;
    std::string runId;     //!< empty before the Challenge arrives
    std::string detail;    //!< point description or error text
};

/** Knobs shared by both session flavors. */
struct SessionParams
{
    std::string token;               //!< admission shared secret
    std::uint64_t heartbeatMs = 200; //!< heartbeat period mid-lease

    /** Optional observer of session milestones (never on the
     *  per-instruction hot path; at most a few calls per lease). */
    std::function<void(const SessionEvent &)> onEvent;
};

/** Why a session ended (exceptional ends throw SimException). */
enum class SessionEnd : std::uint8_t
{
    ShutdownReceived, //!< clean coordinator-initiated exit
    PeerClosed,       //!< EOF: the coordinator (or the link) went away
    Stopped,          //!< the stop flag fired (SIGINT/SIGTERM)
};

/**
 * Serve one coordinator connection on @p rfd/@p wfd (equal for a
 * socket, distinct for a pipe pair). Blocking reads; @p stop is
 * polled between frames. @p admitted is set once a post-handshake
 * frame arrives (the daemon uses it to reset its backoff).
 *
 * Throws SimException(AuthFailed) when either side's admission check
 * fails — deterministic, do not reconnect — and
 * SimException(WorkerLost) on protocol garbage or an injected
 * connection fault (transient, reconnect).
 */
SessionEnd serveSession(int rfd, int wfd, const SessionParams &params,
                        FaultInjector &inject,
                        const volatile std::sig_atomic_t *stop,
                        bool *admitted = nullptr);

/** Configuration of the standalone TCP worker daemon. */
struct WorkerOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string token;
    std::uint64_t heartbeatMs = 200;

    /** Reconnect backoff: base * 2^(attempt-1), capped. */
    std::uint64_t backoffBaseMs = 100;
    std::uint64_t backoffCapMs = 5'000;

    /** Consecutive failed connect/handshake attempts before giving up
     *  (0 = retry forever). Resets on every successful admission. */
    unsigned maxRetries = 0;

    std::uint64_t connectTimeoutMs = 5'000;

    /** Worker-side fault plan (worker-kill / worker-stall /
     *  dropped-result / conn-drop / conn-stutter /
     *  handshake-corrupt). */
    FaultSchedule faults;

    /** Forwarded into every session's SessionParams::onEvent. */
    std::function<void(const SessionEvent &)> onEvent;
};

/**
 * Run the worker daemon until the coordinator sends Shutdown (ok), the
 * stop flag fires (Interrupted), admission is rejected (AuthFailed),
 * or the reconnect budget is exhausted (WorkerLost). Never throws;
 * the outcome comes back as a SimError (ok() for a clean shutdown).
 */
SimError runWorker(const WorkerOptions &options,
                   const volatile std::sig_atomic_t *stop = nullptr);

} // namespace imo::farm

#endif // IMO_FARM_WORKER_HH
