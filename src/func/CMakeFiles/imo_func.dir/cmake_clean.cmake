file(REMOVE_RECURSE
  "CMakeFiles/imo_func.dir/executor.cc.o"
  "CMakeFiles/imo_func.dir/executor.cc.o.d"
  "libimo_func.a"
  "libimo_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
