file(REMOVE_RECURSE
  "libimo_func.a"
)
