# Empty dependencies file for imo_func.
# This may be replaced when dependencies are built.
