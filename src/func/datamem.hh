/**
 * @file
 * Sparse 64-bit-word data memory for functional execution.
 */

#ifndef IMO_FUNC_DATAMEM_HH
#define IMO_FUNC_DATAMEM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hh"
#include "common/types.hh"

namespace imo::func
{

/**
 * Byte-addressed, 8-byte-aligned, zero-initialized data memory backed
 * by 4 KiB pages allocated on demand.
 */
class DataMemory
{
  public:
    std::uint64_t
    read64(Addr addr) const
    {
        // Effective addresses are program-controlled (base register +
        // displacement), so misalignment is a program error, not an
        // internal invariant violation.
        sim_throw_if(addr & 7, ErrCode::BadProgram,
                     "unaligned 64-bit read at %#llx",
                     static_cast<unsigned long long>(addr));
        auto it = _pages.find(pageOf(addr));
        if (it == _pages.end())
            return 0;
        return it->second[wordInPage(addr)];
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        sim_throw_if(addr & 7, ErrCode::BadProgram,
                     "unaligned 64-bit write at %#llx",
                     static_cast<unsigned long long>(addr));
        page(addr)[wordInPage(addr)] = value;
    }

    /** @return number of resident pages (for tests). */
    std::size_t residentPages() const { return _pages.size(); }

  private:
    static constexpr Addr pageBytes = 4096;
    static constexpr Addr wordsPerPage = pageBytes / 8;

    static Addr pageOf(Addr addr) { return addr / pageBytes; }
    static Addr wordInPage(Addr addr) { return (addr % pageBytes) / 8; }

    std::vector<std::uint64_t> &
    page(Addr addr)
    {
        auto [it, inserted] = _pages.try_emplace(pageOf(addr));
        if (inserted)
            it->second.resize(wordsPerPage, 0);
        return it->second;
    }

    std::unordered_map<Addr, std::vector<std::uint64_t>> _pages;
};

} // namespace imo::func

#endif // IMO_FUNC_DATAMEM_HH
