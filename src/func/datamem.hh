/**
 * @file
 * Sparse 64-bit-word data memory for functional execution.
 */

#ifndef IMO_FUNC_DATAMEM_HH
#define IMO_FUNC_DATAMEM_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/types.hh"

namespace imo::func
{

/**
 * Byte-addressed, 8-byte-aligned, zero-initialized data memory backed
 * by 4 KiB pages allocated on demand.
 */
class DataMemory
{
  public:
    std::uint64_t
    read64(Addr addr) const
    {
        // Effective addresses are program-controlled (base register +
        // displacement), so misalignment is a program error, not an
        // internal invariant violation.
        sim_throw_if(addr & 7, ErrCode::BadProgram,
                     "unaligned 64-bit read at %#llx",
                     static_cast<unsigned long long>(addr));
        const Addr pg = pageOf(addr);
        if (pg == _cachedPage) [[likely]]
            return (*_cachedWords)[wordInPage(addr)];
        auto it = _pages.find(pg);
        if (it == _pages.end())
            return 0;
        _cachedPage = pg;
        // The map itself is non-const; only this accessor is const.
        _cachedWords = const_cast<std::vector<std::uint64_t> *>(&it->second);
        return it->second[wordInPage(addr)];
    }

    void
    write64(Addr addr, std::uint64_t value)
    {
        sim_throw_if(addr & 7, ErrCode::BadProgram,
                     "unaligned 64-bit write at %#llx",
                     static_cast<unsigned long long>(addr));
        const Addr pg = pageOf(addr);
        if (pg == _cachedPage) [[likely]] {
            (*_cachedWords)[wordInPage(addr)] = value;
            return;
        }
        std::vector<std::uint64_t> &words = page(addr);
        _cachedPage = pg;
        _cachedWords = &words;
        words[wordInPage(addr)] = value;
    }

    /** @return number of resident pages (for tests). */
    std::size_t residentPages() const { return _pages.size(); }

    /**
     * Checkpoint hooks. Pages are written sorted by page number so the
     * image is independent of hash-map iteration order.
     */
    void
    save(Serializer &s) const
    {
        std::vector<Addr> order;
        order.reserve(_pages.size());
        for (const auto &[page, words] : _pages)
            order.push_back(page);
        std::sort(order.begin(), order.end());
        // Format v4: page numbers delta-varint packed (sorted, so the
        // deltas are small) and each page's words likewise (zeroed and
        // small values dominate real data pages).
        s.vecU64Packed(order);
        for (const Addr page : order)
            s.vecU64Packed(_pages.at(page));
    }

    void
    restore(Deserializer &d)
    {
        _pages.clear();
        _cachedPage = kNoPage;
        _cachedWords = nullptr;
        const std::vector<Addr> order = d.vecU64Packed();
        for (std::size_t i = 0; i < order.size(); ++i) {
            sim_throw_if(i > 0 && order[i] <= order[i - 1],
                         ErrCode::BadCheckpoint,
                         "checkpointed data pages out of order at "
                         "index %zu", i);
            std::vector<std::uint64_t> words = d.vecU64Packed();
            sim_throw_if(words.size() != wordsPerPage,
                         ErrCode::BadCheckpoint,
                         "checkpointed data page %#llx has %zu words, "
                         "expected %llu",
                         static_cast<unsigned long long>(order[i]),
                         words.size(),
                         static_cast<unsigned long long>(wordsPerPage));
            _pages[order[i]] = std::move(words);
        }
    }

  private:
    static constexpr Addr pageBytes = 4096;
    static constexpr Addr wordsPerPage = pageBytes / 8;

    static Addr pageOf(Addr addr) { return addr / pageBytes; }
    static Addr wordInPage(Addr addr) { return (addr % pageBytes) / 8; }

    std::vector<std::uint64_t> &
    page(Addr addr)
    {
        auto [it, inserted] = _pages.try_emplace(pageOf(addr));
        if (inserted)
            it->second.resize(wordsPerPage, 0);
        return it->second;
    }

    std::unordered_map<Addr, std::vector<std::uint64_t>> _pages;

    // One-entry page cache: spatial locality makes consecutive
    // references overwhelmingly land on the same page, turning the
    // per-reference hash lookup into a compare. Pointers to mapped
    // values stay valid across rehashes, so only restore() (which
    // clears the map) needs to drop the cache.
    static constexpr Addr kNoPage = ~static_cast<Addr>(0);
    mutable Addr _cachedPage = kNoPage;
    mutable std::vector<std::uint64_t> *_cachedWords = nullptr;
};

} // namespace imo::func

#endif // IMO_FUNC_DATAMEM_HH
