#include "func/executor.hh"

#include <bit>
#include <cmath>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace imo::func
{

using isa::Op;

Executor::Executor(isa::Program program, const Config &config)
    : _program(std::move(program)), _config(config),
      _hier(config.l1, config.l2)
{
    std::string why;
    sim_throw_if(!_program.validate(&why), ErrCode::BadProgram,
                 "executor: invalid program '%s': %s",
                 _program.name().c_str(), why.c_str());
    for (const isa::DataSegment &seg : _program.data()) {
        for (std::size_t i = 0; i < seg.words.size(); ++i)
            _mem.write64(seg.base + i * 8, seg.words[i]);
    }
}

std::uint64_t
Executor::readIreg(std::uint8_t unified) const
{
    panic_if(isa::isFpRegId(unified), "int read of fp register");
    return unified == 0 ? 0 : _state.ireg[unified];
}

void
Executor::writeIreg(std::uint8_t unified, std::uint64_t value)
{
    panic_if(isa::isFpRegId(unified), "int write of fp register");
    if (unified != 0)
        _state.ireg[unified] = value;
}

double
Executor::readFreg(std::uint8_t unified) const
{
    panic_if(!isa::isFpRegId(unified), "fp read of int register");
    return _state.freg[unified - isa::numIntRegs];
}

void
Executor::writeFreg(std::uint8_t unified, double value)
{
    panic_if(!isa::isFpRegId(unified), "fp write of int register");
    _state.freg[unified - isa::numIntRegs] = value;
}

template <bool Fill>
bool
Executor::stepImpl(TraceRecord *out, WarmSink *warm)
{
    if (_state.halted)
        return false;

    sim_throw_if(_stats.instructions >= _config.maxInstructions,
                 ErrCode::RunawayExecution,
                 "program '%s' exceeded %llu instructions without "
                 "halting (runaway?)",
                 _program.name().c_str(),
                 static_cast<unsigned long long>(_config.maxInstructions));

    // Static targets were validated; only a dynamic transfer (JR,
    // RETMH, or a trap through SETMHARR) can take the pc out of range.
    sim_throw_if(_state.pc >= _program.size(), ErrCode::BadProgram,
                 "program '%s': pc %u out of range (wild indirect "
                 "jump or handler return)",
                 _program.name().c_str(), _state.pc);

    const InstAddr pc = _state.pc;
    const isa::Instruction &in = _program.inst(pc);
    const bool handler_code = _inHandler;

    if constexpr (Fill) {
        // Reset the scalar fields individually: value-initializing the
        // whole record would zero the embedded Instruction only to copy
        // over it on the next line, and this runs once per instruction.
        out->inst = in;
        out->pc = pc;
        out->addr = 0;
        out->level = MemLevel::L1;
        out->taken = false;
        out->trapped = false;
        out->handlerCode = handler_code;
    }

    InstAddr next_pc = pc + 1;

    auto as_i64 = [](std::uint64_t v) { return static_cast<std::int64_t>(v); };

    switch (in.op) {
      // Integer ALU ---------------------------------------------------
      case Op::ADD:
        writeIreg(in.rd, readIreg(in.rs1) + readIreg(in.rs2));
        break;
      case Op::ADDI:
        writeIreg(in.rd, readIreg(in.rs1) + static_cast<std::uint64_t>(in.imm));
        break;
      case Op::SUB:
        writeIreg(in.rd, readIreg(in.rs1) - readIreg(in.rs2));
        break;
      case Op::MUL:
        writeIreg(in.rd, readIreg(in.rs1) * readIreg(in.rs2));
        break;
      case Op::DIV: {
        const std::uint64_t denom = readIreg(in.rs2);
        writeIreg(in.rd, denom ? readIreg(in.rs1) / denom : 0);
        break;
      }
      case Op::AND:
        writeIreg(in.rd, readIreg(in.rs1) & readIreg(in.rs2));
        break;
      case Op::ANDI:
        writeIreg(in.rd, readIreg(in.rs1) & static_cast<std::uint64_t>(in.imm));
        break;
      case Op::OR:
        writeIreg(in.rd, readIreg(in.rs1) | readIreg(in.rs2));
        break;
      case Op::XOR:
        writeIreg(in.rd, readIreg(in.rs1) ^ readIreg(in.rs2));
        break;
      case Op::SLL:
        writeIreg(in.rd, readIreg(in.rs1) << (in.imm & 63));
        break;
      case Op::SRL:
        writeIreg(in.rd, readIreg(in.rs1) >> (in.imm & 63));
        break;
      case Op::SLT:
        writeIreg(in.rd, as_i64(readIreg(in.rs1)) < as_i64(readIreg(in.rs2)));
        break;
      case Op::SLTI:
        writeIreg(in.rd, as_i64(readIreg(in.rs1)) < in.imm);
        break;
      case Op::LI:
        writeIreg(in.rd, static_cast<std::uint64_t>(in.imm));
        break;

      // Floating point ------------------------------------------------
      case Op::FADD:
        writeFreg(in.rd, readFreg(in.rs1) + readFreg(in.rs2));
        break;
      case Op::FSUB:
        writeFreg(in.rd, readFreg(in.rs1) - readFreg(in.rs2));
        break;
      case Op::FMUL:
        writeFreg(in.rd, readFreg(in.rs1) * readFreg(in.rs2));
        break;
      case Op::FDIV:
        writeFreg(in.rd, readFreg(in.rs1) / readFreg(in.rs2));
        break;
      case Op::FSQRT:
        writeFreg(in.rd, std::sqrt(readFreg(in.rs1)));
        break;
      case Op::FMOV:
        writeFreg(in.rd, readFreg(in.rs1));
        break;
      case Op::CVTIF:
        writeFreg(in.rd, static_cast<double>(as_i64(readIreg(in.rs1))));
        break;
      case Op::CVTFI:
        writeIreg(in.rd, static_cast<std::uint64_t>(
            static_cast<std::int64_t>(readFreg(in.rs1))));
        break;

      // Memory ----------------------------------------------------------
      case Op::LD: case Op::ST: case Op::FLD: case Op::FST: {
        const Addr addr =
            readIreg(in.rs1) + static_cast<std::uint64_t>(in.imm);
        const bool is_store = isa::isStore(in.op);
        const MemLevel level = _hier.access(addr, is_store);
        if (_refSink) [[unlikely]]
            _refSink->onAccess(addr, is_store);

        switch (in.op) {
          case Op::LD:
            writeIreg(in.rd, _mem.read64(addr));
            break;
          case Op::ST:
            _mem.write64(addr, readIreg(in.rs2));
            break;
          case Op::FLD:
            writeFreg(in.rd, std::bit_cast<double>(_mem.read64(addr)));
            break;
          case Op::FST:
            _mem.write64(addr, std::bit_cast<std::uint64_t>(
                readFreg(in.rs2)));
            break;
          default:
            break;
        }

        if constexpr (Fill) {
            out->addr = addr;
            out->level = level;
        }
        ++_stats.dataRefs;
        if (level != MemLevel::L1)
            ++_stats.l1Misses;
        if (level == MemLevel::Memory)
            ++_stats.l2Misses;

        // The cache-outcome condition codes track the most recent
        // data reference's outcome, one bit per hierarchy level
        // (section 2.1 and its multi-level extension).
        _state.ccMiss = level != MemLevel::L1;
        _state.ccMissL2 = level == MemLevel::Memory;

        // Low-overhead miss trap (section 2.2): dispatch if this is an
        // informing operation, trapping is armed, the MHAR is set, and
        // the miss reaches the configured trap level (section 4.1.3's
        // switch-on-secondary-miss filter).
        const bool trap_worthy = _state.trapLevel >= 2
            ? _state.ccMissL2 : _state.ccMiss;
        if (trap_worthy && in.informing && _trapArmed &&
            _state.mhar != 0) {
            if constexpr (Fill)
                out->trapped = true;
            ++_stats.traps;
            _state.mhrr = pc + 1;
            next_pc = static_cast<InstAddr>(_state.mhar);
            _trapArmed = false;
            _inHandler = true;
        }
        break;
      }
      case Op::PREFETCH: {
        const Addr addr =
            readIreg(in.rs1) + static_cast<std::uint64_t>(in.imm);
        _hier.prefetch(addr);
        if (_refSink) [[unlikely]]
            _refSink->onPrefetch(addr);
        if constexpr (Fill)
            out->addr = addr;
        ++_stats.prefetches;
        break;
      }

      // Control ---------------------------------------------------------
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE: {
        bool taken = false;
        const std::uint64_t a = readIreg(in.rs1);
        const std::uint64_t b = readIreg(in.rs2);
        switch (in.op) {
          case Op::BEQ: taken = a == b; break;
          case Op::BNE: taken = a != b; break;
          case Op::BLT: taken = as_i64(a) < as_i64(b); break;
          case Op::BGE: taken = as_i64(a) >= as_i64(b); break;
          default: break;
        }
        ++_stats.condBranches;
        if (taken) {
            ++_stats.takenBranches;
            next_pc = static_cast<InstAddr>(in.imm);
        }
        if constexpr (Fill)
            out->taken = taken;
        else if (warm)
            warm->condBranch(pc, taken);
        break;
      }
      case Op::J:
        next_pc = static_cast<InstAddr>(in.imm);
        break;
      case Op::JAL:
        writeIreg(in.rd, pc + 1);
        next_pc = static_cast<InstAddr>(in.imm);
        break;
      case Op::JR:
        next_pc = static_cast<InstAddr>(readIreg(in.rs1));
        break;

      // Informing extensions ---------------------------------------------
      case Op::SETMHAR:
        _state.mhar = static_cast<std::uint64_t>(in.imm);
        break;
      case Op::SETMHARR:
        _state.mhar = readIreg(in.rs1);
        break;
      case Op::SETMHARPC:
        _state.mhar = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(pc) + in.imm);
        break;
      case Op::SETMHLVL:
        _state.trapLevel = static_cast<std::uint8_t>(in.imm);
        break;
      case Op::GETMHRR:
        writeIreg(in.rd, _state.mhrr);
        break;
      case Op::SETMHRR:
        _state.mhrr = readIreg(in.rs1);
        break;
      case Op::RETMH:
        next_pc = static_cast<InstAddr>(_state.mhrr);
        _trapArmed = true;
        _inHandler = false;
        break;
      case Op::BRMISS:
      case Op::BRMISS2: {
        const bool cc = in.op == Op::BRMISS ? _state.ccMiss
                                            : _state.ccMissL2;
        ++_stats.condBranches;
        if (cc) {
            ++_stats.takenBranches;
            ++_stats.brmissTaken;
            _state.mhrr = pc + 1;
            next_pc = static_cast<InstAddr>(in.imm);
            _inHandler = true;
        }
        if constexpr (Fill)
            out->taken = cc;
        break;
      }

      // Miscellaneous -----------------------------------------------------
      case Op::NOP:
        break;
      case Op::HALT:
        _state.halted = true;
        next_pc = pc;
        break;
      case Op::NumOps:
        panic("executing bad opcode at pc %u", pc);
    }

    ++_stats.instructions;
    if (handler_code)
        ++_stats.handlerInstructions;

    _state.pc = next_pc;
    if constexpr (Fill)
        out->nextPc = next_pc;
    return true;
}

bool
Executor::next(TraceRecord &out)
{
    return stepImpl<true>(&out, nullptr);
}

std::uint64_t
Executor::fastForward(std::uint64_t count, WarmSink *warm)
{
    std::uint64_t done = 0;
    while (done < count && stepImpl<false>(nullptr, warm))
        ++done;
    return done;
}

std::uint64_t
Executor::run()
{
    TraceRecord rec;
    while (next(rec)) {
    }
    return _stats.instructions;
}

void
Executor::registerStats(stats::StatGroup &parent)
{
    auto &g = parent.childGroup("exec");
    g.make<stats::Value>("instructions", "instructions retired",
                         [this] { return _stats.instructions; });
    g.make<stats::Value>("handler_instructions",
                         "instructions retired inside miss handlers",
                         [this] { return _stats.handlerInstructions; });
    g.make<stats::Value>("data_refs", "data references executed",
                         [this] { return _stats.dataRefs; });
    g.make<stats::Value>("l1_misses", "primary-cache misses",
                         [this] { return _stats.l1Misses; });
    g.make<stats::Value>("l2_misses", "secondary-cache misses",
                         [this] { return _stats.l2Misses; });
    g.make<stats::Value>("traps", "informing miss traps dispatched",
                         [this] { return _stats.traps; });
    g.make<stats::Value>("brmiss_taken", "BRMISS branches taken",
                         [this] { return _stats.brmissTaken; });
    g.make<stats::Value>("prefetches", "software prefetches executed",
                         [this] { return _stats.prefetches; });
    g.make<stats::Value>("cond_branches", "conditional branches executed",
                         [this] { return _stats.condBranches; });
    g.make<stats::Value>("taken_branches", "conditional branches taken",
                         [this] { return _stats.takenBranches; });
    g.make<stats::Derived>("l1_miss_rate", "l1_misses / data_refs",
                           [this] { return _stats.l1MissRate(); });
    _hier.registerStats(g);
}

void
Executor::save(Serializer &s) const
{
    s.u64(_program.fingerprint());

    for (const std::uint64_t r : _state.ireg)
        s.u64(r);
    for (const double r : _state.freg)
        s.f64(r);
    s.u32(_state.pc);
    s.u64(_state.mhar);
    s.u64(_state.mhrr);
    s.b(_state.ccMiss);
    s.b(_state.ccMissL2);
    s.u8(_state.trapLevel);
    s.b(_state.halted);

    s.u64(_stats.instructions);
    s.u64(_stats.handlerInstructions);
    s.u64(_stats.dataRefs);
    s.u64(_stats.l1Misses);
    s.u64(_stats.l2Misses);
    s.u64(_stats.traps);
    s.u64(_stats.brmissTaken);
    s.u64(_stats.prefetches);
    s.u64(_stats.condBranches);
    s.u64(_stats.takenBranches);

    s.b(_inHandler);
    s.b(_trapArmed);

    _mem.save(s);
    _hier.save(s);
}

void
Executor::restore(Deserializer &d)
{
    const std::uint64_t fp = d.u64();
    sim_throw_if(fp != _program.fingerprint(), ErrCode::BadCheckpoint,
                 "checkpoint was taken with a different program than "
                 "'%s' (fingerprint %#llx vs %#llx)",
                 _program.name().c_str(),
                 static_cast<unsigned long long>(fp),
                 static_cast<unsigned long long>(_program.fingerprint()));

    for (std::uint64_t &r : _state.ireg)
        r = d.u64();
    for (double &r : _state.freg)
        r = d.f64();
    _state.pc = d.u32();
    _state.mhar = d.u64();
    _state.mhrr = d.u64();
    _state.ccMiss = d.b();
    _state.ccMissL2 = d.b();
    _state.trapLevel = d.u8();
    _state.halted = d.b();
    sim_throw_if(!_state.halted && _state.pc >= _program.size(),
                 ErrCode::BadCheckpoint,
                 "checkpointed pc %u outside program of %u instructions",
                 _state.pc, _program.size());

    _stats.instructions = d.u64();
    _stats.handlerInstructions = d.u64();
    _stats.dataRefs = d.u64();
    _stats.l1Misses = d.u64();
    _stats.l2Misses = d.u64();
    _stats.traps = d.u64();
    _stats.brmissTaken = d.u64();
    _stats.prefetches = d.u64();
    _stats.condBranches = d.u64();
    _stats.takenBranches = d.u64();

    _inHandler = d.b();
    _trapArmed = d.b();

    _mem.restore(d);
    _hier.restore(d);
}

} // namespace imo::func
