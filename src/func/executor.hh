/**
 * @file
 * The MRISC functional executor.
 *
 * Executes a program to architectural completion, one instruction per
 * step(), consulting an in-order reference cache hierarchy to decide
 * the outcome of every data reference. All informing-memory-operation
 * semantics are implemented here:
 *
 *  - every data reference records its primary-cache outcome in the
 *    cache-outcome condition code (paper section 2.1);
 *  - an informing data reference that misses in the primary cache while
 *    the MHAR is nonzero dispatches a low-overhead miss trap: the MHRR
 *    captures the return address and control transfers to the MHAR
 *    (section 2.2); trapping is disabled until the handler returns with
 *    RETMH so that handlers cannot recursively trap;
 *  - BRMISS implements the explicit conditional branch-and-link-if-miss
 *    used by the condition-code mechanism.
 */

#ifndef IMO_FUNC_EXECUTOR_HH
#define IMO_FUNC_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "func/datamem.hh"
#include "func/trace.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"

namespace imo::func
{

/** Architecturally visible machine state. */
struct ArchState
{
    std::array<std::uint64_t, isa::numIntRegs> ireg{};
    std::array<double, isa::numFpRegs> freg{};
    InstAddr pc = 0;
    std::uint64_t mhar = 0;  //!< Miss Handler Address Register
    std::uint64_t mhrr = 0;  //!< Miss Handler Return Register
    bool ccMiss = false;     //!< primary-cache outcome condition code
    bool ccMissL2 = false;   //!< secondary-cache outcome condition code
    std::uint8_t trapLevel = 1; //!< 1: trap on L1 misses, 2: L2 only
    bool halted = false;
};

/** Aggregate functional-execution statistics. */
struct ExecStats
{
    std::uint64_t instructions = 0;
    std::uint64_t handlerInstructions = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t traps = 0;
    std::uint64_t brmissTaken = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenBranches = 0;

    double
    l1MissRate() const
    {
        return dataRefs ? static_cast<double>(l1Misses) / dataRefs : 0.0;
    }
};

/**
 * Receives conditional-branch outcomes during fast-forward so a timing
 * model's branch predictor can stay trained across the gap (functional
 * warming in the SMARTS sense). Only the ops the timing models predict
 * (BEQ/BNE/BLT/BGE) are reported; BRMISS-style branches are statically
 * predicted by both CPU models and carry no predictor state.
 */
class WarmSink
{
  public:
    virtual ~WarmSink() = default;

    /** The branch at @p pc resolved with direction @p taken. */
    virtual void condBranch(InstAddr pc, bool taken) = 0;
};

/**
 * Observes the raw data-reference stream (demand accesses and software
 * prefetches) as the executor produces it, independent of the
 * executor's own hierarchy outcome. This is the attachment point of
 * the multi-configuration cache engine (memory::MultiCacheSim): one
 * functional pass can classify the stream for many geometries at once.
 */
class RefSink
{
  public:
    virtual ~RefSink() = default;

    /** A demand data reference to @p addr retired. */
    virtual void onAccess(Addr addr, bool is_write) = 0;

    /** A software prefetch of @p addr retired. */
    virtual void onPrefetch(Addr addr) = 0;
};

/** Executes one MRISC program against a reference cache hierarchy. */
class Executor : public TraceSource
{
  public:
    struct Config
    {
        memory::CacheGeometry l1;
        memory::CacheGeometry l2;
        /** Abort if a program runs longer than this (runaway guard). */
        std::uint64_t maxInstructions = 400'000'000;
    };

    /** The executor keeps its own copy of @p program. */
    Executor(isa::Program program, const Config &config);

    /**
     * Execute one instruction and describe it in @p out.
     * @return false once the program has halted.
     */
    bool next(TraceRecord &out) override;

    /**
     * Fast functional-warming mode: execute up to @p count instructions
     * without staging trace records for a timing model. Architectural
     * state, the data memory, the reference cache hierarchy, and every
     * informing-op semantic (condition codes, miss traps, handler
     * execution, RETMH re-arming) advance exactly as under next() —
     * only the record fill is compiled out. Conditional-branch outcomes
     * are reported to @p warm (when non-null) so a detached timing
     * model's branch predictor stays trained across the gap.
     *
     * @return the number of instructions executed; less than @p count
     * only if the program halted first.
     */
    std::uint64_t fastForward(std::uint64_t count, WarmSink *warm = nullptr);

    /** Run to completion, discarding records. @return retired count. */
    std::uint64_t run();

    /** Expose execution stats (and both cache levels) as an "exec"
     *  group under @p parent. */
    void registerStats(stats::StatGroup &parent);

    ArchState &state() { return _state; }
    const ArchState &state() const { return _state; }
    DataMemory &mem() { return _mem; }
    memory::FunctionalHierarchy &hierarchy() { return _hier; }
    const ExecStats &stats() const { return _stats; }
    const isa::Program &program() const { return _program; }

    /** True while executing between a dispatch and its RETMH. */
    bool inHandler() const { return _inHandler; }

    /**
     * Attach (or detach, with nullptr) a reference-stream observer.
     * The sink sees every demand data reference and prefetch in
     * program order, under both next() and fastForward(). Transient:
     * not part of checkpoints.
     */
    void setRefSink(RefSink *sink) { _refSink = sink; }

    /**
     * Checkpoint hooks: architectural state, statistics, data memory,
     * and the reference hierarchy all round-trip. The image embeds the
     * program's fingerprint; restoring against a different program
     * raises BadCheckpoint.
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    /**
     * The single execution step body. Fill selects at compile time
     * whether @p out is populated (the next() path feeding a timing
     * model) or skipped entirely (the fastForward() path, where the
     * record fill would be pure overhead on the sampling fast path).
     */
    template <bool Fill>
    bool stepImpl(TraceRecord *out, WarmSink *warm);

    std::uint64_t readIreg(std::uint8_t unified) const;
    void writeIreg(std::uint8_t unified, std::uint64_t value);
    double readFreg(std::uint8_t unified) const;
    void writeFreg(std::uint8_t unified, double value);

    isa::Program _program;
    Config _config;
    ArchState _state;
    DataMemory _mem;
    memory::FunctionalHierarchy _hier;
    ExecStats _stats;

    bool _inHandler = false;   //!< between dispatch and RETMH
    bool _trapArmed = true;    //!< hardware trap-enable (off in handler)
    RefSink *_refSink = nullptr; //!< optional stream observer
};

} // namespace imo::func

#endif // IMO_FUNC_EXECUTOR_HH
