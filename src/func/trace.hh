/**
 * @file
 * Dynamic-trace records: the interface between functional execution
 * (phase A) and the detailed timing models (phase B).
 */

#ifndef IMO_FUNC_TRACE_HH
#define IMO_FUNC_TRACE_HH

#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace imo::func
{

/** One retired dynamic instruction. */
struct TraceRecord
{
    isa::Instruction inst;   //!< static instruction (copied)
    InstAddr pc = 0;         //!< its address
    InstAddr nextPc = 0;     //!< actual successor (after traps/branches)
    Addr addr = 0;           //!< effective address for memory ops
    MemLevel level = MemLevel::L1; //!< servicing level for data refs
    bool taken = false;      //!< outcome for conditional branches
    bool trapped = false;    //!< this data ref dispatched a miss trap
    bool handlerCode = false; //!< executed inside a miss handler
};

/** A pull-based stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record in program (commit) order.
     * @return false when the stream is exhausted.
     */
    virtual bool next(TraceRecord &out) = 0;
};

/** Replays a pre-recorded vector of records (testing). */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> records)
        : _records(std::move(records))
    {
    }

    bool
    next(TraceRecord &out) override
    {
        if (_pos >= _records.size())
            return false;
        out = _records[_pos++];
        return true;
    }

  private:
    std::vector<TraceRecord> _records;
    std::size_t _pos = 0;
};

} // namespace imo::func

#endif // IMO_FUNC_TRACE_HH
