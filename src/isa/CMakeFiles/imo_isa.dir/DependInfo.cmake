
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/asm.cc" "src/isa/CMakeFiles/imo_isa.dir/asm.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/asm.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/isa/CMakeFiles/imo_isa.dir/builder.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/builder.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/isa/CMakeFiles/imo_isa.dir/disasm.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/disasm.cc.o.d"
  "/root/repo/src/isa/op.cc" "src/isa/CMakeFiles/imo_isa.dir/op.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/op.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/imo_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/program.cc.o.d"
  "/root/repo/src/isa/verify.cc" "src/isa/CMakeFiles/imo_isa.dir/verify.cc.o" "gcc" "src/isa/CMakeFiles/imo_isa.dir/verify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/imo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
