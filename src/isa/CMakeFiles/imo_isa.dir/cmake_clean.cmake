file(REMOVE_RECURSE
  "CMakeFiles/imo_isa.dir/asm.cc.o"
  "CMakeFiles/imo_isa.dir/asm.cc.o.d"
  "CMakeFiles/imo_isa.dir/builder.cc.o"
  "CMakeFiles/imo_isa.dir/builder.cc.o.d"
  "CMakeFiles/imo_isa.dir/disasm.cc.o"
  "CMakeFiles/imo_isa.dir/disasm.cc.o.d"
  "CMakeFiles/imo_isa.dir/op.cc.o"
  "CMakeFiles/imo_isa.dir/op.cc.o.d"
  "CMakeFiles/imo_isa.dir/program.cc.o"
  "CMakeFiles/imo_isa.dir/program.cc.o.d"
  "CMakeFiles/imo_isa.dir/verify.cc.o"
  "CMakeFiles/imo_isa.dir/verify.cc.o.d"
  "libimo_isa.a"
  "libimo_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
