file(REMOVE_RECURSE
  "libimo_isa.a"
)
