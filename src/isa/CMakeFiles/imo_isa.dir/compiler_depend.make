# Empty compiler generated dependencies file for imo_isa.
# This may be replaced when dependencies are built.
