#include "isa/asm.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

#include "isa/disasm.hh"

namespace imo::isa
{

namespace
{

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    const auto cut = s.find_first_of(";#");
    if (cut != std::string::npos)
        s.erase(cut);
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Split an operand list on commas, trimming each piece. */
std::vector<std::string>
splitOperands(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ',') {
            out.push_back(cleanLine(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    const std::string last = cleanLine(cur);
    if (!last.empty())
        out.push_back(last);
    return out;
}

/** Split on whitespace. */
std::vector<std::string>
splitWords(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string w;
    while (is >> w)
        out.push_back(w);
    return out;
}

struct Parser
{
    std::map<std::string, Addr> dataSymbols;
    std::map<std::string, InstAddr> labels;
    Addr nextData = 0x10000;

    std::string error;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = msg;
        return false;
    }

    bool
    parseReg(const std::string &tok, bool fp, std::uint8_t &out)
    {
        if (tok.size() < 2)
            return fail("bad register '" + tok + "'");
        const char kind = tok[0];
        if ((fp && kind != 'f') || (!fp && kind != 'r'))
            return fail("expected " + std::string(fp ? "f" : "r") +
                        "-register, got '" + tok + "'");
        char *end = nullptr;
        const long n = std::strtol(tok.c_str() + 1, &end, 10);
        if (*end != '\0' || n < 0 || n > 31)
            return fail("bad register '" + tok + "'");
        out = fp ? fpReg(static_cast<std::uint8_t>(n))
                 : intReg(static_cast<std::uint8_t>(n));
        return true;
    }

    bool
    parseImm(const std::string &tok, std::int64_t &out)
    {
        if (tok.empty())
            return fail("missing immediate");
        // Symbols: data first, then code labels.
        if (auto it = dataSymbols.find(tok); it != dataSymbols.end()) {
            out = static_cast<std::int64_t>(it->second);
            return true;
        }
        if (auto it = labels.find(tok); it != labels.end()) {
            out = static_cast<std::int64_t>(it->second);
            return true;
        }
        char *end = nullptr;
        out = std::strtoll(tok.c_str(), &end, 0);
        if (*end != '\0')
            return fail("bad immediate or unknown symbol '" + tok + "'");
        return true;
    }

    /** Control target: label name or `@N`. */
    bool
    parseTarget(const std::string &tok, std::int64_t &out)
    {
        if (!tok.empty() && tok[0] == '@') {
            char *end = nullptr;
            out = std::strtoll(tok.c_str() + 1, &end, 0);
            if (*end != '\0')
                return fail("bad target '" + tok + "'");
            return true;
        }
        if (auto it = labels.find(tok); it != labels.end()) {
            out = static_cast<std::int64_t>(it->second);
            return true;
        }
        return fail("unknown label '" + tok + "'");
    }

    /** Memory operand `off(base)`. */
    bool
    parseMem(const std::string &tok, std::uint8_t &base,
             std::int64_t &off)
    {
        const auto open = tok.find('(');
        const auto close = tok.find(')');
        if (open == std::string::npos || close == std::string::npos ||
            close < open)
            return fail("bad memory operand '" + tok + "'");
        const std::string off_s = cleanLine(tok.substr(0, open));
        const std::string base_s =
            cleanLine(tok.substr(open + 1, close - open - 1));
        if (off_s.empty()) {
            off = 0;
        } else if (!parseImm(off_s, off)) {
            return false;
        }
        return parseReg(base_s, false, base);
    }
};

/** FP-register usage per mnemonic operand slot. */
struct OpSpec
{
    Op op;
    enum class Form
    {
        R3,       //!< rd, rs1, rs2
        F3,       //!< fd, fs1, fs2
        RRI,      //!< rd, rs1, imm
        RI,       //!< rd, imm
        F2,       //!< fd, fs1
        CVT_IF,   //!< fd, rs1
        CVT_FI,   //!< rd, fs1
        MemLd,    //!< rd, off(base)
        MemLdF,   //!< fd, off(base)
        MemSt,    //!< src, off(base)
        MemStF,   //!< fsrc, off(base)
        Mem0,     //!< off(base)
        Branch,   //!< rs1, rs2, target
        Target,   //!< target
        Jal,      //!< rd, target
        R1,       //!< rs1
        Rd,       //!< rd
        Setmhar,  //!< target | "off"
        SetmharPc,//!< target | "pc+N"
        Level,    //!< imm
        None,
    } form;
};

const std::map<std::string, OpSpec> &
opTable()
{
    using F = OpSpec::Form;
    static const std::map<std::string, OpSpec> table = {
        {"add", {Op::ADD, F::R3}},       {"addi", {Op::ADDI, F::RRI}},
        {"sub", {Op::SUB, F::R3}},       {"mul", {Op::MUL, F::R3}},
        {"div", {Op::DIV, F::R3}},       {"and", {Op::AND, F::R3}},
        {"andi", {Op::ANDI, F::RRI}},    {"or", {Op::OR, F::R3}},
        {"xor", {Op::XOR, F::R3}},       {"sll", {Op::SLL, F::RRI}},
        {"srl", {Op::SRL, F::RRI}},      {"slt", {Op::SLT, F::R3}},
        {"slti", {Op::SLTI, F::RRI}},    {"li", {Op::LI, F::RI}},
        {"fadd", {Op::FADD, F::F3}},     {"fsub", {Op::FSUB, F::F3}},
        {"fmul", {Op::FMUL, F::F3}},     {"fdiv", {Op::FDIV, F::F3}},
        {"fsqrt", {Op::FSQRT, F::F2}},   {"fmov", {Op::FMOV, F::F2}},
        {"cvtif", {Op::CVTIF, F::CVT_IF}},
        {"cvtfi", {Op::CVTFI, F::CVT_FI}},
        {"ld", {Op::LD, F::MemLd}},      {"st", {Op::ST, F::MemSt}},
        {"fld", {Op::FLD, F::MemLdF}},   {"fst", {Op::FST, F::MemStF}},
        {"prefetch", {Op::PREFETCH, F::Mem0}},
        {"beq", {Op::BEQ, F::Branch}},   {"bne", {Op::BNE, F::Branch}},
        {"blt", {Op::BLT, F::Branch}},   {"bge", {Op::BGE, F::Branch}},
        {"j", {Op::J, F::Target}},       {"jal", {Op::JAL, F::Jal}},
        {"jr", {Op::JR, F::R1}},
        {"setmhar", {Op::SETMHAR, F::Setmhar}},
        {"setmharr", {Op::SETMHARR, F::R1}},
        {"getmhrr", {Op::GETMHRR, F::Rd}},
        {"setmhrr", {Op::SETMHRR, F::R1}},
        {"retmh", {Op::RETMH, F::None}},
        {"brmiss", {Op::BRMISS, F::Target}},
        {"brmiss2", {Op::BRMISS2, F::Target}},
        {"setmharpc", {Op::SETMHARPC, F::SetmharPc}},
        {"setmhlvl", {Op::SETMHLVL, F::Level}},
        {"nop", {Op::NOP, F::None}},
        {"halt", {Op::HALT, F::None}},
    };
    return table;
}

} // anonymous namespace

AsmResult
assemble(const std::string &source)
{
    AsmResult result;
    Parser ctx;

    // Split into lines once; two passes over them.
    std::vector<std::string> lines;
    {
        std::istringstream is(source);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(cleanLine(line));
    }

    std::string prog_name;
    std::vector<DataSegment> segments;

    auto diag = [&](int line_no, const std::string &msg) {
        result.ok = false;
        result.error = msg;
        result.errorLine = line_no;
        return result;
    };

    // Pass 1: directives, label addresses, instruction count.
    InstAddr pc = 0;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string line = lines[i];
        if (line.empty())
            continue;

        // Leading label(s).
        while (true) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            const std::string name = cleanLine(line.substr(0, colon));
            if (name.empty() || name.find(' ') != std::string::npos)
                return diag(static_cast<int>(i + 1), "bad label");
            if (ctx.labels.count(name))
                return diag(static_cast<int>(i + 1),
                            "duplicate label '" + name + "'");
            ctx.labels[name] = pc;
            line = cleanLine(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        if (line[0] == '.') {
            const auto words = splitWords(line);
            if (words[0] == ".name") {
                if (words.size() >= 2)
                    prog_name = words[1];
            } else if (words[0] == ".alloc") {
                if (words.size() < 3)
                    return diag(static_cast<int>(i + 1),
                                ".alloc needs symbol and size");
                const std::uint64_t count =
                    std::strtoull(words[2].c_str(), nullptr, 0);
                const std::uint64_t align = words.size() >= 4
                    ? std::strtoull(words[3].c_str(), nullptr, 0) : 8;
                if (align == 0 || (align & (align - 1)))
                    return diag(static_cast<int>(i + 1),
                                "bad .alloc alignment");
                ctx.nextData = (ctx.nextData + align - 1) & ~(align - 1);
                ctx.dataSymbols[words[1]] = ctx.nextData;
                ctx.nextData += count * 8;
            } else if (words[0] == ".init") {
                // handled in pass 2 (symbols already known by then)
            } else {
                return diag(static_cast<int>(i + 1),
                            "unknown directive " + words[0]);
            }
            continue;
        }
        ++pc;
    }

    // Pass 2: emit.
    std::vector<Instruction> insts;
    insts.reserve(pc);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        std::string line = lines[i];
        if (line.empty())
            continue;
        while (true) {
            const auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            line = cleanLine(line.substr(colon + 1));
        }
        if (line.empty())
            continue;

        const int line_no = static_cast<int>(i + 1);

        if (line[0] == '.') {
            const auto words = splitWords(line);
            if (words[0] == ".init") {
                if (words.size() < 3)
                    return diag(line_no, ".init needs base and words");
                std::int64_t base;
                ctx.error.clear();
                if (!ctx.parseImm(words[1], base))
                    return diag(line_no, ctx.error);
                DataSegment seg;
                seg.base = static_cast<Addr>(base);
                for (std::size_t w = 2; w < words.size(); ++w) {
                    seg.words.push_back(
                        std::strtoull(words[w].c_str(), nullptr, 0));
                }
                segments.push_back(std::move(seg));
            }
            continue;
        }

        // Mnemonic + operands.
        const auto sp = line.find_first_of(" \t");
        const std::string mnem =
            sp == std::string::npos ? line : line.substr(0, sp);
        std::string rest =
            sp == std::string::npos ? "" : cleanLine(line.substr(sp));

        // Trailing "!informing" marker on memory operations.
        bool informing = true;
        const auto bang = rest.find("!informing");
        if (bang != std::string::npos) {
            informing = false;
            rest = cleanLine(rest.substr(0, bang));
        }

        const auto it = opTable().find(mnem);
        if (it == opTable().end())
            return diag(line_no, "unknown mnemonic '" + mnem + "'");
        const OpSpec &spec = it->second;

        const auto ops = splitOperands(rest);
        Instruction in;
        in.op = spec.op;
        in.informing = informing;
        ctx.error.clear();

        using F = OpSpec::Form;
        auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                ctx.fail("expected " + std::to_string(n) +
                         " operands, got " + std::to_string(ops.size()));
                return false;
            }
            return true;
        };

        bool ok = true;
        switch (spec.form) {
          case F::R3:
            ok = need(3) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseReg(ops[1], false, in.rs1) &&
                ctx.parseReg(ops[2], false, in.rs2);
            break;
          case F::F3:
            ok = need(3) && ctx.parseReg(ops[0], true, in.rd) &&
                ctx.parseReg(ops[1], true, in.rs1) &&
                ctx.parseReg(ops[2], true, in.rs2);
            break;
          case F::RRI:
            ok = need(3) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseReg(ops[1], false, in.rs1) &&
                ctx.parseImm(ops[2], in.imm);
            break;
          case F::RI:
            ok = need(2) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseImm(ops[1], in.imm);
            break;
          case F::F2:
            ok = need(2) && ctx.parseReg(ops[0], true, in.rd) &&
                ctx.parseReg(ops[1], true, in.rs1);
            break;
          case F::CVT_IF:
            ok = need(2) && ctx.parseReg(ops[0], true, in.rd) &&
                ctx.parseReg(ops[1], false, in.rs1);
            break;
          case F::CVT_FI:
            ok = need(2) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseReg(ops[1], true, in.rs1);
            break;
          case F::MemLd:
            ok = need(2) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseMem(ops[1], in.rs1, in.imm);
            break;
          case F::MemLdF:
            ok = need(2) && ctx.parseReg(ops[0], true, in.rd) &&
                ctx.parseMem(ops[1], in.rs1, in.imm);
            break;
          case F::MemSt:
            ok = need(2) && ctx.parseReg(ops[0], false, in.rs2) &&
                ctx.parseMem(ops[1], in.rs1, in.imm);
            break;
          case F::MemStF:
            ok = need(2) && ctx.parseReg(ops[0], true, in.rs2) &&
                ctx.parseMem(ops[1], in.rs1, in.imm);
            break;
          case F::Mem0:
            ok = need(1) && ctx.parseMem(ops[0], in.rs1, in.imm);
            break;
          case F::Branch:
            ok = need(3) && ctx.parseReg(ops[0], false, in.rs1) &&
                ctx.parseReg(ops[1], false, in.rs2) &&
                ctx.parseTarget(ops[2], in.imm);
            break;
          case F::Target:
            ok = need(1) && ctx.parseTarget(ops[0], in.imm);
            break;
          case F::Jal:
            ok = need(2) && ctx.parseReg(ops[0], false, in.rd) &&
                ctx.parseTarget(ops[1], in.imm);
            break;
          case F::R1:
            ok = need(1) && ctx.parseReg(ops[0], false, in.rs1);
            break;
          case F::Rd:
            ok = need(1) && ctx.parseReg(ops[0], false, in.rd);
            break;
          case F::Setmhar:
            if (need(1)) {
                if (ops[0] == "off")
                    in.imm = 0;
                else
                    ok = ctx.parseTarget(ops[0], in.imm);
            } else {
                ok = false;
            }
            break;
          case F::SetmharPc:
            if (need(1)) {
                if (ops[0].rfind("pc", 0) == 0) {
                    // "pc+N" / "pc-N": already relative.
                    char *end = nullptr;
                    in.imm = std::strtoll(ops[0].c_str() + 2, &end, 0);
                    if (*end != '\0')
                        ok = ctx.fail("bad pc-relative operand");
                } else if (ctx.parseTarget(ops[0], in.imm)) {
                    // Label form: convert to an offset from this pc.
                    in.imm -= static_cast<std::int64_t>(insts.size());
                } else {
                    ok = false;
                }
            } else {
                ok = false;
            }
            break;
          case F::Level:
            ok = need(1) && ctx.parseImm(ops[0], in.imm);
            break;
          case F::None:
            ok = need(0);
            break;
        }

        if (!ok)
            return diag(line_no, ctx.error.empty() ? "parse error"
                                                   : ctx.error);
        insts.push_back(in);
    }

    Program prog(prog_name);
    prog.insts() = std::move(insts);
    std::uint32_t refs = 0;
    for (Instruction &in : prog.insts()) {
        if (isDataRef(in.op))
            in.staticRefId = refs++;
    }
    prog.setNumStaticRefs(refs);
    for (DataSegment &seg : segments)
        prog.addData(std::move(seg));

    std::string why;
    if (!prog.validate(&why)) {
        result.error = "program invalid: " + why;
        return result;
    }
    result.ok = true;
    result.program = std::move(prog);
    return result;
}

std::string
formatAssembly(const Program &prog)
{
    std::ostringstream os;
    if (!prog.name().empty())
        os << ".name " << prog.name() << "\n";
    for (const DataSegment &seg : prog.data()) {
        // Chunk initializers to keep lines short.
        for (std::size_t i = 0; i < seg.words.size(); i += 8) {
            os << ".init " << (seg.base + i * 8);
            for (std::size_t w = i;
                 w < std::min(seg.words.size(), i + 8); ++w)
                os << " 0x" << std::hex << seg.words[w] << std::dec;
            os << "\n";
        }
    }
    for (InstAddr pc = 0; pc < prog.size(); ++pc)
        os << "    " << disassemble(prog.inst(pc)) << "\n";
    return os.str();
}

} // namespace imo::isa
