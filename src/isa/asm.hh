/**
 * @file
 * Text-format MRISC assembler and program formatter.
 *
 * The format round-trips with formatAssembly(): every instruction the
 * disassembler can print is accepted back. Example:
 *
 *     .name demo
 *     .alloc buf 1024 64        ; symbol, words, alignment
 *     .init buf 1 2 3 0xff      ; initial words at a symbol
 *
 *     start:
 *         li r1, buf            ; data symbols usable as immediates
 *         setmhar handler
 *     loop:
 *         ld r2, 0(r1)
 *         addi r1, r1, 8
 *         addi r3, r3, 1
 *         blt r3, r4, loop
 *         halt
 *     handler:
 *         retmh
 *
 * Control targets may be label names or absolute `@N` addresses;
 * `;` and `#` start comments.
 */

#ifndef IMO_ISA_ASM_HH
#define IMO_ISA_ASM_HH

#include <string>

#include "isa/program.hh"

namespace imo::isa
{

/** Outcome of assembling a source text. */
struct AsmResult
{
    bool ok = false;
    std::string error;     //!< first diagnostic when !ok
    int errorLine = 0;     //!< 1-based source line of the diagnostic
    Program program;
};

/** Assemble MRISC source text into a program. */
AsmResult assemble(const std::string &source);

/**
 * Render @p prog as assembler source that re-assembles to an identical
 * program: code labels for every control target, `.alloc`-free (data
 * segments become `.org`-style `.init` at absolute addresses).
 */
std::string formatAssembly(const Program &prog);

} // namespace imo::isa

#endif // IMO_ISA_ASM_HH
