#include "isa/builder.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace imo::isa
{

ProgramBuilder::ProgramBuilder(std::string name) : _name(std::move(name))
{
}

Label
ProgramBuilder::newLabel()
{
    _labelAddr.push_back(-1);
    return Label{static_cast<std::uint32_t>(_labelAddr.size() - 1)};
}

void
ProgramBuilder::bind(Label label)
{
    panic_if(label.id >= _labelAddr.size(), "bind: unknown label %u",
             label.id);
    panic_if(_labelAddr[label.id] >= 0, "bind: label %u bound twice",
             label.id);
    _labelAddr[label.id] = static_cast<std::int64_t>(_insts.size());
}

Addr
ProgramBuilder::allocData(std::uint64_t words, std::uint64_t align_bytes)
{
    panic_if(align_bytes == 0 || (align_bytes & (align_bytes - 1)),
             "allocData: alignment must be a power of two");
    _nextData = (_nextData + align_bytes - 1) & ~(align_bytes - 1);
    const Addr base = _nextData;
    _nextData += words * 8;
    return base;
}

void
ProgramBuilder::initData(Addr base, std::vector<std::uint64_t> words)
{
    _data.push_back(DataSegment{base, std::move(words)});
}

void
ProgramBuilder::emit(Instruction inst)
{
    _insts.push_back(inst);
}

// Integer ops ---------------------------------------------------------

void
ProgramBuilder::add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::ADD, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
{
    emit({.op = Op::ADDI, .rd = rd, .rs1 = rs1, .imm = imm});
}

void
ProgramBuilder::sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::SUB, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::MUL, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::div(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::DIV, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::and_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::AND, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::andi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
{
    emit({.op = Op::ANDI, .rd = rd, .rs1 = rs1, .imm = imm});
}

void
ProgramBuilder::or_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::OR, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::xor_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::XOR, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::sll(std::uint8_t rd, std::uint8_t rs1, std::int64_t sh)
{
    emit({.op = Op::SLL, .rd = rd, .rs1 = rs1, .imm = sh});
}

void
ProgramBuilder::srl(std::uint8_t rd, std::uint8_t rs1, std::int64_t sh)
{
    emit({.op = Op::SRL, .rd = rd, .rs1 = rs1, .imm = sh});
}

void
ProgramBuilder::slt(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2)
{
    emit({.op = Op::SLT, .rd = rd, .rs1 = rs1, .rs2 = rs2});
}

void
ProgramBuilder::slti(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm)
{
    emit({.op = Op::SLTI, .rd = rd, .rs1 = rs1, .imm = imm});
}

void
ProgramBuilder::li(std::uint8_t rd, std::int64_t imm)
{
    emit({.op = Op::LI, .rd = rd, .imm = imm});
}

// Floating point ------------------------------------------------------

void
ProgramBuilder::fadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2)
{
    emit({.op = Op::FADD, .rd = fd, .rs1 = fs1, .rs2 = fs2});
}

void
ProgramBuilder::fsub(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2)
{
    emit({.op = Op::FSUB, .rd = fd, .rs1 = fs1, .rs2 = fs2});
}

void
ProgramBuilder::fmul(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2)
{
    emit({.op = Op::FMUL, .rd = fd, .rs1 = fs1, .rs2 = fs2});
}

void
ProgramBuilder::fdiv(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2)
{
    emit({.op = Op::FDIV, .rd = fd, .rs1 = fs1, .rs2 = fs2});
}

void
ProgramBuilder::fsqrt(std::uint8_t fd, std::uint8_t fs1)
{
    emit({.op = Op::FSQRT, .rd = fd, .rs1 = fs1});
}

void
ProgramBuilder::fmov(std::uint8_t fd, std::uint8_t fs1)
{
    emit({.op = Op::FMOV, .rd = fd, .rs1 = fs1});
}

void
ProgramBuilder::cvtif(std::uint8_t fd, std::uint8_t rs1)
{
    emit({.op = Op::CVTIF, .rd = fd, .rs1 = rs1});
}

void
ProgramBuilder::cvtfi(std::uint8_t rd, std::uint8_t fs1)
{
    emit({.op = Op::CVTFI, .rd = rd, .rs1 = fs1});
}

// Memory --------------------------------------------------------------

void
ProgramBuilder::ld(std::uint8_t rd, std::uint8_t base, std::int64_t off)
{
    emit({.op = Op::LD, .rd = rd, .rs1 = base, .imm = off});
}

void
ProgramBuilder::st(std::uint8_t src, std::uint8_t base, std::int64_t off)
{
    emit({.op = Op::ST, .rs1 = base, .rs2 = src, .imm = off});
}

void
ProgramBuilder::fld(std::uint8_t fd, std::uint8_t base, std::int64_t off)
{
    emit({.op = Op::FLD, .rd = fd, .rs1 = base, .imm = off});
}

void
ProgramBuilder::fst(std::uint8_t fsrc, std::uint8_t base, std::int64_t off)
{
    emit({.op = Op::FST, .rs1 = base, .rs2 = fsrc, .imm = off});
}

void
ProgramBuilder::prefetch(std::uint8_t base, std::int64_t off)
{
    emit({.op = Op::PREFETCH, .rs1 = base, .imm = off});
}

// Control -------------------------------------------------------------

void
ProgramBuilder::emitBranch(Op op, std::uint8_t rs1, std::uint8_t rs2,
                           Label target)
{
    _fixups.emplace_back(_insts.size(), target.id);
    emit({.op = op, .rs1 = rs1, .rs2 = rs2,
          .imm = static_cast<std::int64_t>(target.id)});
}

void
ProgramBuilder::emitLabelImm(Op op, Label target)
{
    _fixups.emplace_back(_insts.size(), target.id);
    emit({.op = op, .imm = static_cast<std::int64_t>(target.id)});
}

void
ProgramBuilder::beq(std::uint8_t rs1, std::uint8_t rs2, Label target)
{
    emitBranch(Op::BEQ, rs1, rs2, target);
}

void
ProgramBuilder::bne(std::uint8_t rs1, std::uint8_t rs2, Label target)
{
    emitBranch(Op::BNE, rs1, rs2, target);
}

void
ProgramBuilder::blt(std::uint8_t rs1, std::uint8_t rs2, Label target)
{
    emitBranch(Op::BLT, rs1, rs2, target);
}

void
ProgramBuilder::bge(std::uint8_t rs1, std::uint8_t rs2, Label target)
{
    emitBranch(Op::BGE, rs1, rs2, target);
}

void
ProgramBuilder::j(Label target)
{
    emitLabelImm(Op::J, target);
}

void
ProgramBuilder::jal(std::uint8_t rd, Label target)
{
    _fixups.emplace_back(_insts.size(), target.id);
    emit({.op = Op::JAL, .rd = rd,
          .imm = static_cast<std::int64_t>(target.id)});
}

void
ProgramBuilder::jr(std::uint8_t rs1)
{
    emit({.op = Op::JR, .rs1 = rs1});
}

// Informing extensions -------------------------------------------------

void
ProgramBuilder::setmhar(Label handler)
{
    emitLabelImm(Op::SETMHAR, handler);
}

void
ProgramBuilder::setmharDisable()
{
    emit({.op = Op::SETMHAR, .imm = 0});
}

void
ProgramBuilder::setmharr(std::uint8_t rs1)
{
    emit({.op = Op::SETMHARR, .rs1 = rs1});
}

void
ProgramBuilder::getmhrr(std::uint8_t rd)
{
    emit({.op = Op::GETMHRR, .rd = rd});
}

void
ProgramBuilder::setmhrr(std::uint8_t rs1)
{
    emit({.op = Op::SETMHRR, .rs1 = rs1});
}

void
ProgramBuilder::retmh()
{
    emit({.op = Op::RETMH});
}

void
ProgramBuilder::brmiss(Label handler)
{
    emitLabelImm(Op::BRMISS, handler);
}

void
ProgramBuilder::brmiss2(Label handler)
{
    emitLabelImm(Op::BRMISS2, handler);
}

void
ProgramBuilder::setmharpc(Label handler)
{
    // Encoded PC-relative: the fixup patches an absolute address which
    // finish() converts to an offset from the instruction itself.
    _pcRelFixups.push_back(_insts.size());
    emitLabelImm(Op::SETMHARPC, handler);
}

void
ProgramBuilder::setmhlvl(std::int64_t level)
{
    emit({.op = Op::SETMHLVL, .imm = level});
}

// Miscellaneous --------------------------------------------------------

void
ProgramBuilder::nop()
{
    emit({.op = Op::NOP});
}

void
ProgramBuilder::halt()
{
    emit({.op = Op::HALT});
}

Program
ProgramBuilder::finish()
{
    for (const auto &[index, label_id] : _fixups) {
        panic_if(label_id >= _labelAddr.size(),
                 "finish: fixup names unknown label %u", label_id);
        sim_throw_if(_labelAddr[label_id] < 0, ErrCode::BadProgram,
                     "program '%s': label %u never bound",
                     _name.c_str(), label_id);
        _insts[index].imm = _labelAddr[label_id];
    }
    for (const std::size_t index : _pcRelFixups) {
        _insts[index].imm -= static_cast<std::int64_t>(index);
    }

    // Assign dense static-reference ids in program order.
    std::uint32_t next_ref = 0;
    for (Instruction &in : _insts) {
        if (isDataRef(in.op))
            in.staticRefId = next_ref++;
    }

    Program prog(_name);
    prog.insts() = std::move(_insts);
    prog.setNumStaticRefs(next_ref);
    for (DataSegment &seg : _data)
        prog.addData(std::move(seg));

    std::string why;
    sim_throw_if(!prog.validate(&why), ErrCode::BadProgram,
                 "program '%s' failed validation: %s",
                 prog.name().c_str(), why.c_str());

    _insts.clear();
    _data.clear();
    _fixups.clear();
    _pcRelFixups.clear();
    _labelAddr.clear();
    _nextData = dataBase;
    return prog;
}

} // namespace imo::isa
