/**
 * @file
 * ProgramBuilder: a tiny in-memory assembler for MRISC.
 *
 * Control-flow targets are written against Labels which are patched to
 * absolute instruction indices by finish(). The builder also owns a bump
 * allocator for the data segment so that workload generators can lay out
 * arrays without tracking addresses by hand.
 */

#ifndef IMO_ISA_BUILDER_HH
#define IMO_ISA_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace imo::isa
{

/** An opaque forward-referenceable code location. */
struct Label
{
    std::uint32_t id = 0;
};

/** Builds a Program instruction by instruction. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name = "");

    // --- Labels -----------------------------------------------------

    /** Create a fresh, unbound label. */
    Label newLabel();

    /** Bind @p label to the next emitted instruction. */
    void bind(Label label);

    /** @return the current instruction address (next emission point). */
    InstAddr here() const { return static_cast<InstAddr>(_insts.size()); }

    // --- Data layout ------------------------------------------------

    /**
     * Reserve @p words 64-bit words of data memory aligned to
     * @p align_bytes and return the base address. Memory reads as zero
     * unless initialized via initData().
     */
    Addr allocData(std::uint64_t words, std::uint64_t align_bytes = 8);

    /** Initialize data memory starting at @p base. */
    void initData(Addr base, std::vector<std::uint64_t> words);

    // --- Integer ops ------------------------------------------------

    void add(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void addi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
    void sub(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void mul(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void div(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void and_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void andi(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
    void or_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void xor_(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void sll(std::uint8_t rd, std::uint8_t rs1, std::int64_t sh);
    void srl(std::uint8_t rd, std::uint8_t rs1, std::int64_t sh);
    void slt(std::uint8_t rd, std::uint8_t rs1, std::uint8_t rs2);
    void slti(std::uint8_t rd, std::uint8_t rs1, std::int64_t imm);
    void li(std::uint8_t rd, std::int64_t imm);

    // --- Floating point ---------------------------------------------

    void fadd(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
    void fsub(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
    void fmul(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
    void fdiv(std::uint8_t fd, std::uint8_t fs1, std::uint8_t fs2);
    void fsqrt(std::uint8_t fd, std::uint8_t fs1);
    void fmov(std::uint8_t fd, std::uint8_t fs1);
    void cvtif(std::uint8_t fd, std::uint8_t rs1);
    void cvtfi(std::uint8_t rd, std::uint8_t fs1);

    // --- Memory -----------------------------------------------------

    void ld(std::uint8_t rd, std::uint8_t base, std::int64_t off = 0);
    void st(std::uint8_t src, std::uint8_t base, std::int64_t off = 0);
    void fld(std::uint8_t fd, std::uint8_t base, std::int64_t off = 0);
    void fst(std::uint8_t fsrc, std::uint8_t base, std::int64_t off = 0);
    void prefetch(std::uint8_t base, std::int64_t off = 0);

    // --- Control ----------------------------------------------------

    void beq(std::uint8_t rs1, std::uint8_t rs2, Label target);
    void bne(std::uint8_t rs1, std::uint8_t rs2, Label target);
    void blt(std::uint8_t rs1, std::uint8_t rs2, Label target);
    void bge(std::uint8_t rs1, std::uint8_t rs2, Label target);
    void j(Label target);
    void jal(std::uint8_t rd, Label target);
    void jr(std::uint8_t rs1);

    // --- Informing extensions ---------------------------------------

    void setmhar(Label handler);
    void setmharDisable();
    void setmharr(std::uint8_t rs1);
    void getmhrr(std::uint8_t rd);
    void setmhrr(std::uint8_t rs1);
    void retmh();
    void brmiss(Label handler);
    void brmiss2(Label handler);
    void setmharpc(Label handler);
    void setmhlvl(std::int64_t level);

    // --- Miscellaneous ----------------------------------------------

    void nop();
    void halt();

    /** Emit a raw instruction (no label patching applied). */
    void emit(Instruction inst);

    /**
     * Patch labels, assign dense staticRefIds to all data references,
     * validate, and return the finished program. The builder is left
     * empty. Throws SimException(BadProgram) if a label was never
     * bound or the program does not validate.
     */
    Program finish();

  private:
    void emitBranch(Op op, std::uint8_t rs1, std::uint8_t rs2,
                    Label target);
    void emitLabelImm(Op op, Label target);

    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<DataSegment> _data;

    static constexpr Addr dataBase = 0x10000;
    Addr _nextData = dataBase;

    /** Unbound label table: label id -> bound address (or -1). */
    std::vector<std::int64_t> _labelAddr;
    /** Fixups: instruction index -> label id (imm holds label id). */
    std::vector<std::pair<std::size_t, std::uint32_t>> _fixups;
    /** Indices whose patched imm is converted to a PC-relative offset. */
    std::vector<std::size_t> _pcRelFixups;
};

} // namespace imo::isa

#endif // IMO_ISA_BUILDER_HH
