#include "isa/disasm.hh"

#include <cstdio>
#include <sstream>

namespace imo::isa
{

namespace
{

std::string
regName(std::uint8_t reg)
{
    char buf[8];
    if (isFpRegId(reg))
        std::snprintf(buf, sizeof(buf), "f%u", reg - numIntRegs);
    else
        std::snprintf(buf, sizeof(buf), "r%u", reg);
    return buf;
}

} // anonymous namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opName(inst.op);

    const Op op = inst.op;
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::AND: case Op::OR: case Op::XOR: case Op::SLT:
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << regName(inst.rs2);
        break;
      case Op::ADDI: case Op::ANDI: case Op::SLL: case Op::SRL:
      case Op::SLTI:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1)
           << ", " << inst.imm;
        break;
      case Op::LI:
        os << " " << regName(inst.rd) << ", " << inst.imm;
        break;
      case Op::FSQRT: case Op::FMOV: case Op::CVTIF: case Op::CVTFI:
        os << " " << regName(inst.rd) << ", " << regName(inst.rs1);
        break;
      case Op::LD: case Op::FLD:
        os << " " << regName(inst.rd) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Op::ST: case Op::FST:
        os << " " << regName(inst.rs2) << ", " << inst.imm << "("
           << regName(inst.rs1) << ")";
        break;
      case Op::PREFETCH:
        os << " " << inst.imm << "(" << regName(inst.rs1) << ")";
        break;
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
        os << " " << regName(inst.rs1) << ", " << regName(inst.rs2)
           << ", @" << inst.imm;
        break;
      case Op::J: case Op::BRMISS: case Op::BRMISS2:
        os << " @" << inst.imm;
        break;
      case Op::SETMHARPC:
        os << " pc" << (inst.imm >= 0 ? "+" : "") << inst.imm;
        break;
      case Op::SETMHLVL:
        os << " " << inst.imm;
        break;
      case Op::JAL:
        os << " " << regName(inst.rd) << ", @" << inst.imm;
        break;
      case Op::JR: case Op::SETMHARR: case Op::SETMHRR:
        os << " " << regName(inst.rs1);
        break;
      case Op::SETMHAR:
        if (inst.imm == 0)
            os << " off";
        else
            os << " @" << inst.imm;
        break;
      case Op::GETMHRR:
        os << " " << regName(inst.rd);
        break;
      default:
        break;
    }

    if (isDataRef(op) && !inst.informing)
        os << " !informing";
    return os.str();
}

std::string
disassemble(const Program &prog)
{
    std::ostringstream os;
    for (InstAddr pc = 0; pc < prog.size(); ++pc) {
        char addr[16];
        std::snprintf(addr, sizeof(addr), "%5u: ", pc);
        os << addr << disassemble(prog.inst(pc)) << "\n";
    }
    return os.str();
}

} // namespace imo::isa
