/**
 * @file
 * MRISC disassembly for debugging and tooling.
 */

#ifndef IMO_ISA_DISASM_HH
#define IMO_ISA_DISASM_HH

#include <string>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace imo::isa
{

/** @return a one-line textual rendering of @p inst. */
std::string disassemble(const Instruction &inst);

/** @return the whole program, one instruction per line with addresses. */
std::string disassemble(const Program &prog);

} // namespace imo::isa

#endif // IMO_ISA_DISASM_HH
