#include "isa/instruction.hh"

namespace imo::isa
{

SrcRegs
srcRegs(const Instruction &inst)
{
    SrcRegs out;
    auto add = [&out](std::uint8_t r) { out.reg[out.count++] = r; };

    switch (inst.op) {
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::AND: case Op::OR: case Op::XOR: case Op::SLT:
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::ST: case Op::FST:
        add(inst.rs1);
        add(inst.rs2);
        break;
      case Op::ADDI: case Op::ANDI: case Op::SLL: case Op::SRL:
      case Op::SLTI: case Op::FSQRT: case Op::FMOV: case Op::CVTIF:
      case Op::CVTFI: case Op::LD: case Op::FLD: case Op::PREFETCH:
      case Op::JR: case Op::SETMHARR: case Op::SETMHRR:
        add(inst.rs1);
        break;
      default:
        break;
    }

    // Reads of the hardwired integer zero register carry no dependence.
    SrcRegs filtered;
    for (std::uint8_t i = 0; i < out.count; ++i) {
        if (out.reg[i] != intReg(0))
            filtered.reg[filtered.count++] = out.reg[i];
    }
    return filtered;
}

int
dstReg(const Instruction &inst)
{
    switch (inst.op) {
      case Op::ADD: case Op::ADDI: case Op::SUB: case Op::MUL:
      case Op::DIV: case Op::AND: case Op::ANDI: case Op::OR:
      case Op::XOR: case Op::SLL: case Op::SRL: case Op::SLT:
      case Op::SLTI: case Op::LI: case Op::CVTFI: case Op::LD:
      case Op::GETMHRR: case Op::JAL:
        return inst.rd == intReg(0) ? -1 : inst.rd;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTIF: case Op::FLD:
        return inst.rd;
      default:
        return -1;
    }
}

} // namespace imo::isa
