/**
 * @file
 * The MRISC instruction word and register-usage helpers.
 */

#ifndef IMO_ISA_INSTRUCTION_HH
#define IMO_ISA_INSTRUCTION_HH

#include <array>
#include <cstdint>
#include <limits>

#include "isa/op.hh"

namespace imo::isa
{

/**
 * Register identifiers are unified across the two register files:
 * 0..31 name the integer registers (r0 is hardwired to zero),
 * 32..63 name the floating-point registers.
 */
constexpr std::uint8_t numIntRegs = 32;
constexpr std::uint8_t numFpRegs = 32;
constexpr std::uint8_t numUnifiedRegs = numIntRegs + numFpRegs;

/** @return the unified id of integer register @p i. */
constexpr std::uint8_t intReg(std::uint8_t i) { return i; }

/** @return the unified id of floating-point register @p i. */
constexpr std::uint8_t fpReg(std::uint8_t i) { return numIntRegs + i; }

/** @return true if @p reg names an FP register. */
constexpr bool isFpRegId(std::uint8_t reg) { return reg >= numIntRegs; }

/** Sentinel for "this memory op has no static-reference id". */
constexpr std::uint32_t noRefId = std::numeric_limits<std::uint32_t>::max();

/**
 * One MRISC instruction.
 *
 * Branch and jump targets (and SETMHAR values) are absolute instruction
 * indices stored in @ref imm. Memory operations carry a staticRefId so
 * that instrumentation and profiling can name each static reference.
 */
struct Instruction
{
    Op op = Op::NOP;
    std::uint8_t rd = 0;    //!< destination register (unified id)
    std::uint8_t rs1 = 0;   //!< first source register (unified id)
    std::uint8_t rs2 = 0;   //!< second source register (unified id)
    std::int64_t imm = 0;   //!< immediate / displacement / target

    /**
     * For data references: does this op participate in the informing
     * mechanism? (The paper's alternative of "two sets of memory
     * operations", footnote 1.) Defaults to true: with the MHAR at
     * zero an informing op behaves exactly like a plain one.
     */
    bool informing = true;

    /** Stable id of this static memory reference, or noRefId. */
    std::uint32_t staticRefId = noRefId;
};

/** Up to two register sources of an instruction. */
struct SrcRegs
{
    std::array<std::uint8_t, 2> reg{};
    std::uint8_t count = 0;
};

/** @return the register sources actually read by @p inst. Inline: the
 *  wakeup logic of both timing models calls this once per instruction. */
inline SrcRegs
srcRegs(const Instruction &inst)
{
    SrcRegs out;
    auto add = [&out](std::uint8_t r) { out.reg[out.count++] = r; };

    switch (inst.op) {
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::AND: case Op::OR: case Op::XOR: case Op::SLT:
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::ST: case Op::FST:
        add(inst.rs1);
        add(inst.rs2);
        break;
      case Op::ADDI: case Op::ANDI: case Op::SLL: case Op::SRL:
      case Op::SLTI: case Op::FSQRT: case Op::FMOV: case Op::CVTIF:
      case Op::CVTFI: case Op::LD: case Op::FLD: case Op::PREFETCH:
      case Op::JR: case Op::SETMHARR: case Op::SETMHRR:
        add(inst.rs1);
        break;
      default:
        break;
    }

    // Reads of the hardwired integer zero register carry no dependence.
    SrcRegs filtered;
    for (std::uint8_t i = 0; i < out.count; ++i) {
        if (out.reg[i] != intReg(0))
            filtered.reg[filtered.count++] = out.reg[i];
    }
    return filtered;
}

/**
 * @return the unified destination register written by @p inst, or -1 if
 * it writes none. Writes to integer r0 are reported as no destination.
 */
inline int
dstReg(const Instruction &inst)
{
    switch (inst.op) {
      case Op::ADD: case Op::ADDI: case Op::SUB: case Op::MUL:
      case Op::DIV: case Op::AND: case Op::ANDI: case Op::OR:
      case Op::XOR: case Op::SLL: case Op::SRL: case Op::SLT:
      case Op::SLTI: case Op::LI: case Op::CVTFI: case Op::LD:
      case Op::GETMHRR: case Op::JAL:
        return inst.rd == intReg(0) ? -1 : inst.rd;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTIF: case Op::FLD:
        return inst.rd;
      default:
        return -1;
    }
}

} // namespace imo::isa

#endif // IMO_ISA_INSTRUCTION_HH
