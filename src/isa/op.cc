#include "isa/op.hh"

namespace imo::isa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::ADD: return "add";
      case Op::ADDI: return "addi";
      case Op::SUB: return "sub";
      case Op::MUL: return "mul";
      case Op::DIV: return "div";
      case Op::AND: return "and";
      case Op::ANDI: return "andi";
      case Op::OR: return "or";
      case Op::XOR: return "xor";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SLT: return "slt";
      case Op::SLTI: return "slti";
      case Op::LI: return "li";
      case Op::FADD: return "fadd";
      case Op::FSUB: return "fsub";
      case Op::FMUL: return "fmul";
      case Op::FDIV: return "fdiv";
      case Op::FSQRT: return "fsqrt";
      case Op::FMOV: return "fmov";
      case Op::CVTIF: return "cvtif";
      case Op::CVTFI: return "cvtfi";
      case Op::LD: return "ld";
      case Op::ST: return "st";
      case Op::FLD: return "fld";
      case Op::FST: return "fst";
      case Op::PREFETCH: return "prefetch";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLT: return "blt";
      case Op::BGE: return "bge";
      case Op::J: return "j";
      case Op::JAL: return "jal";
      case Op::JR: return "jr";
      case Op::SETMHAR: return "setmhar";
      case Op::SETMHARR: return "setmharr";
      case Op::GETMHRR: return "getmhrr";
      case Op::SETMHRR: return "setmhrr";
      case Op::RETMH: return "retmh";
      case Op::BRMISS: return "brmiss";
      case Op::BRMISS2: return "brmiss2";
      case Op::SETMHARPC: return "setmharpc";
      case Op::SETMHLVL: return "setmhlvl";
      case Op::NOP: return "nop";
      case Op::HALT: return "halt";
      case Op::NumOps: break;
    }
    return "?";
}

} // namespace imo::isa
