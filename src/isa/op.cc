#include "isa/op.hh"

#include "common/logging.hh"

namespace imo::isa
{

OpClass
opClass(Op op)
{
    switch (op) {
      case Op::ADD: case Op::ADDI: case Op::SUB: case Op::AND:
      case Op::ANDI: case Op::OR: case Op::XOR: case Op::SLL:
      case Op::SRL: case Op::SLT: case Op::SLTI: case Op::LI:
      case Op::CVTFI:
      case Op::SETMHAR: case Op::SETMHARR: case Op::GETMHRR:
      case Op::SETMHRR: case Op::SETMHARPC: case Op::SETMHLVL:
        return OpClass::IntAlu;
      case Op::MUL:
        return OpClass::IntMul;
      case Op::DIV:
        return OpClass::IntDiv;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FMOV:
      case Op::CVTIF:
        return OpClass::FpAlu;
      case Op::FDIV:
        return OpClass::FpDiv;
      case Op::FSQRT:
        return OpClass::FpSqrt;
      case Op::LD: case Op::FLD:
        return OpClass::Load;
      case Op::ST: case Op::FST:
        return OpClass::Store;
      case Op::PREFETCH:
        return OpClass::Prefetch;
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BRMISS: case Op::BRMISS2:
        return OpClass::Branch;
      case Op::J: case Op::JAL: case Op::JR: case Op::RETMH:
        return OpClass::Jump;
      case Op::NOP: case Op::HALT:
        return OpClass::Nop;
      case Op::NumOps:
        break;
    }
    panic("opClass: bad op %d", static_cast<int>(op));
}

const char *
opName(Op op)
{
    switch (op) {
      case Op::ADD: return "add";
      case Op::ADDI: return "addi";
      case Op::SUB: return "sub";
      case Op::MUL: return "mul";
      case Op::DIV: return "div";
      case Op::AND: return "and";
      case Op::ANDI: return "andi";
      case Op::OR: return "or";
      case Op::XOR: return "xor";
      case Op::SLL: return "sll";
      case Op::SRL: return "srl";
      case Op::SLT: return "slt";
      case Op::SLTI: return "slti";
      case Op::LI: return "li";
      case Op::FADD: return "fadd";
      case Op::FSUB: return "fsub";
      case Op::FMUL: return "fmul";
      case Op::FDIV: return "fdiv";
      case Op::FSQRT: return "fsqrt";
      case Op::FMOV: return "fmov";
      case Op::CVTIF: return "cvtif";
      case Op::CVTFI: return "cvtfi";
      case Op::LD: return "ld";
      case Op::ST: return "st";
      case Op::FLD: return "fld";
      case Op::FST: return "fst";
      case Op::PREFETCH: return "prefetch";
      case Op::BEQ: return "beq";
      case Op::BNE: return "bne";
      case Op::BLT: return "blt";
      case Op::BGE: return "bge";
      case Op::J: return "j";
      case Op::JAL: return "jal";
      case Op::JR: return "jr";
      case Op::SETMHAR: return "setmhar";
      case Op::SETMHARR: return "setmharr";
      case Op::GETMHRR: return "getmhrr";
      case Op::SETMHRR: return "setmhrr";
      case Op::RETMH: return "retmh";
      case Op::BRMISS: return "brmiss";
      case Op::BRMISS2: return "brmiss2";
      case Op::SETMHARPC: return "setmharpc";
      case Op::SETMHLVL: return "setmhlvl";
      case Op::NOP: return "nop";
      case Op::HALT: return "halt";
      case Op::NumOps: break;
    }
    return "?";
}

bool
isDataRef(Op op)
{
    return op == Op::LD || op == Op::ST || op == Op::FLD || op == Op::FST;
}

bool
isLoad(Op op)
{
    return op == Op::LD || op == Op::FLD;
}

bool
isStore(Op op)
{
    return op == Op::ST || op == Op::FST;
}

bool
isControl(Op op)
{
    switch (opClass(op)) {
      case OpClass::Branch:
      case OpClass::Jump:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Op op)
{
    return opClass(op) == OpClass::Branch;
}

bool
readsFpSources(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTFI: case Op::FST:
        return true;
      default:
        return false;
    }
}

bool
writesFp(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTIF: case Op::FLD:
        return true;
      default:
        return false;
    }
}

} // namespace imo::isa
