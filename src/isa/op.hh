/**
 * @file
 * The MRISC operation set.
 *
 * MRISC is the small load/store ISA that every simulated program in this
 * repository is written in. It is a conventional 64-bit RISC plus the
 * informing-memory-operation extensions proposed by Horowitz et al.
 * (ISCA 1996):
 *
 *  - a cache-outcome condition code, set by every data memory operation
 *    and tested by BRMISS (conditional branch-and-link-if-miss);
 *  - the Miss Handler Address Register (MHAR) and Miss Handler Return
 *    Register (MHRR) with SETMHAR / RETMH for the low-overhead
 *    cache-miss-trap mechanism.
 */

#ifndef IMO_ISA_OP_HH
#define IMO_ISA_OP_HH

#include <cstdint>

#include "common/logging.hh"

namespace imo::isa
{

/** Every MRISC operation. */
enum class Op : std::uint8_t
{
    // Integer ALU.
    ADD,    //!< rd = rs1 + rs2
    ADDI,   //!< rd = rs1 + imm
    SUB,    //!< rd = rs1 - rs2
    MUL,    //!< rd = rs1 * rs2
    DIV,    //!< rd = rs1 / rs2 (0 if rs2 == 0)
    AND,    //!< rd = rs1 & rs2
    ANDI,   //!< rd = rs1 & imm
    OR,     //!< rd = rs1 | rs2
    XOR,    //!< rd = rs1 ^ rs2
    SLL,    //!< rd = rs1 << (imm & 63)
    SRL,    //!< rd = rs1 >> (imm & 63) (logical)
    SLT,    //!< rd = (int64)rs1 < (int64)rs2
    SLTI,   //!< rd = (int64)rs1 < imm
    LI,     //!< rd = imm

    // Floating point (operates on the FP register file).
    FADD,   //!< fd = fs1 + fs2
    FSUB,   //!< fd = fs1 - fs2
    FMUL,   //!< fd = fs1 * fs2
    FDIV,   //!< fd = fs1 / fs2
    FSQRT,  //!< fd = sqrt(fs1)
    FMOV,   //!< fd = fs1
    CVTIF,  //!< fd = (double)(int64)rs1
    CVTFI,  //!< rd = (int64)fs1

    // Memory. Effective address is rs1 + imm.
    LD,     //!< rd = mem64[rs1 + imm]
    ST,     //!< mem64[rs1 + imm] = rs2
    FLD,    //!< fd = mem64[rs1 + imm] (as double bits)
    FST,    //!< mem64[rs1 + imm] = fs2
    PREFETCH, //!< hint: move line at rs1 + imm toward the primary cache

    // Control. Branch/jump targets are absolute instruction indices.
    BEQ,    //!< if (rs1 == rs2) pc = imm
    BNE,    //!< if (rs1 != rs2) pc = imm
    BLT,    //!< if ((int64)rs1 < (int64)rs2) pc = imm
    BGE,    //!< if ((int64)rs1 >= (int64)rs2) pc = imm
    J,      //!< pc = imm
    JAL,    //!< rd = pc + 1; pc = imm
    JR,     //!< pc = rs1

    // Informing-memory-operation extensions.
    SETMHAR,  //!< MHAR = imm (0 disables miss trapping)
    SETMHARR, //!< MHAR = rs1
    GETMHRR,  //!< rd = MHRR
    SETMHRR,  //!< MHRR = rs1
    RETMH,    //!< pc = MHRR; re-enables trapping (handler return)
    BRMISS,   //!< if (cache outcome CC == miss) { MHRR = pc + 1; pc = imm }
    // Extensions sketched in the paper: per-level condition codes
    // (section 2.1's "other levels of the memory hierarchy"), a
    // PC-relative MHAR load (footnote 2), and a trap-level threshold
    // enabling section 4.1.3's switch-on-secondary-miss policy.
    BRMISS2,  //!< like BRMISS, but tests the secondary-cache outcome
    SETMHARPC,//!< MHAR = pc + imm (cheap per-reference handler setup)
    SETMHLVL, //!< trap threshold: 1 = any L1 miss, 2 = L2 misses only

    // Miscellaneous.
    NOP,
    HALT,    //!< terminate the program

    NumOps
};

/** Functional-unit class of an operation, used by the timing models. */
enum class OpClass : std::uint8_t
{
    IntAlu,
    IntMul,
    IntDiv,
    FpAlu,
    FpDiv,
    FpSqrt,
    Load,
    Store,
    Prefetch,
    Branch,   //!< conditional branches (incl. BRMISS)
    Jump,     //!< unconditional control transfers (incl. RETMH)
    Nop,      //!< NOP / HALT / register-move to special regs
    NumClasses
};

// The classification helpers below run several times per simulated
// instruction in both timing models; they are defined inline so the
// per-instruction loop never pays a cross-TU call for them. opName()
// (cold, formatting only) stays out of line in op.cc.

/** @return the functional-unit class of @p op. */
inline OpClass
opClass(Op op)
{
    switch (op) {
      case Op::ADD: case Op::ADDI: case Op::SUB: case Op::AND:
      case Op::ANDI: case Op::OR: case Op::XOR: case Op::SLL:
      case Op::SRL: case Op::SLT: case Op::SLTI: case Op::LI:
      case Op::CVTFI:
      case Op::SETMHAR: case Op::SETMHARR: case Op::GETMHRR:
      case Op::SETMHRR: case Op::SETMHARPC: case Op::SETMHLVL:
        return OpClass::IntAlu;
      case Op::MUL:
        return OpClass::IntMul;
      case Op::DIV:
        return OpClass::IntDiv;
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FMOV:
      case Op::CVTIF:
        return OpClass::FpAlu;
      case Op::FDIV:
        return OpClass::FpDiv;
      case Op::FSQRT:
        return OpClass::FpSqrt;
      case Op::LD: case Op::FLD:
        return OpClass::Load;
      case Op::ST: case Op::FST:
        return OpClass::Store;
      case Op::PREFETCH:
        return OpClass::Prefetch;
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::BRMISS: case Op::BRMISS2:
        return OpClass::Branch;
      case Op::J: case Op::JAL: case Op::JR: case Op::RETMH:
        return OpClass::Jump;
      case Op::NOP: case Op::HALT:
        return OpClass::Nop;
      case Op::NumOps:
        break;
    }
    panic("opClass: bad op %d", static_cast<int>(op));
}

/** @return the mnemonic for @p op. */
const char *opName(Op op);

/** @return true for LD/ST/FLD/FST (PREFETCH excluded: it cannot trap). */
inline bool
isDataRef(Op op)
{
    return op == Op::LD || op == Op::ST || op == Op::FLD || op == Op::FST;
}

/** @return true for loads (LD/FLD). */
inline bool
isLoad(Op op)
{
    return op == Op::LD || op == Op::FLD;
}

/** @return true for stores (ST/FST). */
inline bool
isStore(Op op)
{
    return op == Op::ST || op == Op::FST;
}

/** @return true for any op that may redirect the PC. */
inline bool
isControl(Op op)
{
    switch (opClass(op)) {
      case OpClass::Branch:
      case OpClass::Jump:
        return true;
      default:
        return false;
    }
}

/** @return true for conditional branches (outcome not known at decode). */
inline bool
isCondBranch(Op op)
{
    return opClass(op) == OpClass::Branch;
}

/** @return true if the op reads the FP register file for its sources. */
inline bool
readsFpSources(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTFI: case Op::FST:
        return true;
      default:
        return false;
    }
}

/** @return true if the op writes the FP register file. */
inline bool
writesFp(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTIF: case Op::FLD:
        return true;
      default:
        return false;
    }
}

} // namespace imo::isa

#endif // IMO_ISA_OP_HH
