#include "isa/program.hh"

#include <cstdio>
#include <set>

namespace imo::isa
{

namespace
{

bool
complain(std::string *why, const char *fmt, InstAddr pc, const char *extra)
{
    if (why) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), fmt, pc, extra);
        *why = buf;
    }
    return false;
}

/** Does this op's rs1 name an FP register? */
bool
rs1IsFp(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FSQRT: case Op::FMOV: case Op::CVTFI:
        return true;
      default:
        return false;
    }
}

/** Does this op's rs2 name an FP register? */
bool
rs2IsFp(Op op)
{
    switch (op) {
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::FST:
        return true;
      default:
        return false;
    }
}

bool
usesRs1(Op op)
{
    switch (op) {
      case Op::ADD: case Op::ADDI: case Op::SUB: case Op::MUL:
      case Op::DIV: case Op::AND: case Op::ANDI: case Op::OR:
      case Op::XOR: case Op::SLL: case Op::SRL: case Op::SLT:
      case Op::SLTI: case Op::FADD: case Op::FSUB: case Op::FMUL:
      case Op::FDIV: case Op::FSQRT: case Op::FMOV: case Op::CVTIF:
      case Op::CVTFI: case Op::LD: case Op::ST: case Op::FLD:
      case Op::FST: case Op::PREFETCH: case Op::BEQ: case Op::BNE:
      case Op::BLT: case Op::BGE: case Op::JR: case Op::SETMHARR:
      case Op::SETMHRR:
        return true;
      default:
        return false;
    }
}

bool
usesRs2(Op op)
{
    switch (op) {
      case Op::ADD: case Op::SUB: case Op::MUL: case Op::DIV:
      case Op::AND: case Op::OR: case Op::XOR: case Op::SLT:
      case Op::FADD: case Op::FSUB: case Op::FMUL: case Op::FDIV:
      case Op::ST: case Op::FST: case Op::BEQ: case Op::BNE:
      case Op::BLT: case Op::BGE:
        return true;
      default:
        return false;
    }
}

bool
hasImmTarget(Op op)
{
    switch (op) {
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
      case Op::J: case Op::JAL: case Op::BRMISS: case Op::BRMISS2:
      case Op::SETMHAR:
        return true;
      default:
        return false;
    }
}

} // anonymous namespace

bool
Program::validate(std::string *why) const
{
    bool has_halt = false;
    std::set<std::uint32_t> ref_ids;

    for (InstAddr pc = 0; pc < size(); ++pc) {
        const Instruction &in = _insts[pc];

        if (in.op >= Op::NumOps)
            return complain(why, "pc %u: bad opcode%s", pc, "");

        if (in.op == Op::HALT)
            has_halt = true;

        auto check_reg = [&](std::uint8_t reg, bool want_fp,
                             const char *role) -> bool {
            if (reg >= numUnifiedRegs)
                return complain(why, "pc %u: %s register out of range",
                                pc, role);
            if (isFpRegId(reg) != want_fp)
                return complain(why, "pc %u: %s register in wrong file",
                                pc, role);
            return true;
        };

        if (usesRs1(in.op) && !check_reg(in.rs1, rs1IsFp(in.op), "rs1"))
            return false;
        if (usesRs2(in.op) && !check_reg(in.rs2, rs2IsFp(in.op), "rs2"))
            return false;
        if (dstReg(in) >= 0 &&
            !check_reg(static_cast<std::uint8_t>(dstReg(in)),
                       writesFp(in.op), "rd")) {
            return false;
        }

        if (hasImmTarget(in.op)) {
            const bool disable_mhar = in.op == Op::SETMHAR && in.imm == 0;
            if (!disable_mhar &&
                (in.imm < 0 || in.imm >= static_cast<std::int64_t>(size())))
                return complain(why, "pc %u: control target out of range%s",
                                pc, "");
        }

        if (in.op == Op::SETMHARPC) {
            const std::int64_t target = static_cast<std::int64_t>(pc)
                + in.imm;
            if (target < 0 || target >= static_cast<std::int64_t>(size()))
                return complain(why,
                                "pc %u: pc-relative MHAR out of range%s",
                                pc, "");
        }
        if (in.op == Op::SETMHLVL && (in.imm < 1 || in.imm > 2))
            return complain(why, "pc %u: bad trap level%s", pc, "");

        if (isDataRef(in.op) && in.staticRefId != noRefId)
            ref_ids.insert(in.staticRefId);
    }

    if (!has_halt)
        return complain(why, "program has no HALT (size %u)%s", size(), "");

    // Static-reference ids, when present, must be dense [0, n).
    if (!ref_ids.empty()) {
        if (*ref_ids.rbegin() != ref_ids.size() - 1 ||
            ref_ids.size() != _numStaticRefs) {
            return complain(why, "static ref ids not dense (%u declared)%s",
                            _numStaticRefs, "");
        }
    } else if (_numStaticRefs != 0) {
        return complain(why, "declared %u static refs but tagged none%s",
                        _numStaticRefs, "");
    }

    return true;
}

namespace
{

// FNV-1a, folded over every field that affects execution.
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    mix(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ull;
        }
    }

    void
    mix(const std::string &s)
    {
        mix(s.size());
        for (const char c : s) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 0x100000001b3ull;
        }
    }
};

} // anonymous namespace

std::uint64_t
Program::fingerprint() const
{
    Fnv f;
    f.mix(_name);
    f.mix(_insts.size());
    for (const Instruction &in : _insts) {
        f.mix(static_cast<std::uint64_t>(in.op));
        f.mix((static_cast<std::uint64_t>(in.rd) << 16) |
              (static_cast<std::uint64_t>(in.rs1) << 8) | in.rs2);
        f.mix(static_cast<std::uint64_t>(in.imm));
        f.mix(in.informing ? 1 : 0);
        f.mix(in.staticRefId);
    }
    f.mix(_data.size());
    for (const DataSegment &seg : _data) {
        f.mix(seg.base);
        f.mix(seg.words.size());
        for (const std::uint64_t w : seg.words)
            f.mix(w);
    }
    f.mix(_numStaticRefs);
    return f.h;
}

} // namespace imo::isa
