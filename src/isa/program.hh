/**
 * @file
 * A complete MRISC program: instructions plus initial data image.
 */

#ifndef IMO_ISA_PROGRAM_HH
#define IMO_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace imo::isa
{

/** A contiguous run of initialized 64-bit words in data memory. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint64_t> words;
};

/**
 * An executable MRISC program.
 *
 * Instruction addresses are indices into @ref insts. Data memory is
 * byte-addressed; segments initialize it before execution, everything
 * else reads as zero.
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    const std::vector<Instruction> &insts() const { return _insts; }
    std::vector<Instruction> &insts() { return _insts; }

    const Instruction &
    inst(InstAddr pc) const
    {
        return _insts[pc];
    }

    InstAddr size() const { return static_cast<InstAddr>(_insts.size()); }

    const std::vector<DataSegment> &data() const { return _data; }
    void addData(DataSegment seg) { _data.push_back(std::move(seg)); }

    /** Number of distinct static memory references (dense ids). */
    std::uint32_t numStaticRefs() const { return _numStaticRefs; }
    void setNumStaticRefs(std::uint32_t n) { _numStaticRefs = n; }

    /**
     * Check structural well-formedness: register ids in range and in
     * the correct file for each op, control targets inside the program,
     * dense static-reference ids, and at least one HALT.
     *
     * @param why if non-null, receives a description of the first
     *            problem found.
     * @return true if the program is well-formed.
     */
    bool validate(std::string *why = nullptr) const;

    /**
     * Order-sensitive 64-bit digest of the whole program (name,
     * instructions, data image, static-ref count). Checkpoints embed it
     * so a restore against a different program is rejected instead of
     * silently diverging.
     */
    std::uint64_t fingerprint() const;

  private:
    std::string _name;
    std::vector<Instruction> _insts;
    std::vector<DataSegment> _data;
    std::uint32_t _numStaticRefs = 0;
};

} // namespace imo::isa

#endif // IMO_ISA_PROGRAM_HH
