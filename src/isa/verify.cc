#include "isa/verify.hh"

#include <vector>

#include "common/error.hh"

namespace imo::isa
{

void
verifyProgram(const Program &program)
{
    std::string why;
    sim_throw_if(!program.validate(&why), ErrCode::BadProgram,
                 "program '%s': %s", program.name().c_str(), why.c_str());

    // Halt reachability over the static CFG. validate() has already
    // guaranteed every static target is in range.
    const InstAddr n = program.size();
    std::vector<char> seen(n, 0);
    std::vector<InstAddr> work;
    seen[0] = 1;
    work.push_back(0);

    bool universal = false;  // a dynamic transfer can reach anything
    auto visit = [&](std::int64_t target) {
        if (target >= 0 && target < static_cast<std::int64_t>(n) &&
            !seen[static_cast<InstAddr>(target)]) {
            seen[static_cast<InstAddr>(target)] = 1;
            work.push_back(static_cast<InstAddr>(target));
        }
    };

    while (!work.empty() && !universal) {
        const InstAddr pc = work.back();
        work.pop_back();
        const Instruction &in = program.inst(pc);
        switch (in.op) {
          case Op::HALT:
            break;
          case Op::J:
          case Op::JAL:
            visit(in.imm);
            break;
          case Op::JR:
          case Op::RETMH:
            universal = true;
            break;
          case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BGE:
          case Op::BRMISS: case Op::BRMISS2:
            visit(in.imm);
            visit(static_cast<std::int64_t>(pc) + 1);
            break;
          case Op::SETMHAR:
            // A nonzero MHAR makes the handler a potential trap entry.
            if (in.imm != 0)
                visit(in.imm);
            visit(static_cast<std::int64_t>(pc) + 1);
            break;
          case Op::SETMHARPC:
            visit(static_cast<std::int64_t>(pc) + in.imm);
            visit(static_cast<std::int64_t>(pc) + 1);
            break;
          case Op::SETMHARR:
            universal = true;
            break;
          default:
            visit(static_cast<std::int64_t>(pc) + 1);
            break;
        }
    }

    if (universal)
        return;

    for (InstAddr pc = 0; pc < n; ++pc) {
        if (seen[pc] && program.inst(pc).op == Op::HALT)
            return;
    }
    throwSimError(ErrCode::BadProgram,
                  "program '%s': no HALT is reachable from the entry "
                  "point (guaranteed non-termination)",
                  program.name().c_str());
}

} // namespace imo::isa
