/**
 * @file
 * Whole-program static verification with structured errors.
 *
 * Program::validate() answers "is this program well-formed?" as a
 * bool + description. verifyProgram() is the hardened entry point used
 * by pipeline::simulate() and the CLI tools: it throws
 * SimException(BadProgram) on any structural problem (register indices,
 * control/SETMHAR targets, trap levels, static-ref density) and
 * additionally proves that a HALT is reachable from the entry point, so
 * obviously non-terminating programs are rejected before they burn the
 * runaway-instruction budget.
 */

#ifndef IMO_ISA_VERIFY_HH
#define IMO_ISA_VERIFY_HH

#include "isa/program.hh"

namespace imo::isa
{

/**
 * Verify @p program, throwing SimException(ErrCode::BadProgram) on the
 * first problem found.
 *
 * Reachability is computed over the static CFG from pc 0. Dynamic
 * transfers whose target cannot be known statically (JR, RETMH,
 * SETMHARR) conservatively mark every instruction reachable, so no
 * valid program is ever rejected.
 */
void verifyProgram(const Program &program);

} // namespace imo::isa

#endif // IMO_ISA_VERIFY_HH
