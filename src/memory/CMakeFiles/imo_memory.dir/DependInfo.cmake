
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/cache.cc" "src/memory/CMakeFiles/imo_memory.dir/cache.cc.o" "gcc" "src/memory/CMakeFiles/imo_memory.dir/cache.cc.o.d"
  "/root/repo/src/memory/hierarchy.cc" "src/memory/CMakeFiles/imo_memory.dir/hierarchy.cc.o" "gcc" "src/memory/CMakeFiles/imo_memory.dir/hierarchy.cc.o.d"
  "/root/repo/src/memory/mshr.cc" "src/memory/CMakeFiles/imo_memory.dir/mshr.cc.o" "gcc" "src/memory/CMakeFiles/imo_memory.dir/mshr.cc.o.d"
  "/root/repo/src/memory/timing.cc" "src/memory/CMakeFiles/imo_memory.dir/timing.cc.o" "gcc" "src/memory/CMakeFiles/imo_memory.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/common/CMakeFiles/imo_common.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/imo_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
