file(REMOVE_RECURSE
  "CMakeFiles/imo_memory.dir/cache.cc.o"
  "CMakeFiles/imo_memory.dir/cache.cc.o.d"
  "CMakeFiles/imo_memory.dir/hierarchy.cc.o"
  "CMakeFiles/imo_memory.dir/hierarchy.cc.o.d"
  "CMakeFiles/imo_memory.dir/mshr.cc.o"
  "CMakeFiles/imo_memory.dir/mshr.cc.o.d"
  "CMakeFiles/imo_memory.dir/timing.cc.o"
  "CMakeFiles/imo_memory.dir/timing.cc.o.d"
  "libimo_memory.a"
  "libimo_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
