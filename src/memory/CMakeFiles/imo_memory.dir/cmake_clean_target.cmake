file(REMOVE_RECURSE
  "libimo_memory.a"
)
