# Empty compiler generated dependencies file for imo_memory.
# This may be replaced when dependencies are built.
