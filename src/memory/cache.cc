#include "memory/cache.hh"

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::memory
{

SetAssocCache::SetAssocCache(CacheGeometry geom) : _geom(geom)
{
    _geom.check();
    _lines.resize(_geom.numLines());
}

SetAssocCache::Line *
SetAssocCache::findLine(Addr addr)
{
    const std::uint64_t set = _geom.setIndex(addr);
    const Addr tag = _geom.tag(addr);
    Line *base = &_lines[set * _geom.assoc];
    for (std::uint32_t way = 0; way < _geom.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return &base[way];
    }
    return nullptr;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    return const_cast<SetAssocCache *>(this)->findLine(addr);
}

SetAssocCache::Line &
SetAssocCache::victimLine(Addr addr)
{
    const std::uint64_t set = _geom.setIndex(addr);
    Line *base = &_lines[set * _geom.assoc];
    Line *victim = &base[0];
    for (std::uint32_t way = 0; way < _geom.assoc; ++way) {
        if (!base[way].valid)
            return base[way];
        if (base[way].lruStamp < victim->lruStamp)
            victim = &base[way];
    }
    return *victim;
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool is_write)
{
    CacheAccessResult result;
    if (Line *line = findLine(addr)) {
        ++_hits;
        result.hit = true;
        line->lruStamp = ++_stamp;
        line->dirty = line->dirty || is_write;
        return result;
    }

    ++_misses;
    Line &victim = victimLine(addr);
    if (victim.valid && victim.dirty) {
        ++_writebacks;
        // Reconstruct the victim's line address from tag and set.
        const std::uint64_t set = _geom.setIndex(addr);
        result.writeback =
            (victim.tag * _geom.numSets() + set) * _geom.lineBytes;
    }
    victim.valid = true;
    victim.dirty = is_write;
    victim.tag = _geom.tag(addr);
    victim.lruStamp = ++_stamp;
    return result;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

std::optional<Addr>
SetAssocCache::fill(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->lruStamp = ++_stamp;
        return std::nullopt;
    }
    std::optional<Addr> wb;
    Line &victim = victimLine(addr);
    if (victim.valid && victim.dirty) {
        ++_writebacks;
        const std::uint64_t set = _geom.setIndex(addr);
        wb = (victim.tag * _geom.numSets() + set) * _geom.lineBytes;
    }
    victim.valid = true;
    victim.dirty = false;
    victim.tag = _geom.tag(addr);
    victim.lruStamp = ++_stamp;
    return wb;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        ++_invalidations;
        return true;
    }
    return false;
}

void
SetAssocCache::flushAll()
{
    for (Line &line : _lines) {
        line.valid = false;
        line.dirty = false;
    }
}

void
SetAssocCache::resetStats()
{
    _hits = 0;
    _misses = 0;
    _writebacks = 0;
    _invalidations = 0;
}

void
SetAssocCache::registerStats(stats::StatGroup &parent,
                             const std::string &name)
{
    auto &g = parent.childGroup(name);
    g.make<stats::Value>("hits", "demand accesses that hit",
                         [this] { return _hits; });
    g.make<stats::Value>("misses", "demand accesses that missed",
                         [this] { return _misses; });
    g.make<stats::Value>("writebacks", "dirty victims written back",
                         [this] { return _writebacks; });
    g.make<stats::Value>("invalidations", "lines invalidated",
                         [this] { return _invalidations; });
    g.make<stats::Derived>("miss_rate", "misses / (hits + misses)",
                           [this] { return missRate(); });
}

void
SetAssocCache::save(Serializer &s) const
{
    s.u64(_lines.size());
    s.u64(_stamp);
    s.u64(_hits);
    s.u64(_misses);
    s.u64(_writebacks);
    s.u64(_invalidations);
    for (const Line &line : _lines) {
        s.b(line.valid);
        s.b(line.dirty);
        s.u64(line.tag);
        s.u64(line.lruStamp);
    }
}

void
SetAssocCache::restore(Deserializer &d)
{
    const std::uint64_t count = d.u64();
    sim_throw_if(count != _lines.size(), ErrCode::BadCheckpoint,
                 "checkpointed cache has %llu lines, configured geometry "
                 "has %zu",
                 static_cast<unsigned long long>(count), _lines.size());
    _stamp = d.u64();
    _hits = d.u64();
    _misses = d.u64();
    _writebacks = d.u64();
    _invalidations = d.u64();
    for (Line &line : _lines) {
        line.valid = d.b();
        line.dirty = d.b();
        line.tag = d.u64();
        line.lruStamp = d.u64();
    }
}

} // namespace imo::memory
