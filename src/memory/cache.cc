#include "memory/cache.hh"

#include <algorithm>
#include <numeric>

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::memory
{

SetAssocCache::SetAssocCache(CacheGeometry geom) : _geom(geom)
{
    _geom.compile();
    _lines.resize(_geom.numLines());
    _mru.assign(_geom.numSets(), 0);
    _order.resize(_geom.numLines());
    rebuildOrder();
}

void
SetAssocCache::rebuildOrder()
{
    const std::uint32_t assoc = _geom.assoc;
    for (std::uint64_t set = 0; set < _mru.size(); ++set) {
        std::uint32_t *ord = &_order[set * assoc];
        std::iota(ord, ord + assoc, 0u);
        const Line *base = &_lines[set * assoc];
        // Stable insertion sort, most-recent first: ties (possible only
        // among never-touched lines, which are invalid and never
        // reached via the order) keep the lower way first for
        // determinism. Allocation-free: this runs per set, and a
        // large L2 has tens of thousands of them.
        for (std::uint32_t i = 1; i < assoc; ++i) {
            const std::uint32_t way = ord[i];
            const std::uint64_t stamp = base[way].lruStamp;
            std::uint32_t j = i;
            for (; j > 0 && base[ord[j - 1]].lruStamp < stamp; --j)
                ord[j] = ord[j - 1];
            ord[j] = way;
        }
        _mru[set] = ord[0];
    }
}

std::uint32_t
SetAssocCache::lookupWay(std::uint64_t set, Addr tag) const
{
    const std::uint32_t assoc = _geom.assoc;
    const Line *base = &_lines[set * assoc];

    // One-entry MRU filter: most hits re-touch the last-touched way.
    const std::uint32_t mru = _mru[set];
    if (base[mru].valid && base[mru].tag == tag)
        return mru;
    for (std::uint32_t way = 0; way < assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return way;
    }
    return assoc;
}

std::uint32_t
SetAssocCache::victimWay(std::uint64_t set) const
{
    const std::uint32_t assoc = _geom.assoc;
    const Line *base = &_lines[set * assoc];
    std::uint32_t way = assoc;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (!base[w].valid) {
            way = w;
            break;
        }
    }
    if (way == assoc) {
        // All ways valid: the recency order's tail is the LRU way.
        way = _order[set * assoc + assoc - 1];
    }
#ifdef IMO_PARANOID_XCHECK
    // Reference victim selection: first invalid way, else min stamp.
    std::uint32_t ref = 0;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (!base[w].valid) {
            ref = w;
            break;
        }
        if (base[w].lruStamp < base[ref].lruStamp)
            ref = w;
    }
    sim_throw_if(ref != way, ErrCode::Internal,
                 "xcheck: fast victim way %u != reference way %u in set "
                 "%llu", way, ref, static_cast<unsigned long long>(set));
#endif
    return way;
}

void
SetAssocCache::touch(std::uint64_t set, std::uint32_t way)
{
    _lines[set * _geom.assoc + way].lruStamp = ++_stamp;
    _mru[set] = way;
    std::uint32_t *ord = &_order[set * _geom.assoc];
    if (ord[0] == way)
        return;
    std::uint32_t i = 1;
    while (ord[i] != way)
        ++i;
    for (; i > 0; --i)
        ord[i] = ord[i - 1];
    ord[0] = way;
}

const SetAssocCache::Line *
SetAssocCache::findLine(Addr addr) const
{
    const std::uint64_t set = _geom.setIndex(addr);
    const std::uint32_t way = lookupWay(set, _geom.tag(addr));
    return way == _geom.assoc ? nullptr : &_lines[set * _geom.assoc + way];
}

CacheAccessResult
SetAssocCache::accessSlow(std::uint64_t set, Addr tag, bool is_write)
{
    CacheAccessResult result;
    const std::uint32_t way = lookupWay(set, tag);
    if (way != _geom.assoc) {
        ++_hits;
        result.hit = true;
        Line &line = _lines[set * _geom.assoc + way];
        line.dirty = line.dirty || is_write;
        touch(set, way);
        return result;
    }

    ++_misses;
    const std::uint32_t vway = victimWay(set);
    Line &victim = _lines[set * _geom.assoc + vway];
    if (victim.valid && victim.dirty) {
        ++_writebacks;
        result.writeback = _geom.lineAddrOf(victim.tag, set);
    }
    victim.valid = true;
    victim.dirty = is_write;
    victim.tag = tag;
    touch(set, vway);
    return result;
}

bool
SetAssocCache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

std::optional<Addr>
SetAssocCache::fill(Addr addr)
{
    const std::uint64_t set = _geom.setIndex(addr);
    const Addr tag = _geom.tag(addr);

    const std::uint32_t way = lookupWay(set, tag);
    if (way != _geom.assoc) {
        touch(set, way);
        return std::nullopt;
    }
    std::optional<Addr> wb;
    const std::uint32_t vway = victimWay(set);
    Line &victim = _lines[set * _geom.assoc + vway];
    if (victim.valid && victim.dirty) {
        ++_writebacks;
        wb = _geom.lineAddrOf(victim.tag, set);
    }
    victim.valid = true;
    victim.dirty = false;
    victim.tag = tag;
    touch(set, vway);
    return wb;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    const std::uint64_t set = _geom.setIndex(addr);
    const std::uint32_t way = lookupWay(set, _geom.tag(addr));
    if (way == _geom.assoc)
        return false;
    Line &line = _lines[set * _geom.assoc + way];
    line.valid = false;
    line.dirty = false;
    ++_invalidations;
    return true;
}

void
SetAssocCache::flushAll()
{
    for (Line &line : _lines) {
        line.valid = false;
        line.dirty = false;
    }
}

void
SetAssocCache::resetStats()
{
    _hits = 0;
    _misses = 0;
    _writebacks = 0;
    _invalidations = 0;
}

void
SetAssocCache::registerStats(stats::StatGroup &parent,
                             const std::string &name)
{
    auto &g = parent.childGroup(name);
    g.make<stats::Value>("hits", "demand accesses that hit",
                         [this] { return _hits; });
    g.make<stats::Value>("misses", "demand accesses that missed",
                         [this] { return _misses; });
    g.make<stats::Value>("writebacks", "dirty victims written back",
                         [this] { return _writebacks; });
    g.make<stats::Value>("invalidations", "lines invalidated",
                         [this] { return _invalidations; });
    g.make<stats::Derived>("miss_rate", "misses / (hits + misses)",
                           [this] { return missRate(); });
}

void
SetAssocCache::save(Serializer &s) const
{
    s.u64(_lines.size());
    s.u64(_stamp);
    s.u64(_hits);
    s.u64(_misses);
    s.u64(_writebacks);
    s.u64(_invalidations);
    // Columnar, compressed (format v4): flag bytes zero-RLE (invalid
    // lines dominate a large L2), tags and LRU stamps delta-varint.
    // The row-major interleaved layout cost ~18 bytes per line; a
    // mostly-cold 2MB L2 now costs a few bytes per *run* of cold
    // lines, which is what makes per-window live-points affordable.
    std::vector<std::uint8_t> flags(_lines.size());
    std::vector<std::uint64_t> tags(_lines.size());
    std::vector<std::uint64_t> stamps(_lines.size());
    for (std::size_t i = 0; i < _lines.size(); ++i) {
        const Line &line = _lines[i];
        flags[i] = static_cast<std::uint8_t>((line.valid ? 1 : 0) |
                                             (line.dirty ? 2 : 0));
        tags[i] = line.tag;
        stamps[i] = line.lruStamp;
    }
    s.vecU8Rle(flags);
    s.vecU64Packed(tags);
    s.vecU64Packed(stamps);
}

void
SetAssocCache::restore(Deserializer &d)
{
    const std::uint64_t count = d.u64();
    sim_throw_if(count != _lines.size(), ErrCode::BadCheckpoint,
                 "checkpointed cache has %llu lines, configured geometry "
                 "has %zu",
                 static_cast<unsigned long long>(count), _lines.size());
    _stamp = d.u64();
    _hits = d.u64();
    _misses = d.u64();
    _writebacks = d.u64();
    _invalidations = d.u64();
    const std::vector<std::uint8_t> flags = d.vecU8Rle();
    const std::vector<std::uint64_t> tags = d.vecU64Packed();
    const std::vector<std::uint64_t> stamps = d.vecU64Packed();
    sim_throw_if(flags.size() != _lines.size() ||
                 tags.size() != _lines.size() ||
                 stamps.size() != _lines.size(),
                 ErrCode::BadCheckpoint,
                 "checkpointed cache arrays (%zu/%zu/%zu entries) do not "
                 "match the %zu-line geometry", flags.size(), tags.size(),
                 stamps.size(), _lines.size());
    for (std::size_t i = 0; i < _lines.size(); ++i) {
        sim_throw_if(flags[i] > 3, ErrCode::BadCheckpoint,
                     "checkpointed cache line %zu has undefined flag "
                     "bits %#x", i, flags[i]);
        Line &line = _lines[i];
        line.valid = flags[i] & 1;
        line.dirty = flags[i] & 2;
        line.tag = tags[i];
        line.lruStamp = stamps[i];
    }
    rebuildOrder();
}

} // namespace imo::memory
