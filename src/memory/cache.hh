/**
 * @file
 * A set-associative tag store with true-LRU replacement.
 *
 * The cache tracks contents only (no data payload): the functional data
 * image lives in func::DataMemory, and the timing models consume
 * hit/miss outcomes. Writeback state is tracked so that traffic counts
 * are meaningful.
 */

#ifndef IMO_MEMORY_CACHE_HH
#define IMO_MEMORY_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "memory/geometry.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::memory
{

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Line-aligned address of a dirty victim written back, if any. */
    std::optional<Addr> writeback;
};

/** Content-tracking set-associative cache with LRU replacement. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(CacheGeometry geom);

    const CacheGeometry &geometry() const { return _geom; }

    /**
     * Access @p addr, allocating the line on a miss (write-allocate).
     * @param addr byte address
     * @param is_write marks the line dirty on stores
     * @return hit/miss and any dirty victim evicted by the fill.
     */
    CacheAccessResult access(Addr addr, bool is_write);

    /** @return true if the line containing @p addr is present (no LRU
     *  update, no allocation). */
    bool probe(Addr addr) const;

    /**
     * Fill the line containing @p addr without it being a demand access
     * (prefetch / external fill). No-op if already present.
     * @return any dirty victim evicted.
     */
    std::optional<Addr> fill(Addr addr);

    /**
     * Remove the line containing @p addr if present.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr addr);

    /** Drop all contents (e.g. between experiment phases). */
    void flushAll();

    // Traffic statistics.
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t writebacks() const { return _writebacks; }
    std::uint64_t invalidations() const { return _invalidations; }

    double
    missRate() const
    {
        const std::uint64_t total = _hits + _misses;
        return total ? static_cast<double>(_misses) / total : 0.0;
    }

    void resetStats();

    /** Expose traffic counters as a child group @p name of @p parent. */
    void registerStats(stats::StatGroup &parent, const std::string &name);

    /** Checkpoint hooks: contents, LRU order, and traffic counters all
     *  round-trip. restore() requires a matching geometry. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    Line &victimLine(Addr addr);

    CacheGeometry _geom;
    std::vector<Line> _lines;   // sets * assoc, set-major
    std::uint64_t _stamp = 0;

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _writebacks = 0;
    std::uint64_t _invalidations = 0;
};

} // namespace imo::memory

#endif // IMO_MEMORY_CACHE_HH
