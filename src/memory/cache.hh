/**
 * @file
 * A set-associative tag store with true-LRU replacement.
 *
 * The cache tracks contents only (no data payload): the functional data
 * image lives in func::DataMemory, and the timing models consume
 * hit/miss outcomes. Writeback state is tracked so that traffic counts
 * are meaningful.
 *
 * Replacement is true LRU. The per-line 64-bit stamps remain the
 * serialized source of truth (checkpoints are byte-compatible), but the
 * hot path consults two auxiliary structures instead of scanning
 * stamps: a one-entry MRU way filter per set (most hits re-touch the
 * same way) and a compact per-set recency ordering whose tail is the
 * LRU way. Both are rebuilt from the stamps on restore. The
 * IMO_PARANOID_XCHECK build re-runs the original stamp-scan victim
 * selection next to the fast path and aborts on any divergence.
 */

#ifndef IMO_MEMORY_CACHE_HH
#define IMO_MEMORY_CACHE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "memory/geometry.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::memory
{

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** Line-aligned address of a dirty victim written back, if any. */
    std::optional<Addr> writeback;
};

/** Content-tracking set-associative cache with LRU replacement. */
class SetAssocCache
{
  public:
    explicit SetAssocCache(CacheGeometry geom);

    const CacheGeometry &geometry() const { return _geom; }

    /**
     * Access @p addr, allocating the line on a miss (write-allocate).
     * @param addr byte address
     * @param is_write marks the line dirty on stores
     * @return hit/miss and any dirty victim evicted by the fill.
     *
     * Defined inline: the MRU-way hit is the overwhelmingly common
     * outcome and dominates functional fast-forward time, so it is
     * resolved here without leaving the caller's frame. touch() keeps
     * _mru[set] and the recency head _order[set * assoc] identical, so
     * an MRU hit needs no reordering — only a stamp refresh.
     */
    CacheAccessResult
    access(Addr addr, bool is_write)
    {
        const std::uint64_t set = _geom.setIndex(addr);
        const Addr tag = _geom.tag(addr);
        Line &line = _lines[set * _geom.assoc + _mru[set]];
        if (line.valid && line.tag == tag) [[likely]] {
            ++_hits;
            line.dirty = line.dirty || is_write;
            line.lruStamp = ++_stamp;
            return {.hit = true, .writeback = {}};
        }
        return accessSlow(set, tag, is_write);
    }

    /** @return true if the line containing @p addr is present (no LRU
     *  update, no allocation). */
    bool probe(Addr addr) const;

    /**
     * Fill the line containing @p addr without it being a demand access
     * (prefetch / external fill). No-op if already present.
     * @return any dirty victim evicted.
     */
    std::optional<Addr> fill(Addr addr);

    /**
     * Remove the line containing @p addr if present.
     * @return true if a line was invalidated.
     */
    bool invalidate(Addr addr);

    /** Drop all contents (e.g. between experiment phases). */
    void flushAll();

    // Traffic statistics.
    std::uint64_t hits() const { return _hits; }
    std::uint64_t misses() const { return _misses; }
    std::uint64_t writebacks() const { return _writebacks; }
    std::uint64_t invalidations() const { return _invalidations; }

    double
    missRate() const
    {
        const std::uint64_t total = _hits + _misses;
        return total ? static_cast<double>(_misses) / total : 0.0;
    }

    void resetStats();

    /** Expose traffic counters as a child group @p name of @p parent. */
    void registerStats(stats::StatGroup &parent, const std::string &name);

    /** Checkpoint hooks: contents, LRU order, and traffic counters all
     *  round-trip. restore() requires a matching geometry. */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    const Line *findLine(Addr addr) const;

    /** The non-MRU-hit remainder of access(): other-way hits (full
     *  recency rotation) and misses (victim selection and fill). */
    CacheAccessResult accessSlow(std::uint64_t set, Addr tag,
                                 bool is_write);

    /** Way holding (@p set, @p tag), or assoc if absent. */
    std::uint32_t lookupWay(std::uint64_t set, Addr tag) const;

    /** Way to evict in @p set: first invalid way, else the LRU way. */
    std::uint32_t victimWay(std::uint64_t set) const;

    /** Record a touch of @p way: stamp, MRU filter, recency order. */
    void touch(std::uint64_t set, std::uint32_t way);

    /** Rebuild the MRU filter and recency order from the stamps. */
    void rebuildOrder();

    CacheGeometry _geom;
    std::vector<Line> _lines;   // sets * assoc, set-major
    std::uint64_t _stamp = 0;

    // Fast-path replacement state (derived; not checkpointed).
    std::vector<std::uint32_t> _order; //!< per set: ways, MRU first
    std::vector<std::uint32_t> _mru;   //!< per set: last-touched way

    std::uint64_t _hits = 0;
    std::uint64_t _misses = 0;
    std::uint64_t _writebacks = 0;
    std::uint64_t _invalidations = 0;
};

} // namespace imo::memory

#endif // IMO_MEMORY_CACHE_HH
