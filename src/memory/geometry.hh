/**
 * @file
 * Cache geometry: size / line / associativity and address slicing.
 */

#ifndef IMO_MEMORY_GEOMETRY_HH
#define IMO_MEMORY_GEOMETRY_HH

#include <cstdint>

#include "common/logging.hh"
#include "common/types.hh"

namespace imo::memory
{

/** Static shape of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** @return the line-aligned address containing @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes - 1);
    }

    /** @return the set index for @p addr. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes) % numSets();
    }

    /** @return the tag for @p addr. */
    Addr
    tag(Addr addr) const
    {
        return addr / lineBytes / numSets();
    }

    /** Abort if the geometry is not realizable. */
    void
    check() const
    {
        fatal_if(sizeBytes == 0 || lineBytes == 0 || assoc == 0,
                 "cache geometry has a zero parameter");
        fatal_if(lineBytes & (lineBytes - 1),
                 "line size %u is not a power of two", lineBytes);
        fatal_if(sizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc),
                 "cache size %llu not divisible by line*assoc",
                 static_cast<unsigned long long>(sizeBytes));
        const std::uint64_t sets = numSets();
        fatal_if(sets == 0 || (sets & (sets - 1)),
                 "cache set count %llu is not a power of two",
                 static_cast<unsigned long long>(sets));
    }
};

} // namespace imo::memory

#endif // IMO_MEMORY_GEOMETRY_HH
