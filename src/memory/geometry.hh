/**
 * @file
 * Cache geometry: size / line / associativity and address slicing.
 */

#ifndef IMO_MEMORY_GEOMETRY_HH
#define IMO_MEMORY_GEOMETRY_HH

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "common/types.hh"

namespace imo::memory
{

/** Static shape of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** @return the line-aligned address containing @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes - 1);
    }

    /** @return the set index for @p addr. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        return (addr / lineBytes) % numSets();
    }

    /** @return the tag for @p addr. */
    Addr
    tag(Addr addr) const
    {
        return addr / lineBytes / numSets();
    }

    /**
     * @return true if the geometry is realizable; otherwise false,
     * with a description of the first problem in @p why (if non-null).
     */
    bool
    wellFormed(std::string *why = nullptr) const
    {
        auto fail = [&](std::string text) {
            if (why)
                *why = std::move(text);
            return false;
        };
        if (sizeBytes == 0 || lineBytes == 0 || assoc == 0)
            return fail("cache geometry has a zero parameter");
        if (lineBytes & (lineBytes - 1))
            return fail(simFormat("line size %u is not a power of two",
                                  lineBytes));
        if (sizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc))
            return fail(simFormat(
                "cache size %llu not divisible by line*assoc",
                static_cast<unsigned long long>(sizeBytes)));
        const std::uint64_t sets = numSets();
        if (sets == 0 || (sets & (sets - 1)))
            return fail(simFormat(
                "cache set count %llu is not a power of two",
                static_cast<unsigned long long>(sets)));
        return true;
    }

    /** Throw SimException(BadConfig) if the geometry is not realizable. */
    void
    check() const
    {
        std::string why;
        sim_throw_if(!wellFormed(&why), ErrCode::BadConfig,
                     "cache geometry: %s", why.c_str());
    }
};

} // namespace imo::memory

#endif // IMO_MEMORY_GEOMETRY_HH
