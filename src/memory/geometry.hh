/**
 * @file
 * Cache geometry: size / line / associativity and address slicing.
 *
 * Every legal geometry has a power-of-two line size and a power-of-two
 * set count (enforced by wellFormed()), so set-index and tag extraction
 * are pure shift/mask operations. compile() precomputes those shifts
 * once; the accessors then avoid the divide chains entirely. A plain
 * aggregate-initialized geometry that never called compile() falls back
 * to the reference arithmetic, so `CacheGeometry{.sizeBytes = ...}`
 * literals keep working unchanged.
 */

#ifndef IMO_MEMORY_GEOMETRY_HH
#define IMO_MEMORY_GEOMETRY_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/error.hh"
#include "common/types.hh"

namespace imo::memory
{

/** Static shape of one cache level. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t lineBytes = 32;
    std::uint32_t assoc = 1;

    // Precomputed slicing, filled in by compile(). Left at defaults for
    // aggregate-initialized geometries (precomputed == false routes the
    // accessors through the reference arithmetic).
    std::uint32_t lineShift = 0;  //!< log2(lineBytes)
    std::uint32_t tagShift = 0;   //!< log2(lineBytes * numSets())
    std::uint64_t setMask = 0;    //!< numSets() - 1
    bool precomputed = false;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }

    /** @return the line-aligned address containing @p addr. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes - 1);
    }

    /** Reference set-index arithmetic (divide chain); the fast path is
     *  cross-checked against this in the IMO_PARANOID_XCHECK build. */
    std::uint64_t
    setIndexRef(Addr addr) const
    {
        return (addr / lineBytes) % numSets();
    }

    /** Reference tag arithmetic. */
    Addr
    tagRef(Addr addr) const
    {
        return addr / lineBytes / numSets();
    }

    /** @return the set index for @p addr. */
    std::uint64_t
    setIndex(Addr addr) const
    {
        if (!precomputed)
            return setIndexRef(addr);
        const std::uint64_t set = (addr >> lineShift) & setMask;
#ifdef IMO_PARANOID_XCHECK
        sim_throw_if(set != setIndexRef(addr), ErrCode::Internal,
                     "xcheck: fast setIndex %llu != reference %llu "
                     "for addr %#llx",
                     static_cast<unsigned long long>(set),
                     static_cast<unsigned long long>(setIndexRef(addr)),
                     static_cast<unsigned long long>(addr));
#endif
        return set;
    }

    /** @return the tag for @p addr. */
    Addr
    tag(Addr addr) const
    {
        if (!precomputed)
            return tagRef(addr);
        const Addr t = addr >> tagShift;
#ifdef IMO_PARANOID_XCHECK
        sim_throw_if(t != tagRef(addr), ErrCode::Internal,
                     "xcheck: fast tag %#llx != reference %#llx "
                     "for addr %#llx",
                     static_cast<unsigned long long>(t),
                     static_cast<unsigned long long>(tagRef(addr)),
                     static_cast<unsigned long long>(addr));
#endif
        return t;
    }

    /**
     * Reconstruct the line-aligned byte address cached under
     * (@p tag_v, @p set) — the inverse of setIndex()/tag(), used to
     * name dirty victims at eviction time.
     */
    Addr
    lineAddrOf(Addr tag_v, std::uint64_t set) const
    {
        if (!precomputed)
            return (tag_v * numSets() + set) * lineBytes;
        return ((tag_v << (tagShift - lineShift)) | set) << lineShift;
    }

    /**
     * Precompute the shift/mask slicing. Throws SimException(BadConfig)
     * if the geometry is not realizable (the shifts only exist for
     * power-of-two line sizes and set counts).
     */
    void
    compile()
    {
        check();
        lineShift = static_cast<std::uint32_t>(
            std::countr_zero(static_cast<std::uint64_t>(lineBytes)));
        setMask = numSets() - 1;
        tagShift = lineShift + static_cast<std::uint32_t>(
            std::countr_zero(numSets()));
        precomputed = true;
    }

    /**
     * @return true if the geometry is realizable; otherwise false,
     * with a description of the first problem in @p why (if non-null).
     */
    bool
    wellFormed(std::string *why = nullptr) const
    {
        auto fail = [&](std::string text) {
            if (why)
                *why = std::move(text);
            return false;
        };
        if (sizeBytes == 0 || lineBytes == 0 || assoc == 0)
            return fail("cache geometry has a zero parameter");
        if (lineBytes & (lineBytes - 1))
            return fail(simFormat("line size %u is not a power of two",
                                  lineBytes));
        if (sizeBytes % (static_cast<std::uint64_t>(lineBytes) * assoc))
            return fail(simFormat(
                "cache size %llu not divisible by line*assoc",
                static_cast<unsigned long long>(sizeBytes)));
        const std::uint64_t sets = numSets();
        if (sets == 0 || (sets & (sets - 1)))
            return fail(simFormat(
                "cache set count %llu is not a power of two",
                static_cast<unsigned long long>(sets)));
        return true;
    }

    /** Throw SimException(BadConfig) if the geometry is not realizable. */
    void
    check() const
    {
        std::string why;
        sim_throw_if(!wellFormed(&why), ErrCode::BadConfig,
                     "cache geometry: %s", why.c_str());
    }
};

} // namespace imo::memory

#endif // IMO_MEMORY_GEOMETRY_HH
