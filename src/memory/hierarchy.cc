#include "memory/hierarchy.hh"

namespace imo::memory
{

FunctionalHierarchy::FunctionalHierarchy(CacheGeometry l1, CacheGeometry l2)
    : _l1(l1), _l2(l2)
{
}

MemLevel
FunctionalHierarchy::access(Addr addr, bool is_write)
{
    const CacheAccessResult r1 = _l1.access(addr, is_write);
    if (r1.hit)
        return MemLevel::L1;

    // L1 victim writebacks land in L2 (which already holds the line in
    // an inclusive hierarchy; access keeps its LRU warm).
    if (r1.writeback)
        _l2.access(*r1.writeback, true);

    const CacheAccessResult r2 = _l2.access(addr, is_write);
    return r2.hit ? MemLevel::L2 : MemLevel::Memory;
}

void
FunctionalHierarchy::prefetch(Addr addr)
{
    if (auto wb = _l1.fill(addr))
        _l2.access(*wb, true);
    _l2.fill(addr);
}

void
FunctionalHierarchy::invalidate(Addr addr)
{
    _l1.invalidate(addr);
    _l2.invalidate(addr);
}

void
FunctionalHierarchy::flushAll()
{
    _l1.flushAll();
    _l2.flushAll();
}

} // namespace imo::memory
