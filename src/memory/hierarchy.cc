#include "memory/hierarchy.hh"

namespace imo::memory
{

FunctionalHierarchy::FunctionalHierarchy(CacheGeometry l1, CacheGeometry l2)
    : _l1(l1), _l2(l2)
{
}

void
FunctionalHierarchy::prefetch(Addr addr)
{
    if (auto wb = _l1.fill(addr))
        _l2.access(*wb, true);
    _l2.fill(addr);
}

void
FunctionalHierarchy::invalidate(Addr addr)
{
    _l1.invalidate(addr);
    _l2.invalidate(addr);
}

void
FunctionalHierarchy::flushAll()
{
    _l1.flushAll();
    _l2.flushAll();
}

} // namespace imo::memory
