/**
 * @file
 * FunctionalHierarchy: the content-reference model of a two-level data
 * cache hierarchy.
 *
 * The functional executor consults this model to decide the hit/miss
 * outcome of every data reference in program order. Because the paper's
 * section 3.3 hardware guarantees that squashed speculative fills are
 * invalidated before they can be silently observed, the in-order
 * contents tracked here match the contents the proposed mechanism
 * exposes to software.
 */

#ifndef IMO_MEMORY_HIERARCHY_HH
#define IMO_MEMORY_HIERARCHY_HH

#include "common/types.hh"
#include "memory/cache.hh"

namespace imo::memory
{

/** Two-level content model: private L1 + L2 backed by main memory. */
class FunctionalHierarchy
{
  public:
    FunctionalHierarchy(CacheGeometry l1, CacheGeometry l2);

    /**
     * Perform a demand reference and update both levels.
     * @return the level that serviced the reference.
     *
     * Inline so the executor's per-reference call collapses into the
     * L1 MRU-hit fast path of SetAssocCache::access.
     */
    MemLevel
    access(Addr addr, bool is_write)
    {
        const CacheAccessResult r1 = _l1.access(addr, is_write);
        if (r1.hit) [[likely]]
            return MemLevel::L1;

        // L1 victim writebacks land in L2 (which already holds the
        // line in an inclusive hierarchy; access keeps its LRU warm).
        if (r1.writeback)
            _l2.access(*r1.writeback, true);

        const CacheAccessResult r2 = _l2.access(addr, is_write);
        return r2.hit ? MemLevel::L2 : MemLevel::Memory;
    }

    /** Software prefetch: pull the line into both levels. */
    void prefetch(Addr addr);

    /** Invalidate the line in both levels (coherence / §3.3). */
    void invalidate(Addr addr);

    /** Drop all cached contents. */
    void flushAll();

    /** Expose both levels' traffic stats under @p parent. */
    void
    registerStats(stats::StatGroup &parent)
    {
        _l1.registerStats(parent, "l1");
        _l2.registerStats(parent, "l2");
    }

    SetAssocCache &l1() { return _l1; }
    SetAssocCache &l2() { return _l2; }
    const SetAssocCache &l1() const { return _l1; }
    const SetAssocCache &l2() const { return _l2; }

    /** Checkpoint hooks: both levels round-trip. */
    void
    save(Serializer &s) const
    {
        _l1.save(s);
        _l2.save(s);
    }

    void
    restore(Deserializer &d)
    {
        _l1.restore(d);
        _l2.restore(d);
    }

  private:
    SetAssocCache _l1;
    SetAssocCache _l2;
};

} // namespace imo::memory

#endif // IMO_MEMORY_HIERARCHY_HH
