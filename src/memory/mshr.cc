#include "memory/mshr.hh"

#include <algorithm>
#include <bit>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/logging.hh"

namespace imo::memory
{

MshrFile::MshrFile(std::uint32_t entries, Cycle fill_cycles,
                   bool extended_lifetime)
    : _file(entries), _validMask((entries + 63) / 64, 0),
      _entries32(entries), _fillCycles(fill_cycles),
      _extendedLifetime(extended_lifetime)
{
    sim_throw_if(entries == 0, ErrCode::BadConfig,
                 "MSHR file needs at least one entry");
    // Low-load-factor table: >= 4x entries, power of two.
    const std::uint32_t slots =
        static_cast<std::uint32_t>(std::bit_ceil(
            static_cast<std::uint64_t>(entries) * 4));
    _lineIndex.assign(slots, IndexSlot{});
    _indexMask = slots - 1;
}

std::uint32_t
MshrFile::hashSlot(Addr line) const
{
    return static_cast<std::uint32_t>(
        (line * 0x9e3779b97f4a7c15ull) >> 32) & _indexMask;
}

void
MshrFile::indexInsert(Addr line, std::uint32_t entry)
{
    std::uint32_t slot = hashSlot(line);
    while (_lineIndex[slot].entry != kEmptySlot &&
           _lineIndex[slot].line != line) {
        slot = (slot + 1) & _indexMask;
    }
    _lineIndex[slot] = IndexSlot{line, entry};
}

std::uint32_t
MshrFile::indexFind(Addr line) const
{
    std::uint32_t slot = hashSlot(line);
    while (_lineIndex[slot].entry != kEmptySlot) {
        if (_lineIndex[slot].line == line)
            return _lineIndex[slot].entry;
        slot = (slot + 1) & _indexMask;
    }
    return kEmptySlot;
}

void
MshrFile::indexErase(Addr line, std::uint32_t entry)
{
    std::uint32_t slot = hashSlot(line);
    while (_lineIndex[slot].entry != kEmptySlot &&
           _lineIndex[slot].line != line) {
        slot = (slot + 1) & _indexMask;
    }
    // A newer allocation for the same line may own the slot; leave it.
    if (_lineIndex[slot].entry != entry || _lineIndex[slot].line != line)
        return;
    // Delete, then reinsert the rest of the probe cluster so lookups
    // never cross a spurious hole. Clusters are tiny (load factor
    // <= 1/4), so the rebuild is a handful of slot moves.
    _lineIndex[slot] = IndexSlot{};
    std::uint32_t next = (slot + 1) & _indexMask;
    while (_lineIndex[next].entry != kEmptySlot) {
        const IndexSlot moved = _lineIndex[next];
        _lineIndex[next] = IndexSlot{};
        indexInsert(moved.line, moved.entry);
        next = (next + 1) & _indexMask;
    }
}

void
MshrFile::rebuildIndex()
{
    std::fill(_validMask.begin(), _validMask.end(), 0);
    std::fill(_lineIndex.begin(), _lineIndex.end(), IndexSlot{});
    for (std::uint32_t i = 0; i < _file.size(); ++i) {
        const Entry &e = _file[i];
        if (!e.valid)
            continue;
        _validMask[i / 64] |= 1ull << (i % 64);
        // The index must name the newest allocation per line, as the
        // incremental inserts would have left it.
        const std::uint32_t prev = indexFind(e.line);
        if (prev == kEmptySlot ||
            _file[prev].generation < e.generation) {
            indexInsert(e.line, i);
        }
    }
}

void
MshrFile::sweep(Cycle now)
{
    for (std::size_t w = 0; w < _validMask.size(); ++w) {
        std::uint64_t bits = _validMask[w];
        while (bits) {
            const std::uint32_t i = static_cast<std::uint32_t>(
                w * 64 + std::countr_zero(bits));
            bits &= bits - 1;
            Entry &e = _file[i];
            if (e.pinned || e.releaseCycle > now)
                continue;
            e.valid = false;
            _validMask[w] &= ~(1ull << (i % 64));
            indexErase(e.line, i);
            // Residency is a function of the entry's own timestamps,
            // not of when the lazy sweep happens to run, so resumed
            // runs sample identically.
            _residency.sample(e.releaseCycle - e.allocCycle);
            IMO_TRACE(_trace, e.releaseCycle, obs::Cat::Mshr, "mshr-free",
                      0, i, e.line);
        }
    }
}

MshrFile::Entry *
MshrFile::lookup(MshrRef ref)
{
    if (!ref.valid() || ref.index >= _file.size())
        return nullptr;
    Entry &e = _file[ref.index];
    if (!e.valid || e.generation != ref.generation)
        return nullptr;
    return &e;
}

MshrAllocResult
MshrFile::allocate(Addr line_addr, Cycle now, Cycle data_ready)
{
    sweep(now);

    MshrAllocResult result;

    // Coalesce with an outstanding miss of the same line. The merged
    // reference shares the entry; for pinned bookkeeping we count
    // references so a squash of one does not invalidate for the other.
    // The line index points at the newest valid entry per line, which
    // is the only one that can still be merge-eligible.
    if (const std::uint32_t i = indexFind(line_addr); i != kEmptySlot) {
        Entry &e = _file[i];
#ifdef IMO_PARANOID_XCHECK
        // Reference lookup: lowest-index valid merge-eligible entry.
        std::uint32_t ref = kEmptySlot;
        for (std::uint32_t j = 0; j < _file.size(); ++j) {
            const Entry &c = _file[j];
            if (c.valid && c.line == line_addr && c.dataReady > now) {
                ref = j;
                break;
            }
        }
        sim_throw_if((e.dataReady > now ? i : kEmptySlot) != ref,
                     ErrCode::Internal,
                     "xcheck: MSHR index merge entry %u != reference %u "
                     "for line %#llx", i, ref,
                     static_cast<unsigned long long>(line_addr));
#endif
        if (e.dataReady > now) {
            ++_merges;
            ++e.mergedRefs;
            result.accepted = true;
            result.merged = true;
            result.dataReady = e.dataReady;
            result.ref = MshrRef{i, e.generation};
            IMO_TRACE(_trace, now, obs::Cat::Mshr, "mshr-merge", 0, i,
                      line_addr);
            return result;
        }
    }

    // Find the first free entry (lowest index, as the linear scan did).
    for (std::size_t w = 0; w < _validMask.size(); ++w) {
        std::uint64_t free = ~_validMask[w];
        if (w == _validMask.size() - 1 && (_entries32 % 64) != 0)
            free &= (1ull << (_entries32 % 64)) - 1;
        if (!free)
            continue;
        const std::uint32_t i = static_cast<std::uint32_t>(
            w * 64 + std::countr_zero(free));
        Entry &e = _file[i];
        ++_allocations;
        e.valid = true;
        e.pinned = _extendedLifetime;
        e.line = line_addr;
        e.allocCycle = now;
        e.dataReady = data_ready;
        e.releaseCycle = data_ready + _fillCycles;
        e.mergedRefs = 1;
        e.generation = _nextGeneration++;
        _validMask[w] |= 1ull << (i % 64);
        indexInsert(line_addr, i);
        result.accepted = true;
        result.dataReady = data_ready;
        result.ref = MshrRef{i, e.generation};
        IMO_TRACE(_trace, now, obs::Cat::Mshr, "mshr-alloc", 0, i,
                  line_addr);
        return result;
    }

    // All busy: report the earliest time an entry could free up.
    ++_fullRejects;
    IMO_TRACE(_trace, now, obs::Cat::Mshr, "mshr-reject", 0, 0, line_addr);
    Cycle earliest = std::numeric_limits<Cycle>::max();
    for (const Entry &e : _file) {
        if (!e.pinned)
            earliest = std::min(earliest, e.releaseCycle);
    }
    // If everything is pinned, the caller must retry after notifying
    // graduations; a one-cycle backoff keeps the simulation moving.
    result.retryCycle =
        earliest == std::numeric_limits<Cycle>::max() ? now + 1
        : std::max(earliest, now + 1);
    return result;
}

void
MshrFile::notifyGraduated(MshrRef ref, Cycle now)
{
    Entry *e = lookup(ref);
    if (!e || !e->pinned)
        return;
    panic_if(e->mergedRefs == 0, "MSHR refcount underflow");
    if (--e->mergedRefs == 0) {
        e->pinned = false;
        e->releaseCycle = std::max(e->releaseCycle, now);
    }
}

void
MshrFile::notifySquashed(MshrRef ref, Cycle now)
{
    Entry *e = lookup(ref);
    if (!e || !e->pinned)
        return;
    panic_if(e->mergedRefs == 0, "MSHR refcount underflow");
    const bool last = --e->mergedRefs == 0;

    // Section 3.3: if the fill already completed, the speculatively
    // installed line must be invalidated before the entry is reused.
    // (If other merged references remain, the line stays: a non-squashed
    // instruction legitimately demanded it.)
    if (last) {
        if (e->dataReady <= now) {
            if (_invalidate)
                _invalidate(e->line);
            ++_squashInvalidations;
            IMO_TRACE(_trace, now, obs::Cat::Mshr, "mshr-squash-inval", 0,
                      ref.index, e->line);
        } else {
            IMO_TRACE(_trace, now, obs::Cat::Mshr, "mshr-squash-extend", 0,
                      ref.index, e->line);
        }
        e->pinned = false;
        e->releaseCycle = std::max(e->releaseCycle, now);
        if (e->dataReady > now) {
            // Fill still in flight; entry frees once the (now unwanted)
            // fill would have completed, and the MSHR is marked so the
            // returning data is dropped rather than forwarded.
            e->releaseCycle = e->dataReady;
        }
    }
}

std::uint32_t
MshrFile::busyEntries(Cycle now) const
{
    std::uint32_t busy = 0;
    for (const Entry &e : _file) {
        if (e.valid && (e.pinned || e.releaseCycle > now))
            ++busy;
    }
    return busy;
}

void
MshrFile::registerStats(stats::StatGroup &parent)
{
    auto &g = parent.childGroup("mshr");
    g.make<stats::Value>("allocations", "MSHR entries allocated",
                         [this] { return _allocations; });
    g.make<stats::Value>("merges", "misses coalesced onto in-flight entries",
                         [this] { return _merges; });
    g.make<stats::Value>("full_rejects", "allocations rejected (file full)",
                         [this] { return _fullRejects; });
    g.make<stats::Value>("squash_invalidations",
                         "squashed fills invalidated (section 3.3)",
                         [this] { return _squashInvalidations; });
    g.adopt(_residency);
}

void
MshrFile::save(Serializer &s) const
{
    s.u32(_entries32);
    s.u64(_nextGeneration);
    s.u64(_allocations);
    s.u64(_merges);
    s.u64(_fullRejects);
    s.u64(_squashInvalidations);
    for (const Entry &e : _file) {
        s.b(e.valid);
        s.b(e.pinned);
        s.u64(e.line);
        s.u64(e.allocCycle);
        s.u64(e.dataReady);
        s.u64(e.releaseCycle);
        s.u32(e.mergedRefs);
        s.u64(e.generation);
    }
    _residency.save(s);
}

void
MshrFile::restore(Deserializer &d)
{
    const std::uint32_t entries = d.u32();
    sim_throw_if(entries != _entries32, ErrCode::BadCheckpoint,
                 "checkpointed MSHR file has %u entries, configured file "
                 "has %u", entries, _entries32);
    _nextGeneration = d.u64();
    _allocations = d.u64();
    _merges = d.u64();
    _fullRejects = d.u64();
    _squashInvalidations = d.u64();
    for (Entry &e : _file) {
        e.valid = d.b();
        e.pinned = d.b();
        e.line = d.u64();
        e.allocCycle = d.u64();
        e.dataReady = d.u64();
        e.releaseCycle = d.u64();
        e.mergedRefs = d.u32();
        e.generation = d.u64();
    }
    rebuildIndex();
    _residency.restore(d);
}

} // namespace imo::memory
