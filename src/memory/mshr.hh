/**
 * @file
 * Miss Status Handling Registers for a lockup-free primary cache
 * [Farkas & Jouppi, ISCA'94], including the lifetime extension of the
 * paper's section 3.3:
 *
 * Normally an MSHR entry is released once the fill completes. With the
 * extended lifetime enabled, entries are held until the owning memory
 * instruction either graduates or is squashed. If it is squashed after
 * the fill already completed, the entry's address is used to invalidate
 * the speculatively filled line, so that squashed informing loads can
 * never silently install primary-cache state.
 */

#ifndef IMO_MEMORY_MSHR_HH
#define IMO_MEMORY_MSHR_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::memory
{

/** Handle to an allocated MSHR entry. */
struct MshrRef
{
    std::uint32_t index = std::numeric_limits<std::uint32_t>::max();
    std::uint64_t generation = 0;

    bool valid() const
    {
        return index != std::numeric_limits<std::uint32_t>::max();
    }
};

/** Outcome of asking the MSHR file to track a miss. */
struct MshrAllocResult
{
    bool accepted = false;     //!< false: all entries busy, retry later
    bool merged = false;       //!< true: coalesced with an existing miss
    Cycle retryCycle = 0;      //!< when rejected: earliest retry time
    Cycle dataReady = 0;       //!< when accepted: fill completion time
    MshrRef ref;               //!< handle for graduate/squash callbacks
};

/** The register file tracking outstanding primary-cache misses. */
class MshrFile
{
  public:
    /**
     * @param entries number of registers (the paper uses 8)
     * @param fill_cycles cycles the fill occupies the entry after the
     *        data is ready (Table 1 "Data Cache Fill Time")
     * @param extended_lifetime hold entries until graduate/squash
     */
    MshrFile(std::uint32_t entries, Cycle fill_cycles,
             bool extended_lifetime);

    /** Callback invoked (with the line address) when a squashed entry's
     *  completed fill must be invalidated. */
    void
    setInvalidateHook(std::function<void(Addr)> hook)
    {
        _invalidate = std::move(hook);
    }

    /**
     * Track a miss of line @p line_addr whose data will be ready at
     * @p data_ready. Merges with an in-flight miss of the same line.
     */
    MshrAllocResult allocate(Addr line_addr, Cycle now, Cycle data_ready);

    /**
     * The owning instruction graduated: the entry may be released once
     * its fill has completed. Only meaningful with extended lifetime;
     * without it this is a no-op (the entry self-releases).
     */
    void notifyGraduated(MshrRef ref, Cycle now);

    /**
     * The owning instruction was squashed. If the fill had already
     * completed, the invalidate hook fires for the entry's line.
     */
    void notifySquashed(MshrRef ref, Cycle now);

    /** @return number of entries currently in use at @p now. */
    std::uint32_t busyEntries(Cycle now) const;

    /** @return total number of entries. */
    std::uint32_t capacity() const { return _entries32; }

    bool extendedLifetime() const { return _extendedLifetime; }

    // Statistics.
    std::uint64_t allocations() const { return _allocations; }
    std::uint64_t merges() const { return _merges; }
    std::uint64_t fullRejects() const { return _fullRejects; }
    std::uint64_t squashInvalidations() const
    {
        return _squashInvalidations;
    }

    /** Entry residency (allocation to release), sampled at release. */
    const stats::Histogram &residency() const { return _residency; }

    /** Attach (or detach, with nullptr) a structured trace sink. */
    void setTraceSink(obs::TraceSink *sink) { _trace = sink; }

    /** Expose counters and the residency histogram under @p parent. */
    void registerStats(stats::StatGroup &parent);

    /**
     * Checkpoint hooks. The invalidate hook is a live callback into the
     * owning hierarchy, so it is NOT serialized — the owner must call
     * setInvalidateHook() again after restore().
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    struct Entry
    {
        bool valid = false;
        bool pinned = false;       //!< waiting for graduate/squash
        Addr line = 0;
        Cycle allocCycle = 0;      //!< when the entry was allocated
        Cycle dataReady = 0;
        Cycle releaseCycle = 0;    //!< when unpinned entries free up
        std::uint32_t mergedRefs = 0;
        std::uint64_t generation = 0;
    };

    /** Open-addressed hash slot of the line->entry index. */
    struct IndexSlot
    {
        Addr line = 0;
        std::uint32_t entry = kEmptySlot;
    };
    static constexpr std::uint32_t kEmptySlot =
        std::numeric_limits<std::uint32_t>::max();

    void sweep(Cycle now);
    Entry *lookup(MshrRef ref);

    std::uint32_t hashSlot(Addr line) const;
    void indexInsert(Addr line, std::uint32_t entry);
    std::uint32_t indexFind(Addr line) const;
    void indexErase(Addr line, std::uint32_t entry);
    void rebuildIndex();

    std::vector<Entry> _file;
    /** Bit i set iff _file[i].valid; first-free and sweep iterate this
     *  instead of scanning the whole file. */
    std::vector<std::uint64_t> _validMask;
    /**
     * line -> most recently allocated valid entry for that line
     * (linear-probing hash). At most one valid entry per line can still
     * be merge-eligible (dataReady > now) — a second allocation for the
     * line would have merged — and it is always the newest one, so a
     * single slot per line answers the coalescing lookup exactly.
     */
    std::vector<IndexSlot> _lineIndex;
    std::uint32_t _indexMask = 0;
    std::uint32_t _entries32;
    Cycle _fillCycles;
    bool _extendedLifetime;
    std::function<void(Addr)> _invalidate;
    std::uint64_t _nextGeneration = 1;

    std::uint64_t _allocations = 0;
    std::uint64_t _merges = 0;
    std::uint64_t _fullRejects = 0;
    std::uint64_t _squashInvalidations = 0;

    stats::Histogram _residency{"residency",
                                "MSHR entry residency (alloc to release), "
                                "cycles", 32, 8};
    obs::TraceSink *_trace = nullptr;
};

} // namespace imo::memory

#endif // IMO_MEMORY_MSHR_HH
