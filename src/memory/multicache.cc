#include "memory/multicache.hh"

#include <algorithm>

#include "common/error.hh"

namespace imo::memory
{


namespace
{

/** Auto-drain bound on a class queue outside capture spans. */
constexpr std::size_t drainThreshold = 65536;

/** References buffered before a batch classification pass. */
} // namespace

MultiCacheSim::L2Replay::L2Replay(const CacheGeometry &g)
    : lineShift(g.lineShift), setMask(g.setMask), assoc(g.assoc)
{
    const std::size_t slots = (setMask + 1) * assoc;
    tags.assign(slots, 0);
    times.assign(slots, 0);
    len.assign(setMask + 1, 0);
    mru.assign(setMask + 1, 0);
    mruLa.assign(setMask + 1, ~0ull);
}

bool
MultiCacheSim::L2Replay::access(Addr addr)
{
    const Addr la = addr >> lineShift;
    const std::uint64_t set = la & setMask;
    if (mruLa[set] == la)
        return true; // already the newest slot: nothing to reorder
    const std::size_t base = set * assoc;
    const std::uint32_t n = len[set];
    for (std::uint32_t i = 0; i < n; ++i) {
        if (tags[base + i] == la) {
            times[base + i] = ++clock;
            mru[set] = i;
            mruLa[set] = la;
            return true;
        }
    }
    std::uint32_t slot = n;
    if (n == assoc) {
        // Full set: evict the LRU slot (oldest timestamp).
        slot = 0;
        for (std::uint32_t i = 1; i < assoc; ++i)
            if (times[base + i] < times[base + slot])
                slot = i;
    } else {
        len[set] = n + 1;
    }
    tags[base + slot] = la;
    times[base + slot] = ++clock;
    mru[set] = slot;
    mruLa[set] = la;
    return false;
}

void
MultiCacheSim::L2Replay::fill(Addr addr)
{
    // SetAssocCache::fill: a present line is touched, an absent one
    // installs — identical recency motion to access().
    access(addr);
}

MultiCacheSim::PerConfig::PerConfig(const MultiCacheConfig &cfg)
    : l2(cfg.l2)
{
#ifdef IMO_PARANOID_XCHECK
    l2ref = std::make_unique<SetAssocCache>(cfg.l2);
#endif
}

MultiCacheSim::MultiCacheSim(std::vector<MultiCacheConfig> configs)
    : _configs(std::move(configs))
{
    sim_throw_if(_configs.empty(), ErrCode::BadConfig,
                 "multicache: config list is empty");
    for (MultiCacheConfig &c : _configs) {
        c.l1.compile();
        c.l2.compile();
    }

    // Group configs: one forest per L1 line size, one group per set
    // count within it, one class per associativity within that.
    for (std::size_t c = 0; c < _configs.size(); ++c) {
        const CacheGeometry &g = _configs[c].l1;
        std::size_t fi = 0;
        for (; fi < _forests.size(); ++fi)
            if (_forests[fi].lineShift == g.lineShift)
                break;
        if (fi == _forests.size()) {
            _forests.emplace_back();
            _forests.back().lineShift = g.lineShift;
        }
        Forest &f = _forests[fi];
        std::size_t gi = 0;
        for (; gi < f.groups.size(); ++gi)
            if (f.groups[gi].setMask == g.setMask)
                break;
        if (gi == f.groups.size()) {
            f.groups.emplace_back();
            f.groups.back().setMask = g.setMask;
        }
        Group &grp = f.groups[gi];
        std::size_t k = 0;
        for (; k < grp.assocs.size(); ++k)
            if (grp.assocs[k] == g.assoc)
                break;
        if (k == grp.assocs.size()) {
            grp.assocs.push_back(g.assoc);
            grp.cls.emplace_back();
        }
        grp.cls[k].cfgs.push_back(static_cast<std::uint32_t>(c));
        _perConfig.emplace_back(_configs[c]);
    }

    _locs.resize(_configs.size());
    std::size_t max_assoc = 1;
    for (std::size_t fi = 0; fi < _forests.size(); ++fi) {
        Forest &f = _forests[fi];
        for (std::size_t gi = 0; gi < f.groups.size(); ++gi) {
            Group &g = f.groups[gi];

            // Sort classes ascending by associativity so the miss
            // predicate "assoc <= stack rank" is a prefix.
            std::vector<std::size_t> order(g.assocs.size());
            for (std::size_t k = 0; k < order.size(); ++k)
                order[k] = k;
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          return g.assocs[a] < g.assocs[b];
                      });
            std::vector<std::uint32_t> assocs;
            std::vector<ClassState> cls;
            for (const std::size_t k : order) {
                assocs.push_back(g.assocs[k]);
                cls.push_back(std::move(g.cls[k]));
            }
            g.assocs = std::move(assocs);
            g.cls = std::move(cls);

            for (std::size_t k = 0; k < g.cls.size(); ++k) {
                for (const std::uint32_t c : g.cls[k].cfgs)
                    _locs[c] = CfgLoc{static_cast<std::uint32_t>(fi),
                                      static_cast<std::uint32_t>(gi),
                                      static_cast<std::uint32_t>(k)};
#ifdef IMO_PARANOID_XCHECK
                g.cls[k].l1ref = std::make_unique<SetAssocCache>(
                    _configs[g.cls[k].cfgs.front()].l1);
#endif
            }

            g.maxAssoc = g.assocs.back();
            sim_throw_if(g.maxAssoc > 255, ErrCode::BadConfig,
                         "multicache: associativity %u exceeds the "
                         "engine limit of 255",
                         g.maxAssoc);
            sim_throw_if(g.cls.size() > 64, ErrCode::BadConfig,
                         "multicache: more than 64 associativities "
                         "share one (line size, set count) group");
            const std::size_t slots = (g.setMask + 1) * g.maxAssoc;
            g.slots.assign(slots, Group::Slot{});
            g.sets.assign(g.setMask + 1, Group::SetHdr{});
            g.mruLa.assign(g.setMask + 1, ~0ull);
            g.lastW.assign(slots, 0);
            g.fills.assign(slots * g.assocs.size(), 0);
            max_assoc = std::max<std::size_t>(max_assoc, g.maxAssoc);
        }
    }

    _orderTmp.resize(max_assoc);
    _batchAddr.reserve(batchCapacity);
    _batchFlags.reserve(batchCapacity);
}

void
MultiCacheSim::drainGroup(Group &g, bool patch)
{
    if (g.queue.empty())
        return;
    // Replay the group's deferred L2 operations one config's L2 at a
    // time: the burst keeps that L2's tag array hot instead of
    // interleaving every config's tags access by access. Class k
    // replays the demand entries with kMiss > k and every prefetch.
    for (std::size_t k = 0; k < g.cls.size(); ++k) {
        ClassState &cs = g.cls[k];
        for (std::size_t ci = 0; ci < cs.cfgs.size(); ++ci) {
            const std::uint32_t c = cs.cfgs[ci];
            PerConfig &pc = _perConfig[c];
            std::size_t wb = 0; // cls[k].wbVictims cursor
            std::size_t mi = 0; // wbMasks cursor
            std::uint64_t demand = 0;
            for (const Event &e : g.queue) {
                std::uint64_t mask = 0;
                if (e.flags & flagWb)
                    mask = g.wbMasks[mi++];
                if (e.flags & flagPrefetch) {
                    // Dirty L1 victims land in L2 before the fill,
                    // exactly as FunctionalHierarchy::prefetch.
                    if ((mask >> k) & 1) {
                        const Addr victim = cs.wbVictims[wb++];
                        pc.l2.access(victim);
#ifdef IMO_PARANOID_XCHECK
                        pc.l2ref->access(victim, true);
#endif
                    }
                    pc.l2.fill(e.addr);
#ifdef IMO_PARANOID_XCHECK
                    pc.l2ref->fill(e.addr);
#endif
                    continue;
                }
                if (e.kMiss <= k)
                    continue; // this class hit: no L2 work
                ++demand;
                if ((mask >> k) & 1) {
                    const Addr victim = cs.wbVictims[wb++];
                    pc.l2.access(victim);
#ifdef IMO_PARANOID_XCHECK
                    pc.l2ref->access(victim, true);
#endif
                }
                const bool hit = pc.l2.access(e.addr);
#ifdef IMO_PARANOID_XCHECK
                sim_throw_if(
                    pc.l2ref->access(e.addr, e.flags & flagWrite)
                            .hit != hit,
                    ErrCode::Internal,
                    "xcheck: L2 replay disagrees with SetAssocCache "
                    "(config %u, addr %#llx)",
                    c, static_cast<unsigned long long>(e.addr));
#endif
                if (!hit)
                    ++pc.l2Misses;
                if (patch && e.logPos != noLog)
                    pc.log[e.logPos] = static_cast<std::uint8_t>(
                        hit ? MemLevel::L2 : MemLevel::Memory);
            }
            if (ci == 0)
                cs.misses += demand;
        }
        cs.wbVictims.clear();
    }
    g.queue.clear();
    g.wbMasks.clear();
}

void
MultiCacheSim::handleAccess(Group &g, std::uint32_t lineShift,
                            Addr addr, bool is_write,
                            std::uint64_t epoch)
{
    const Addr la = addr >> lineShift;
    const std::size_t nk = g.assocs.size();
    const std::uint64_t set = la & g.setMask;
    Group::SetHdr &hdr = g.sets[set];
    const std::uint32_t A = g.maxAssoc;
    const std::size_t base = set * A;
    if (is_write)
        g.anyWrite = true;

#ifndef IMO_PARANOID_XCHECK
    if (g.mruLa[set] == la) {
        // Way-memoization fast path: the set's most recent line hits
        // in every class of the group, and it is already the newest
        // slot, so recency state needs no update at all — one tag
        // compare resolves the whole group.
        if (is_write)
            g.lastW[base + hdr.mru] = epoch;
        if (_capturing) {
            for (std::size_t k = 0; k < nk; ++k)
                g.cls[k].log.push_back(
                    static_cast<std::uint8_t>(MemLevel::L1));
        }
        return;
    }
#endif

    Group::Slot *const sl = g.slots.data() + base;
    const std::uint32_t len = hdr.len;

    // Scan the set's live slots. A line's stack rank is the number of
    // newer slots, so class assoc-A hits iff rank < A; on a miss its
    // victim is exactly the slot ranked assoc - 1 when the set holds
    // that many lines — otherwise the set still has invalid ways and
    // nothing is evicted. With assocs ascending, exactly the classes
    // [0, kMiss) miss; victims are ordered lazily, on misses only.
    std::uint32_t me = len;
    for (std::uint32_t i = 0; i < len; ++i) {
        if (sl[i].la == la) {
            me = i;
            break;
        }
    }
    const bool found = me < len;
    std::size_t kMiss = nk;
    std::uint32_t slot;
    if (found) {
        const std::uint64_t t = sl[me].time;
        std::uint32_t rank = 0;
        for (std::uint32_t i = 0; i < len; ++i)
            rank += sl[i].time > t;
        kMiss = 0;
        while (kMiss < nk && g.assocs[kMiss] <= rank)
            ++kMiss;
        slot = me;
        // Victim ordering is only consumed by the dirty-victim check:
        // until the first demand write everything is clean, so skip it.
        if (kMiss != 0 && g.anyWrite) {
            if (kMiss == 1 && g.assocs[0] == 1) {
                // Only a direct-mapped class misses: its victim is the
                // rank-0 slot, which is exactly the set's MRU slot.
                _orderTmp[0] = hdr.mru;
            } else {
                // Victims live among the rank newer slots; order them
                // most recent first (insertion sort, rank <= maxAssoc).
                std::uint32_t nOrder = 0;
                for (std::uint32_t i = 0; i < len; ++i) {
                    if (sl[i].time <= t)
                        continue;
                    std::uint32_t j = nOrder++;
                    while (j > 0 &&
                           sl[_orderTmp[j - 1]].time < sl[i].time) {
                        _orderTmp[j] = _orderTmp[j - 1];
                        --j;
                    }
                    _orderTmp[j] = i;
                }
            }
        }
    } else if (!g.anyWrite) {
        // All lines clean: no victim is ever observed, so only the
        // install slot matters — an invalid way, else the LRU slot.
        if (len < A) {
            slot = len;
        } else {
            std::uint32_t lru = 0;
            for (std::uint32_t i = 1; i < len; ++i)
                if (sl[i].time < sl[lru].time)
                    lru = i;
            slot = lru;
        }
    } else {
        // Every class misses and victims may be dirty; order all live
        // slots for victim lookup.
        std::uint32_t nOrder = 0;
        for (std::uint32_t i = 0; i < len; ++i) {
            std::uint32_t j = nOrder++;
            while (j > 0 && sl[_orderTmp[j - 1]].time < sl[i].time) {
                _orderTmp[j] = _orderTmp[j - 1];
                --j;
            }
            _orderTmp[j] = i;
        }
        // Full set: reuse the LRU slot, which is exactly the deepest
        // class's victim.
        slot = len < A ? len : _orderTmp[A - 1];
    }

    std::uint64_t wbMask = 0;
    if (kMiss != 0) {
        Event e;
        e.addr = addr;
        e.kMiss = static_cast<std::uint8_t>(kMiss);
        e.flags = is_write ? flagWrite : 0;
        if (g.anyWrite) {
            for (std::size_t k = 0; k < kMiss; ++k) {
                const std::uint32_t assoc = g.assocs[k];
                if (found || len >= assoc) {
                    // A valid victim is replaced (found implies
                    // rank >= assoc here, so enough newer slots exist
                    // either way). A zero lastW means the line was
                    // never written: clean.
                    const std::size_t v = base + _orderTmp[assoc - 1];
                    if (g.lastW[v] != 0 &&
                        g.lastW[v] >= g.fills[v * nk + k]) {
                        wbMask |= 1ull << k;
                        g.cls[k].wbVictims.push_back(g.slots[v].la
                                                     << lineShift);
                    }
                }
            }
        }
        if (wbMask != 0) {
            e.flags |= flagWb;
            g.wbMasks.push_back(wbMask);
        }
        if (_capturing)
            e.logPos =
                static_cast<std::uint32_t>(g.cls[0].log.size());
        g.queue.push_back(e);
        if (!_capturing && g.queue.size() >= drainThreshold)
            drainGroup(g, false); // bound queue memory on long gaps
    }
    if (_capturing) {
        // Every class log grows by one byte per demand access, so a
        // log position is class-invariant: misses hold a placeholder
        // for the drain to patch, hits are final.
        for (std::size_t k = 0; k < kMiss; ++k)
            g.cls[k].log.push_back(
                static_cast<std::uint8_t>(MemLevel::Memory));
        for (std::size_t k = kMiss; k < nk; ++k)
            g.cls[k].log.push_back(
                static_cast<std::uint8_t>(MemLevel::L1));
    }
#ifdef IMO_PARANOID_XCHECK
    for (std::size_t k = 0; k < nk; ++k) {
        ClassState &cs = g.cls[k];
        const CacheAccessResult ref = cs.l1ref->access(addr, is_write);
        if (k < kMiss) {
            const bool engine_wb = ((wbMask >> k) & 1) != 0;
            sim_throw_if(ref.hit, ErrCode::Internal,
                         "xcheck: multicache miss but SetAssocCache "
                         "hit (assoc %u, addr %#llx)",
                         g.assocs[k],
                         static_cast<unsigned long long>(addr));
            sim_throw_if(
                ref.writeback.has_value() != engine_wb ||
                    (engine_wb &&
                     *ref.writeback != cs.wbVictims.back()),
                ErrCode::Internal,
                "xcheck: multicache writeback disagrees with "
                "SetAssocCache (assoc %u, addr %#llx)",
                g.assocs[k], static_cast<unsigned long long>(addr));
        } else {
            sim_throw_if(!ref.hit || ref.writeback.has_value(),
                         ErrCode::Internal,
                         "xcheck: multicache hit but SetAssocCache "
                         "missed (assoc %u, addr %#llx)",
                         g.assocs[k],
                         static_cast<unsigned long long>(addr));
        }
    }
#endif

    // Install (or restamp) the line; nothing else moves.
    sl[slot].la = la;
    sl[slot].time = epoch;
    if (g.anyWrite) {
        if (found) {
            if (is_write)
                g.lastW[base + slot] = epoch;
        } else {
            g.lastW[base + slot] = is_write ? epoch : 0;
        }
        for (std::size_t k = 0; k < kMiss; ++k)
            g.fills[(base + slot) * nk + k] = epoch;
    }
    if (!found && len < A)
        hdr.len = static_cast<std::uint8_t>(len + 1);
    hdr.mru = static_cast<std::uint8_t>(slot);
    g.mruLa[set] = la;
}

void
MultiCacheSim::handlePrefetch(Group &g, std::uint32_t lineShift,
                              Addr addr, std::uint64_t epoch)
{
    const Addr la = addr >> lineShift;
    const std::size_t nk = g.assocs.size();
    const std::uint64_t set = la & g.setMask;
    Group::SetHdr &hdr = g.sets[set];
    const std::uint32_t A = g.maxAssoc;
    const std::size_t base = set * A;
    Group::Slot *const sl = g.slots.data() + base;
    const std::uint32_t len = hdr.len;

    std::uint32_t me = len;
    for (std::uint32_t i = 0; i < len; ++i) {
        if (sl[i].la == la) {
            me = i;
            break;
        }
    }
    const bool found = me < len;
    std::size_t kMiss = nk;
    std::uint32_t slot;
    if (found) {
        const std::uint64_t t = sl[me].time;
        std::uint32_t rank = 0;
        for (std::uint32_t i = 0; i < len; ++i)
            rank += sl[i].time > t;
        kMiss = 0;
        while (kMiss < nk && g.assocs[kMiss] <= rank)
            ++kMiss;
        slot = me;
        if (kMiss != 0 && g.anyWrite) {
            std::uint32_t nOrder = 0;
            for (std::uint32_t i = 0; i < len; ++i) {
                if (sl[i].time <= t)
                    continue;
                std::uint32_t j = nOrder++;
                while (j > 0 &&
                       sl[_orderTmp[j - 1]].time < sl[i].time) {
                    _orderTmp[j] = _orderTmp[j - 1];
                    --j;
                }
                _orderTmp[j] = i;
            }
        }
    } else if (!g.anyWrite) {
        if (len < A) {
            slot = len;
        } else {
            std::uint32_t lru = 0;
            for (std::uint32_t i = 1; i < len; ++i)
                if (sl[i].time < sl[lru].time)
                    lru = i;
            slot = lru;
        }
    } else {
        std::uint32_t nOrder = 0;
        for (std::uint32_t i = 0; i < len; ++i) {
            std::uint32_t j = nOrder++;
            while (j > 0 && sl[_orderTmp[j - 1]].time < sl[i].time) {
                _orderTmp[j] = _orderTmp[j - 1];
                --j;
            }
            _orderTmp[j] = i;
        }
        slot = len < A ? len : _orderTmp[A - 1];
    }

    // FunctionalHierarchy::prefetch: L1 fill (dirty victim to L2 as a
    // write), then an L2 fill — always, even when L1 already holds the
    // line, so the event reaches every class. Prefetches never appear
    // in the capture log.
    Event e;
    e.addr = addr;
    e.kMiss = static_cast<std::uint8_t>(kMiss);
    e.flags = flagPrefetch;
    std::uint64_t wbMask = 0;
    if (g.anyWrite) {
        for (std::size_t k = 0; k < kMiss; ++k) {
            const std::uint32_t assoc = g.assocs[k];
            if (found || len >= assoc) {
                const std::size_t v = base + _orderTmp[assoc - 1];
                if (g.lastW[v] != 0 &&
                    g.lastW[v] >= g.fills[v * nk + k]) {
                    wbMask |= 1ull << k;
                    g.cls[k].wbVictims.push_back(g.slots[v].la
                                                 << lineShift);
                }
            }
        }
    }
    if (wbMask != 0) {
        e.flags |= flagWb;
        g.wbMasks.push_back(wbMask);
    }
    g.queue.push_back(e);
    if (!_capturing && g.queue.size() >= drainThreshold)
        drainGroup(g, false);
#ifdef IMO_PARANOID_XCHECK
    for (std::size_t k = 0; k < nk; ++k) {
        ClassState &cs = g.cls[k];
        const std::optional<Addr> wb = cs.l1ref->fill(addr);
        const bool engine_wb = ((wbMask >> k) & 1) != 0;
        sim_throw_if(wb.has_value() != engine_wb ||
                         (engine_wb && *wb != cs.wbVictims.back()),
                     ErrCode::Internal,
                     "xcheck: multicache prefetch fill disagrees with "
                     "SetAssocCache (assoc %u, addr %#llx)",
                     g.assocs[k],
                     static_cast<unsigned long long>(addr));
    }
#endif

    // The prefetched line installs clean: no lastWrite stamp on
    // insertion, and an L1-resident line keeps its dirtiness.
    sl[slot].la = la;
    sl[slot].time = epoch;
    if (g.anyWrite) {
        if (!found)
            g.lastW[base + slot] = 0;
        for (std::size_t k = 0; k < kMiss; ++k)
            g.fills[(base + slot) * nk + k] = epoch;
    }
    if (!found && len < A)
        hdr.len = static_cast<std::uint8_t>(len + 1);
    hdr.mru = static_cast<std::uint8_t>(slot);
    g.mruLa[set] = la;
}

void
MultiCacheSim::flushBatch()
{
    const std::size_t n = _batchAddr.size();
    const Addr *const addrs = _batchAddr.data();
    const std::uint8_t *const flags = _batchFlags.data();
    for (Forest &f : _forests) {
        const std::uint32_t shift = f.lineShift;
        for (Group &g : f.groups) {
#ifndef IMO_PARANOID_XCHECK
            if (!_capturing) {
                // Hot loop: the way-memoization fast path is resolved
                // inline — one tag compare per reference — and only
                // non-MRU references (and writes, prefetches) reach
                // the full classifier. A batch with no writes or
                // prefetches skips the flags load entirely.
                const std::uint64_t mask = g.setMask;
                const Addr *const mru = g.mruLa.data();
                if (_batchPlain) {
                    for (std::size_t i = 0; i < n; ++i) {
                        const Addr la = addrs[i] >> shift;
                        if (mru[la & mask] == la) [[likely]]
                            continue; // MRU repeat: hits everywhere
                        handleAccess(g, shift, addrs[i], false,
                                     _epochBase + i);
                    }
                    continue;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    const Addr la = addrs[i] >> shift;
                    if (mru[la & mask] == la && flags[i] == 0)
                        [[likely]]
                        continue; // MRU repeat: hits in every class
                    if (flags[i] & flagPrefetch)
                        handlePrefetch(g, shift, addrs[i],
                                       _epochBase + i);
                    else
                        handleAccess(g, shift, addrs[i],
                                     flags[i] & flagWrite,
                                     _epochBase + i);
                }
                continue;
            }
#endif
            for (std::size_t i = 0; i < n; ++i) {
                if (flags[i] & flagPrefetch)
                    handlePrefetch(g, shift, addrs[i], _epochBase + i);
                else
                    handleAccess(g, shift, addrs[i],
                                 flags[i] & flagWrite, _epochBase + i);
            }
        }
    }
    _epochBase += n;
    _batchAddr.clear();
    _batchFlags.clear();
    _batchPlain = true;
}

void
MultiCacheSim::beginCapture()
{
    flushBatch(); // gap references precede the span
    for (Forest &f : _forests)
        for (Group &g : f.groups)
            for (ClassState &cs : g.cls)
                cs.log.clear();
    _capturing = true;
}

void
MultiCacheSim::endCapture()
{
    flushBatch();
    // Materialize each config's level log from its class's template
    // (pending misses hold a placeholder), then let the drain patch in
    // the per-config L2 outcomes.
    for (Forest &f : _forests) {
        for (Group &g : f.groups) {
            for (std::size_t k = 0; k < g.cls.size(); ++k)
                for (const std::uint32_t c : g.cls[k].cfgs)
                    _perConfig[c].log = g.cls[k].log;
            drainGroup(g, true);
        }
    }
    _capturing = false;
}

void
MultiCacheSim::sync()
{
    sim_throw_if(_capturing, ErrCode::Internal,
                 "multicache: sync() inside a capture span "
                 "(use endCapture())");
    flushBatch();
    for (Forest &f : _forests)
        for (Group &g : f.groups)
            drainGroup(g, false);
}

} // namespace imo::memory
