/**
 * @file
 * Multi-configuration cache simulation: classify one reference stream
 * against many cache geometries in a single pass.
 *
 * The engine exploits the LRU stack-inclusion property (Mattson et
 * al.): the contents of an A-way LRU set are exactly the A most
 * recently touched distinct lines mapping to that set, so every
 * associativity sharing one set mapping can be read off a single
 * per-set recency stack. Configurations are grouped into one *forest*
 * per line size and, inside a forest, one *group* per set count; a
 * group keeps per-set timestamp-LRU state, truncated at the group's
 * largest associativity (deeper entries are evicted from every class).
 * A set is a small contiguous array of slots stamped with their last
 * access epoch; a line's stack rank is the count of newer slots, so
 * recency motion is one timestamp store and nothing ever shifts. One
 * scan of the accessed set — at most maxAssoc entries, no hash
 * lookups — resolves hit/miss for every associativity in the group at
 * once: class assoc-A hits iff fewer than A slots are newer, and
 * otherwise evicts exactly the slot ranked A - 1, recovered by
 * ordering the newer slots lazily (misses only). The Ishihara &
 * Fallah way-memoization observation gives the fast path: a re-access
 * of the set's most recent slot hits in every class of the group and
 * needs no scan at all. References are buffered and classified in
 * batches, one group at a time, so a group's arrays stay cache-hot
 * across the whole batch instead of every group's arrays thrashing
 * each other reference by reference.
 *
 * Each configuration additionally owns a dedicated L2 SetAssocCache:
 * L2 contents depend on the per-config L1 miss/writeback stream, so
 * they cannot be shared — but they never feed back into the L1
 * classification, so the engine defers them. Every L1 miss (and
 * prefetch fill) appends one event to its config's queue, and queues
 * drain in bursts — at capture boundaries, at sync(), or when a queue
 * fills — so each config's L2 tag array is walked with hot caches
 * instead of 24 arrays thrashing each other access by access. The
 * per-reference outcome (L1 / L2 / Memory) reproduces
 * FunctionalHierarchy::access byte-for-byte, including dirty-victim
 * writeback ordering; dirtiness is tracked with a per-line last-write
 * epoch against a per-(line, class) fill epoch. Because L2 outcomes
 * surface only at drain points, per-reference levels are read through
 * capture spans (beginCapture()/endCapture()/capturedLevels()) —
 * exactly the shape the sampler's window replay needs.
 *
 * Invalidation is deliberately unsupported: stack inclusion holds only
 * for pure access/prefetch streams, which is exactly what the sweep's
 * functional reference stream is (the executor never invalidates
 * outside the coherence machine). The IMO_PARANOID_XCHECK build replays
 * every classification against a dedicated SetAssocCache per config and
 * throws ErrCode::Internal on any divergence.
 */

#ifndef IMO_MEMORY_MULTICACHE_HH
#define IMO_MEMORY_MULTICACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "memory/cache.hh"
#include "memory/geometry.hh"

namespace imo::memory
{

/** One (L1, L2) geometry pair evaluated by the engine. */
struct MultiCacheConfig
{
    CacheGeometry l1;
    CacheGeometry l2;
};

/** Single-pass hit/miss classifier for many cache configurations. */
class MultiCacheSim
{
  public:
    /**
     * @param configs the geometries to evaluate. Each is validated
     * (power-of-two line sizes and set counts, associativity >= 1);
     * throws SimException(BadConfig) otherwise. Configs sharing an L1
     * shape share all stack bookkeeping automatically.
     */
    explicit MultiCacheSim(std::vector<MultiCacheConfig> configs);

    /** Classify one demand reference for every config. */
    void
    access(Addr addr, bool is_write)
    {
        ++_accesses;
        _batchAddr.push_back(addr);
        _batchFlags.push_back(is_write ? flagWrite
                                       : std::uint8_t{0});
        if (is_write)
            _batchPlain = false;
        if (_batchAddr.size() >= batchCapacity)
            flushBatch();
    }

    /** Software prefetch: pull the line into both levels of every
     *  config (FunctionalHierarchy::prefetch semantics). */
    void
    prefetch(Addr addr)
    {
        ++_prefetches;
        _batchAddr.push_back(addr);
        _batchFlags.push_back(flagPrefetch);
        _batchPlain = false;
        if (_batchAddr.size() >= batchCapacity)
            flushBatch();
    }

    /** Start recording per-config service levels of every demand
     *  reference (one byte per access, MemLevel). Restarts discard the
     *  previous span's logs. */
    void beginCapture();

    /** Stop recording and drain the deferred L2 work so the captured
     *  logs hold final L1/L2/Memory levels. */
    void endCapture();

    /** Config @p c's level log of the last capture span: one MemLevel
     *  per demand access, in stream order. Valid after endCapture(),
     *  until the next beginCapture(). */
    const std::vector<std::uint8_t> &capturedLevels(std::size_t c) const
    {
        return _perConfig[c].log;
    }

    /** Drain all deferred L2 work (l2Misses() is exact afterwards). */
    void sync();

    std::size_t numConfigs() const { return _configs.size(); }
    const MultiCacheConfig &config(std::size_t c) const
    {
        return _configs[c];
    }

    /** Demand references classified so far (the stream length). */
    std::uint64_t accesses() const { return _accesses; }
    std::uint64_t prefetches() const { return _prefetches; }

    /** Demand L1 misses of config @p c — matches the l1Misses counter
     *  a dedicated FunctionalHierarchy run would report. Exact only
     *  after sync() or endCapture() (references are batch-buffered). */
    std::uint64_t l1Misses(std::size_t c) const
    {
        const CfgLoc &loc = _locs[c];
        return _forests[loc.forest]
            .groups[loc.group]
            .cls[loc.cls]
            .misses;
    }

    /** Demand references of config @p c serviced by main memory.
     *  Exact only after sync() or endCapture() (L2 work is deferred). */
    std::uint64_t l2Misses(std::size_t c) const
    {
        return _perConfig[c].l2Misses;
    }

  private:
    /** One deferred L2 operation of a group, in stream order. One
     *  entry serves every class: class k missed iff k < kMiss (the
     *  monotone hit property), and prefetches reach every class's L2.
     *  Dirty-victim addresses (rare) live in per-class side queues,
     *  keyed by a per-event class bitmask in a side queue of its own,
     *  so the common event stays 16 bytes. */
    struct Event
    {
        Addr addr = 0; //!< demand address, or prefetched address
        std::uint32_t logPos = noLog; //!< capture-log slot to patch
        std::uint8_t kMiss = 0; //!< classes [0, kMiss) missed
        std::uint8_t flags = 0;
    };
    static constexpr std::uint32_t noLog = ~0u;
    static constexpr std::uint8_t flagWrite = 1;    //!< demand write
    static constexpr std::uint8_t flagPrefetch = 2; //!< L2 fill, no log

    /** Buffered references per classification batch: large enough to
     *  amortize the per-group pass setup, small enough to stay L1/L2
     *  resident alongside the group arrays. */
    static constexpr std::size_t batchCapacity = 4096;
    static constexpr std::uint8_t flagWb = 4; //!< wbMask entry present

    /** One associativity within a group. All per-access bookkeeping —
     *  miss counter, deferred L2 events, capture log — is per class,
     *  never per config: a class's L1 behaviour is identical for every
     *  config that shares it, so per-config state (the L2) is only
     *  touched when the class's queue drains. */
    struct ClassState
    {
        std::uint64_t misses = 0;      //!< demand L1 misses
        std::vector<Addr> wbVictims;   //!< dirty victims, queue order
        std::vector<std::uint8_t> log; //!< capture-span level template
        std::vector<std::uint32_t> cfgs; //!< configs of this class
#ifdef IMO_PARANOID_XCHECK
        std::unique_ptr<SetAssocCache> l1ref; //!< dedicated replay
#endif
    };

    /** All classes sharing one (line size, set count): per-set
     *  timestamp-LRU state serves every associativity in the group
     *  from one scan. Set s owns slots [s * maxAssoc,
     *  (s + 1) * maxAssoc); slots [0, len) are live and unordered —
     *  a line's stack rank is the number of slots with a newer
     *  last-access time, so nothing ever shifts. assocs is sorted
     *  ascending, so classes [0, kMiss) miss and [kMiss, n) hit,
     *  where kMiss is the first assoc > rank: the per-access loop
     *  touches missing classes only, and victims (the slot ranked
     *  exactly assoc - 1) are ordered lazily, only on misses. */
    struct Group
    {
        std::uint64_t setMask = 0;  //!< numSets - 1
        std::uint32_t maxAssoc = 1; //!< deepest class
        std::vector<std::uint32_t> assocs; //!< ascending, one per class
        std::vector<ClassState> cls;
        std::vector<Event> queue; //!< deferred L2 ops, all classes
        /** Per flagWb event, in queue order: bit k set = class k
         *  evicted a dirty victim (next entry of cls[k].wbVictims). */
        std::vector<std::uint64_t> wbMasks;

        /** One line of one set: tag and last-access epoch interleave
         *  so the scan and the install touch the same cache lines. */
        struct Slot
        {
            Addr la = 0;
            std::uint64_t time = 0;
        };
        /** Per-set slot bookkeeping (mru = most recent slot, len =
         *  live slots), kept apart from mruLa so the fast-path probe
         *  array stays as small — as cache-resident — as possible. */
        struct SetHdr
        {
            std::uint8_t mru = 0; //!< most recent slot
            std::uint8_t len = 0; //!< live slots
        };
        std::vector<Slot> slots; //!< set-major, maxAssoc per set
        std::vector<SetHdr> sets;
        /** Line address of each set's most recent slot (~0 = none):
         *  one tag compare resolves the all-hit fast path, and a
         *  repeated MRU hit updates nothing — the line is already
         *  newest, so leaving its timestamp stale reorders no slot. */
        std::vector<Addr> mruLa;
        std::vector<std::uint64_t> lastW; //!< last demand-write epoch
        /** fill epoch of slot p in class k: fills[p * assocs.size()
         *  + k]; 0 = never filled (or filled clean at epoch 0). */
        std::vector<std::uint64_t> fills;
        /** False until the group's first demand write: read-only
         *  streams skip every dirty-tracking load and store (nothing
         *  can be dirty while all lastW are zero, and once writes
         *  start, a zero fill epoch only pairs with a line whose
         *  lastW correctly decides dirtiness). */
        bool anyWrite = false;
    };

    /** All groups sharing one line size. */
    struct Forest
    {
        std::uint32_t lineShift = 0;
        std::vector<Group> groups;
    };

    /** Where config c's L1 class lives: forest, group, class index. */
    struct CfgLoc
    {
        std::uint32_t forest = 0;
        std::uint32_t group = 0;
        std::uint32_t cls = 0;
    };

    /**
     * Minimal L2 tag store for queue replay: timestamp LRU with the
     * same one-tag-compare MRU fast path as the groups. Content and
     * recency order — hence every future hit/miss — track
     * SetAssocCache::access/fill exactly (victim = invalid way first,
     * else LRU), but dirty state is not kept: L2 victims are never
     * observable through the engine, so writeback bookkeeping would be
     * dead weight on the drain path.
     */
    struct L2Replay
    {
        std::uint32_t lineShift = 0;
        std::uint64_t setMask = 0;
        std::uint32_t assoc = 1;
        std::vector<Addr> tags; //!< line addr per slot; [0, len) live
        std::vector<std::uint64_t> times;
        std::vector<std::uint32_t> len;
        std::vector<std::uint32_t> mru;
        std::vector<Addr> mruLa; //!< ~0 = none
        std::uint64_t clock = 0;

        explicit L2Replay(const CacheGeometry &g);
        bool access(Addr addr); //!< @return hit; allocates on miss
        void fill(Addr addr);   //!< prefetch install / recency touch
    };

    struct PerConfig
    {
        L2Replay l2;
        std::uint64_t l2Misses = 0;
        std::vector<std::uint8_t> log; //!< finalized capture levels
#ifdef IMO_PARANOID_XCHECK
        std::unique_ptr<SetAssocCache> l2ref; //!< dedicated replay
#endif
        explicit PerConfig(const MultiCacheConfig &cfg);
    };


    /** Classify one reference against every class of @p g, enqueue L2
     *  work for the missing classes, update the recency stack. */
    void handleAccess(Group &g, std::uint32_t lineShift, Addr addr,
                      bool is_write, std::uint64_t epoch);
    void handlePrefetch(Group &g, std::uint32_t lineShift, Addr addr,
                        std::uint64_t epoch);

    /** Classify every buffered reference, one group at a time, so a
     *  group's arrays stay cache-hot across the whole batch. */
    void flushBatch();

    /** Replay @p g's queued L2 operations into every config of every
     *  class; patch config logs when @p patch. */
    void drainGroup(Group &g, bool patch);

    std::vector<MultiCacheConfig> _configs;
    std::vector<Forest> _forests;
    std::vector<CfgLoc> _locs;
    std::vector<PerConfig> _perConfig;
    /** Buffered references awaiting batch classification (parallel
     *  arrays: the classification loop streams addresses and only the
     *  dispatch consults flags). */
    std::vector<Addr> _batchAddr;
    std::vector<std::uint8_t> _batchFlags; //!< flagWrite / flagPrefetch
    bool _batchPlain = true; //!< no write or prefetch in the batch
    bool _capturing = false;
    std::uint64_t _epochBase = 1; //!< epoch of _batch[0]
    std::uint64_t _accesses = 0;
    std::uint64_t _prefetches = 0;

    /** Scratch for ordering a set's slots by recency on a miss;
     *  sized to the largest group's maxAssoc. */
    std::vector<std::uint32_t> _orderTmp;
};

} // namespace imo::memory

#endif // IMO_MEMORY_MULTICACHE_HH
