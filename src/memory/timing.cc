#include "memory/timing.hh"

#include <algorithm>
#include <bit>

#include "common/checkpoint.hh"
#include "common/error.hh"

namespace imo::memory
{

TimingMemorySystem::TimingMemorySystem(const TimingMemoryParams &params)
    : _params(params),
      _mshrs(params.mshrs, params.fillCycles, params.extendedMshrLifetime),
      _bankFree(params.banks, 0)
{
    sim_throw_if(params.banks == 0, ErrCode::BadConfig,
                 "memory system needs at least one bank");
    sim_throw_if(params.lineBytes == 0 ||
                 (params.lineBytes & (params.lineBytes - 1)),
                 ErrCode::BadConfig,
                 "line size must be a power of two");
    _lineShift = std::countr_zero(params.lineBytes);
    _banksPow2 = std::has_single_bit(params.banks);
    _bankMask = params.banks - 1;
}

std::uint32_t
TimingMemorySystem::bankOf(Addr addr) const
{
    const Addr line = addr >> _lineShift;
    std::uint32_t bank;
    if (_banksPow2) [[likely]]
        bank = static_cast<std::uint32_t>(line & _bankMask);
    else
        bank = static_cast<std::uint32_t>(line % _params.banks);
#ifdef IMO_PARANOID_XCHECK
    const std::uint32_t ref = static_cast<std::uint32_t>(
        (addr / _params.lineBytes) % _bankFree.size());
    sim_throw_if(ref != bank, ErrCode::Internal,
                 "xcheck: fast bank %u != reference bank %u for %#llx",
                 bank, ref, static_cast<unsigned long long>(addr));
#endif
    return bank;
}

MemRequestResult
TimingMemorySystem::request(Addr addr, MemLevel level, Cycle now)
{
    MemRequestResult result;

    // Primary-cache bank port: one access per bank per cycle.
    const std::uint32_t bank = bankOf(addr);
    if (_bankFree[bank] > now) {
        ++_bankConflicts;
        result.retryCycle = _bankFree[bank];
        IMO_TRACE(_trace, now, obs::Cat::Mem, "bank-conflict", 0, addr,
                  bank);
        return result;
    }

    if (level == MemLevel::L1) {
        _bankFree[bank] = now + 1;
        result.accepted = true;
        result.dataReady = now + _params.l1HitLatency;
        IMO_TRACE(_trace, now, obs::Cat::Mem, "hit", 0, addr, bank);
        return result;
    }

    // Fault-injection points on the miss path. HardFault propagates a
    // structured error straight out of the timing model;
    // MshrExhaustion refuses this allocation attempt (the pipeline
    // retries, drawing afresh each cycle).
    if (_faults && _faults->enabled()) {
        if (_faults->fire(FaultPoint::HardFault)) {
            throwSimError(ErrCode::FaultInjected,
                          "injected hard fault on %s miss to %#llx at "
                          "cycle %llu", memLevelName(level),
                          static_cast<unsigned long long>(addr),
                          static_cast<unsigned long long>(now));
        }
        if (_faults->fire(FaultPoint::MshrExhaustion)) {
            ++_injectedRejects;
            result.retryCycle = now + 1;
            return result;
        }
    }

    // Miss: the fill completion time depends on the servicing level.
    // Main-memory requests additionally contend for memory bandwidth
    // (one access may begin per memBandwidth cycles).
    Cycle begin = now;
    Cycle data_ready;
    if (level == MemLevel::L2) {
        data_ready = now + _params.l2Latency;
    } else {
        begin = std::max(now, _nextMemSlot);
        data_ready = begin + _params.memLatency;
    }

    if (_faults && _faults->enabled()) {
        if (_faults->fire(FaultPoint::MemLatencySpike))
            data_ready += _faults->schedule().spikeCycles;
        if (_faults->fire(FaultPoint::StuckFill))
            data_ready += _faults->schedule().stuckCycles;
    }

    const Addr line = addr & ~static_cast<Addr>(_params.lineBytes - 1);
    const MshrAllocResult alloc = _mshrs.allocate(line, now, data_ready);
    if (!alloc.accepted) {
        result.retryCycle = alloc.retryCycle;
        return result;
    }

    // Commit the memory-bandwidth slot only for a fresh (non-merged)
    // main-memory access; merged requests ride the in-flight fill.
    if (!alloc.merged && level == MemLevel::Memory) {
        _memQueueCycles += begin - now;
        _nextMemSlot = begin + _params.memBandwidth;
    }

    _bankFree[bank] = now + 1;
    result.accepted = true;
    result.dataReady = alloc.dataReady;
    result.mshr = alloc.ref;
    _missLatency.sample(alloc.dataReady - now);
    IMO_TRACE(_trace, now, obs::Cat::Mem,
              level == MemLevel::L2 ? "miss-l2" : "miss-mem", 0, addr,
              alloc.dataReady, alloc.dataReady - now);
    return result;
}

void
TimingMemorySystem::registerStats(stats::StatGroup &parent)
{
    auto &g = parent.childGroup("mem");
    g.make<stats::Value>("bank_conflicts",
                         "references rejected by a busy cache bank",
                         [this] { return _bankConflicts; });
    g.make<stats::Value>("mem_queue_cycles",
                         "cycles misses waited for memory bandwidth",
                         [this] { return _memQueueCycles; });
    g.make<stats::Value>("injected_rejects",
                         "fault-injected MSHR exhaustion rejects",
                         [this] { return _injectedRejects; });
    g.adopt(_missLatency);
    _mshrs.registerStats(g);
}

void
TimingMemorySystem::save(Serializer &s) const
{
    _mshrs.save(s);
    s.u64(_bankFree.size());
    for (const Cycle c : _bankFree)
        s.u64(c);
    s.u64(_nextMemSlot);
    s.u64(_bankConflicts);
    s.u64(_memQueueCycles);
    s.u64(_injectedRejects);
    _missLatency.save(s);
}

void
TimingMemorySystem::restore(Deserializer &d)
{
    _mshrs.restore(d);
    const std::uint64_t banks = d.u64();
    sim_throw_if(banks != _bankFree.size(), ErrCode::BadCheckpoint,
                 "checkpointed memory system has %llu banks, configured "
                 "system has %zu",
                 static_cast<unsigned long long>(banks), _bankFree.size());
    for (Cycle &c : _bankFree)
        c = d.u64();
    _nextMemSlot = d.u64();
    _bankConflicts = d.u64();
    _memQueueCycles = d.u64();
    _injectedRejects = d.u64();
    _missLatency.restore(d);
}

} // namespace imo::memory
