/**
 * @file
 * TimingMemorySystem: latency and resource model of the data-side
 * memory hierarchy used by both pipeline models.
 *
 * The hit/miss *outcome* of each reference is decided by the in-order
 * FunctionalHierarchy during functional execution (see DESIGN.md); this
 * class turns an outcome into cycles, modeling:
 *   - primary-cache banks (1 access per bank per cycle),
 *   - the lockup-free cache's MSHR file (allocation, merging, fill
 *     occupancy, optional extended lifetime per paper section 3.3),
 *   - secondary-cache and main-memory latency,
 *   - main-memory bandwidth (one access per N cycles).
 */

#ifndef IMO_MEMORY_TIMING_HH
#define IMO_MEMORY_TIMING_HH

#include <cstdint>
#include <vector>

#include "common/faultinject.hh"
#include "common/types.hh"
#include "memory/geometry.hh"
#include "memory/mshr.hh"

namespace imo::memory
{

/** Timing parameters of the data memory system (paper Table 1). */
struct TimingMemoryParams
{
    std::uint32_t lineBytes = 32;
    Cycle l1HitLatency = 2;     //!< load-to-use on a primary hit
    Cycle l2Latency = 12;       //!< primary-to-secondary miss latency
    Cycle memLatency = 75;      //!< primary-to-memory miss latency
    std::uint32_t mshrs = 8;
    std::uint32_t banks = 2;
    Cycle fillCycles = 4;       //!< data cache fill time
    Cycle memBandwidth = 20;    //!< min cycles between memory accesses
    bool extendedMshrLifetime = false;
};

/** Outcome of presenting one data reference to the memory system. */
struct MemRequestResult
{
    bool accepted = false;  //!< false: structural hazard, retry later
    Cycle retryCycle = 0;   //!< earliest useful retry when rejected
    Cycle dataReady = 0;    //!< when the value reaches the processor
    MshrRef mshr;           //!< valid for misses with extended lifetime
};

/** The shared data-side timing model. */
class TimingMemorySystem
{
  public:
    explicit TimingMemorySystem(const TimingMemoryParams &params);

    /**
     * Present a reference whose functional outcome is @p level.
     * @param addr byte address of the reference
     * @param level hierarchy level that services it (from the trace)
     * @param now cycle the cache access starts
     */
    MemRequestResult request(Addr addr, MemLevel level, Cycle now);

    /** Forward graduate/squash notifications to the MSHR file. */
    void notifyGraduated(MshrRef ref, Cycle now)
    {
        _mshrs.notifyGraduated(ref, now);
    }
    void notifySquashed(MshrRef ref, Cycle now)
    {
        _mshrs.notifySquashed(ref, now);
    }

    MshrFile &mshrFile() { return _mshrs; }
    const MshrFile &mshrFile() const { return _mshrs; }
    const TimingMemoryParams &params() const { return _params; }

    /**
     * Attach a fault injector (not owned; may be nullptr). Miss-path
     * requests then consult the MemLatencySpike / MshrExhaustion /
     * StuckFill / HardFault points.
     */
    void setFaultInjector(FaultInjector *faults) { _faults = faults; }

    /** Attach a trace sink (cache access / miss / fill events) to this
     *  system and its MSHR file. Null detaches. */
    void
    setTraceSink(obs::TraceSink *sink)
    {
        _trace = sink;
        _mshrs.setTraceSink(sink);
    }

    /** Expose counters and the miss-latency histogram (plus the MSHR
     *  file's stats) as a "mem" group under @p parent. */
    void registerStats(stats::StatGroup &parent);

    // Statistics.
    std::uint64_t bankConflicts() const { return _bankConflicts; }
    std::uint64_t memQueueCycles() const { return _memQueueCycles; }
    std::uint64_t injectedRejects() const { return _injectedRejects; }
    const stats::Histogram &missLatency() const { return _missLatency; }

    /**
     * Checkpoint hooks. The fault-injector pointer is a live attachment
     * (its own state is checkpointed by the owner); callers must
     * setFaultInjector() again after restore().
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

  private:
    std::uint32_t bankOf(Addr addr) const;

    TimingMemoryParams _params;
    std::uint32_t _lineShift = 0;   //!< log2(lineBytes); ctor enforces pow2
    std::uint32_t _bankMask = 0;    //!< banks-1 when banks is a power of two
    bool _banksPow2 = false;
    MshrFile _mshrs;
    std::vector<Cycle> _bankFree;
    Cycle _nextMemSlot = 0;
    FaultInjector *_faults = nullptr;

    std::uint64_t _bankConflicts = 0;
    std::uint64_t _memQueueCycles = 0;
    std::uint64_t _injectedRejects = 0;

    stats::Histogram _missLatency{"miss_latency",
                                  "primary-miss service latency, cycles",
                                  24, 8};
    obs::TraceSink *_trace = nullptr;
};

} // namespace imo::memory

#endif // IMO_MEMORY_TIMING_HH
