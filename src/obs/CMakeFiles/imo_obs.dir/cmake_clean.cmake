file(REMOVE_RECURSE
  "CMakeFiles/imo_obs.dir/profiler.cc.o"
  "CMakeFiles/imo_obs.dir/profiler.cc.o.d"
  "CMakeFiles/imo_obs.dir/trace.cc.o"
  "CMakeFiles/imo_obs.dir/trace.cc.o.d"
  "libimo_obs.a"
  "libimo_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
