file(REMOVE_RECURSE
  "libimo_obs.a"
)
