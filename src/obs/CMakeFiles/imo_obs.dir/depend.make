# Empty dependencies file for imo_obs.
# This may be replaced when dependencies are built.
