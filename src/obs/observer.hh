/**
 * @file
 * Observer: the bundle of observability sinks a run can be attached
 * to. A single Observer hangs off MachineConfig (like the fault
 * injector); components that see a non-null observer record trace
 * events into its TraceSink and miss attributions into its PcProfiler,
 * and simulate() captures the full stats registry (text + JSON) into
 * it when the run finishes — including on failure, so a crashed run
 * still reports what it saw.
 */

#ifndef IMO_OBS_OBSERVER_HH
#define IMO_OBS_OBSERVER_HH

#include <string>

#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace imo::obs
{

struct Observer
{
    TraceSink trace;
    PcProfiler profiler;

    /** Filled by simulate() after the run (also on failure). */
    std::string statsText;
    std::string statsJson;

    /** @return the trace sink if any category is enabled, else null —
     *  the pointer components cache for IMO_TRACE. */
    TraceSink *traceSink() { return trace.enabled() ? &trace : nullptr; }
};

} // namespace imo::obs

#endif // IMO_OBS_OBSERVER_HH
