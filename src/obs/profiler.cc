#include "obs/profiler.hh"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace imo::obs
{

const PcProfiler::Entry *
PcProfiler::lookup(InstAddr pc) const
{
    const auto it = _table.find(pc);
    return it == _table.end() ? nullptr : &it->second;
}

std::uint64_t
PcProfiler::totalMisses() const
{
    std::uint64_t n = 0;
    for (const auto &[pc, e] : _table)
        n += e.misses;
    return n;
}

std::uint64_t
PcProfiler::totalTrappedMisses() const
{
    std::uint64_t n = 0;
    for (const auto &[pc, e] : _table)
        n += e.trappedMisses;
    return n;
}

std::string
PcProfiler::report(std::size_t top_n) const
{
    std::vector<std::pair<InstAddr, Entry>> rows(_table.begin(),
                                                 _table.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        if (a.second.misses != b.second.misses)
            return a.second.misses > b.second.misses;
        return a.first < b.first;
    });
    if (rows.size() > top_n)
        rows.resize(top_n);

    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "per-PC miss profile (top %zu of %zu PCs, %llu misses)\n",
                  rows.size(), _table.size(),
                  static_cast<unsigned long long>(totalMisses()));
    out += buf;
    std::snprintf(buf, sizeof(buf), "  %8s %10s %10s %10s %12s %10s\n",
                  "pc", "misses", "trapped", "mem", "stallSlots", "avgLat");
    out += buf;
    for (const auto &[pc, e] : rows) {
        std::snprintf(buf, sizeof(buf),
                      "  %8u %10llu %10llu %10llu %12llu %10.1f\n", pc,
                      static_cast<unsigned long long>(e.misses),
                      static_cast<unsigned long long>(e.trappedMisses),
                      static_cast<unsigned long long>(e.memMisses),
                      static_cast<unsigned long long>(e.stallSlots),
                      e.avgLatency());
        out += buf;
    }
    return out;
}

} // namespace imo::obs
