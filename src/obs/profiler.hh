/**
 * @file
 * Per-PC miss profiler: the simulator-side ground truth for the
 * paper's §4 software miss-counting profiler.
 *
 * The timing models report every primary-data-cache miss with its
 * static PC, the level that eventually serviced it, its service
 * latency, whether it dispatched an informing trap, and the
 * graduation-slot stalls it was charged for. The profiler aggregates
 * these per static PC so a report can answer "which loads miss, how
 * often, and how much do they cost" — and so a test can check the
 * MRISC informing-handler profile against it exactly.
 */

#ifndef IMO_OBS_PROFILER_HH
#define IMO_OBS_PROFILER_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/types.hh"

namespace imo::obs
{

class PcProfiler
{
  public:
    struct Entry
    {
        std::uint64_t misses = 0;         //!< primary-cache misses
        std::uint64_t trappedMisses = 0;  //!< misses that dispatched a trap
        std::uint64_t memMisses = 0;      //!< serviced by main memory
        std::uint64_t stallSlots = 0;     //!< graduation slots charged
        std::uint64_t latencySum = 0;     //!< total service cycles

        double
        avgLatency() const
        {
            return misses ? static_cast<double>(latencySum) / misses : 0.0;
        }
    };

    void
    noteMiss(InstAddr pc, bool from_memory, Cycle latency, bool trapped)
    {
        Entry &e = _table[pc];
        ++e.misses;
        e.latencySum += latency;
        if (from_memory)
            ++e.memMisses;
        if (trapped)
            ++e.trappedMisses;
    }

    void
    noteStall(InstAddr pc, std::uint64_t slots)
    {
        if (slots)
            _table[pc].stallSlots += slots;
    }

    /** @return the entry for @p pc, or nullptr if it never missed. */
    const Entry *lookup(InstAddr pc) const;

    const std::unordered_map<InstAddr, Entry> &table() const
    {
        return _table;
    }

    std::uint64_t totalMisses() const;
    std::uint64_t totalTrappedMisses() const;
    bool empty() const { return _table.empty(); }
    void clear() { _table.clear(); }

    /** Human-readable top-N report, sorted by miss count (ties by PC). */
    std::string report(std::size_t top_n = 10) const;

  private:
    std::unordered_map<InstAddr, Entry> _table;
};

} // namespace imo::obs

#endif // IMO_OBS_PROFILER_HH
