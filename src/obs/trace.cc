#include "obs/trace.hh"

#include <sstream>

#include "common/stats.hh"

namespace imo::obs
{

const char *
catName(Cat c)
{
    switch (c) {
      case Cat::Fetch: return "fetch";
      case Cat::Issue: return "issue";
      case Cat::Grad: return "grad";
      case Cat::Mem: return "mem";
      case Cat::Mshr: return "mshr";
      case Cat::Trap: return "trap";
      case Cat::Coh: return "coh";
      case Cat::Sweep: return "sweep";
      case Cat::Farm: return "farm";
      case Cat::Store: return "store";
      case Cat::Net: return "net";
    }
    return "?";
}

bool
parseTraceCategories(const std::string &csv, std::uint32_t &mask,
                     std::string &err)
{
    mask = 0;
    std::stringstream ss(csv);
    std::string tok;
    bool any = false;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        any = true;
        if (tok == "all") {
            mask |= allCategories;
        } else if (tok == "fetch") {
            mask |= static_cast<std::uint32_t>(Cat::Fetch);
        } else if (tok == "issue") {
            mask |= static_cast<std::uint32_t>(Cat::Issue);
        } else if (tok == "grad") {
            mask |= static_cast<std::uint32_t>(Cat::Grad);
        } else if (tok == "mem") {
            mask |= static_cast<std::uint32_t>(Cat::Mem);
        } else if (tok == "mshr") {
            mask |= static_cast<std::uint32_t>(Cat::Mshr);
        } else if (tok == "trap") {
            mask |= static_cast<std::uint32_t>(Cat::Trap);
        } else if (tok == "coh") {
            mask |= static_cast<std::uint32_t>(Cat::Coh);
        } else if (tok == "sweep") {
            mask |= static_cast<std::uint32_t>(Cat::Sweep);
        } else if (tok == "farm") {
            mask |= static_cast<std::uint32_t>(Cat::Farm);
        } else if (tok == "store") {
            mask |= static_cast<std::uint32_t>(Cat::Store);
        } else if (tok == "net") {
            mask |= static_cast<std::uint32_t>(Cat::Net);
        } else {
            err = "unknown trace category '" + tok +
                  "' (expected fetch,issue,grad,mem,mshr,trap,coh,"
                  "sweep,farm,store,net,all)";
            return false;
        }
    }
    if (!any) {
        err = "empty trace category list";
        return false;
    }
    return true;
}

void
TraceSink::writeJsonl(std::ostream &os) const
{
    for (const TraceEvent &e : _events) {
        os << "{\"cycle\":" << e.cycle << ",\"cat\":\"" << catName(e.cat)
           << "\",\"name\":\"" << stats::jsonEscape(e.name) << "\",\"pc\":"
           << e.pc << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1;
        if (e.dur)
            os << ",\"dur\":" << e.dur;
        if (e.tid)
            os << ",\"tid\":" << e.tid;
        os << "}\n";
    }
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // One simulated cycle maps to one microsecond of trace time so the
    // viewer's time axis reads directly in cycles.
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : _events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << stats::jsonEscape(e.name) << "\",\"cat\":\""
           << catName(e.cat) << "\",\"pid\":1,\"tid\":"
           << (e.tid ? e.tid : 1u) << ",\"ts\":" << e.cycle;
        if (e.dur)
            os << ",\"ph\":\"X\",\"dur\":" << e.dur;
        else
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        os << ",\"args\":{\"pc\":" << e.pc << ",\"a0\":" << e.a0
           << ",\"a1\":" << e.a1 << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
TraceSink::registerStats(stats::StatGroup &parent) const
{
    stats::StatGroup &g = parent.childGroup("trace");
    g.make<stats::Value>("recorded", "trace events held in the buffer",
                         [this] { return std::uint64_t(_events.size()); });
    g.make<stats::Value>("dropped",
                         "trace events dropped at the buffer capacity",
                         [this] { return _dropped; });
    static constexpr Cat kCats[] = {
        Cat::Fetch, Cat::Issue, Cat::Grad, Cat::Mem,  Cat::Mshr, Cat::Trap,
        Cat::Coh,   Cat::Sweep, Cat::Farm, Cat::Store, Cat::Net,
    };
    for (Cat c : kCats) {
        g.make<stats::Value>(catName(c), "events recorded in this category",
                             [this, c] { return categoryCount(c); });
    }
}

} // namespace imo::obs
