#include "obs/trace.hh"

#include <sstream>

#include "common/stats.hh"

namespace imo::obs
{

const char *
catName(Cat c)
{
    switch (c) {
      case Cat::Fetch: return "fetch";
      case Cat::Issue: return "issue";
      case Cat::Grad: return "grad";
      case Cat::Mem: return "mem";
      case Cat::Mshr: return "mshr";
      case Cat::Trap: return "trap";
      case Cat::Coh: return "coh";
    }
    return "?";
}

bool
parseTraceCategories(const std::string &csv, std::uint32_t &mask,
                     std::string &err)
{
    mask = 0;
    std::stringstream ss(csv);
    std::string tok;
    bool any = false;
    while (std::getline(ss, tok, ',')) {
        if (tok.empty())
            continue;
        any = true;
        if (tok == "all") {
            mask |= allCategories;
        } else if (tok == "fetch") {
            mask |= static_cast<std::uint32_t>(Cat::Fetch);
        } else if (tok == "issue") {
            mask |= static_cast<std::uint32_t>(Cat::Issue);
        } else if (tok == "grad") {
            mask |= static_cast<std::uint32_t>(Cat::Grad);
        } else if (tok == "mem") {
            mask |= static_cast<std::uint32_t>(Cat::Mem);
        } else if (tok == "mshr") {
            mask |= static_cast<std::uint32_t>(Cat::Mshr);
        } else if (tok == "trap") {
            mask |= static_cast<std::uint32_t>(Cat::Trap);
        } else if (tok == "coh") {
            mask |= static_cast<std::uint32_t>(Cat::Coh);
        } else {
            err = "unknown trace category '" + tok +
                  "' (expected fetch,issue,grad,mem,mshr,trap,coh,all)";
            return false;
        }
    }
    if (!any) {
        err = "empty trace category list";
        return false;
    }
    return true;
}

void
TraceSink::writeJsonl(std::ostream &os) const
{
    for (const TraceEvent &e : _events) {
        os << "{\"cycle\":" << e.cycle << ",\"cat\":\"" << catName(e.cat)
           << "\",\"name\":\"" << stats::jsonEscape(e.name) << "\",\"pc\":"
           << e.pc << ",\"a0\":" << e.a0 << ",\"a1\":" << e.a1;
        if (e.dur)
            os << ",\"dur\":" << e.dur;
        os << "}\n";
    }
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    // One simulated cycle maps to one microsecond of trace time so the
    // viewer's time axis reads directly in cycles.
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent &e : _events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"" << stats::jsonEscape(e.name) << "\",\"cat\":\""
           << catName(e.cat) << "\",\"pid\":1,\"tid\":1,\"ts\":" << e.cycle;
        if (e.dur)
            os << ",\"ph\":\"X\",\"dur\":" << e.dur;
        else
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        os << ",\"args\":{\"pc\":" << e.pc << ",\"a0\":" << e.a0
           << ",\"a1\":" << e.a1 << "}}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

} // namespace imo::obs
