/**
 * @file
 * Structured event tracing: a low-overhead, category-filtered event
 * sink that buffers compact fixed-size records during simulation and
 * serializes them afterwards as JSONL or Chrome trace_event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Design constraints:
 *  - the timing loop pays one pointer test + one bitmask test per
 *    potential event when tracing is attached, and a single branch
 *    (the pointer test inside IMO_TRACE) when it is not;
 *  - with -DIMO_TRACING=OFF the IMO_TRACE macro compiles to nothing;
 *  - recording never allocates per event beyond vector growth, and the
 *    buffer is capped (events past the cap are counted, not stored) so
 *    a pathological run cannot exhaust memory;
 *  - event names are string literals (stored as const char*), never
 *    formatted on the hot path.
 */

#ifndef IMO_OBS_TRACE_HH
#define IMO_OBS_TRACE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace imo::stats
{
class StatGroup;
} // namespace imo::stats

namespace imo::obs
{

/** Trace event categories; a TraceSink filters on a bitmask of them.
 *  The first seven are per-cycle simulation events (1 trace tick =
 *  1 simulated cycle); the orchestration categories (sweep/farm/store/
 *  net) are recorded by the sweep and farm execution tiers in
 *  wall-clock milliseconds (1 trace tick = 1 ms). */
enum class Cat : std::uint32_t
{
    Fetch = 1u << 0,  //!< front-end: fetch/flush
    Issue = 1u << 1,  //!< instruction issue
    Grad = 1u << 2,   //!< graduation / retirement
    Mem = 1u << 3,    //!< cache access / miss / fill
    Mshr = 1u << 4,   //!< MSHR alloc / merge / free / squash-extend
    Trap = 1u << 5,   //!< informing trap enter / exit
    Coh = 1u << 6,    //!< coherence protocol events (diag-ring vocabulary)
    Sweep = 1u << 7,  //!< sweep engine: per-point execution spans
    Farm = 1u << 8,   //!< coordinator scheduling: leases, retries
    Store = 1u << 9,  //!< result-store hits / puts / repairs
    Net = 1u << 10,   //!< admission, auth, peer connect/loss
};

constexpr std::uint32_t allCategories = 0x7ff;
constexpr std::size_t numCategories = 11;

/** Dense index of a (single-bit) category, for per-category counters. */
constexpr std::size_t
catIndex(Cat c)
{
    return static_cast<std::size_t>(
        std::countr_zero(static_cast<std::uint32_t>(c)));
}

/** Short lowercase name of a category (e.g. "mem"). */
const char *catName(Cat c);

/**
 * Parse a comma-separated category list ("mem,trap", or "all") into a
 * bitmask. @return false (and set @p err) on an unknown category name.
 */
bool parseTraceCategories(const std::string &csv, std::uint32_t &mask,
                          std::string &err);

/** One buffered trace record. Meaning of pc/a0/a1 depends on name. */
struct TraceEvent
{
    Cycle cycle = 0;    //!< event timestamp (simulated cycles)
    Cycle dur = 0;      //!< duration; 0 renders as an instant event
    Cat cat = Cat::Mem;
    const char *name = "";
    std::uint64_t pc = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    std::uint32_t tid = 0; //!< track id; 0 renders on the default track
};

class TraceSink
{
  public:
    /** Enable recording for the categories in @p mask. */
    void enable(std::uint32_t mask) { _mask = mask; }

    std::uint32_t mask() const { return _mask; }
    bool enabled() const { return _mask != 0; }

    bool
    wants(Cat c) const
    {
        return (_mask & static_cast<std::uint32_t>(c)) != 0;
    }

    void
    record(Cycle cycle, Cat cat, const char *name, std::uint64_t pc = 0,
           std::uint64_t a0 = 0, std::uint64_t a1 = 0, Cycle dur = 0,
           std::uint32_t tid = 0)
    {
        if (!wants(cat))
            return;
        recordUnchecked(cycle, cat, name, pc, a0, a1, dur, tid);
    }

    /** record() without the category test — for call sites (IMO_TRACE)
     *  that already checked wants() before building the arguments. */
    void
    recordUnchecked(Cycle cycle, Cat cat, const char *name,
                    std::uint64_t pc = 0, std::uint64_t a0 = 0,
                    std::uint64_t a1 = 0, Cycle dur = 0,
                    std::uint32_t tid = 0)
    {
        if (_events.size() >= _capacity) {
            ++_dropped;
            return;
        }
        ++_catCounts[catIndex(cat)];
        _events.push_back({cycle, dur, cat, name, pc, a0, a1, tid});
    }

    /** Cap the in-memory buffer (default one million events). */
    void setCapacity(std::size_t cap) { _capacity = cap; }

    std::size_t size() const { return _events.size(); }
    std::uint64_t dropped() const { return _dropped; }
    const std::vector<TraceEvent> &events() const { return _events; }

    /** Number of events recorded (not dropped) in category @p c. */
    std::uint64_t categoryCount(Cat c) const { return _catCounts[catIndex(c)]; }

    /** Register pull stats (`trace.recorded`, `trace.dropped`, one
     *  counter per category) under @p parent. The sink must outlive the
     *  registry dump. */
    void registerStats(stats::StatGroup &parent) const;

    void
    clear()
    {
        _events.clear();
        _dropped = 0;
        _catCounts.fill(0);
    }

    /** One JSON object per line. */
    void writeJsonl(std::ostream &os) const;

    /** Chrome trace_event JSON: {"traceEvents":[...]}. Instant events
     *  use ph:"i", events with a duration use ph:"X". */
    void writeChromeTrace(std::ostream &os) const;

  private:
    std::uint32_t _mask = 0;
    std::size_t _capacity = 1'000'000;
    std::uint64_t _dropped = 0;
    std::array<std::uint64_t, numCategories> _catCounts{};
    std::vector<TraceEvent> _events;
};

} // namespace imo::obs

/**
 * Hot-path trace macro. @p sink is a TraceSink* (may be null), @p cat a
 * Cat constant. The sink pointer and category mask are tested before
 * any of the remaining arguments (timestamp, name, payload expressions)
 * are evaluated, so an attached-but-filtered or absent sink costs the
 * tests alone. Compiles out entirely when the build disables tracing
 * (-DIMO_TRACING=OFF sets IMO_TRACING_DISABLED).
 */
#if defined(IMO_TRACING_DISABLED)
#define IMO_TRACE(sink, cycle, cat, ...) ((void)0)
#else
#define IMO_TRACE(sink, cycle, cat, ...)                                    \
    do {                                                                    \
        ::imo::obs::TraceSink *imo_trace_sink_ = (sink);                    \
        if (imo_trace_sink_ && imo_trace_sink_->wants(cat)) [[unlikely]]    \
            imo_trace_sink_->recordUnchecked((cycle), (cat),                \
                                             __VA_ARGS__);                  \
    } while (0)
#endif

#endif // IMO_OBS_TRACE_HH
