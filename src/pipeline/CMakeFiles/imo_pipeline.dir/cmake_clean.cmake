file(REMOVE_RECURSE
  "CMakeFiles/imo_pipeline.dir/config.cc.o"
  "CMakeFiles/imo_pipeline.dir/config.cc.o.d"
  "CMakeFiles/imo_pipeline.dir/inorder/cpu.cc.o"
  "CMakeFiles/imo_pipeline.dir/inorder/cpu.cc.o.d"
  "CMakeFiles/imo_pipeline.dir/ooo/cpu.cc.o"
  "CMakeFiles/imo_pipeline.dir/ooo/cpu.cc.o.d"
  "CMakeFiles/imo_pipeline.dir/simulate.cc.o"
  "CMakeFiles/imo_pipeline.dir/simulate.cc.o.d"
  "libimo_pipeline.a"
  "libimo_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
