file(REMOVE_RECURSE
  "libimo_pipeline.a"
)
