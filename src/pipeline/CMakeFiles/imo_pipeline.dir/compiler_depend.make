# Empty compiler generated dependencies file for imo_pipeline.
# This may be replaced when dependencies are built.
