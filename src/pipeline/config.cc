#include "pipeline/config.hh"

#include "common/error.hh"

namespace imo::pipeline
{

namespace
{

bool
powerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // anonymous namespace

std::vector<std::string>
MachineConfig::check() const
{
    std::vector<std::string> issues;
    auto bad = [&](std::string text) { issues.push_back(std::move(text)); };

    if (issueWidth == 0)
        bad("issue width is zero");
    else if (issueWidth > 64)
        bad(simFormat("issue width %u is unreasonably large", issueWidth));
    if (outOfOrder && robSize == 0)
        bad("out-of-order machine with an empty reorder buffer");
    if (fus.intUnits == 0)
        bad("no integer units");
    if (fus.fpUnits == 0)
        bad("no floating-point units");
    if (fus.branchUnits == 0)
        bad("no branch units");
    if (!powerOfTwo(predictorEntries))
        bad(simFormat("predictor table size %u is not a power of two",
                      predictorEntries));
    if (!powerOfTwo(btbEntries))
        bad(simFormat("BTB size %u is not a power of two", btbEntries));
    if (maxInstructions == 0)
        bad("instruction budget (maxInstructions) is zero");

    std::string why;
    if (!l1.wellFormed(&why))
        bad(simFormat("L1 %s", why.c_str()));
    if (!l2.wellFormed(&why))
        bad(simFormat("L2 %s", why.c_str()));

    if (mem.banks == 0)
        bad("timing memory system has zero banks");
    if (!powerOfTwo(mem.lineBytes))
        bad(simFormat("timing line size %u is not a power of two",
                      mem.lineBytes));
    if (mem.mshrs == 0)
        bad("MSHR file has zero entries");

    // Cross-parameter consistency: the timing model and the functional
    // reference hierarchy must agree on the transfer unit, and a
    // memory access cannot be faster than a secondary hit.
    if (powerOfTwo(mem.lineBytes) && l1.wellFormed()) {
        if (mem.lineBytes != l1.lineBytes)
            bad(simFormat("timing line size %u differs from functional "
                          "L1 line size %u", mem.lineBytes, l1.lineBytes));
    }
    if (l1.wellFormed() && l2.wellFormed() &&
        l1.lineBytes != l2.lineBytes) {
        bad(simFormat("L1 line size %u differs from L2 line size %u",
                      l1.lineBytes, l2.lineBytes));
    }
    if (mem.memLatency < mem.l2Latency)
        bad(simFormat("memory latency %llu below secondary latency %llu",
                      static_cast<unsigned long long>(mem.memLatency),
                      static_cast<unsigned long long>(mem.l2Latency)));

    return issues;
}

void
MachineConfig::validate() const
{
    const std::vector<std::string> issues = check();
    if (issues.empty())
        return;
    SimException ex(ErrCode::BadConfig,
                    simFormat("machine config '%s': %s", name.c_str(),
                              issues.front().c_str()));
    for (std::size_t i = 1; i < issues.size(); ++i)
        ex.withContext(issues[i]);
    throw ex;
}

MachineConfig
makeOutOfOrderConfig()
{
    MachineConfig c;
    c.name = "ooo-r10k";
    c.outOfOrder = true;
    c.issueWidth = 4;
    c.robSize = 32;
    c.fus = FuPool{.intUnits = 2, .fpUnits = 2, .branchUnits = 1,
                   .memUnits = 1};
    c.lat = LatencyTable{.intAlu = 1, .intMul = 12, .intDiv = 76,
                         .fpAlu = 2, .fpDiv = 15, .fpSqrt = 20};

    c.l1 = memory::CacheGeometry{.sizeBytes = 32 * 1024, .lineBytes = 32,
                                 .assoc = 2};
    c.l2 = memory::CacheGeometry{.sizeBytes = 2 * 1024 * 1024,
                                 .lineBytes = 32, .assoc = 2};
    c.mem = memory::TimingMemoryParams{.lineBytes = 32,
                                       .l1HitLatency = 2,
                                       .l2Latency = 12,
                                       .memLatency = 75,
                                       .mshrs = 8,
                                       .banks = 2,
                                       .fillCycles = 4,
                                       .memBandwidth = 20};
    return c;
}

MachineConfig
makeInOrderConfig()
{
    MachineConfig c;
    c.name = "inorder-21164";
    c.outOfOrder = false;
    c.issueWidth = 4;
    c.fus = FuPool{.intUnits = 2, .fpUnits = 2, .branchUnits = 1,
                   .memUnits = 0};
    c.lat = LatencyTable{.intAlu = 1, .intMul = 12, .intDiv = 76,
                         .fpAlu = 4, .fpDiv = 17, .fpSqrt = 20};

    c.l1 = memory::CacheGeometry{.sizeBytes = 8 * 1024, .lineBytes = 32,
                                 .assoc = 1};
    c.l2 = memory::CacheGeometry{.sizeBytes = 2 * 1024 * 1024,
                                 .lineBytes = 32, .assoc = 4};
    c.mem = memory::TimingMemoryParams{.lineBytes = 32,
                                       .l1HitLatency = 2,
                                       .l2Latency = 11,
                                       .memLatency = 50,
                                       .mshrs = 8,
                                       .banks = 2,
                                       .fillCycles = 4,
                                       .memBandwidth = 20};
    return c;
}

} // namespace imo::pipeline
