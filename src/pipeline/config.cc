#include "pipeline/config.hh"

namespace imo::pipeline
{

Cycle
LatencyTable::forClass(isa::OpClass cls) const
{
    switch (cls) {
      case isa::OpClass::IntAlu: return intAlu;
      case isa::OpClass::IntMul: return intMul;
      case isa::OpClass::IntDiv: return intDiv;
      case isa::OpClass::FpAlu: return fpAlu;
      case isa::OpClass::FpDiv: return fpDiv;
      case isa::OpClass::FpSqrt: return fpSqrt;
      default: return 1;
    }
}

MachineConfig
makeOutOfOrderConfig()
{
    MachineConfig c;
    c.name = "ooo-r10k";
    c.outOfOrder = true;
    c.issueWidth = 4;
    c.robSize = 32;
    c.fus = FuPool{.intUnits = 2, .fpUnits = 2, .branchUnits = 1,
                   .memUnits = 1};
    c.lat = LatencyTable{.intAlu = 1, .intMul = 12, .intDiv = 76,
                         .fpAlu = 2, .fpDiv = 15, .fpSqrt = 20};

    c.l1 = memory::CacheGeometry{.sizeBytes = 32 * 1024, .lineBytes = 32,
                                 .assoc = 2};
    c.l2 = memory::CacheGeometry{.sizeBytes = 2 * 1024 * 1024,
                                 .lineBytes = 32, .assoc = 2};
    c.mem = memory::TimingMemoryParams{.lineBytes = 32,
                                       .l1HitLatency = 2,
                                       .l2Latency = 12,
                                       .memLatency = 75,
                                       .mshrs = 8,
                                       .banks = 2,
                                       .fillCycles = 4,
                                       .memBandwidth = 20};
    return c;
}

MachineConfig
makeInOrderConfig()
{
    MachineConfig c;
    c.name = "inorder-21164";
    c.outOfOrder = false;
    c.issueWidth = 4;
    c.fus = FuPool{.intUnits = 2, .fpUnits = 2, .branchUnits = 1,
                   .memUnits = 0};
    c.lat = LatencyTable{.intAlu = 1, .intMul = 12, .intDiv = 76,
                         .fpAlu = 4, .fpDiv = 17, .fpSqrt = 20};

    c.l1 = memory::CacheGeometry{.sizeBytes = 8 * 1024, .lineBytes = 32,
                                 .assoc = 1};
    c.l2 = memory::CacheGeometry{.sizeBytes = 2 * 1024 * 1024,
                                 .lineBytes = 32, .assoc = 4};
    c.mem = memory::TimingMemoryParams{.lineBytes = 32,
                                       .l1HitLatency = 2,
                                       .l2Latency = 11,
                                       .memLatency = 50,
                                       .mshrs = 8,
                                       .banks = 2,
                                       .fillCycles = 4,
                                       .memBandwidth = 20};
    return c;
}

} // namespace imo::pipeline
