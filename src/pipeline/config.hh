/**
 * @file
 * Machine configurations for the two detailed processor models.
 *
 * The parameters mirror the paper's Table 1: a 4-issue out-of-order
 * machine in the style of the MIPS R10000 and a 4-issue in-order
 * machine in the style of the Alpha 21164, each with the corresponding
 * two-level memory hierarchy.
 */

#ifndef IMO_PIPELINE_CONFIG_HH
#define IMO_PIPELINE_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/op.hh"
#include "memory/geometry.hh"
#include "memory/timing.hh"

namespace imo
{
class FaultInjector;
} // namespace imo

namespace imo::obs
{
struct Observer;
} // namespace imo::obs

namespace imo::pipeline
{

/** How an out-of-order machine dispatches an informing miss trap
 *  (paper section 3.2). */
enum class TrapDispatch : std::uint8_t
{
    /** Treated like a mispredicted branch: redirect as soon as the miss
     *  is detected. Costs shadow-state resources. */
    BranchStyle,
    /** Treated like an exception: the trap is postponed until the
     *  informing operation reaches the head of the reorder buffer. */
    ExceptionStyle,
};

/** Execution latencies (paper Table 1, "Pipeline Parameters"). */
struct LatencyTable
{
    Cycle intAlu = 1;
    Cycle intMul = 12;
    Cycle intDiv = 76;
    Cycle fpAlu = 2;
    Cycle fpDiv = 15;
    Cycle fpSqrt = 20;

    /** @return the execution latency for @p cls (memory classes return
     *  1: their real latency comes from the memory system). Inline:
     *  called once per instruction by both timing models. */
    Cycle
    forClass(isa::OpClass cls) const
    {
        switch (cls) {
          case isa::OpClass::IntAlu: return intAlu;
          case isa::OpClass::IntMul: return intMul;
          case isa::OpClass::IntDiv: return intDiv;
          case isa::OpClass::FpAlu: return fpAlu;
          case isa::OpClass::FpDiv: return fpDiv;
          case isa::OpClass::FpSqrt: return fpSqrt;
          default: return 1;
        }
    }
};

/** Functional-unit counts. memUnits == 0 routes memory operations
 *  through the integer units (the in-order machine's model). */
struct FuPool
{
    std::uint8_t intUnits = 2;
    std::uint8_t fpUnits = 2;
    std::uint8_t branchUnits = 1;
    std::uint8_t memUnits = 1;
};

/** Complete parameterization of one processor model. */
struct MachineConfig
{
    std::string name;
    bool outOfOrder = true;

    std::uint32_t issueWidth = 4;
    /** Fetch-to-issue (in-order) / fetch-to-dispatch (OOO) stages. */
    Cycle frontendDepth = 3;
    /** Fetch bubble after a correctly handled taken control transfer. */
    Cycle takenBranchBubble = 1;
    /** Cycles between resolving a misprediction and refetching. */
    Cycle redirectPenalty = 1;

    // Out-of-order resources.
    std::uint32_t robSize = 32;
    /** Shadow-state limit: predicted branches in flight (R10000: ~3-4;
     *  the paper says three). */
    std::uint32_t maxUnresolvedBranches = 3;
    /** Ablation: informing references also consume branch shadow state
     *  (the paper's "3x shadow state" discussion assumes they do not,
     *  because the resource is scaled up). */
    bool informingTakesCheckpoint = false;
    TrapDispatch trapDispatch = TrapDispatch::BranchStyle;
    /** Pipeline-drain cost when a trap is dispatched exception-style. */
    Cycle exceptionFlushPenalty = 4;

    // In-order trap/replay machinery (paper section 3.1).
    Cycle replayTrapPenalty = 5;

    // Branch prediction (Table 1: 2-bit counters).
    std::uint32_t predictorEntries = 2048;
    std::uint32_t btbEntries = 512;
    /** Ablation: use a gshare predictor instead of plain 2-bit
     *  counters (not a paper configuration). */
    bool useGshare = false;

    FuPool fus;
    LatencyTable lat;

    /** Timing-side memory parameters (Table 1, "Memory Parameters"). */
    memory::TimingMemoryParams mem;
    /** Content geometry for the functional reference hierarchy. */
    memory::CacheGeometry l1;
    memory::CacheGeometry l2;

    // Robustness knobs (not paper parameters).

    /**
     * Forward-progress watchdog: if an instruction's completion lands
     * more than this many cycles past the last graduation, or a memory
     * reference keeps being rejected (MSHR/bank livelock) for this
     * long, the run is stopped with a structured Deadlock error
     * carrying a recent-event dump. 0 disables the watchdog.
     */
    Cycle watchdogCycles = 2'000'000;

    /** Functional runaway bound forwarded to func::Executor; exceeding
     *  it raises a RunawayExecution error. */
    std::uint64_t maxInstructions = 400'000'000;

    /** Optional fault injector (not owned; nullptr = no faults). */
    FaultInjector *faults = nullptr;

    /** Optional observability sinks — trace events, per-PC miss
     *  profile, captured stats (not owned; nullptr = unobserved). */
    obs::Observer *obs = nullptr;

    /**
     * Collect every problem that makes this configuration
     * unrealizable or internally inconsistent. Empty means valid.
     */
    std::vector<std::string> check() const;

    /** Throw SimException(BadConfig) listing the problems, if any. */
    void validate() const;
};

/** @return the out-of-order (MIPS R10000-like) configuration. */
MachineConfig makeOutOfOrderConfig();

/** @return the in-order (Alpha 21164-like) configuration. */
MachineConfig makeInOrderConfig();

} // namespace imo::pipeline

#endif // IMO_PIPELINE_CONFIG_HH
