/**
 * @file
 * Full-machine checkpoint images: a meta section naming the timing
 * model and the program, then one section per stateful component
 * (executor, cpu, optionally the fault injector).
 *
 * These templates are the PR-2 checkpoint hooks shared by the simulate()
 * driver and the sampling controller: both produce and consume the same
 * image format, so a checkpoint written by a full detailed run can seed
 * a sampled run and vice versa.
 */

#ifndef IMO_PIPELINE_IMAGE_HH
#define IMO_PIPELINE_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "func/executor.hh"
#include "isa/program.hh"

namespace imo::pipeline
{

/**
 * Assemble a full-machine image. The fault section is present exactly
 * when an injector is attached, and restore enforces the same
 * attachment, so a checkpoint cannot be silently replayed under a
 * different fault plan.
 */
template <typename Cpu>
std::vector<std::uint8_t>
makeImage(const char *kind, const isa::Program &program,
          const func::Executor &exec, const Cpu &cpu,
          const FaultInjector *faults, std::uint64_t retired)
{
    Serializer s;
    s.beginSection("meta");
    s.str(kind);
    s.u64(program.fingerprint());
    s.str(program.name());
    s.u64(retired);
    s.b(faults != nullptr);
    s.endSection();

    s.beginSection("executor");
    exec.save(s);
    s.endSection();

    s.beginSection("cpu");
    cpu.save(s);
    s.endSection();

    if (faults) {
        s.beginSection("faults");
        faults->save(s);
        s.endSection();
    }
    return s.finish();
}

/** Restore a full-machine image. @return the retired count saved in
 *  the meta section. */
template <typename Cpu>
std::uint64_t
restoreImage(const std::vector<std::uint8_t> &image, const char *kind,
             func::Executor &exec, Cpu &cpu, FaultInjector *faults)
{
    Deserializer d(image);

    d.openSection("meta");
    const std::string saved_kind = d.str();
    sim_throw_if(saved_kind != kind, ErrCode::BadCheckpoint,
                 "checkpoint was taken on a '%s' machine, this "
                 "configuration is '%s'", saved_kind.c_str(), kind);
    d.u64();                     // fingerprint; exec.restore() verifies
    d.str();                     // program name (informational)
    const std::uint64_t retired = d.u64();
    const bool has_faults = d.b();
    d.closeSection();
    sim_throw_if(has_faults && !faults, ErrCode::BadCheckpoint,
                 "checkpoint was taken with fault injection attached; "
                 "restoring without an injector would diverge");
    sim_throw_if(!has_faults && faults, ErrCode::BadCheckpoint,
                 "checkpoint was taken without fault injection; "
                 "restoring with an injector would diverge");

    d.openSection("executor");
    exec.restore(d);
    d.closeSection();

    d.openSection("cpu");
    cpu.restore(d);
    d.closeSection();

    if (faults) {
        d.openSection("faults");
        faults->restore(d);
        d.closeSection();
    }
    return retired;
}

} // namespace imo::pipeline

#endif // IMO_PIPELINE_IMAGE_HH
