#include "pipeline/inorder/cpu.hh"

#include <algorithm>
#include <array>

#include "branch/predictor.hh"
#include "common/checkpoint.hh"
#include "common/diagring.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "isa/instruction.hh"
#include "memory/timing.hh"
#include "obs/observer.hh"
#include "pipeline/pipe_stats.hh"
#include "pipeline/timing_util.hh"
#include "pipeline/watchdog.hh"

namespace imo::pipeline
{

using isa::Op;
using isa::OpClass;

namespace
{

FuGroup
groupOf(OpClass cls, const FuPool &fus)
{
    switch (cls) {
      case OpClass::IntAlu: case OpClass::IntMul: case OpClass::IntDiv:
        return FuGroup::Int;
      case OpClass::FpAlu: case OpClass::FpDiv: case OpClass::FpSqrt:
        return FuGroup::Fp;
      case OpClass::Branch: case OpClass::Jump:
        return FuGroup::Branch;
      case OpClass::Load: case OpClass::Store: case OpClass::Prefetch:
        return fus.memUnits == 0 ? FuGroup::Int : FuGroup::Mem;
      default:
        return FuGroup::None;
    }
}

} // anonymous namespace

/** All mutable state of one in-order timing run. */
struct InOrderCpu::Timing
{
    explicit Timing(const MachineConfig &cfg)
        : fetch(cfg.issueWidth, cfg.takenBranchBubble),
          port(cfg.issueWidth,
               {cfg.fus.intUnits, cfg.fus.fpUnits, cfg.fus.branchUnits,
                cfg.fus.memUnits ? cfg.fus.memUnits : cfg.fus.intUnits,
                cfg.issueWidth}),
          ledger(cfg.issueWidth), mem(cfg.mem), bimodal(cfg.predictorEntries),
          gshare(cfg.predictorEntries), ring(32)
    {
        mem.setFaultInjector(cfg.faults);
        obs = cfg.obs;
        trace = obs ? obs->traceSink() : nullptr;
        mem.setTraceSink(trace);
    }

    FetchEngine fetch;
    InOrderIssuePort port;
    GraduationLedger ledger;
    memory::TimingMemorySystem mem;
    branch::TwoBitPredictor bimodal;
    branch::GsharePredictor gshare;
    DiagRing ring;

    // Register scoreboard: when each value becomes available, and
    // whether it is being produced by an in-flight primary-cache miss
    // (for replay-trap emulation).
    std::array<Cycle, isa::numUnifiedRegs> regReady{};
    std::array<Cycle, isa::numUnifiedRegs> regMissDetect{};
    std::array<bool, isa::numUnifiedRegs> regFromMiss{};
    Cycle ccReady = 0;
    Cycle mhrrReady = 0;
    Cycle lastIssue = 0;

    // A pipeline flush (replay trap, misprediction) squashes every
    // younger in-flight instruction: none may issue before the refetch
    // reaches the issue stage again.
    Cycle issueFloor = 0;

    // Informing trap service measurement: dispatch cycle of the trap
    // whose RETMH has not yet completed (handlers cannot nest).
    bool trapPending = false;
    Cycle trapDispatch = 0;

    std::uint64_t consumed = 0;
    PipeStats pipe;  //!< live counters; RunResult derives from these
    obs::Observer *obs = nullptr;
    obs::TraceSink *trace = nullptr;
};

InOrderCpu::InOrderCpu(const MachineConfig &config) : _config(config)
{
    sim_throw_if(config.outOfOrder, ErrCode::BadConfig,
                 "InOrderCpu given an out-of-order configuration '%s'",
                 config.name.c_str());
}

InOrderCpu::~InOrderCpu() = default;

void
InOrderCpu::reset()
{
    _t = std::make_unique<Timing>(_config);
}

std::uint64_t
InOrderCpu::retired() const
{
    return _t ? _t->consumed : 0;
}

void
InOrderCpu::warmCondBranch(InstAddr pc, bool taken)
{
    panic_if(!_t, "InOrderCpu::warmCondBranch before reset()");
    // update() only: warming must leave accuracy statistics untouched
    // (no lookup happened in the pipeline) while keeping the counter
    // table — and gshare's global history — exactly as trained.
    if (_config.useGshare)
        _t->gshare.update(pc, taken);
    else
        _t->bimodal.update(pc, taken);
}

void
InOrderCpu::saveWarmState(Serializer &s) const
{
    panic_if(!_t, "InOrderCpu::saveWarmState before reset()");
    _t->bimodal.save(s);
    _t->gshare.save(s);
}

void
InOrderCpu::restoreWarmState(Deserializer &d)
{
    panic_if(!_t, "InOrderCpu::restoreWarmState before reset()");
    _t->bimodal.restore(d);
    _t->gshare.restore(d);
}

bool
InOrderCpu::step(func::TraceSource &src)
{
    panic_if(!_t, "InOrderCpu::step before reset()");
    Timing &t = *_t;
    const MachineConfig &cfg = _config;
    const Cycle watchdog = cfg.watchdogCycles;

    auto predict_and_update = [&](InstAddr pc, bool taken) {
        bool correct = cfg.useGshare
            ? t.gshare.predictAndUpdate(pc, taken)
            : t.bimodal.predictAndUpdate(pc, taken);
        if (cfg.faults && cfg.faults->fire(FaultPoint::MispredictStorm))
            correct = false;
        return correct;
    };
    auto flush_at = [&](Cycle refetch) {
        t.fetch.gate(refetch);
        t.issueFloor = std::max(t.issueFloor,
                                refetch + cfg.frontendDepth);
    };

    func::TraceRecord r;
    if (!src.next(r))
        return false;
    ++t.consumed;

    const isa::Instruction &in = r.inst;
    const OpClass cls = isa::opClass(in.op);

    const Cycle fc = t.fetch.fetchNext();
    Cycle earliest = std::max({fc + cfg.frontendDepth, t.lastIssue,
                               t.issueFloor});

    // Source operands (presence bits), with the 21164 replay trap:
    // if this instruction would have issued inside a missing load's
    // hit shadow, it is flushed and replayed, paying the penalty.
    const Cycle base = earliest;
    const isa::SrcRegs srcs = isa::srcRegs(in);
    bool replayed = false;
    for (std::uint8_t i = 0; i < srcs.count; ++i) {
        const std::uint8_t s = srcs.reg[i];
        Cycle constraint = t.regReady[s];
        if (t.regFromMiss[s] && base < t.regMissDetect[s]) {
            constraint = std::max(constraint,
                                  t.regMissDetect[s] +
                                  cfg.replayTrapPenalty);
            replayed = true;
        }
        earliest = std::max(earliest, constraint);
    }
    if (replayed) {
        ++t.pipe.replayTraps;
        IMO_TRACE(t.trace, base, obs::Cat::Issue, "replay-trap", r.pc);
    }
    if (in.op == Op::BRMISS || in.op == Op::BRMISS2)
        earliest = std::max(earliest, t.ccReady);
    if (in.op == Op::RETMH || in.op == Op::GETMHRR)
        earliest = std::max(earliest, t.mhrrReady);

    const Cycle issue = t.port.reserve(groupOf(cls, cfg.fus), earliest);
    t.lastIssue = issue;
    IMO_TRACE(t.trace, issue, obs::Cat::Issue, "issue", r.pc,
              static_cast<std::uint64_t>(in.op));

    Cycle complete = issue + cfg.lat.forClass(cls);
    bool cache_reason = false;

    switch (cls) {
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Prefetch: {
        // Present the reference to the lockup-free memory system,
        // retrying on structural hazards (bank/MSHR busy). A
        // reference that keeps being rejected is a livelock: the
        // watchdog converts it into a structured Deadlock error.
        Cycle probe = issue;
        memory::MemRequestResult mr;
        for (;;) {
            mr = t.mem.request(r.addr, r.level, probe);
            if (mr.accepted)
                break;
            probe = std::max(mr.retryCycle, probe + 1);
            if (watchdog && probe > issue + watchdog) {
                t.ring.push(probe, "stuck-ref", r.pc,
                            t.mem.mshrFile().busyEntries(probe));
                raiseDeadlock(t.ring, simFormat(
                    "memory reference at pc %u (addr %#llx) "
                    "rejected for %llu cycles (MSHR/bank livelock; "
                    "%u of %u MSHRs busy)",
                    r.pc, static_cast<unsigned long long>(r.addr),
                    static_cast<unsigned long long>(probe - issue),
                    t.mem.mshrFile().busyEntries(probe),
                    t.mem.mshrFile().capacity()));
            }
        }
        t.ring.push(probe, "mem-accept", r.pc, r.addr);
        const Cycle miss_detect = probe + 1;
        const bool missed = r.level != MemLevel::L1;

        if (cls == OpClass::Load) {
            complete = std::max(mr.dataReady, probe + 1);
            cache_reason = missed;
        } else {
            // Stores and prefetches retire into the write buffer /
            // MSHR without blocking graduation.
            complete = probe + 1;
        }

        // An in-order machine issues memory operations
        // non-speculatively, so the section-3.3 extended MSHR
        // lifetime releases at completion (nothing can squash).
        if (cfg.mem.extendedMshrLifetime && mr.mshr.valid())
            t.mem.notifyGraduated(mr.mshr, complete);

        if (isa::isDataRef(in.op)) {
            ++t.pipe.dataRefs;
            if (missed) {
                ++t.pipe.l1Misses;
                if (t.obs) {
                    t.obs->profiler.noteMiss(
                        r.pc, r.level == MemLevel::Memory,
                        mr.dataReady > probe ? mr.dataReady - probe : 0,
                        r.trapped);
                }
            }
            t.ccReady = miss_detect;

            const int rd = isa::dstReg(in);
            if (rd >= 0) {
                t.regReady[rd] = complete;
                t.regFromMiss[rd] = missed;
                t.regMissDetect[rd] = miss_detect;
            }

            if (r.trapped) {
                // Informing dispatch via the replay-trap mechanism:
                // flush and refetch from the handler.
                ++t.pipe.traps;
                t.mhrrReady = miss_detect + 1;
                flush_at(miss_detect + cfg.replayTrapPenalty);
                t.ring.push(miss_detect, "trap", r.pc, r.addr);
                t.trapPending = true;
                t.trapDispatch = miss_detect;
                IMO_TRACE(t.trace, miss_detect, obs::Cat::Trap,
                          "trap-enter", r.pc, r.addr);
            }
        }
        break;
      }

      case OpClass::Branch: {
        const Cycle resolve = issue + 1;
        complete = resolve;
        if (in.op == Op::BRMISS ||
            in.op == Op::BRMISS2) {
            // Statically predicted not-taken (the common case is a
            // hit); taken means a mispredict-style redirect.
            ++t.pipe.condBranches;
            if (r.taken) {
                t.mhrrReady = resolve + 1;
                flush_at(resolve + cfg.redirectPenalty);
                ++t.pipe.mispredicts;
            }
        } else {
            ++t.pipe.condBranches;
            const bool correct = predict_and_update(r.pc, r.taken);
            if (!correct) {
                ++t.pipe.mispredicts;
                flush_at(resolve + cfg.redirectPenalty);
                t.ring.push(resolve, "mispredict", r.pc, r.taken);
                IMO_TRACE(t.trace, resolve, obs::Cat::Fetch, "mispredict",
                          r.pc, r.taken);
            } else if (r.taken) {
                t.fetch.redirectTaken(fc);
            }
        }
        break;
      }

      case OpClass::Jump: {
        complete = issue + 1;
        if (in.op == Op::JR) {
            // Register-indirect target resolves at execute.
            flush_at(complete + cfg.redirectPenalty);
        } else {
            // J/JAL/RETMH targets are available in the front end.
            t.fetch.redirectTaken(fc);
        }
        if (in.op == Op::RETMH && t.trapPending) {
            t.pipe.trapService.sample(complete - t.trapDispatch);
            t.trapPending = false;
            IMO_TRACE(t.trace, t.trapDispatch, obs::Cat::Trap, "trap-exit",
                      r.pc, 0, 0, complete - t.trapDispatch);
        }
        if (const int rd = isa::dstReg(in); rd >= 0) {
            t.regReady[rd] = complete;
            t.regFromMiss[rd] = false;
        }
        break;
      }

      default: {
        if (const int rd = isa::dstReg(in); rd >= 0) {
            t.regReady[rd] = complete;
            t.regFromMiss[rd] = false;
        }
        if (in.op == Op::SETMHRR)
            t.mhrrReady = complete;
        if (in.op == Op::GETMHRR) {
            t.regReady[in.rd] = complete;
            t.regFromMiss[in.rd] = false;
        }
        break;
      }
    }

    if (r.handlerCode)
        ++t.pipe.handlerInstructions;

    // Retirement watchdog: a completion time that runs away from
    // the graduation frontier means nothing will retire for an
    // implausibly long time (e.g. a stuck fill).
    if (watchdog && complete > t.ledger.lastCycle() + watchdog) {
        t.ring.push(complete, "no-retire", r.pc, t.ledger.lastCycle());
        raiseDeadlock(t.ring, simFormat(
            "no retirement for %llu cycles: pc %u completes at "
            "cycle %llu, last graduation at %llu",
            static_cast<unsigned long long>(
                complete - t.ledger.lastCycle()),
            r.pc, static_cast<unsigned long long>(complete),
            static_cast<unsigned long long>(t.ledger.lastCycle())));
    }

    t.ring.push(complete, "grad", r.pc,
                static_cast<std::uint64_t>(in.op));
    IMO_TRACE(t.trace, complete, obs::Cat::Grad, "grad", r.pc,
              static_cast<std::uint64_t>(in.op));
    if (t.obs && cache_reason) {
        const std::uint64_t before = t.ledger.cacheStallSlots();
        t.ledger.graduate(complete, cache_reason);
        t.obs->profiler.noteStall(r.pc,
                                  t.ledger.cacheStallSlots() - before);
    } else {
        t.ledger.graduate(complete, cache_reason);
    }
    return true;
}

RunResult
InOrderCpu::result() const
{
    if (!_t) {
        RunResult res;
        res.machine = _config.name;
        res.issueWidth = _config.issueWidth;
        return res;
    }
    const Timing &t = *_t;
    RunResult res;
    res.machine = _config.name;
    res.issueWidth = _config.issueWidth;
    res.dataRefs = t.pipe.dataRefs.value();
    res.l1Misses = t.pipe.l1Misses.value();
    res.traps = t.pipe.traps.value();
    res.replayTraps = t.pipe.replayTraps.value();
    res.condBranches = t.pipe.condBranches.value();
    res.mispredicts = t.pipe.mispredicts.value();
    res.handlerInstructions = t.pipe.handlerInstructions.value();
    res.cycles = t.ledger.totalCycles();
    res.instructions = t.ledger.graduated();
    res.cacheStallSlots = t.ledger.cacheStallSlots();
    res.otherStallSlots = t.ledger.otherStallSlots();
    res.mshrFullRejects = t.mem.mshrFile().fullRejects();
    res.bankConflicts = t.mem.bankConflicts();
    res.squashInvalidations = t.mem.mshrFile().squashInvalidations();
    return res;
}

void
InOrderCpu::registerStats(stats::StatGroup &parent)
{
    panic_if(!_t, "InOrderCpu::registerStats before reset()");
    Timing *t = _t.get();
    auto &g = parent.childGroup("cpu");
    g.make<stats::Value>("cycles", "total simulated cycles",
                         [t] { return t->ledger.totalCycles(); });
    g.make<stats::Value>("instructions", "instructions graduated",
                         [t] { return t->ledger.graduated(); });
    g.make<stats::Value>("cache_stall_slots",
                         "graduation slots lost to cache misses",
                         [t] { return t->ledger.cacheStallSlots(); });
    g.make<stats::Value>("other_stall_slots",
                         "graduation slots lost to other causes",
                         [t] { return t->ledger.otherStallSlots(); });
    g.make<stats::Derived>("ipc", "instructions per cycle", [t] {
        const Cycle c = t->ledger.totalCycles();
        return c ? static_cast<double>(t->ledger.graduated()) / c : 0.0;
    });
    g.adoptChild(t->pipe.group);
    if (_config.useGshare)
        t->gshare.registerStats(g, "predictor");
    else
        t->bimodal.registerStats(g, "predictor");
    t->mem.registerStats(g);
}

RunResult
InOrderCpu::run(func::TraceSource &src)
{
    reset();
    while (step(src)) {
    }
    return result();
}

void
InOrderCpu::save(Serializer &s) const
{
    panic_if(!_t, "InOrderCpu::save before reset()");
    const Timing &t = *_t;
    t.fetch.save(s);
    t.port.save(s);
    t.ledger.save(s);
    t.mem.save(s);
    t.bimodal.save(s);
    t.gshare.save(s);
    t.ring.save(s);
    for (const Cycle c : t.regReady)
        s.u64(c);
    for (const Cycle c : t.regMissDetect)
        s.u64(c);
    for (const bool f : t.regFromMiss)
        s.b(f);
    s.u64(t.ccReady);
    s.u64(t.mhrrReady);
    s.u64(t.lastIssue);
    s.u64(t.issueFloor);
    s.b(t.trapPending);
    s.u64(t.trapDispatch);
    s.u64(t.consumed);
    t.pipe.save(s);
}

void
InOrderCpu::restore(Deserializer &d)
{
    reset();
    Timing &t = *_t;
    t.fetch.restore(d);
    t.port.restore(d);
    t.ledger.restore(d);
    t.mem.restore(d);
    t.bimodal.restore(d);
    t.gshare.restore(d);
    t.ring.restore(d);
    for (Cycle &c : t.regReady)
        c = d.u64();
    for (Cycle &c : t.regMissDetect)
        c = d.u64();
    for (std::size_t i = 0; i < t.regFromMiss.size(); ++i)
        t.regFromMiss[i] = d.b();
    t.ccReady = d.u64();
    t.mhrrReady = d.u64();
    t.lastIssue = d.u64();
    t.issueFloor = d.u64();
    t.trapPending = d.b();
    t.trapDispatch = d.u64();
    t.consumed = d.u64();
    t.pipe.restore(d);
}

} // namespace imo::pipeline
