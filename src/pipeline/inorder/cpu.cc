#include "pipeline/inorder/cpu.hh"

#include <algorithm>
#include <array>

#include "branch/predictor.hh"
#include "common/diagring.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "isa/instruction.hh"
#include "memory/timing.hh"
#include "pipeline/timing_util.hh"
#include "pipeline/watchdog.hh"

namespace imo::pipeline
{

using isa::Op;
using isa::OpClass;

namespace
{

FuGroup
groupOf(OpClass cls, const FuPool &fus)
{
    switch (cls) {
      case OpClass::IntAlu: case OpClass::IntMul: case OpClass::IntDiv:
        return FuGroup::Int;
      case OpClass::FpAlu: case OpClass::FpDiv: case OpClass::FpSqrt:
        return FuGroup::Fp;
      case OpClass::Branch: case OpClass::Jump:
        return FuGroup::Branch;
      case OpClass::Load: case OpClass::Store: case OpClass::Prefetch:
        return fus.memUnits == 0 ? FuGroup::Int : FuGroup::Mem;
      default:
        return FuGroup::None;
    }
}

} // anonymous namespace

InOrderCpu::InOrderCpu(const MachineConfig &config) : _config(config)
{
    sim_throw_if(config.outOfOrder, ErrCode::BadConfig,
                 "InOrderCpu given an out-of-order configuration '%s'",
                 config.name.c_str());
}

RunResult
InOrderCpu::run(func::TraceSource &src)
{
    const MachineConfig &cfg = _config;

    FetchEngine fetch(cfg.issueWidth, cfg.takenBranchBubble);
    InOrderIssuePort port(cfg.issueWidth,
                          {cfg.fus.intUnits, cfg.fus.fpUnits,
                           cfg.fus.branchUnits,
                           cfg.fus.memUnits ? cfg.fus.memUnits
                                            : cfg.fus.intUnits,
                           cfg.issueWidth});
    GraduationLedger ledger(cfg.issueWidth);
    memory::TimingMemorySystem mem(cfg.mem);
    mem.setFaultInjector(cfg.faults);
    branch::TwoBitPredictor bimodal(cfg.predictorEntries);
    branch::GsharePredictor gshare(cfg.predictorEntries);
    auto predict_and_update = [&](InstAddr pc, bool taken) {
        bool correct = cfg.useGshare ? gshare.predictAndUpdate(pc, taken)
                                     : bimodal.predictAndUpdate(pc, taken);
        if (cfg.faults && cfg.faults->fire(FaultPoint::MispredictStorm))
            correct = false;
        return correct;
    };

    // Forward-progress watchdog + recent-event ring for diagnostics.
    const Cycle watchdog = cfg.watchdogCycles;
    DiagRing ring(32);

    // Register scoreboard: when each value becomes available, and
    // whether it is being produced by an in-flight primary-cache miss
    // (for replay-trap emulation).
    std::array<Cycle, isa::numUnifiedRegs> reg_ready{};
    std::array<Cycle, isa::numUnifiedRegs> reg_miss_detect{};
    std::array<bool, isa::numUnifiedRegs> reg_from_miss{};
    Cycle cc_ready = 0;
    Cycle mhrr_ready = 0;
    Cycle last_issue = 0;

    // A pipeline flush (replay trap, misprediction) squashes every
    // younger in-flight instruction: none may issue before the refetch
    // reaches the issue stage again.
    Cycle issue_floor = 0;
    auto flush_at = [&](Cycle refetch) {
        fetch.gate(refetch);
        issue_floor = std::max(issue_floor,
                               refetch + cfg.frontendDepth);
    };

    RunResult res;
    res.machine = cfg.name;
    res.issueWidth = cfg.issueWidth;

    func::TraceRecord r;
    while (src.next(r)) {
        const isa::Instruction &in = r.inst;
        const OpClass cls = isa::opClass(in.op);

        const Cycle fc = fetch.fetchNext();
        Cycle earliest = std::max({fc + cfg.frontendDepth, last_issue,
                                   issue_floor});

        // Source operands (presence bits), with the 21164 replay trap:
        // if this instruction would have issued inside a missing load's
        // hit shadow, it is flushed and replayed, paying the penalty.
        const Cycle base = earliest;
        const isa::SrcRegs srcs = isa::srcRegs(in);
        for (std::uint8_t i = 0; i < srcs.count; ++i) {
            const std::uint8_t s = srcs.reg[i];
            Cycle constraint = reg_ready[s];
            if (reg_from_miss[s] && base < reg_miss_detect[s]) {
                constraint = std::max(constraint,
                                      reg_miss_detect[s] +
                                      cfg.replayTrapPenalty);
            }
            earliest = std::max(earliest, constraint);
        }
        if (in.op == Op::BRMISS || in.op == Op::BRMISS2)
            earliest = std::max(earliest, cc_ready);
        if (in.op == Op::RETMH || in.op == Op::GETMHRR)
            earliest = std::max(earliest, mhrr_ready);

        const Cycle issue = port.reserve(groupOf(cls, cfg.fus), earliest);
        last_issue = issue;

        Cycle complete = issue + cfg.lat.forClass(cls);
        bool cache_reason = false;

        switch (cls) {
          case OpClass::Load:
          case OpClass::Store:
          case OpClass::Prefetch: {
            // Present the reference to the lockup-free memory system,
            // retrying on structural hazards (bank/MSHR busy). A
            // reference that keeps being rejected is a livelock: the
            // watchdog converts it into a structured Deadlock error.
            Cycle probe = issue;
            memory::MemRequestResult mr;
            for (;;) {
                mr = mem.request(r.addr, r.level, probe);
                if (mr.accepted)
                    break;
                probe = std::max(mr.retryCycle, probe + 1);
                if (watchdog && probe > issue + watchdog) {
                    ring.push(probe, "stuck-ref", r.pc,
                              mem.mshrFile().busyEntries(probe));
                    raiseDeadlock(ring, simFormat(
                        "memory reference at pc %u (addr %#llx) "
                        "rejected for %llu cycles (MSHR/bank livelock; "
                        "%u of %u MSHRs busy)",
                        r.pc, static_cast<unsigned long long>(r.addr),
                        static_cast<unsigned long long>(probe - issue),
                        mem.mshrFile().busyEntries(probe),
                        mem.mshrFile().capacity()));
                }
            }
            ring.push(probe, "mem-accept", r.pc, r.addr);
            const Cycle miss_detect = probe + 1;
            const bool missed = r.level != MemLevel::L1;

            if (cls == OpClass::Load) {
                complete = std::max(mr.dataReady, probe + 1);
                cache_reason = missed;
            } else {
                // Stores and prefetches retire into the write buffer /
                // MSHR without blocking graduation.
                complete = probe + 1;
            }

            // An in-order machine issues memory operations
            // non-speculatively, so the section-3.3 extended MSHR
            // lifetime releases at completion (nothing can squash).
            if (cfg.mem.extendedMshrLifetime && mr.mshr.valid())
                mem.notifyGraduated(mr.mshr, complete);

            if (isa::isDataRef(in.op)) {
                ++res.dataRefs;
                if (missed)
                    ++res.l1Misses;
                cc_ready = miss_detect;

                const int rd = isa::dstReg(in);
                if (rd >= 0) {
                    reg_ready[rd] = complete;
                    reg_from_miss[rd] = missed;
                    reg_miss_detect[rd] = miss_detect;
                }

                if (r.trapped) {
                    // Informing dispatch via the replay-trap mechanism:
                    // flush and refetch from the handler.
                    ++res.traps;
                    mhrr_ready = miss_detect + 1;
                    flush_at(miss_detect + cfg.replayTrapPenalty);
                    ring.push(miss_detect, "trap", r.pc, r.addr);
                }
            }
            break;
          }

          case OpClass::Branch: {
            const Cycle resolve = issue + 1;
            complete = resolve;
            if (in.op == Op::BRMISS ||
                in.op == Op::BRMISS2) {
                // Statically predicted not-taken (the common case is a
                // hit); taken means a mispredict-style redirect.
                ++res.condBranches;
                if (r.taken) {
                    mhrr_ready = resolve + 1;
                    flush_at(resolve + cfg.redirectPenalty);
                    ++res.mispredicts;
                }
            } else {
                ++res.condBranches;
                const bool correct = predict_and_update(r.pc, r.taken);
                if (!correct) {
                    ++res.mispredicts;
                    flush_at(resolve + cfg.redirectPenalty);
                    ring.push(resolve, "mispredict", r.pc, r.taken);
                } else if (r.taken) {
                    fetch.redirectTaken(fc);
                }
            }
            break;
          }

          case OpClass::Jump: {
            complete = issue + 1;
            if (in.op == Op::JR) {
                // Register-indirect target resolves at execute.
                flush_at(complete + cfg.redirectPenalty);
            } else {
                // J/JAL/RETMH targets are available in the front end.
                fetch.redirectTaken(fc);
            }
            if (const int rd = isa::dstReg(in); rd >= 0) {
                reg_ready[rd] = complete;
                reg_from_miss[rd] = false;
            }
            break;
          }

          default: {
            if (const int rd = isa::dstReg(in); rd >= 0) {
                reg_ready[rd] = complete;
                reg_from_miss[rd] = false;
            }
            if (in.op == Op::SETMHRR)
                mhrr_ready = complete;
            if (in.op == Op::GETMHRR) {
                reg_ready[in.rd] = complete;
                reg_from_miss[in.rd] = false;
            }
            break;
          }
        }

        if (r.handlerCode)
            ++res.handlerInstructions;

        // Retirement watchdog: a completion time that runs away from
        // the graduation frontier means nothing will retire for an
        // implausibly long time (e.g. a stuck fill).
        if (watchdog && complete > ledger.lastCycle() + watchdog) {
            ring.push(complete, "no-retire", r.pc, ledger.lastCycle());
            raiseDeadlock(ring, simFormat(
                "no retirement for %llu cycles: pc %u completes at "
                "cycle %llu, last graduation at %llu",
                static_cast<unsigned long long>(
                    complete - ledger.lastCycle()),
                r.pc, static_cast<unsigned long long>(complete),
                static_cast<unsigned long long>(ledger.lastCycle())));
        }

        ring.push(complete, "grad", r.pc,
                  static_cast<std::uint64_t>(in.op));
        ledger.graduate(complete, cache_reason);
    }

    res.cycles = ledger.totalCycles();
    res.instructions = ledger.graduated();
    res.cacheStallSlots = ledger.cacheStallSlots();
    res.otherStallSlots = ledger.otherStallSlots();
    res.mshrFullRejects = mem.mshrFile().fullRejects();
    res.bankConflicts = mem.bankConflicts();
    res.squashInvalidations = mem.mshrFile().squashInvalidations();
    return res;
}

} // namespace imo::pipeline
