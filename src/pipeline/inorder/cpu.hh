/**
 * @file
 * InOrderCpu: detailed timing model of a 4-issue in-order superscalar
 * in the style of the Alpha 21164 (paper section 3.1).
 *
 * Key modeled behaviors:
 *  - in-order issue with register presence bits (an instruction issues
 *    only when its sources are ready, and blocks younger instructions);
 *  - the 21164 replay trap: a consumer issued speculatively in a load's
 *    hit shadow is replayed when the load misses, costing a pipeline
 *    flush (replayTrapPenalty);
 *  - informing miss traps implemented with the same replay-trap
 *    machinery: on a miss of an informing reference, fetch redirects to
 *    the handler at miss detection plus the replay penalty;
 *  - 2-bit branch prediction with resolve-time misprediction redirects;
 *  - the lockup-free memory system (banks, MSHRs, bandwidth).
 *
 * The model is trace-driven and holds all in-flight effects as
 * future-cycle bookkeeping, so between step() calls the machine is
 * architecturally quiesced: that boundary is where checkpoints are
 * taken (see save()/restore()).
 */

#ifndef IMO_PIPELINE_INORDER_CPU_HH
#define IMO_PIPELINE_INORDER_CPU_HH

#include <cstdint>
#include <memory>

#include "common/stats.hh"
#include "func/trace.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::pipeline
{

/** The in-order timing model. */
class InOrderCpu
{
  public:
    explicit InOrderCpu(const MachineConfig &config);
    ~InOrderCpu();

    /** Discard all timing state and start a fresh run. */
    void reset();

    /**
     * Consume one record from @p src and advance the timing model.
     * Requires reset() (or restore()) first.
     * @return false once @p src is exhausted.
     */
    bool step(func::TraceSource &src);

    /** Records consumed since reset()/restore(). */
    std::uint64_t retired() const;

    /**
     * Functional warming: train the active branch predictor with a
     * resolved direction without advancing the pipeline or touching
     * lookup/mispredict statistics. Used by the sampling controller
     * while the executor fast-forwards between detailed windows, so
     * predictor state on re-entry matches a continuously stepped run.
     * Requires reset() (or restore()) first.
     */
    void warmCondBranch(InstAddr pc, bool taken);

    /**
     * Snapshot the result so far. Callable at any step boundary and
     * after a step() threw (partial statistics for failure reports).
     */
    RunResult result() const;

    /** Replay @p src to exhaustion and return the timing result. */
    RunResult run(func::TraceSource &src);

    /**
     * Expose the model's full stats tree (pipeline counters, trap
     * service histogram, predictors, memory system, MSHRs) as a "cpu"
     * group under @p parent. Requires reset() first; valid until the
     * next reset().
     */
    void registerStats(stats::StatGroup &parent);

    /**
     * Checkpoint hooks. Only meaningful between step() calls (the
     * quiesced boundary). restore() implies reset() and requires a
     * configuration matching the one that produced the image.
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

    /**
     * Live-point warm-state hooks: the subset of timing state that
     * functional warming trains across a fast-forward gap — the branch
     * predictor tables (and gshare history). A sampled measure window
     * starts from a freshly reset machine plus this warm state;
     * short-lived state (pipeline occupancy, MSHRs, BTB) is
     * re-established by the window's warmup span. Both require
     * reset() (or restore()) first.
     */
    void saveWarmState(Serializer &s) const;
    void restoreWarmState(Deserializer &d);

  private:
    struct Timing;

    MachineConfig _config;
    std::unique_ptr<Timing> _t;
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_INORDER_CPU_HH
