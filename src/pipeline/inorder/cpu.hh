/**
 * @file
 * InOrderCpu: detailed timing model of a 4-issue in-order superscalar
 * in the style of the Alpha 21164 (paper section 3.1).
 *
 * Key modeled behaviors:
 *  - in-order issue with register presence bits (an instruction issues
 *    only when its sources are ready, and blocks younger instructions);
 *  - the 21164 replay trap: a consumer issued speculatively in a load's
 *    hit shadow is replayed when the load misses, costing a pipeline
 *    flush (replayTrapPenalty);
 *  - informing miss traps implemented with the same replay-trap
 *    machinery: on a miss of an informing reference, fetch redirects to
 *    the handler at miss detection plus the replay penalty;
 *  - 2-bit branch prediction with resolve-time misprediction redirects;
 *  - the lockup-free memory system (banks, MSHRs, bandwidth).
 */

#ifndef IMO_PIPELINE_INORDER_CPU_HH
#define IMO_PIPELINE_INORDER_CPU_HH

#include "func/trace.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo::pipeline
{

/** The in-order timing model. */
class InOrderCpu
{
  public:
    explicit InOrderCpu(const MachineConfig &config);

    /** Replay @p src to exhaustion and return the timing result. */
    RunResult run(func::TraceSource &src);

  private:
    MachineConfig _config;
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_INORDER_CPU_HH
