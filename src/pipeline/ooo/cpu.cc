#include "pipeline/ooo/cpu.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "branch/predictor.hh"
#include "common/diagring.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "isa/instruction.hh"
#include "memory/timing.hh"
#include "pipeline/timing_util.hh"
#include "pipeline/watchdog.hh"

namespace imo::pipeline
{

using isa::Op;
using isa::OpClass;

namespace
{

FuGroup
groupOf(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: case OpClass::IntMul: case OpClass::IntDiv:
        return FuGroup::Int;
      case OpClass::FpAlu: case OpClass::FpDiv: case OpClass::FpSqrt:
        return FuGroup::Fp;
      case OpClass::Branch: case OpClass::Jump:
        return FuGroup::Branch;
      case OpClass::Load: case OpClass::Store: case OpClass::Prefetch:
        return FuGroup::Mem;
      default:
        return FuGroup::None;
    }
}

} // anonymous namespace

OooCpu::OooCpu(const MachineConfig &config) : _config(config)
{
    sim_throw_if(!config.outOfOrder, ErrCode::BadConfig,
                 "OooCpu given an in-order configuration '%s'",
                 config.name.c_str());
    sim_throw_if(config.robSize == 0, ErrCode::BadConfig,
                 "reorder buffer must be nonempty");
}

RunResult
OooCpu::run(func::TraceSource &src)
{
    const MachineConfig &cfg = _config;

    FetchEngine fetch(cfg.issueWidth, cfg.takenBranchBubble);
    InOrderIssuePort dispatch_port(
        cfg.issueWidth,
        {cfg.issueWidth, cfg.issueWidth, cfg.issueWidth, cfg.issueWidth,
         cfg.issueWidth});
    GraduationLedger ledger(cfg.issueWidth);
    memory::TimingMemorySystem mem(cfg.mem);
    mem.setFaultInjector(cfg.faults);
    branch::TwoBitPredictor bimodal(cfg.predictorEntries);
    branch::GsharePredictor gshare(cfg.predictorEntries);
    auto predict_and_update = [&](InstAddr pc, bool taken) {
        bool correct = cfg.useGshare ? gshare.predictAndUpdate(pc, taken)
                                     : bimodal.predictAndUpdate(pc, taken);
        if (cfg.faults && cfg.faults->fire(FaultPoint::MispredictStorm))
            correct = false;
        return correct;
    };

    // Forward-progress watchdog + recent-event ring for diagnostics.
    const Cycle watchdog = cfg.watchdogCycles;
    DiagRing ring(32);

    SlotTable fu_int(cfg.fus.intUnits);
    SlotTable fu_fp(cfg.fus.fpUnits);
    SlotTable fu_br(cfg.fus.branchUnits);
    SlotTable fu_mem(std::max<std::uint32_t>(cfg.fus.memUnits, 1));
    auto fu_for = [&](FuGroup g) -> SlotTable * {
        switch (g) {
          case FuGroup::Int: return &fu_int;
          case FuGroup::Fp: return &fu_fp;
          case FuGroup::Branch: return &fu_br;
          case FuGroup::Mem: return &fu_mem;
          default: return nullptr;
        }
    };

    // Renamed register file: availability time of the newest version.
    std::array<Cycle, isa::numUnifiedRegs> reg_ready{};
    Cycle cc_ready = 0;
    Cycle mhrr_ready = 0;

    // Reorder buffer occupancy: graduation cycle per slot.
    std::vector<Cycle> grad_history(cfg.robSize, 0);

    // Unresolved predicted branches (shadow-state checkpoints).
    std::vector<Cycle> outstanding_branches;

    RunResult res;
    res.machine = cfg.name;
    res.issueWidth = cfg.issueWidth;

    const bool branch_style =
        cfg.trapDispatch == TrapDispatch::BranchStyle;

    std::uint64_t index = 0;
    Cycle last_wrong_path_addr = 0;

    func::TraceRecord r;
    while (src.next(r)) {
        const isa::Instruction &in = r.inst;
        const OpClass cls = isa::opClass(in.op);
        const FuGroup group = groupOf(cls);

        const Cycle fc = fetch.fetchNext();
        Cycle d = fc + cfg.frontendDepth;

        // Reorder-buffer space: reuse the entry of the instruction
        // robSize back, one cycle after it graduated.
        if (index >= cfg.robSize) {
            d = std::max(d, grad_history[index % cfg.robSize] + 1);
        }
        d = dispatch_port.reserve(FuGroup::None, d);

        // Shadow-state checkpoints: conditional branches (and,
        // optionally, informing references in branch-style mode)
        // each hold one until they resolve.
        const bool needs_checkpoint =
            isa::isCondBranch(in.op) ||
            (cfg.informingTakesCheckpoint && branch_style &&
             isa::isDataRef(in.op) && in.informing);
        if (needs_checkpoint && cfg.maxUnresolvedBranches > 0) {
            std::erase_if(outstanding_branches,
                          [d](Cycle c) { return c <= d; });
            if (outstanding_branches.size() >=
                cfg.maxUnresolvedBranches) {
                const Cycle earliest = *std::min_element(
                    outstanding_branches.begin(),
                    outstanding_branches.end());
                d = std::max(d, earliest);
                std::erase_if(outstanding_branches,
                              [d](Cycle c) { return c <= d; });
            }
        }

        // Wakeup: true data dependences only (renaming removes WAR/WAW).
        Cycle ready = d + 1;
        const isa::SrcRegs srcs = isa::srcRegs(in);
        for (std::uint8_t i = 0; i < srcs.count; ++i)
            ready = std::max(ready, reg_ready[srcs.reg[i]]);
        if (in.op == Op::BRMISS || in.op == Op::BRMISS2)
            ready = std::max(ready, cc_ready);
        if (in.op == Op::RETMH || in.op == Op::GETMHRR)
            ready = std::max(ready, mhrr_ready);

        SlotTable *fu = fu_for(group);
        const Cycle issue = fu ? fu->reserve(ready) : ready;

        Cycle complete = issue + cfg.lat.forClass(cls);
        bool cache_reason = false;
        Cycle resolve_for_checkpoint = 0;
        memory::MshrRef mshr_ref;

        switch (cls) {
          case OpClass::Load:
          case OpClass::Store:
          case OpClass::Prefetch: {
            // Retry structural-hazard rejections (bank/MSHR busy); a
            // reference that is rejected forever is a livelock the
            // watchdog converts into a structured Deadlock error.
            Cycle probe = issue;
            memory::MemRequestResult mr;
            for (;;) {
                mr = mem.request(r.addr, r.level, probe);
                if (mr.accepted)
                    break;
                probe = std::max(mr.retryCycle, probe + 1);
                if (watchdog && probe > issue + watchdog) {
                    ring.push(probe, "stuck-ref", r.pc,
                              mem.mshrFile().busyEntries(probe));
                    raiseDeadlock(ring, simFormat(
                        "memory reference at pc %u (addr %#llx) "
                        "rejected for %llu cycles (MSHR/bank livelock; "
                        "%u of %u MSHRs busy)",
                        r.pc, static_cast<unsigned long long>(r.addr),
                        static_cast<unsigned long long>(probe - issue),
                        mem.mshrFile().busyEntries(probe),
                        mem.mshrFile().capacity()));
                }
            }
            ring.push(probe, "mem-accept", r.pc, r.addr);
            const Cycle miss_detect = probe + 1;
            const bool missed = r.level != MemLevel::L1;

            if (cls == OpClass::Load) {
                complete = std::max(mr.dataReady, probe + 1);
                cache_reason = missed;
            } else {
                complete = probe + 1;
            }
            resolve_for_checkpoint = miss_detect;

            if (isa::isDataRef(in.op)) {
                ++res.dataRefs;
                if (missed)
                    ++res.l1Misses;
                cc_ready = miss_detect;

                const int rd = isa::dstReg(in);
                if (rd >= 0)
                    reg_ready[rd] = complete;

                if (r.trapped) {
                    ++res.traps;
                    ring.push(miss_detect, "trap", r.pc, r.addr);
                    if (branch_style) {
                        // Redirect like a mispredicted branch as soon
                        // as the miss is detected.
                        mhrr_ready = miss_detect + 1;
                        fetch.gate(miss_detect + cfg.redirectPenalty);
                    }
                    // Exception-style dispatch is applied after this
                    // instruction's graduation (below).
                }

                mshr_ref = mr.mshr;
            } else {
                // Prefetch: fire and forget.
                complete = probe + 1;
            }
            break;
          }

          case OpClass::Branch: {
            const Cycle resolve = issue + 1;
            complete = resolve;
            resolve_for_checkpoint = resolve;
            ++res.condBranches;
            if (in.op == Op::BRMISS ||
                in.op == Op::BRMISS2) {
                if (r.taken) {
                    ++res.mispredicts;
                    mhrr_ready = resolve + 1;
                    fetch.gate(resolve + cfg.redirectPenalty);
                }
            } else {
                const bool correct = predict_and_update(r.pc, r.taken);
                if (!correct) {
                    ++res.mispredicts;
                    fetch.gate(resolve + cfg.redirectPenalty);
                    ring.push(resolve, "mispredict", r.pc, r.taken);
                    if (_wrongPathProbes > 0) {
                        // Inject squashed speculative line fetches past
                        // the mispredicted branch (section 3.3). They
                        // execute as soon as the wrong-path loads could
                        // issue (right after dispatch) and are squashed
                        // when the branch resolves; fills that complete
                        // in between must be invalidated.
                        for (std::uint32_t p = 0; p < _wrongPathProbes;
                             ++p) {
                            const Addr a = r.addr + 0x4000 +
                                (++last_wrong_path_addr *
                                 cfg.mem.lineBytes);
                            memory::MemRequestResult wr = mem.request(
                                a, MemLevel::L2, d + 1);
                            if (wr.accepted && wr.mshr.valid())
                                mem.notifySquashed(wr.mshr, resolve);
                        }
                    }
                } else if (r.taken) {
                    fetch.redirectTaken(fc);
                }
            }
            break;
          }

          case OpClass::Jump: {
            complete = issue + 1;
            if (in.op == Op::JR) {
                fetch.gate(complete + cfg.redirectPenalty);
            } else {
                fetch.redirectTaken(fc);
            }
            if (const int rd = isa::dstReg(in); rd >= 0)
                reg_ready[rd] = complete;
            break;
          }

          default: {
            if (const int rd = isa::dstReg(in); rd >= 0)
                reg_ready[rd] = complete;
            if (in.op == Op::SETMHRR)
                mhrr_ready = complete;
            if (in.op == Op::GETMHRR)
                reg_ready[in.rd] = complete;
            break;
          }
        }

        if (needs_checkpoint && cfg.maxUnresolvedBranches > 0)
            outstanding_branches.push_back(resolve_for_checkpoint);

        if (r.handlerCode)
            ++res.handlerInstructions;

        if (isa::isDataRef(in.op) && r.trapped && !branch_style) {
            // Exception-style informing dispatch: postponed until the
            // reference reaches the head of the reorder buffer (all
            // older instructions have graduated) and its miss is known;
            // the machine is then flushed and the handler fetched. The
            // reference itself still graduates when its data returns,
            // overlapping the handler.
            const Cycle at_head =
                std::max(resolve_for_checkpoint, ledger.lastCycle());
            mhrr_ready = at_head + cfg.exceptionFlushPenalty;
            fetch.gate(at_head + cfg.exceptionFlushPenalty);
        }

        // Retirement watchdog: a completion time that runs away from
        // the graduation frontier means nothing will retire for an
        // implausibly long time (e.g. a stuck fill).
        if (watchdog && complete > ledger.lastCycle() + watchdog) {
            ring.push(complete, "no-retire", r.pc, ledger.lastCycle());
            raiseDeadlock(ring, simFormat(
                "no retirement for %llu cycles: pc %u completes at "
                "cycle %llu, last graduation at %llu",
                static_cast<unsigned long long>(
                    complete - ledger.lastCycle()),
                r.pc, static_cast<unsigned long long>(complete),
                static_cast<unsigned long long>(ledger.lastCycle())));
        }

        ring.push(complete, "grad", r.pc,
                  static_cast<std::uint64_t>(in.op));
        const Cycle grad = ledger.graduate(complete + 1, cache_reason);
        grad_history[index % cfg.robSize] = grad;

        // With the extended MSHR lifetime of section 3.3, demand-miss
        // entries stay pinned until the owning instruction graduates.
        // (Wrong-path probes were squashed at resolve above.)
        if (cfg.mem.extendedMshrLifetime && mshr_ref.valid())
            mem.notifyGraduated(mshr_ref, grad);

        // Periodically prune reservation bookkeeping behind the ROB.
        if ((index & 0xfff) == 0 && index >= cfg.robSize) {
            const Cycle frontier = grad_history[index % cfg.robSize];
            fu_int.pruneBelow(frontier);
            fu_fp.pruneBelow(frontier);
            fu_br.pruneBelow(frontier);
            fu_mem.pruneBelow(frontier);
        }

        ++index;
    }

    res.cycles = ledger.totalCycles();
    res.instructions = ledger.graduated();
    res.cacheStallSlots = ledger.cacheStallSlots();
    res.otherStallSlots = ledger.otherStallSlots();
    res.mshrFullRejects = mem.mshrFile().fullRejects();
    res.bankConflicts = mem.bankConflicts();
    res.squashInvalidations = mem.mshrFile().squashInvalidations();
    return res;
}

} // namespace imo::pipeline
