#include "pipeline/ooo/cpu.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "branch/predictor.hh"
#include "common/checkpoint.hh"
#include "common/diagring.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "isa/instruction.hh"
#include "memory/timing.hh"
#include "obs/observer.hh"
#include "pipeline/pipe_stats.hh"
#include "pipeline/timing_util.hh"
#include "pipeline/watchdog.hh"

namespace imo::pipeline
{

using isa::Op;
using isa::OpClass;

namespace
{

FuGroup
groupOf(OpClass cls)
{
    switch (cls) {
      case OpClass::IntAlu: case OpClass::IntMul: case OpClass::IntDiv:
        return FuGroup::Int;
      case OpClass::FpAlu: case OpClass::FpDiv: case OpClass::FpSqrt:
        return FuGroup::Fp;
      case OpClass::Branch: case OpClass::Jump:
        return FuGroup::Branch;
      case OpClass::Load: case OpClass::Store: case OpClass::Prefetch:
        return FuGroup::Mem;
      default:
        return FuGroup::None;
    }
}

} // anonymous namespace

/** All mutable state of one out-of-order timing run. */
struct OooCpu::Timing
{
    explicit Timing(const MachineConfig &cfg)
        : fetch(cfg.issueWidth, cfg.takenBranchBubble),
          dispatchPort(cfg.issueWidth,
                       {cfg.issueWidth, cfg.issueWidth, cfg.issueWidth,
                        cfg.issueWidth, cfg.issueWidth}),
          ledger(cfg.issueWidth), mem(cfg.mem),
          bimodal(cfg.predictorEntries), gshare(cfg.predictorEntries),
          ring(32), fuInt(cfg.fus.intUnits), fuFp(cfg.fus.fpUnits),
          fuBr(cfg.fus.branchUnits),
          fuMem(std::max<std::uint32_t>(cfg.fus.memUnits, 1)),
          gradHistory(cfg.robSize, 0)
    {
        mem.setFaultInjector(cfg.faults);
        obs = cfg.obs;
        trace = obs ? obs->traceSink() : nullptr;
        mem.setTraceSink(trace);
    }

    FetchEngine fetch;
    InOrderIssuePort dispatchPort;
    GraduationLedger ledger;
    memory::TimingMemorySystem mem;
    branch::TwoBitPredictor bimodal;
    branch::GsharePredictor gshare;
    DiagRing ring;

    SlotTable fuInt;
    SlotTable fuFp;
    SlotTable fuBr;
    SlotTable fuMem;

    // Renamed register file: availability time of the newest version.
    std::array<Cycle, isa::numUnifiedRegs> regReady{};
    Cycle ccReady = 0;
    Cycle mhrrReady = 0;

    // Reorder buffer occupancy: graduation cycle per slot.
    std::vector<Cycle> gradHistory;

    // Unresolved predicted branches (shadow-state checkpoints).
    std::vector<Cycle> outstandingBranches;

    // Informing trap service measurement: dispatch cycle of the trap
    // whose RETMH has not yet completed (handlers cannot nest).
    bool trapPending = false;
    Cycle trapDispatch = 0;

    std::uint64_t index = 0;
    Cycle lastWrongPathAddr = 0;
    PipeStats pipe;  //!< live counters; RunResult derives from these
    obs::Observer *obs = nullptr;
    obs::TraceSink *trace = nullptr;
};

OooCpu::OooCpu(const MachineConfig &config) : _config(config)
{
    sim_throw_if(!config.outOfOrder, ErrCode::BadConfig,
                 "OooCpu given an in-order configuration '%s'",
                 config.name.c_str());
    sim_throw_if(config.robSize == 0, ErrCode::BadConfig,
                 "reorder buffer must be nonempty");
}

OooCpu::~OooCpu() = default;

void
OooCpu::reset()
{
    _t = std::make_unique<Timing>(_config);
}

std::uint64_t
OooCpu::retired() const
{
    return _t ? _t->index : 0;
}

void
OooCpu::warmCondBranch(InstAddr pc, bool taken)
{
    panic_if(!_t, "OooCpu::warmCondBranch before reset()");
    // update() only: warming must leave accuracy statistics untouched
    // (no lookup happened in the pipeline) while keeping the counter
    // table — and gshare's global history — exactly as trained.
    if (_config.useGshare)
        _t->gshare.update(pc, taken);
    else
        _t->bimodal.update(pc, taken);
}

void
OooCpu::saveWarmState(Serializer &s) const
{
    panic_if(!_t, "OooCpu::saveWarmState before reset()");
    _t->bimodal.save(s);
    _t->gshare.save(s);
}

void
OooCpu::restoreWarmState(Deserializer &d)
{
    panic_if(!_t, "OooCpu::restoreWarmState before reset()");
    _t->bimodal.restore(d);
    _t->gshare.restore(d);
}

bool
OooCpu::step(func::TraceSource &src)
{
    panic_if(!_t, "OooCpu::step before reset()");
    Timing &t = *_t;
    const MachineConfig &cfg = _config;
    const Cycle watchdog = cfg.watchdogCycles;
    const bool branch_style =
        cfg.trapDispatch == TrapDispatch::BranchStyle;

    auto predict_and_update = [&](InstAddr pc, bool taken) {
        bool correct = cfg.useGshare
            ? t.gshare.predictAndUpdate(pc, taken)
            : t.bimodal.predictAndUpdate(pc, taken);
        if (cfg.faults && cfg.faults->fire(FaultPoint::MispredictStorm))
            correct = false;
        return correct;
    };
    auto fu_for = [&](FuGroup g) -> SlotTable * {
        switch (g) {
          case FuGroup::Int: return &t.fuInt;
          case FuGroup::Fp: return &t.fuFp;
          case FuGroup::Branch: return &t.fuBr;
          case FuGroup::Mem: return &t.fuMem;
          default: return nullptr;
        }
    };

    func::TraceRecord r;
    if (!src.next(r))
        return false;

    const isa::Instruction &in = r.inst;
    const OpClass cls = isa::opClass(in.op);
    const FuGroup group = groupOf(cls);

    const Cycle fc = t.fetch.fetchNext();
    Cycle d = fc + cfg.frontendDepth;

    // Reorder-buffer space: reuse the entry of the instruction
    // robSize back, one cycle after it graduated.
    if (t.index >= cfg.robSize) {
        d = std::max(d, t.gradHistory[t.index % cfg.robSize] + 1);
    }
    d = t.dispatchPort.reserve(FuGroup::None, d);

    // Shadow-state checkpoints: conditional branches (and,
    // optionally, informing references in branch-style mode)
    // each hold one until they resolve.
    const bool needs_checkpoint =
        isa::isCondBranch(in.op) ||
        (cfg.informingTakesCheckpoint && branch_style &&
         isa::isDataRef(in.op) && in.informing);
    if (needs_checkpoint && cfg.maxUnresolvedBranches > 0) {
        std::erase_if(t.outstandingBranches,
                      [d](Cycle c) { return c <= d; });
        if (t.outstandingBranches.size() >=
            cfg.maxUnresolvedBranches) {
            const Cycle earliest = *std::min_element(
                t.outstandingBranches.begin(),
                t.outstandingBranches.end());
            d = std::max(d, earliest);
            std::erase_if(t.outstandingBranches,
                          [d](Cycle c) { return c <= d; });
        }
    }

    // Wakeup: true data dependences only (renaming removes WAR/WAW).
    Cycle ready = d + 1;
    const isa::SrcRegs srcs = isa::srcRegs(in);
    for (std::uint8_t i = 0; i < srcs.count; ++i)
        ready = std::max(ready, t.regReady[srcs.reg[i]]);
    if (in.op == Op::BRMISS || in.op == Op::BRMISS2)
        ready = std::max(ready, t.ccReady);
    if (in.op == Op::RETMH || in.op == Op::GETMHRR)
        ready = std::max(ready, t.mhrrReady);

    SlotTable *fu = fu_for(group);
    const Cycle issue = fu ? fu->reserve(ready) : ready;
    IMO_TRACE(t.trace, issue, obs::Cat::Issue, "issue", r.pc,
              static_cast<std::uint64_t>(in.op));

    Cycle complete = issue + cfg.lat.forClass(cls);
    bool cache_reason = false;
    Cycle resolve_for_checkpoint = 0;
    memory::MshrRef mshr_ref;

    switch (cls) {
      case OpClass::Load:
      case OpClass::Store:
      case OpClass::Prefetch: {
        // Retry structural-hazard rejections (bank/MSHR busy); a
        // reference that is rejected forever is a livelock the
        // watchdog converts into a structured Deadlock error.
        Cycle probe = issue;
        memory::MemRequestResult mr;
        for (;;) {
            mr = t.mem.request(r.addr, r.level, probe);
            if (mr.accepted)
                break;
            probe = std::max(mr.retryCycle, probe + 1);
            if (watchdog && probe > issue + watchdog) {
                t.ring.push(probe, "stuck-ref", r.pc,
                            t.mem.mshrFile().busyEntries(probe));
                raiseDeadlock(t.ring, simFormat(
                    "memory reference at pc %u (addr %#llx) "
                    "rejected for %llu cycles (MSHR/bank livelock; "
                    "%u of %u MSHRs busy)",
                    r.pc, static_cast<unsigned long long>(r.addr),
                    static_cast<unsigned long long>(probe - issue),
                    t.mem.mshrFile().busyEntries(probe),
                    t.mem.mshrFile().capacity()));
            }
        }
        t.ring.push(probe, "mem-accept", r.pc, r.addr);
        const Cycle miss_detect = probe + 1;
        const bool missed = r.level != MemLevel::L1;

        if (cls == OpClass::Load) {
            complete = std::max(mr.dataReady, probe + 1);
            cache_reason = missed;
        } else {
            complete = probe + 1;
        }
        resolve_for_checkpoint = miss_detect;

        if (isa::isDataRef(in.op)) {
            ++t.pipe.dataRefs;
            if (missed) {
                ++t.pipe.l1Misses;
                if (t.obs) {
                    t.obs->profiler.noteMiss(
                        r.pc, r.level == MemLevel::Memory,
                        mr.dataReady > probe ? mr.dataReady - probe : 0,
                        r.trapped);
                }
            }
            t.ccReady = miss_detect;

            const int rd = isa::dstReg(in);
            if (rd >= 0)
                t.regReady[rd] = complete;

            if (r.trapped) {
                ++t.pipe.traps;
                t.ring.push(miss_detect, "trap", r.pc, r.addr);
                if (branch_style) {
                    // Redirect like a mispredicted branch as soon
                    // as the miss is detected.
                    t.mhrrReady = miss_detect + 1;
                    t.fetch.gate(miss_detect + cfg.redirectPenalty);
                    t.trapPending = true;
                    t.trapDispatch = miss_detect;
                    IMO_TRACE(t.trace, miss_detect, obs::Cat::Trap,
                              "trap-enter", r.pc, r.addr);
                }
                // Exception-style dispatch is applied after this
                // instruction's graduation (below).
            }

            mshr_ref = mr.mshr;
        } else {
            // Prefetch: fire and forget.
            complete = probe + 1;
        }
        break;
      }

      case OpClass::Branch: {
        const Cycle resolve = issue + 1;
        complete = resolve;
        resolve_for_checkpoint = resolve;
        ++t.pipe.condBranches;
        if (in.op == Op::BRMISS ||
            in.op == Op::BRMISS2) {
            if (r.taken) {
                ++t.pipe.mispredicts;
                t.mhrrReady = resolve + 1;
                t.fetch.gate(resolve + cfg.redirectPenalty);
            }
        } else {
            const bool correct = predict_and_update(r.pc, r.taken);
            if (!correct) {
                ++t.pipe.mispredicts;
                t.fetch.gate(resolve + cfg.redirectPenalty);
                t.ring.push(resolve, "mispredict", r.pc, r.taken);
                IMO_TRACE(t.trace, resolve, obs::Cat::Fetch, "mispredict",
                          r.pc, r.taken);
                if (_wrongPathProbes > 0) {
                    // Inject squashed speculative line fetches past
                    // the mispredicted branch (section 3.3). They
                    // execute as soon as the wrong-path loads could
                    // issue (right after dispatch) and are squashed
                    // when the branch resolves; fills that complete
                    // in between must be invalidated.
                    for (std::uint32_t p = 0; p < _wrongPathProbes;
                         ++p) {
                        const Addr a = r.addr + 0x4000 +
                            (++t.lastWrongPathAddr *
                             cfg.mem.lineBytes);
                        memory::MemRequestResult wr = t.mem.request(
                            a, MemLevel::L2, d + 1);
                        if (wr.accepted && wr.mshr.valid())
                            t.mem.notifySquashed(wr.mshr, resolve);
                    }
                }
            } else if (r.taken) {
                t.fetch.redirectTaken(fc);
            }
        }
        break;
      }

      case OpClass::Jump: {
        complete = issue + 1;
        if (in.op == Op::JR) {
            t.fetch.gate(complete + cfg.redirectPenalty);
        } else {
            t.fetch.redirectTaken(fc);
        }
        if (in.op == Op::RETMH && t.trapPending) {
            t.pipe.trapService.sample(complete - t.trapDispatch);
            t.trapPending = false;
            IMO_TRACE(t.trace, t.trapDispatch, obs::Cat::Trap, "trap-exit",
                      r.pc, 0, 0, complete - t.trapDispatch);
        }
        if (const int rd = isa::dstReg(in); rd >= 0)
            t.regReady[rd] = complete;
        break;
      }

      default: {
        if (const int rd = isa::dstReg(in); rd >= 0)
            t.regReady[rd] = complete;
        if (in.op == Op::SETMHRR)
            t.mhrrReady = complete;
        if (in.op == Op::GETMHRR)
            t.regReady[in.rd] = complete;
        break;
      }
    }

    if (needs_checkpoint && cfg.maxUnresolvedBranches > 0)
        t.outstandingBranches.push_back(resolve_for_checkpoint);

    if (r.handlerCode)
        ++t.pipe.handlerInstructions;

    if (isa::isDataRef(in.op) && r.trapped && !branch_style) {
        // Exception-style informing dispatch: postponed until the
        // reference reaches the head of the reorder buffer (all
        // older instructions have graduated) and its miss is known;
        // the machine is then flushed and the handler fetched. The
        // reference itself still graduates when its data returns,
        // overlapping the handler.
        const Cycle at_head =
            std::max(resolve_for_checkpoint, t.ledger.lastCycle());
        t.mhrrReady = at_head + cfg.exceptionFlushPenalty;
        t.fetch.gate(at_head + cfg.exceptionFlushPenalty);
        t.trapPending = true;
        t.trapDispatch = at_head + cfg.exceptionFlushPenalty;
        IMO_TRACE(t.trace, t.trapDispatch, obs::Cat::Trap, "trap-enter",
                  r.pc, r.addr);
    }

    // Retirement watchdog: a completion time that runs away from
    // the graduation frontier means nothing will retire for an
    // implausibly long time (e.g. a stuck fill).
    if (watchdog && complete > t.ledger.lastCycle() + watchdog) {
        t.ring.push(complete, "no-retire", r.pc, t.ledger.lastCycle());
        raiseDeadlock(t.ring, simFormat(
            "no retirement for %llu cycles: pc %u completes at "
            "cycle %llu, last graduation at %llu",
            static_cast<unsigned long long>(
                complete - t.ledger.lastCycle()),
            r.pc, static_cast<unsigned long long>(complete),
            static_cast<unsigned long long>(t.ledger.lastCycle())));
    }

    t.ring.push(complete, "grad", r.pc,
                static_cast<std::uint64_t>(in.op));
    IMO_TRACE(t.trace, complete, obs::Cat::Grad, "grad", r.pc,
              static_cast<std::uint64_t>(in.op));
    Cycle grad;
    if (t.obs && cache_reason) {
        const std::uint64_t before = t.ledger.cacheStallSlots();
        grad = t.ledger.graduate(complete + 1, cache_reason);
        t.obs->profiler.noteStall(r.pc,
                                  t.ledger.cacheStallSlots() - before);
    } else {
        grad = t.ledger.graduate(complete + 1, cache_reason);
    }
    t.gradHistory[t.index % cfg.robSize] = grad;

    // With the extended MSHR lifetime of section 3.3, demand-miss
    // entries stay pinned until the owning instruction graduates.
    // (Wrong-path probes were squashed at resolve above.)
    if (cfg.mem.extendedMshrLifetime && mshr_ref.valid())
        t.mem.notifyGraduated(mshr_ref, grad);

    // Periodically prune reservation bookkeeping behind the ROB.
    if ((t.index & 0xfff) == 0 && t.index >= cfg.robSize) {
        const Cycle frontier = t.gradHistory[t.index % cfg.robSize];
        t.fuInt.pruneBelow(frontier);
        t.fuFp.pruneBelow(frontier);
        t.fuBr.pruneBelow(frontier);
        t.fuMem.pruneBelow(frontier);
    }

    ++t.index;
    return true;
}

RunResult
OooCpu::result() const
{
    if (!_t) {
        RunResult res;
        res.machine = _config.name;
        res.issueWidth = _config.issueWidth;
        return res;
    }
    const Timing &t = *_t;
    RunResult res;
    res.machine = _config.name;
    res.issueWidth = _config.issueWidth;
    res.dataRefs = t.pipe.dataRefs.value();
    res.l1Misses = t.pipe.l1Misses.value();
    res.traps = t.pipe.traps.value();
    res.replayTraps = t.pipe.replayTraps.value();
    res.condBranches = t.pipe.condBranches.value();
    res.mispredicts = t.pipe.mispredicts.value();
    res.handlerInstructions = t.pipe.handlerInstructions.value();
    res.cycles = t.ledger.totalCycles();
    res.instructions = t.ledger.graduated();
    res.cacheStallSlots = t.ledger.cacheStallSlots();
    res.otherStallSlots = t.ledger.otherStallSlots();
    res.mshrFullRejects = t.mem.mshrFile().fullRejects();
    res.bankConflicts = t.mem.bankConflicts();
    res.squashInvalidations = t.mem.mshrFile().squashInvalidations();
    return res;
}

void
OooCpu::registerStats(stats::StatGroup &parent)
{
    panic_if(!_t, "OooCpu::registerStats before reset()");
    Timing *t = _t.get();
    auto &g = parent.childGroup("cpu");
    g.make<stats::Value>("cycles", "total simulated cycles",
                         [t] { return t->ledger.totalCycles(); });
    g.make<stats::Value>("instructions", "instructions graduated",
                         [t] { return t->ledger.graduated(); });
    g.make<stats::Value>("cache_stall_slots",
                         "graduation slots lost to cache misses",
                         [t] { return t->ledger.cacheStallSlots(); });
    g.make<stats::Value>("other_stall_slots",
                         "graduation slots lost to other causes",
                         [t] { return t->ledger.otherStallSlots(); });
    g.make<stats::Derived>("ipc", "instructions per cycle", [t] {
        const Cycle c = t->ledger.totalCycles();
        return c ? static_cast<double>(t->ledger.graduated()) / c : 0.0;
    });
    g.adoptChild(t->pipe.group);
    if (_config.useGshare)
        t->gshare.registerStats(g, "predictor");
    else
        t->bimodal.registerStats(g, "predictor");
    t->mem.registerStats(g);
}

RunResult
OooCpu::run(func::TraceSource &src)
{
    reset();
    while (step(src)) {
    }
    return result();
}

void
OooCpu::save(Serializer &s) const
{
    panic_if(!_t, "OooCpu::save before reset()");
    const Timing &t = *_t;
    s.u32(_wrongPathProbes);
    t.fetch.save(s);
    t.dispatchPort.save(s);
    t.ledger.save(s);
    t.mem.save(s);
    t.bimodal.save(s);
    t.gshare.save(s);
    t.ring.save(s);
    t.fuInt.save(s);
    t.fuFp.save(s);
    t.fuBr.save(s);
    t.fuMem.save(s);
    for (const Cycle c : t.regReady)
        s.u64(c);
    s.u64(t.ccReady);
    s.u64(t.mhrrReady);
    s.u64(t.gradHistory.size());
    for (const Cycle c : t.gradHistory)
        s.u64(c);
    s.vecU64(t.outstandingBranches);
    s.u64(t.index);
    s.u64(t.lastWrongPathAddr);
    s.b(t.trapPending);
    s.u64(t.trapDispatch);
    t.pipe.save(s);
}

void
OooCpu::restore(Deserializer &d)
{
    reset();
    Timing &t = *_t;
    _wrongPathProbes = d.u32();
    t.fetch.restore(d);
    t.dispatchPort.restore(d);
    t.ledger.restore(d);
    t.mem.restore(d);
    t.bimodal.restore(d);
    t.gshare.restore(d);
    t.ring.restore(d);
    t.fuInt.restore(d);
    t.fuFp.restore(d);
    t.fuBr.restore(d);
    t.fuMem.restore(d);
    for (Cycle &c : t.regReady)
        c = d.u64();
    t.ccReady = d.u64();
    t.mhrrReady = d.u64();
    const std::uint64_t rob = d.u64();
    sim_throw_if(rob != t.gradHistory.size(), ErrCode::BadCheckpoint,
                 "checkpointed reorder buffer has %llu entries, "
                 "configured machine has %zu",
                 static_cast<unsigned long long>(rob),
                 t.gradHistory.size());
    for (Cycle &c : t.gradHistory)
        c = d.u64();
    t.outstandingBranches = d.vecU64();
    t.index = d.u64();
    t.lastWrongPathAddr = d.u64();
    t.trapPending = d.b();
    t.trapDispatch = d.u64();
    t.pipe.restore(d);
}

} // namespace imo::pipeline
