/**
 * @file
 * OooCpu: detailed timing model of a 4-issue out-of-order superscalar
 * in the style of the MIPS R10000 (paper section 3.2).
 *
 * Key modeled behaviors:
 *  - register renaming (dataflow issue: only true dependences stall);
 *  - a 32-entry reorder buffer with in-order graduation, 4 per cycle;
 *  - shadow-state branch checkpoints: at most maxUnresolvedBranches
 *    predicted branches in flight; further branches stall dispatch;
 *  - 2-bit branch prediction with resolve-time redirects;
 *  - informing miss traps dispatched either branch-style (redirect at
 *    miss detection) or exception-style (postponed until the informing
 *    operation reaches the head of the reorder buffer and the machine
 *    is flushed) -- the two alternatives the paper compares;
 *  - the lockup-free memory system, optionally with the section-3.3
 *    extended MSHR lifetime and wrong-path probe injection so that
 *    squashed speculative fills are invalidated.
 *
 * Like InOrderCpu, the model is trace-driven with all in-flight effects
 * held as future-cycle bookkeeping, so between step() calls the machine
 * is quiesced and checkpointable (save()/restore()).
 */

#ifndef IMO_PIPELINE_OOO_CPU_HH
#define IMO_PIPELINE_OOO_CPU_HH

#include <cstdint>
#include <memory>

#include "common/stats.hh"
#include "func/trace.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo
{
class Serializer;
class Deserializer;
} // namespace imo

namespace imo::pipeline
{

/** The out-of-order timing model. */
class OooCpu
{
  public:
    explicit OooCpu(const MachineConfig &config);
    ~OooCpu();

    /**
     * Enable wrong-path probe injection: on every branch misprediction,
     * @p probes speculative line fetches are issued past the branch and
     * squashed at resolve. Requires cfg.mem.extendedMshrLifetime to
     * demonstrate the section-3.3 invalidation guarantee.
     */
    void setWrongPathProbes(std::uint32_t probes) { _wrongPathProbes = probes; }

    /** Discard all timing state and start a fresh run. */
    void reset();

    /**
     * Consume one record from @p src and advance the timing model.
     * Requires reset() (or restore()) first.
     * @return false once @p src is exhausted.
     */
    bool step(func::TraceSource &src);

    /** Records consumed since reset()/restore(). */
    std::uint64_t retired() const;

    /**
     * Functional warming: train the active branch predictor with a
     * resolved direction without advancing the pipeline or touching
     * lookup/mispredict statistics. Used by the sampling controller
     * while the executor fast-forwards between detailed windows, so
     * predictor state on re-entry matches a continuously stepped run.
     * Requires reset() (or restore()) first.
     */
    void warmCondBranch(InstAddr pc, bool taken);

    /**
     * Snapshot the result so far. Callable at any step boundary and
     * after a step() threw (partial statistics for failure reports).
     */
    RunResult result() const;

    /** Replay @p src to exhaustion and return the timing result. */
    RunResult run(func::TraceSource &src);

    /**
     * Expose the model's full stats tree (pipeline counters, trap
     * service histogram, predictors, memory system, MSHRs) as a "cpu"
     * group under @p parent. Requires reset() first; valid until the
     * next reset().
     */
    void registerStats(stats::StatGroup &parent);

    /**
     * Checkpoint hooks. Only meaningful between step() calls (the
     * quiesced boundary). restore() implies reset() and requires a
     * configuration matching the one that produced the image (the
     * wrong-path probe count is part of the image).
     */
    void save(Serializer &s) const;
    void restore(Deserializer &d);

    /**
     * Live-point warm-state hooks: the subset of timing state that
     * functional warming trains across a fast-forward gap — the branch
     * predictor tables (and gshare history). A sampled measure window
     * starts from a freshly reset machine plus this warm state;
     * short-lived state (pipeline occupancy, MSHRs, BTB) is
     * re-established by the window's warmup span. Both require
     * reset() (or restore()) first.
     */
    void saveWarmState(Serializer &s) const;
    void restoreWarmState(Deserializer &d);

  private:
    struct Timing;

    MachineConfig _config;
    std::uint32_t _wrongPathProbes = 0;
    std::unique_ptr<Timing> _t;
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_OOO_CPU_HH
