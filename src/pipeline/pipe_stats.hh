/**
 * @file
 * PipeStats: the push-side stats both timing models update on their
 * hot path. RunResult's per-run figures are *derived* from this
 * registry (see InOrderCpu::result() / OooCpu::result()) rather than
 * maintained in a parallel set of hand-threaded fields, and the whole
 * group round-trips through checkpoints name-checked, so a resumed
 * run's final stats match an uninterrupted run bit-identically.
 */

#ifndef IMO_PIPELINE_PIPE_STATS_HH
#define IMO_PIPELINE_PIPE_STATS_HH

#include "common/checkpoint.hh"
#include "common/stats.hh"

namespace imo::pipeline
{

struct PipeStats
{
    stats::StatGroup group{"retire"};

    stats::Counter dataRefs{group, "data_refs",
                            "data references consumed by the timing model"};
    stats::Counter l1Misses{group, "l1_misses", "primary-cache misses"};
    stats::Counter traps{group, "traps", "informing miss traps dispatched"};
    stats::Counter replayTraps{group, "replay_traps",
                               "hit-shadow replay traps (in-order model)"};
    stats::Counter condBranches{group, "cond_branches",
                                "conditional branches resolved"};
    stats::Counter mispredicts{group, "mispredicts",
                               "mispredicted branches (incl. taken BRMISS)"};
    stats::Counter handlerInstructions{group, "handler_instructions",
                                       "instructions retired inside miss "
                                       "handlers"};
    stats::Histogram trapService{group, "trap_service",
                                 "informing trap dispatch to RETMH "
                                 "completion, cycles", 16, 4};

    void save(Serializer &s) const { group.save(s); }
    void restore(Deserializer &d) { group.restore(d); }
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_PIPE_STATS_HH
