/**
 * @file
 * The result of one detailed timing run.
 */

#ifndef IMO_PIPELINE_RESULT_HH
#define IMO_PIPELINE_RESULT_HH

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "common/types.hh"

namespace imo::pipeline
{

/**
 * Timing outcome plus the graduation-slot breakdown used by the
 * paper's Figures 2-3 (busy / lost-to-cache-miss / lost-other).
 *
 * A run that failed validation, deadlocked, ran away, or hit a fatal
 * injected fault comes back with ok == false and the structured error
 * in @ref error; the statistics then cover only the portion simulated
 * before the failure (usually nothing).
 */
struct RunResult
{
    std::string machine;
    std::string workload;

    bool ok = true;         //!< false: @ref error describes the failure
    SimError error;
    std::uint64_t faultsInjected = 0; //!< injector firings (snapshot)

    Cycle cycles = 0;
    std::uint32_t issueWidth = 4;
    std::uint64_t instructions = 0;       //!< graduated instructions
    std::uint64_t handlerInstructions = 0;
    std::uint64_t cacheStallSlots = 0;
    std::uint64_t otherStallSlots = 0;

    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t traps = 0;              //!< informing dispatches
    std::uint64_t replayTraps = 0;        //!< 21164 hit-shadow replays
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t mshrFullRejects = 0;
    std::uint64_t bankConflicts = 0;
    std::uint64_t squashInvalidations = 0;

    std::uint64_t checkpointsTaken = 0;   //!< periodic images emitted
    /** Instruction count the run resumed from (0: cold start). */
    std::uint64_t resumedInstructions = 0;

    std::uint64_t totalSlots() const { return cycles * issueWidth; }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    double
    busyFraction() const
    {
        return totalSlots()
            ? static_cast<double>(instructions) / totalSlots() : 0.0;
    }

    double
    cacheStallFraction() const
    {
        return totalSlots()
            ? static_cast<double>(cacheStallSlots) / totalSlots() : 0.0;
    }

    double
    otherStallFraction() const
    {
        return totalSlots()
            ? static_cast<double>(otherStallSlots) / totalSlots() : 0.0;
    }
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_RESULT_HH
