#include "pipeline/simulate.hh"

#include <sstream>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "common/faultinject.hh"
#include "common/stats.hh"
#include "isa/verify.hh"
#include "obs/observer.hh"
#include "pipeline/image.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"

namespace imo::pipeline
{

namespace
{

/** The stepping loop shared by both timing models. */
template <typename Cpu>
RunResult
drive(Cpu &cpu, func::Executor &exec, const isa::Program &program,
      const MachineConfig &config, const SimulateOptions &opt,
      const char *kind)
{
    cpu.reset();

    std::vector<std::uint8_t> in_image;
    const std::vector<std::uint8_t> *resume = opt.resumeImage;
    if (!resume && !opt.checkpointIn.empty()) {
        in_image = Deserializer::readFile(opt.checkpointIn);
        resume = &in_image;
    }

    std::uint64_t resumed = 0;
    std::vector<std::uint8_t> last_image;
    const bool want_reproducer =
        opt.checkpointOnError && !opt.checkpointOut.empty();
    if (resume) {
        resumed = restoreImage(*resume, kind, exec, cpu, config.faults);
        if (want_reproducer)
            last_image = *resume;
    } else if (want_reproducer) {
        // Cold start: until the first periodic image replaces it, the
        // initial state is the failure reproducer.
        last_image = makeImage(kind, program, exec, cpu, config.faults,
                               cpu.retired());
    }

    std::uint64_t taken = 0;
    try {
        while (cpu.step(exec)) {
            if (opt.stopFlag && *opt.stopFlag) [[unlikely]] {
                // Graceful stop: flush the state at this quiesced step
                // boundary as the resumable marker, then surface a
                // structured Interrupted error (partial stats are
                // captured by the normal failure path).
                if (!opt.checkpointOut.empty()) {
                    writeCheckpointFile(
                        opt.checkpointOut,
                        makeImage(kind, program, exec, cpu,
                                  config.faults, cpu.retired()));
                }
                throwSimError(ErrCode::Interrupted,
                              "interrupted at instruction %llu (cycle "
                              "%llu)",
                              static_cast<unsigned long long>(
                                  cpu.retired()),
                              static_cast<unsigned long long>(
                                  cpu.result().cycles));
            }
            if (opt.checkpointEvery &&
                cpu.retired() % opt.checkpointEvery == 0) {
                std::vector<std::uint8_t> image =
                    makeImage(kind, program, exec, cpu, config.faults,
                              cpu.retired());
                ++taken;
                if (opt.onCheckpoint)
                    opt.onCheckpoint(image, cpu.retired());
                if (want_reproducer)
                    last_image = std::move(image);
            }
        }
    } catch (const SimException &e) {
        // Emit the most recent quiesced image as a crash reproducer:
        // resuming from it deterministically replays the failure. An
        // Interrupted stop already wrote its own (newer) resume image.
        if (want_reproducer && !last_image.empty() &&
            e.code() != ErrCode::Interrupted) {
            writeCheckpointFile(opt.checkpointOut, last_image);
        }
        throw;
    }

    RunResult res = cpu.result();
    res.checkpointsTaken = taken;
    res.resumedInstructions = resumed;
    if (!opt.checkpointOut.empty()) {
        writeCheckpointFile(opt.checkpointOut,
                            makeImage(kind, program, exec, cpu,
                                      config.faults, cpu.retired()));
    }
    return res;
}

/**
 * Capture the full stats tree into the attached Observer (text and
 * JSON renderings). Built as a transient report root so repeated
 * captures cannot duplicate registrations; called on success and on
 * failure alike (partial stats are part of a failure report).
 */
template <typename Cpu>
void
captureStats(const MachineConfig &config, func::Executor &exec, Cpu &cpu)
{
    if (!config.obs)
        return;
    stats::StatGroup root("sim");
    exec.registerStats(root);
    cpu.registerStats(root);
    // Trace-buffer health (record/drop counts) rides in the same dump
    // so truncated traces are visible in --stats-json, not just as a
    // CLI warning.
    config.obs->trace.registerStats(root.childGroup("obs"));
    std::ostringstream text;
    root.dump(text);
    config.obs->statsText = text.str();
    std::ostringstream json;
    json << "{\"sim\":";
    root.dumpJson(json);
    json << "}\n";
    config.obs->statsJson = json.str();
}

} // anonymous namespace

RunResult
simulate(const isa::Program &program, const MachineConfig &config,
         const SimulateOptions &options, func::ExecStats *exec_stats)
{
    RunResult result;
    result.machine = config.name;
    result.workload = program.name();
    result.issueWidth = config.issueWidth;

    try {
        config.validate();
        isa::verifyProgram(program);

        func::Executor exec(program,
                            func::Executor::Config{
                                .l1 = config.l1,
                                .l2 = config.l2,
                                .maxInstructions = config.maxInstructions});
        if (config.outOfOrder) {
            OooCpu cpu(config);
            try {
                result = drive(cpu, exec, program, config, options, "ooo");
            } catch (const SimException &e) {
                result = cpu.result();
                result.ok = false;
                result.error = e.error();
            }
            captureStats(config, exec, cpu);
        } else {
            InOrderCpu cpu(config);
            try {
                result = drive(cpu, exec, program, config, options,
                               "inorder");
            } catch (const SimException &e) {
                result = cpu.result();
                result.ok = false;
                result.error = e.error();
            }
            captureStats(config, exec, cpu);
        }
        result.workload = program.name();
        if (exec_stats)
            *exec_stats = exec.stats();
    } catch (const SimException &e) {
        result.ok = false;
        result.error = e.error();
    } catch (const std::exception &e) {
        // Anything else escaping the models is a simulator bug, but we
        // still refuse to take the process down with us.
        result.ok = false;
        result.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    if (config.faults)
        result.faultsInjected = config.faults->totalFired();
    return result;
}

RunResult
simulate(const isa::Program &program, const MachineConfig &config,
         func::ExecStats *exec_stats)
{
    return simulate(program, config, SimulateOptions{}, exec_stats);
}

} // namespace imo::pipeline
