#include "pipeline/simulate.hh"

#include "common/error.hh"
#include "common/faultinject.hh"
#include "isa/verify.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"

namespace imo::pipeline
{

RunResult
simulate(const isa::Program &program, const MachineConfig &config,
         func::ExecStats *exec_stats)
{
    RunResult result;
    result.machine = config.name;
    result.workload = program.name();
    result.issueWidth = config.issueWidth;

    try {
        config.validate();
        isa::verifyProgram(program);

        func::Executor exec(program,
                            func::Executor::Config{
                                .l1 = config.l1,
                                .l2 = config.l2,
                                .maxInstructions = config.maxInstructions});
        if (config.outOfOrder) {
            OooCpu cpu(config);
            result = cpu.run(exec);
        } else {
            InOrderCpu cpu(config);
            result = cpu.run(exec);
        }
        result.workload = program.name();
        if (exec_stats)
            *exec_stats = exec.stats();
    } catch (const SimException &e) {
        result.ok = false;
        result.error = e.error();
    } catch (const std::exception &e) {
        // Anything else escaping the models is a simulator bug, but we
        // still refuse to take the process down with us.
        result.ok = false;
        result.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    if (config.faults)
        result.faultsInjected = config.faults->totalFired();
    return result;
}

} // namespace imo::pipeline
