#include "pipeline/simulate.hh"

#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"

namespace imo::pipeline
{

RunResult
simulate(const isa::Program &program, const MachineConfig &config,
         func::ExecStats *exec_stats)
{
    func::Executor exec(program,
                        func::Executor::Config{.l1 = config.l1,
                                               .l2 = config.l2});
    RunResult result;
    if (config.outOfOrder) {
        OooCpu cpu(config);
        result = cpu.run(exec);
    } else {
        InOrderCpu cpu(config);
        result = cpu.run(exec);
    }
    result.workload = program.name();
    if (exec_stats)
        *exec_stats = exec.stats();
    return result;
}

} // namespace imo::pipeline
