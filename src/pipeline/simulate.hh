/**
 * @file
 * One-call simulation driver: functional execution (phase A) coupled
 * to the detailed timing model (phase B) for a given machine, with
 * optional checkpoint/restore of the full simulation state.
 */

#ifndef IMO_PIPELINE_SIMULATE_HH
#define IMO_PIPELINE_SIMULATE_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "func/executor.hh"
#include "isa/program.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo::pipeline
{

/** Checkpoint/restore behavior of one simulate() call. */
struct SimulateOptions
{
    /**
     * Take an in-memory checkpoint every N retired instructions
     * (0: none). Checkpoints are taken at the quiesced retire boundary
     * and contain the executor, the timing model, and (when attached)
     * the fault injector, so a resumed run is bit-identical to an
     * uninterrupted one.
     */
    std::uint64_t checkpointEvery = 0;

    /**
     * Path to write a checkpoint file to. On success: the final
     * machine state. On failure (SimException from the models, e.g. a
     * watchdog Deadlock or an injected hard fault): the most recent
     * periodic image — or, with checkpointEvery == 0, the initial
     * state — as a failure reproducer; resuming from it replays the
     * crash deterministically.
     */
    std::string checkpointOut;

    /** Path of a checkpoint file to restore before running. */
    std::string checkpointIn;

    /** In-memory image to restore (takes precedence over checkpointIn). */
    const std::vector<std::uint8_t> *resumeImage = nullptr;

    /** Emit the reproducer image on failure (see checkpointOut). */
    bool checkpointOnError = true;

    /**
     * Invoked with every periodic image as it is taken (after
     * @ref checkpointEvery more instructions have retired) and the
     * retired-instruction count at that boundary. Used by the fuzzer
     * to bisect failures without touching the filesystem.
     */
    std::function<void(const std::vector<std::uint8_t> &, std::uint64_t)>
        onCheckpoint;

    /**
     * Cooperative stop flag, polled once per simulated cycle (typically
     * set by a SIGINT/SIGTERM handler). When it becomes nonzero the run
     * stops at the next step boundary with a structured
     * ErrCode::Interrupted error; if checkpointOut is set, the state at
     * that boundary is written first, so the run is resumable with
     * checkpointIn — a graceful stop is never a mid-write kill.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
};

/**
 * Execute @p program functionally against @p config's reference cache
 * hierarchy while replaying it through the matching timing model.
 *
 * The configuration and program are validated first
 * (MachineConfig::validate(), isa::verifyProgram()). Never throws for
 * input- or run-level failures: any SimException raised during
 * validation, restore, or simulation is captured in the result
 * (ok == false), so sweep drivers can record the error and continue.
 * On failure the statistics cover the portion simulated before the
 * failure.
 *
 * @return the timing result; @p exec_stats (optional) receives the
 * functional-side statistics.
 */
RunResult simulate(const isa::Program &program,
                   const MachineConfig &config,
                   const SimulateOptions &options,
                   func::ExecStats *exec_stats = nullptr);

/** Convenience overload: no checkpointing. */
RunResult simulate(const isa::Program &program,
                   const MachineConfig &config,
                   func::ExecStats *exec_stats = nullptr);

} // namespace imo::pipeline

#endif // IMO_PIPELINE_SIMULATE_HH
