/**
 * @file
 * One-call simulation driver: functional execution (phase A) coupled
 * to the detailed timing model (phase B) for a given machine.
 */

#ifndef IMO_PIPELINE_SIMULATE_HH
#define IMO_PIPELINE_SIMULATE_HH

#include "func/executor.hh"
#include "isa/program.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo::pipeline
{

/**
 * Execute @p program functionally against @p config's reference cache
 * hierarchy while replaying it through the matching timing model.
 *
 * The configuration and program are validated first
 * (MachineConfig::validate(), isa::verifyProgram()). Never throws for
 * input- or run-level failures: any SimException raised during
 * validation or simulation is captured in the result (ok == false),
 * so sweep drivers can record the error and continue.
 *
 * @return the timing result; @p exec_stats (optional) receives the
 * functional-side statistics.
 */
RunResult simulate(const isa::Program &program,
                   const MachineConfig &config,
                   func::ExecStats *exec_stats = nullptr);

} // namespace imo::pipeline

#endif // IMO_PIPELINE_SIMULATE_HH
