/**
 * @file
 * Shared timing machinery for the pipeline models: the fetch engine,
 * functional-unit reservation tables, in-order issue ports, and the
 * graduation-slot ledger that produces the paper's Figure 2 breakdown.
 */

#ifndef IMO_PIPELINE_TIMING_UTIL_HH
#define IMO_PIPELINE_TIMING_UTIL_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace imo::pipeline
{

/**
 * Models instruction delivery: up to `width` instructions per cycle,
 * with taken-transfer bubbles and redirect gates (mispredictions,
 * informing-trap dispatches, exception drains).
 */
class FetchEngine
{
  public:
    FetchEngine(std::uint32_t width, Cycle taken_bubble)
        : _width(width), _bubble(taken_bubble)
    {
        panic_if(width == 0, "fetch width must be nonzero");
    }

    /** Allocate the next fetch slot. @return its cycle. */
    Cycle
    fetchNext()
    {
        if (_used == _width) {
            ++_cycle;
            _used = 0;
        }
        ++_used;
        return _cycle;
    }

    /** No instruction may be fetched before @p cycle. */
    void
    gate(Cycle cycle)
    {
        if (cycle > _cycle) {
            _cycle = cycle;
            _used = 0;
        }
    }

    /** A taken control transfer was fetched at @p fetch_cycle: the rest
     *  of its fetch group is wasted and a bubble follows. */
    void
    redirectTaken(Cycle fetch_cycle)
    {
        gate(fetch_cycle + 1 + _bubble);
    }

    Cycle currentCycle() const { return _cycle; }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_used);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _used = d.u32();
    }

  private:
    std::uint32_t _width;
    Cycle _bubble;
    Cycle _cycle = 0;
    std::uint32_t _used = 0;
};

/**
 * Per-cycle capacity table for a fully pipelined functional-unit class
 * in an out-of-order machine: reservations may probe arbitrary cycles,
 * so occupancy is kept in an ordered map pruned behind the commit
 * frontier.
 */
class SlotTable
{
  public:
    explicit SlotTable(std::uint32_t units_per_cycle)
        : _units(units_per_cycle)
    {
        panic_if(units_per_cycle == 0, "slot table with zero units");
    }

    /** Reserve the first cycle >= @p earliest with a free unit. */
    Cycle
    reserve(Cycle earliest)
    {
        Cycle c = earliest;
        auto it = _used.lower_bound(c);
        while (it != _used.end() && it->first == c &&
               it->second >= _units) {
            ++c;
            ++it;
        }
        ++_used[c];
        return c;
    }

    /** Drop bookkeeping for cycles below @p frontier. */
    void
    pruneBelow(Cycle frontier)
    {
        _used.erase(_used.begin(), _used.lower_bound(frontier));
    }

    void
    save(Serializer &s) const
    {
        s.u64(_used.size());
        for (const auto &[cycle, count] : _used) {
            s.u64(cycle);
            s.u32(count);
        }
    }

    void
    restore(Deserializer &d)
    {
        _used.clear();
        const std::uint64_t count = d.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
            const Cycle cycle = d.u64();
            _used[cycle] = d.u32();
        }
    }

  private:
    std::uint32_t _units;
    std::map<Cycle, std::uint32_t> _used;
};

/** Functional-unit groups at issue time. */
enum class FuGroup : std::uint8_t
{
    Int,
    Fp,
    Branch,
    Mem,
    None,   //!< only consumes an issue slot (NOP/HALT)
    NumGroups
};

/**
 * In-order issue bandwidth: a monotonic port enforcing the total issue
 * width and per-group unit counts. Monotonicity holds because an
 * in-order machine never issues a younger instruction before an older
 * one.
 */
class InOrderIssuePort
{
  public:
    InOrderIssuePort(std::uint32_t width,
                     std::array<std::uint32_t,
                                static_cast<std::size_t>(
                                    FuGroup::NumGroups)> group_units)
        : _width(width), _groupUnits(group_units)
    {
    }

    /** Issue an op of @p group no earlier than @p earliest. */
    Cycle
    reserve(FuGroup group, Cycle earliest)
    {
        advanceTo(earliest);
        const auto g = static_cast<std::size_t>(group);
        while (_usedTotal >= _width ||
               (group != FuGroup::None && _usedGroup[g] >= _groupUnits[g])) {
            advanceTo(_cycle + 1);
        }
        ++_usedTotal;
        if (group != FuGroup::None)
            ++_usedGroup[g];
        return _cycle;
    }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_usedTotal);
        for (const std::uint32_t g : _usedGroup)
            s.u32(g);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _usedTotal = d.u32();
        for (std::uint32_t &g : _usedGroup)
            g = d.u32();
    }

  private:
    void
    advanceTo(Cycle c)
    {
        if (c > _cycle) {
            _cycle = c;
            _usedTotal = 0;
            _usedGroup.fill(0);
        }
    }

    std::uint32_t _width;
    std::array<std::uint32_t,
               static_cast<std::size_t>(FuGroup::NumGroups)> _groupUnits;
    Cycle _cycle = 0;
    std::uint32_t _usedTotal = 0;
    std::array<std::uint32_t,
               static_cast<std::size_t>(FuGroup::NumGroups)> _usedGroup{};
};

/**
 * Graduation accounting in the style of the paper's Figures 2-3: every
 * cycle provides `width` graduation slots; each is either used by a
 * graduating instruction, lost to the head instruction waiting on a
 * data-cache miss ("cache stall"), or lost for any other reason.
 */
class GraduationLedger
{
  public:
    explicit GraduationLedger(std::uint32_t width) : _width(width)
    {
        panic_if(width == 0, "graduation width must be nonzero");
    }

    /**
     * Graduate the next instruction (program order), which is ready to
     * leave the machine at @p ready. Lost slots in the gap are
     * attributed to @p cache_reason.
     * @return the graduation cycle.
     */
    Cycle
    graduate(Cycle ready, bool cache_reason)
    {
        if (ready > _cycle) {
            const std::uint64_t lost =
                (_width - _used) + _width * (ready - _cycle - 1);
            if (cache_reason)
                _cacheStallSlots += lost;
            _cycle = ready;
            _used = 1;
        } else if (_used == _width) {
            ++_cycle;
            _used = 1;
        } else {
            ++_used;
        }
        ++_graduated;
        return _cycle;
    }

    /** Total cycles elapsed (the last graduation cycle + 1). */
    Cycle
    totalCycles() const
    {
        return _graduated ? _cycle + 1 : 0;
    }

    /** Cycle of the most recent graduation. */
    Cycle lastCycle() const { return _cycle; }

    std::uint64_t graduated() const { return _graduated; }
    std::uint64_t cacheStallSlots() const { return _cacheStallSlots; }

    /** Lost slots not attributed to cache stalls. */
    std::uint64_t
    otherStallSlots() const
    {
        const std::uint64_t total = totalCycles() * _width;
        return total - _graduated - _cacheStallSlots;
    }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_used);
        s.u64(_graduated);
        s.u64(_cacheStallSlots);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _used = d.u32();
        _graduated = d.u64();
        _cacheStallSlots = d.u64();
    }

  private:
    std::uint32_t _width;
    Cycle _cycle = 0;
    std::uint32_t _used = 0;
    std::uint64_t _graduated = 0;
    std::uint64_t _cacheStallSlots = 0;
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_TIMING_UTIL_HH
