/**
 * @file
 * Shared timing machinery for the pipeline models: the fetch engine,
 * functional-unit reservation tables, in-order issue ports, and the
 * graduation-slot ledger that produces the paper's Figure 2 breakdown.
 */

#ifndef IMO_PIPELINE_TIMING_UTIL_HH
#define IMO_PIPELINE_TIMING_UTIL_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "common/checkpoint.hh"
#include "common/logging.hh"
#include "common/types.hh"

namespace imo::pipeline
{

/**
 * Models instruction delivery: up to `width` instructions per cycle,
 * with taken-transfer bubbles and redirect gates (mispredictions,
 * informing-trap dispatches, exception drains).
 */
class FetchEngine
{
  public:
    FetchEngine(std::uint32_t width, Cycle taken_bubble)
        : _width(width), _bubble(taken_bubble)
    {
        panic_if(width == 0, "fetch width must be nonzero");
    }

    /** Allocate the next fetch slot. @return its cycle. */
    Cycle
    fetchNext()
    {
        if (_used == _width) {
            ++_cycle;
            _used = 0;
        }
        ++_used;
        return _cycle;
    }

    /** No instruction may be fetched before @p cycle. */
    void
    gate(Cycle cycle)
    {
        if (cycle > _cycle) {
            _cycle = cycle;
            _used = 0;
        }
    }

    /** A taken control transfer was fetched at @p fetch_cycle: the rest
     *  of its fetch group is wasted and a bubble follows. */
    void
    redirectTaken(Cycle fetch_cycle)
    {
        gate(fetch_cycle + 1 + _bubble);
    }

    Cycle currentCycle() const { return _cycle; }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_used);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _used = d.u32();
    }

  private:
    std::uint32_t _width;
    Cycle _bubble;
    Cycle _cycle = 0;
    std::uint32_t _used = 0;
};

/**
 * Per-cycle capacity table for a fully pipelined functional-unit class
 * in an out-of-order machine: reservations may probe arbitrary cycles,
 * so occupancy must answer "first cycle >= earliest with a free unit".
 *
 * Occupancy lives in a fixed sliding window of per-cycle counts —
 * pruneBelow() advances the window behind the commit frontier, and
 * reservations land overwhelmingly inside it (the reorder buffer bounds
 * how far completion times run ahead of the frontier), so the common
 * reserve() is an array probe instead of an ordered-map walk. Cycles
 * outside the window (far-future fill completions, or probes behind a
 * freshly advanced window) spill to an ordered map. Serialization
 * writes the merged (cycle, count) pairs in ascending cycle order —
 * exactly the bytes the previous std::map implementation produced.
 */
class SlotTable
{
  public:
    explicit SlotTable(std::uint32_t units_per_cycle)
        : _units(units_per_cycle), _ring(kWindow, 0)
    {
        panic_if(units_per_cycle == 0, "slot table with zero units");
    }

    /** Reserve the first cycle >= @p earliest with a free unit. */
    Cycle
    reserve(Cycle earliest)
    {
        Cycle c = earliest;
        if (c >= _base && c < _base + kWindow) [[likely]] {
            // In-window fast path: scan the ring until a free cycle.
            while (c < _base + kWindow) {
                std::uint32_t &used = _ring[c & (kWindow - 1)];
                if (used < _units) {
                    ++used;
                    return c;
                }
                ++c;
            }
        }
        while (countAt(c) >= _units)
            ++c;
        bumpAt(c);
        return c;
    }

    /** Drop bookkeeping for cycles below @p frontier. */
    void
    pruneBelow(Cycle frontier)
    {
        _spill.erase(_spill.begin(), _spill.lower_bound(frontier));
        if (frontier <= _base)
            return;
        // Slide the window: clear the ring slots leaving it, then pull
        // any spilled counts that now fall inside it back into the
        // ring (a count may only live in one of the two structures).
        if (frontier - _base >= kWindow) {
            std::fill(_ring.begin(), _ring.end(), 0);
        } else {
            for (Cycle c = _base; c < frontier; ++c)
                _ring[c & (kWindow - 1)] = 0;
        }
        _base = frontier;
        auto it = _spill.begin();
        while (it != _spill.end() && it->first < _base + kWindow) {
            _ring[it->first & (kWindow - 1)] = it->second;
            it = _spill.erase(it);
        }
    }

    void
    save(Serializer &s) const
    {
        // Ascending (cycle, count) pairs, exactly as the ordered-map
        // representation serialized: spilled cycles below the window,
        // then the window in cycle order, then spilled cycles above.
        std::uint64_t entries = 0;
        for (const auto &[cycle, count] : _spill) {
            (void)cycle;
            if (count)
                ++entries;
        }
        for (const std::uint32_t count : _ring) {
            if (count)
                ++entries;
        }
        s.u64(entries);
        auto it = _spill.begin();
        for (; it != _spill.end() && it->first < _base; ++it) {
            s.u64(it->first);
            s.u32(it->second);
        }
        for (Cycle c = _base; c < _base + kWindow; ++c) {
            const std::uint32_t count = _ring[c & (kWindow - 1)];
            if (count) {
                s.u64(c);
                s.u32(count);
            }
        }
        for (; it != _spill.end(); ++it) {
            s.u64(it->first);
            s.u32(it->second);
        }
    }

    void
    restore(Deserializer &d)
    {
        _spill.clear();
        std::fill(_ring.begin(), _ring.end(), 0);
        const std::uint64_t count = d.u64();
        bool first = true;
        for (std::uint64_t i = 0; i < count; ++i) {
            const Cycle cycle = d.u64();
            const std::uint32_t used = d.u32();
            if (first) {
                // Anchor the window at the oldest live cycle (pairs
                // arrive in ascending order).
                _base = cycle;
                first = false;
            }
            if (cycle >= _base && cycle < _base + kWindow)
                _ring[cycle & (kWindow - 1)] = used;
            else
                _spill[cycle] = used;
        }
    }

  private:
    // Power of two, comfortably larger than how far any reservation
    // runs ahead of the commit frontier between prunes (the ROB depth
    // plus the longest latency chain is orders of magnitude smaller).
    static constexpr Cycle kWindow = 8192;

    std::uint32_t
    countAt(Cycle c) const
    {
        if (c >= _base && c < _base + kWindow)
            return _ring[c & (kWindow - 1)];
        const auto it = _spill.find(c);
        return it == _spill.end() ? 0 : it->second;
    }

    void
    bumpAt(Cycle c)
    {
        if (c >= _base && c < _base + kWindow)
            ++_ring[c & (kWindow - 1)];
        else
            ++_spill[c];
    }

    std::uint32_t _units;
    Cycle _base = 0;
    std::vector<std::uint32_t> _ring;       //!< counts for [_base, _base+W)
    std::map<Cycle, std::uint32_t> _spill;  //!< counts outside the window
};

/** Functional-unit groups at issue time. */
enum class FuGroup : std::uint8_t
{
    Int,
    Fp,
    Branch,
    Mem,
    None,   //!< only consumes an issue slot (NOP/HALT)
    NumGroups
};

/**
 * In-order issue bandwidth: a monotonic port enforcing the total issue
 * width and per-group unit counts. Monotonicity holds because an
 * in-order machine never issues a younger instruction before an older
 * one.
 */
class InOrderIssuePort
{
  public:
    InOrderIssuePort(std::uint32_t width,
                     std::array<std::uint32_t,
                                static_cast<std::size_t>(
                                    FuGroup::NumGroups)> group_units)
        : _width(width), _groupUnits(group_units)
    {
    }

    /** Issue an op of @p group no earlier than @p earliest. */
    Cycle
    reserve(FuGroup group, Cycle earliest)
    {
        advanceTo(earliest);
        const auto g = static_cast<std::size_t>(group);
        while (_usedTotal >= _width ||
               (group != FuGroup::None && _usedGroup[g] >= _groupUnits[g])) {
            advanceTo(_cycle + 1);
        }
        ++_usedTotal;
        if (group != FuGroup::None)
            ++_usedGroup[g];
        return _cycle;
    }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_usedTotal);
        for (const std::uint32_t g : _usedGroup)
            s.u32(g);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _usedTotal = d.u32();
        for (std::uint32_t &g : _usedGroup)
            g = d.u32();
    }

  private:
    void
    advanceTo(Cycle c)
    {
        if (c > _cycle) {
            _cycle = c;
            _usedTotal = 0;
            _usedGroup.fill(0);
        }
    }

    std::uint32_t _width;
    std::array<std::uint32_t,
               static_cast<std::size_t>(FuGroup::NumGroups)> _groupUnits;
    Cycle _cycle = 0;
    std::uint32_t _usedTotal = 0;
    std::array<std::uint32_t,
               static_cast<std::size_t>(FuGroup::NumGroups)> _usedGroup{};
};

/**
 * Graduation accounting in the style of the paper's Figures 2-3: every
 * cycle provides `width` graduation slots; each is either used by a
 * graduating instruction, lost to the head instruction waiting on a
 * data-cache miss ("cache stall"), or lost for any other reason.
 */
class GraduationLedger
{
  public:
    explicit GraduationLedger(std::uint32_t width) : _width(width)
    {
        panic_if(width == 0, "graduation width must be nonzero");
    }

    /**
     * Graduate the next instruction (program order), which is ready to
     * leave the machine at @p ready. Lost slots in the gap are
     * attributed to @p cache_reason.
     * @return the graduation cycle.
     */
    Cycle
    graduate(Cycle ready, bool cache_reason)
    {
        if (ready > _cycle) {
            const std::uint64_t lost =
                (_width - _used) + _width * (ready - _cycle - 1);
            if (cache_reason)
                _cacheStallSlots += lost;
            _cycle = ready;
            _used = 1;
        } else if (_used == _width) {
            ++_cycle;
            _used = 1;
        } else {
            ++_used;
        }
        ++_graduated;
        return _cycle;
    }

    /** Total cycles elapsed (the last graduation cycle + 1). */
    Cycle
    totalCycles() const
    {
        return _graduated ? _cycle + 1 : 0;
    }

    /** Cycle of the most recent graduation. */
    Cycle lastCycle() const { return _cycle; }

    std::uint64_t graduated() const { return _graduated; }
    std::uint64_t cacheStallSlots() const { return _cacheStallSlots; }

    /** Lost slots not attributed to cache stalls. */
    std::uint64_t
    otherStallSlots() const
    {
        const std::uint64_t total = totalCycles() * _width;
        return total - _graduated - _cacheStallSlots;
    }

    void
    save(Serializer &s) const
    {
        s.u64(_cycle);
        s.u32(_used);
        s.u64(_graduated);
        s.u64(_cacheStallSlots);
    }

    void
    restore(Deserializer &d)
    {
        _cycle = d.u64();
        _used = d.u32();
        _graduated = d.u64();
        _cacheStallSlots = d.u64();
    }

  private:
    std::uint32_t _width;
    Cycle _cycle = 0;
    std::uint32_t _used = 0;
    std::uint64_t _graduated = 0;
    std::uint64_t _cacheStallSlots = 0;
};

} // namespace imo::pipeline

#endif // IMO_PIPELINE_TIMING_UTIL_HH
