/**
 * @file
 * Forward-progress watchdog shared by the two pipeline models.
 *
 * The timing loops are trace-driven, so the only ways they can stop
 * making progress are (a) a memory reference that is rejected forever
 * (MSHR/bank livelock, e.g. under injected MSHR exhaustion) and (b) a
 * completion time that runs away from the graduation frontier (e.g. a
 * stuck fill). Both are detected against MachineConfig::watchdogCycles
 * and converted into a structured Deadlock error that carries the
 * recent-event ring as its context chain.
 */

#ifndef IMO_PIPELINE_WATCHDOG_HH
#define IMO_PIPELINE_WATCHDOG_HH

#include <string>

#include "common/diagring.hh"
#include "common/error.hh"

namespace imo::pipeline
{

/** Throw SimException(Deadlock, @p message) with the ring as context. */
[[noreturn]] inline void
raiseDeadlock(const DiagRing &ring, std::string message)
{
    throwWithRing(ErrCode::Deadlock, ring, std::move(message));
}

} // namespace imo::pipeline

#endif // IMO_PIPELINE_WATCHDOG_HH
