file(REMOVE_RECURSE
  "CMakeFiles/imo_sample.dir/livepoint.cc.o"
  "CMakeFiles/imo_sample.dir/livepoint.cc.o.d"
  "CMakeFiles/imo_sample.dir/sample.cc.o"
  "CMakeFiles/imo_sample.dir/sample.cc.o.d"
  "libimo_sample.a"
  "libimo_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
