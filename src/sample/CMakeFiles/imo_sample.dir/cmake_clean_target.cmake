file(REMOVE_RECURSE
  "libimo_sample.a"
)
