# Empty dependencies file for imo_sample.
# This may be replaced when dependencies are built.
