#include "sample/livepoint.hh"

#include <cstring>

namespace imo::sample
{

std::uint64_t
fnv1a64(const void *data, std::size_t len, std::uint64_t seed)
{
    std::uint64_t h = seed;
    const auto *p = static_cast<const std::uint8_t *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
    return h;
}

namespace
{

/** Order-sensitive field mixer over fnv1a64. */
struct Digest
{
    std::uint64_t h = 14695981039346656037ull;

    void
    mix(std::uint64_t v)
    {
        std::uint8_t bytes[8];
        std::memcpy(bytes, &v, 8);
        h = fnv1a64(bytes, 8, h);
    }
};

} // anonymous namespace

std::uint64_t
captureDigest(const pipeline::MachineConfig &config)
{
    Digest d;
    // Functional cache geometry: decides every reference's outcome and
    // therefore the executor image and the exact window boundaries.
    d.mix(config.l1.sizeBytes);
    d.mix(config.l1.lineBytes);
    d.mix(config.l1.assoc);
    d.mix(config.l2.sizeBytes);
    d.mix(config.l2.lineBytes);
    d.mix(config.l2.assoc);
    // Warm-table shapes: the predictor tables are the warm images.
    d.mix(config.predictorEntries);
    d.mix(config.useGshare ? 1 : 0);
    // The runaway guard is part of the executor configuration.
    d.mix(config.maxInstructions);
    return d.h;
}

std::vector<std::uint8_t>
serializeLibrary(LivePointLibrary &lib)
{
    Serializer s;
    s.beginSection("libmeta");
    s.u32(livePointFormatVersion);
    s.str(lib.kind);
    s.str(lib.workload);
    s.u64(lib.programFingerprint);
    s.u64(lib.digest);
    s.u64(lib.fastForward);
    s.u64(lib.warmup);
    s.u64(lib.measure);
    s.u64(lib.totals.instructions);
    s.u64(lib.totals.dataRefs);
    s.u64(lib.totals.l1Misses);
    s.u64(lib.totals.traps);
    s.u64(lib.points.size());
    s.endSection();

    // The offset table: consecutive image lengths delta-pack well
    // (windows captured under one schedule have near-identical sizes).
    std::vector<std::uint64_t> lens;
    lens.reserve(lib.points.size() * 2);
    std::size_t blob_size = 0;
    for (const LivePoint &p : lib.points) {
        lens.push_back(p.warmImage.size());
        lens.push_back(p.execImage.size());
        blob_size += p.warmImage.size() + p.execImage.size();
    }
    s.beginSection("index");
    s.vecU64Packed(lens);
    s.endSection();

    std::vector<std::uint8_t> blob;
    blob.reserve(blob_size);
    for (const LivePoint &p : lib.points) {
        blob.insert(blob.end(), p.warmImage.begin(), p.warmImage.end());
        blob.insert(blob.end(), p.execImage.begin(), p.execImage.end());
    }
    s.beginSection("windows");
    s.vecU8(blob);
    s.endSection();

    std::vector<std::uint8_t> image = s.finish();
    lib.contentHash = fnv1a64(image.data(), image.size());
    return image;
}

LivePointLibrary
parseLibrary(std::vector<std::uint8_t> image)
{
    LivePointLibrary lib;
    lib.contentHash = fnv1a64(image.data(), image.size());

    Deserializer d(std::move(image));
    d.openSection("libmeta");
    const std::uint32_t version = d.u32();
    sim_throw_if(version != livePointFormatVersion,
                 ErrCode::BadCheckpoint,
                 "live-point library format version %u is not the "
                 "supported version %u", version, livePointFormatVersion);
    lib.kind = d.str();
    lib.workload = d.str();
    lib.programFingerprint = d.u64();
    lib.digest = d.u64();
    lib.fastForward = d.u64();
    lib.warmup = d.u64();
    lib.measure = d.u64();
    lib.totals.instructions = d.u64();
    lib.totals.dataRefs = d.u64();
    lib.totals.l1Misses = d.u64();
    lib.totals.traps = d.u64();
    const std::uint64_t count = d.u64();
    d.closeSection();

    d.openSection("index");
    const std::vector<std::uint64_t> lens = d.vecU64Packed();
    d.closeSection();
    sim_throw_if(lens.size() != count * 2, ErrCode::BadCheckpoint,
                 "live-point index holds %zu lengths for %llu windows",
                 lens.size(), static_cast<unsigned long long>(count));

    d.openSection("windows");
    const std::vector<std::uint8_t> blob = d.vecU8();
    d.closeSection();

    std::uint64_t total = 0;
    for (const std::uint64_t len : lens) {
        total += len;
        // A hostile index cannot drive the slicer past the blob (the
        // sum check below also catches overflow wrap: any wrapped sum
        // mismatches the real blob size).
        sim_throw_if(total > blob.size() || total < len,
                     ErrCode::BadCheckpoint,
                     "live-point index overruns the windows section");
    }
    sim_throw_if(total != blob.size(), ErrCode::BadCheckpoint,
                 "live-point index covers %llu bytes of a %zu-byte "
                 "windows section",
                 static_cast<unsigned long long>(total), blob.size());

    lib.points.resize(count);
    std::size_t off = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        auto slice = [&](std::uint64_t len) {
            std::vector<std::uint8_t> out(blob.begin() + off,
                                          blob.begin() + off + len);
            off += len;
            return out;
        };
        lib.points[i].warmImage = slice(lens[i * 2]);
        lib.points[i].execImage = slice(lens[i * 2 + 1]);
    }
    return lib;
}

void
writeLibraryFile(const std::string &path, LivePointLibrary &lib)
{
    writeCheckpointFile(path, serializeLibrary(lib));
}

LivePointLibrary
loadLibraryFile(const std::string &path)
{
    return parseLibrary(Deserializer::readFile(path));
}

std::string
encodeWindowSample(const WindowSample &ws)
{
    const std::uint64_t fields[5] = {ws.warmed, ws.measured, ws.cycles,
                                     ws.misses, ws.refs};
    std::string s(sizeof(fields), '\0');
    std::memcpy(s.data(), fields, sizeof(fields));
    return s;
}

WindowSample
decodeWindowSample(const std::string &s)
{
    std::uint64_t fields[5];
    sim_throw_if(s.size() != sizeof(fields), ErrCode::BadCheckpoint,
                 "window sample is %zu bytes, expected %zu",
                 s.size(), sizeof(fields));
    std::memcpy(fields, s.data(), sizeof(fields));
    return WindowSample{fields[0], fields[1], fields[2], fields[3],
                        fields[4]};
}

std::vector<std::uint8_t>
makeExecImage(const func::Executor &exec)
{
    Serializer s;
    s.beginSection("executor");
    exec.save(s);
    s.endSection();
    return s.finish();
}

void
restoreExecImage(const std::vector<std::uint8_t> &image,
                 func::Executor &exec)
{
    Deserializer d(image);
    d.openSection("executor");
    exec.restore(d);
    d.closeSection();
}

} // namespace imo::sample
