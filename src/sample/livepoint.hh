/**
 * @file
 * Live-point library: serialized per-window starting states that make
 * sampled simulation embarrassingly parallel (TurboSMARTS-style,
 * applied to this reproduction's two-phase engine).
 *
 * A *live point* is everything a measurement window needs to run in
 * isolation, captured at the window's warmup boundary during one
 * sequential functional pass:
 *
 *   - the functional executor image (architectural state, data memory,
 *     the reference cache hierarchy, exact statistics) — the window's
 *     instruction stream and every cache outcome replay from it;
 *   - the warm timing state (branch-predictor tables) accumulated by
 *     functional warming over everything executed so far.
 *
 * Both timing models hold no other state a window depends on: pipeline
 * occupancy, MSHR residency, and the BTB are short-lived and are
 * re-established by the window's detailed warmup span, so a window is
 * a pure function of (machine config, live point, W, M). Windows can
 * therefore run in any order, on any thread, or on any machine, and
 * folding their samples in window order reproduces the sequential
 * sampler's estimate bit for bit.
 *
 * A library is a checkpoint container (common/checkpoint.hh framing:
 * versioned, named sections, per-section CRC) with three sections:
 *
 *   "libmeta"  format version, machine kind, workload, program
 *              fingerprint, capture digest, U:W:M schedule, exact
 *              functional totals, point count
 *   "index"    per-point image lengths (the offset table), delta-packed
 *   "windows"  the concatenated warm+executor images
 *
 * The capture digest covers only the configuration fields that shape
 *  the captured state — cache geometry, predictor geometry, the
 * runaway bound — so one library serves every machine configuration
 * that varies only window-timing parameters (latencies, bandwidths,
 * MSHR count, ROB size, ...): exactly what a sweep over the memory
 * system needs.
 */

#ifndef IMO_SAMPLE_LIVEPOINT_HH
#define IMO_SAMPLE_LIVEPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/checkpoint.hh"
#include "common/error.hh"
#include "func/executor.hh"
#include "func/trace.hh"
#include "isa/op.hh"
#include "isa/program.hh"
#include "pipeline/config.hh"
#include "pipeline/result.hh"

namespace imo::sample
{

/** Bumped whenever the library layout changes incompatibly. */
constexpr std::uint32_t livePointFormatVersion = 1;

/** Order-sensitive FNV-1a over @p len bytes (same construction as
 *  isa::Program::fingerprint()). */
std::uint64_t fnv1a64(const void *data, std::size_t len,
                      std::uint64_t seed = 14695981039346656037ull);

/**
 * Digest of the configuration fields that determine what a capture
 * pass records: the functional cache geometry (window boundaries and
 * cache outcomes), the predictor geometry (warm-table shapes), and the
 * runaway bound. Window-timing parameters are deliberately excluded —
 * a library captured once is valid for every configuration that
 * matches this digest.
 */
std::uint64_t captureDigest(const pipeline::MachineConfig &config);

/** One measurement window's serialized starting state. */
struct LivePoint
{
    std::vector<std::uint8_t> warmImage; //!< predictor warm state
    std::vector<std::uint8_t> execImage; //!< functional executor
};

/** Exact functional totals of the capture pass (the executor runs the
 *  whole program, so these are not estimates). */
struct CaptureTotals
{
    std::uint64_t instructions = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t traps = 0;
};

/** An in-memory live-point library. */
struct LivePointLibrary
{
    std::string kind;     //!< "ooo" / "inorder"
    std::string workload; //!< program name (informational)
    std::uint64_t programFingerprint = 0;
    std::uint64_t digest = 0; //!< captureDigest() of the capture config

    // The U:W:M schedule the boundaries were laid on.
    std::uint64_t fastForward = 0;
    std::uint64_t warmup = 0;
    std::uint64_t measure = 0;

    CaptureTotals totals;
    std::vector<LivePoint> points;

    /** FNV-1a of the serialized image; identifies the library contents
     *  for result-store keying and farm shard validation. Filled by
     *  serializeLibrary() / parseLibrary(). */
    std::uint64_t contentHash = 0;
};

/** Assemble the container image (also refreshes @p lib.contentHash). */
std::vector<std::uint8_t> serializeLibrary(LivePointLibrary &lib);

/** Parse and validate a container image.
 *  @throw SimException(BadCheckpoint) on any corruption. */
LivePointLibrary parseLibrary(std::vector<std::uint8_t> image);

/** Write @p lib to @p path (atomically: temp+rename). */
void writeLibraryFile(const std::string &path, LivePointLibrary &lib);

/** Load a library file. @throw SimException(BadCheckpoint). */
LivePointLibrary loadLibraryFile(const std::string &path);

/** The outcome of one detailed window (the parallel unit of work). */
struct WindowSample
{
    std::uint64_t warmed = 0;   //!< warmup instructions stepped (<W: halt)
    std::uint64_t measured = 0; //!< measured instructions stepped
    std::uint64_t cycles = 0;   //!< cycles spanned by the measured span
    std::uint64_t misses = 0;   //!< L1 misses in the measured span
    std::uint64_t refs = 0;     //!< data references in the measured span
};

/** Fixed-width little-endian encoding (the farm wire/store format). */
std::string encodeWindowSample(const WindowSample &ws);

/** @throw SimException(BadCheckpoint) unless @p s decodes exactly. */
WindowSample decodeWindowSample(const std::string &s);

// --- Image helpers ---------------------------------------------------

/** Serialize @p cpu's warm state as a standalone container image. */
template <typename Cpu>
std::vector<std::uint8_t>
makeWarmImage(const Cpu &cpu)
{
    Serializer s;
    s.beginSection("warm");
    cpu.saveWarmState(s);
    s.endSection();
    return s.finish();
}

/** Seed a freshly reset @p cpu with a warm image. */
template <typename Cpu>
void
restoreWarmImage(const std::vector<std::uint8_t> &image, Cpu &cpu)
{
    Deserializer d(image);
    d.openSection("warm");
    cpu.restoreWarmState(d);
    d.closeSection();
}

/** Serialize @p exec as a standalone container image. */
std::vector<std::uint8_t> makeExecImage(const func::Executor &exec);

/** Restore @p exec from an image (verifies the program fingerprint). */
void restoreExecImage(const std::vector<std::uint8_t> &image,
                      func::Executor &exec);

/** Step the timing model up to @p n records; @return how many. */
template <typename Cpu>
std::uint64_t
stepWindow(Cpu &cpu, func::TraceSource &src, std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n && cpu.step(src))
        ++done;
    return done;
}

/**
 * Trace tee for the sequential (interleaved) sampler: forwards records
 * from the live executor to the window's timing model while training
 * the warm accumulator with every resolved conditional branch. Mirrors
 * exactly what the executor reports to a WarmSink during fastForward()
 * — the four predicted ops only; BRMISS-style branches are statically
 * predicted and carry no predictor state — so the accumulator reaches
 * every window boundary in the same state whether the span in between
 * was fast-forwarded or replayed through a timing model.
 */
template <typename Cpu>
class WarmingTraceSource final : public func::TraceSource
{
  public:
    WarmingTraceSource(func::TraceSource &inner, Cpu &accum)
        : _inner(inner), _accum(accum)
    {
    }

    bool
    next(func::TraceRecord &out) override
    {
        if (!_inner.next(out))
            return false;
        switch (out.inst.op) {
          case isa::Op::BEQ:
          case isa::Op::BNE:
          case isa::Op::BLT:
          case isa::Op::BGE:
            _accum.warmCondBranch(out.pc, out.taken);
            break;
          default:
            break;
        }
        return true;
    }

  private:
    func::TraceSource &_inner;
    Cpu &_accum;
};

/**
 * Runs detailed windows from live points, reusing one executor across
 * calls: constructing an executor is expensive (program copy, cache
 * and data-memory arrays) while restoreExecImage() overwrites every
 * piece of executor state, so each run() is still a pure function of
 * (config, point, W, M) — byte-identical to a fresh-executor run —
 * but a worker draining many windows pays the construction once.
 * One runner per thread; run() itself is not thread-safe.
 */
template <typename Cpu>
class WindowRunner
{
  public:
    WindowRunner(const isa::Program &program,
                 const pipeline::MachineConfig &config)
        : _config(config),
          _exec(program,
                func::Executor::Config{
                    .l1 = config.l1,
                    .l2 = config.l2,
                    .maxInstructions = config.maxInstructions})
    {
    }

    WindowSample
    run(const LivePoint &point, std::uint64_t warmup,
        std::uint64_t measure)
    {
        restoreExecImage(point.execImage, _exec);
        Cpu cpu(_config);
        cpu.reset();
        restoreWarmImage(point.warmImage, cpu);

        WindowSample ws;
        ws.warmed = stepWindow(cpu, _exec, warmup);
        if (ws.warmed < warmup)
            return ws; // program halted during warmup
        const pipeline::RunResult r0 = cpu.result();
        ws.measured = stepWindow(cpu, _exec, measure);
        const pipeline::RunResult r1 = cpu.result();
        ws.cycles = r1.cycles - r0.cycles;
        ws.misses = r1.l1Misses - r0.l1Misses;
        ws.refs = r1.dataRefs - r0.dataRefs;
        return ws;
    }

  private:
    const pipeline::MachineConfig &_config;
    func::Executor _exec;
};

/**
 * Run one detailed window from a live point: a fresh executor replays
 * the window's instruction stream from the saved boundary and a fresh
 * timing model, seeded with the warm state, steps W warmup then M
 * measured instructions. Pure function of its arguments — safe to call
 * concurrently from any thread (every simulator object is local).
 * Batch consumers should hold a WindowRunner instead and amortize the
 * executor construction.
 */
template <typename Cpu>
WindowSample
runLivePointWindow(const isa::Program &program,
                   const pipeline::MachineConfig &config,
                   const LivePoint &point, std::uint64_t warmup,
                   std::uint64_t measure)
{
    WindowRunner<Cpu> runner(program, config);
    return runner.run(point, warmup, measure);
}

} // namespace imo::sample

#endif // IMO_SAMPLE_LIVEPOINT_HH
