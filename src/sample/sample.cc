#include "sample/sample.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/checkpoint.hh"
#include "isa/verify.hh"
#include "pipeline/image.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"

namespace imo::sample
{

void
SampleParams::validate() const
{
    sim_throw_if(fastForward == 0, ErrCode::BadConfig,
                 "sample: fast-forward gap (U) must be nonzero; use the "
                 "full detailed simulation instead of U=0");
    sim_throw_if(measure == 0, ErrCode::BadConfig,
                 "sample: measurement window (M) must be nonzero");
    sim_throw_if(maxPasses == 0, ErrCode::BadConfig,
                 "sample: maxPasses must be at least 1");
    sim_throw_if(targetRelErr < 0.0 || targetRelErr >= 1.0,
                 ErrCode::BadConfig,
                 "sample: target relative error %g outside [0, 1)",
                 targetRelErr);
}

std::string
SampleParams::spec() const
{
    return simFormat("%llu:%llu:%llu",
                     static_cast<unsigned long long>(fastForward),
                     static_cast<unsigned long long>(warmup),
                     static_cast<unsigned long long>(measure));
}

SampleParams
SampleParams::parse(const std::string &spec)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ':'))
        parts.push_back(item);
    sim_throw_if(parts.size() != 3, ErrCode::BadConfig,
                 "sample spec '%s' is not of the form U:W:M "
                 "(e.g. 10000:500:500)", spec.c_str());

    auto num = [&spec](const std::string &s, const char *what) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
        // Digits only: strtoull would otherwise accept "-1" by
        // wrapping it to a huge unsigned value.
        sim_throw_if(s.empty() ||
                     s.find_first_not_of("0123456789") !=
                         std::string::npos ||
                     end == s.c_str() || *end != '\0',
                     ErrCode::BadConfig,
                     "sample spec '%s': bad %s value '%s'",
                     spec.c_str(), what, s.c_str());
        return static_cast<std::uint64_t>(v);
    };
    SampleParams p;
    p.fastForward = num(parts[0], "fast-forward (U)");
    p.warmup = num(parts[1], "warmup (W)");
    p.measure = num(parts[2], "measure (M)");
    p.validate();
    return p;
}

namespace
{

/** Step the timing model up to @p n instructions; @return how many. */
template <typename Cpu>
std::uint64_t
stepN(Cpu &cpu, func::Executor &exec, std::uint64_t n)
{
    std::uint64_t done = 0;
    while (done < n && cpu.step(exec))
        ++done;
    return done;
}

/** Streams fast-forwarded branch outcomes into the CPU's predictor. */
template <typename Cpu>
class PredictorWarmer final : public func::WarmSink
{
  public:
    explicit PredictorWarmer(Cpu &cpu) : _cpu(cpu) {}

    void
    condBranch(InstAddr pc, bool taken) override
    {
        _cpu.warmCondBranch(pc, taken);
    }

  private:
    Cpu &_cpu;
};

} // anonymous namespace

Sampler::Sampler(isa::Program program,
                 const pipeline::MachineConfig &config,
                 const SampleParams &params)
    : _program(std::move(program)), _config(config), _params(params)
{
}

template <typename Cpu>
void
Sampler::runPass(const char *kind, std::uint32_t pass,
                 const pipeline::SimulateOptions &opt)
{
    func::Executor exec(_program,
                        func::Executor::Config{
                            .l1 = _config.l1,
                            .l2 = _config.l2,
                            .maxInstructions = _config.maxInstructions});
    Cpu cpu(_config);
    cpu.reset();

    std::vector<std::uint8_t> in_image;
    const std::vector<std::uint8_t> *resume = opt.resumeImage;
    if (!resume && !opt.checkpointIn.empty()) {
        in_image = Deserializer::readFile(opt.checkpointIn);
        resume = &in_image;
    }
    if (resume) {
        _est.resumedInstructions =
            pipeline::restoreImage(*resume, kind, exec, cpu,
                                   _config.faults);
    }

    PredictorWarmer<Cpu> warmer(cpu);

    const std::uint64_t U = _params.fastForward;
    const std::uint64_t W = _params.warmup;
    const std::uint64_t M = _params.measure;

    // Deterministic phase offset: extension pass p shifts its first
    // gap by p*U/maxPasses so its windows interleave with pass 0's
    // instead of re-measuring the same instructions. A pure function
    // of the parameters — no RNG, no wall clock.
    std::uint64_t gap =
        U + U * pass / std::max<std::uint32_t>(_params.maxPasses, 1);

    for (;;) {
        if (opt.stopFlag && *opt.stopFlag) [[unlikely]] {
            // Graceful stop between windows; run() surfaces it as a
            // structured Interrupted estimate failure.
            throwSimError(ErrCode::Interrupted,
                          "interrupted after %llu sampled windows",
                          static_cast<unsigned long long>(_cpi.count()));
        }
        if (exec.fastForward(gap, &warmer) < gap)
            break; // program halted inside the gap
        gap = U;

        const std::uint64_t warmed = stepN(cpu, exec, W);
        _est.detailedInstructions += warmed;
        if (warmed < W)
            break; // halted during warmup

        const pipeline::RunResult r0 = cpu.result();
        const std::uint64_t measured = stepN(cpu, exec, M);
        _est.detailedInstructions += measured;
        if (measured < M)
            break; // truncated window: not a full-length sample, drop

        const pipeline::RunResult r1 = cpu.result();
        _cpi.sample(static_cast<double>(r1.cycles - r0.cycles) /
                    static_cast<double>(M));
        const std::uint64_t misses = r1.l1Misses - r0.l1Misses;
        const std::uint64_t refs = r1.dataRefs - r0.dataRefs;
        // Zero-ref windows are legitimate ratio-estimator samples
        // (they pull the estimate's weight, not its value), but a
        // per-window ratio only exists when there are refs.
        _winMisses.push_back(static_cast<double>(misses));
        _winRefs.push_back(static_cast<double>(refs));
        if (refs) {
            _missRate.sample(static_cast<double>(misses) /
                             static_cast<double>(refs));
        }
    }

    // The functional side executed the whole program regardless of how
    // the windows fell, so these totals are exact (and identical in
    // every pass — only the window placement differs).
    const func::ExecStats &es = exec.stats();
    _est.instructions = es.instructions;
    _est.dataRefs = es.dataRefs;
    _est.l1Misses = es.l1Misses;
    _est.traps = es.traps;

    if (pass == 0 && !opt.checkpointOut.empty()) {
        writeCheckpointFile(
            opt.checkpointOut,
            pipeline::makeImage(kind, _program, exec, cpu,
                                _config.faults, es.instructions));
    }
}

template <typename Cpu>
void
Sampler::runPasses(const char *kind,
                   const pipeline::SimulateOptions &opt)
{
    runPass<Cpu>(kind, 0, opt);
    _est.passes = 1;
    // Error-targeted auto-extension: pool more phase-offset passes
    // until the CPI confidence interval meets the target (at least two
    // windows are needed for the interval to mean anything).
    while (_params.targetRelErr > 0.0 && _est.passes < _params.maxPasses &&
           (_cpi.count() < 2 ||
            _cpi.relativeError() > _params.targetRelErr)) {
        runPass<Cpu>(kind, _est.passes, opt);
        ++_est.passes;
    }
}

void
Sampler::finishMissRateEstimate()
{
    // Ratio estimator over the measured windows: R = pooled misses /
    // pooled refs, var(R) ~= sum((m_i - R r_i)^2) / (n-1) / (n rbar^2)
    // (Taylor linearization). Each window is weighted by its refs, so
    // ref-heavy miss-heavy windows cannot bias the estimate the way an
    // equal-weighted mean of per-window ratios would.
    const std::size_t n = _winMisses.size();
    double sum_m = 0.0;
    double sum_r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum_m += _winMisses[i];
        sum_r += _winRefs[i];
    }
    if (sum_r <= 0.0)
        return;
    const double ratio = sum_m / sum_r;
    _est.missRateMean = ratio;
    if (n < 2)
        return;
    const double rbar = sum_r / static_cast<double>(n);
    double dev2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = _winMisses[i] - ratio * _winRefs[i];
        dev2 += d * d;
    }
    _est.missRateVariance = dev2 / static_cast<double>(n - 1) /
        (static_cast<double>(n) * rbar * rbar);
    _est.missRateCi95 = 1.96 * std::sqrt(_est.missRateVariance);
}

SampleEstimate
Sampler::run(const pipeline::SimulateOptions &options)
{
    _cpi.reset();
    _missRate.reset();
    _winMisses.clear();
    _winRefs.clear();
    _est = SampleEstimate{};
    _est.machine = _config.name;
    _est.workload = _program.name();
    _est.spec = _params.spec();

    try {
        _params.validate();
        _config.validate();
        isa::verifyProgram(_program);

        if (_config.outOfOrder)
            runPasses<pipeline::OooCpu>("ooo", options);
        else
            runPasses<pipeline::InOrderCpu>("inorder", options);

        _est.windows = _cpi.count();
        _est.cpiMean = _cpi.mean();
        _est.cpiVariance = _cpi.variance();
        _est.cpiCi95 = _cpi.ci95();
        finishMissRateEstimate();

        xcheckAgainstFull();
    } catch (const SimException &e) {
        _est.ok = false;
        _est.error = e.error();
    } catch (const std::exception &e) {
        _est.ok = false;
        _est.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    return _est;
}

void
Sampler::xcheckAgainstFull()
{
#ifdef IMO_PARANOID_XCHECK
    // Fault injection consumes PRNG draws per detailed event, so a
    // full run and a sampled run see different fault streams and are
    // not comparable; a windowless run estimates nothing. Resumed runs
    // cover a program suffix a cold full run would not match.
    if (_config.faults || _est.windows == 0 ||
        _est.resumedInstructions != 0) {
        return;
    }

    pipeline::MachineConfig full_cfg = _config;
    full_cfg.obs = nullptr;
    const pipeline::RunResult full =
        pipeline::simulate(_program, full_cfg);
    sim_throw_if(!full.ok, ErrCode::Internal,
                 "xcheck: full reference run failed: %s",
                 full.error.message.c_str());

    // The sampled estimate must land inside its own reported interval
    // around the detailed truth. The interval is floored at 2% of the
    // reference value (the accuracy budget this engine targets) so a
    // handful of near-identical windows reporting a degenerate
    // zero-width CI cannot turn an accurate estimate into a false
    // alarm, and at an absolute 0.002 for miss rates near zero.
    const double full_cpi = full.instructions
        ? static_cast<double>(full.cycles) / full.instructions : 0.0;
    const double cpi_tol = std::max(_est.cpiCi95, 0.02 * full_cpi);
    sim_throw_if(std::abs(full_cpi - _est.cpiMean) > cpi_tol,
                 ErrCode::Internal,
                 "xcheck: sampled CPI %.6f +/- %.6f misses full-run "
                 "CPI %.6f (%s, %s, %s, %llu windows)",
                 _est.cpiMean, cpi_tol, full_cpi,
                 _est.machine.c_str(), _est.workload.c_str(),
                 _est.spec.c_str(),
                 static_cast<unsigned long long>(_est.windows));

    const double full_rate = full.dataRefs
        ? static_cast<double>(full.l1Misses) / full.dataRefs : 0.0;
    const double rate_tol = std::max(
        {_est.missRateCi95, 0.02 * full_rate, 0.002});
    sim_throw_if(std::abs(full_rate - _est.missRateMean) > rate_tol,
                 ErrCode::Internal,
                 "xcheck: sampled L1 miss rate %.6f +/- %.6f misses "
                 "full-run rate %.6f (%s, %s, %s)",
                 _est.missRateMean, rate_tol, full_rate,
                 _est.machine.c_str(), _est.workload.c_str(),
                 _est.spec.c_str());
#endif
}

void
Sampler::registerStats(stats::StatGroup &parent)
{
    auto &g = parent.childGroup("sample");
    g.adopt(_cpi);
    g.adopt(_missRate);
    g.make<stats::Value>("windows", "full measurement windows pooled",
                         [this] { return _est.windows; });
    g.make<stats::Value>("passes", "sampling passes run", [this] {
        return static_cast<std::uint64_t>(_est.passes);
    });
    g.make<stats::Value>("instructions",
                         "instructions executed functionally (exact)",
                         [this] { return _est.instructions; });
    g.make<stats::Value>("detailed_instructions",
                         "instructions stepped through the timing model",
                         [this] { return _est.detailedInstructions; });
    g.make<stats::Derived>("est_cycles",
                           "window CPI mean x exact instructions",
                           [this] { return _est.estCycles(); });
    g.make<stats::Derived>("exact_l1_miss_rate",
                           "functionally exact L1 miss rate",
                           [this] { return _est.exactMissRate(); });
}

} // namespace imo::sample
