#include "sample/sample.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/checkpoint.hh"
#include "isa/verify.hh"
#include "pipeline/image.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"
#include "sweep/engine.hh"

namespace imo::sample
{

void
SampleParams::validate() const
{
    sim_throw_if(fastForward == 0, ErrCode::BadConfig,
                 "sample: fast-forward gap (U) must be nonzero; use the "
                 "full detailed simulation instead of U=0");
    sim_throw_if(measure == 0, ErrCode::BadConfig,
                 "sample: measurement window (M) must be nonzero");
    sim_throw_if(maxPasses == 0, ErrCode::BadConfig,
                 "sample: maxPasses must be at least 1");
    sim_throw_if(targetRelErr < 0.0 || targetRelErr >= 1.0,
                 ErrCode::BadConfig,
                 "sample: target relative error %g outside [0, 1)",
                 targetRelErr);
}

std::string
SampleParams::spec() const
{
    return simFormat("%llu:%llu:%llu",
                     static_cast<unsigned long long>(fastForward),
                     static_cast<unsigned long long>(warmup),
                     static_cast<unsigned long long>(measure));
}

SampleParams
SampleParams::parse(const std::string &spec)
{
    std::vector<std::string> parts;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ':'))
        parts.push_back(item);
    sim_throw_if(parts.size() != 3, ErrCode::BadConfig,
                 "sample spec '%s' is not of the form U:W:M "
                 "(e.g. 10000:500:500)", spec.c_str());

    auto num = [&spec](const std::string &s, const char *what) {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
        // Digits only: strtoull would otherwise accept "-1" by
        // wrapping it to a huge unsigned value.
        sim_throw_if(s.empty() ||
                     s.find_first_not_of("0123456789") !=
                         std::string::npos ||
                     end == s.c_str() || *end != '\0',
                     ErrCode::BadConfig,
                     "sample spec '%s': bad %s value '%s'",
                     spec.c_str(), what, s.c_str());
        return static_cast<std::uint64_t>(v);
    };
    SampleParams p;
    p.fastForward = num(parts[0], "fast-forward (U)");
    p.warmup = num(parts[1], "warmup (W)");
    p.measure = num(parts[2], "measure (M)");
    p.validate();
    return p;
}

SampleParams
SampleParams::preset(const std::string &name,
                     const std::string &workload)
{
    if (name == "default")
        return SampleParams{};
    sim_throw_if(name != "periodic", ErrCode::BadConfig,
                 "unknown sample preset '%s' (known: default, periodic)",
                 name.c_str());

    // Workloads whose misses concentrate in a narrow periodic phase.
    // The default 9973-gap stride samples such a phase too sparsely:
    // most windows land in the compute body and the few that catch the
    // miss burst dominate the variance. A denser prime gap with wider
    // windows covers every period of the phase; the gaps differ per
    // workload so the stride stays co-prime with each one's loop
    // period. Tuned against the exact detailed run in EXPERIMENTS.md.
    SampleParams p;
    if (workload == "eqntott") {
        p.fastForward = 1999; // short bitmap-scan period
        p.warmup = 400;
        p.measure = 400;
    } else if (workload == "xlisp") {
        p.fastForward = 2503; // GC mark/sweep bursts
        p.warmup = 500;
        p.measure = 500;
    } else if (workload == "doduc") {
        p.fastForward = 3001; // nuclear-kernel inner loops
        p.warmup = 400;
        p.measure = 400;
    } else if (workload == "ora") {
        p.fastForward = 1499; // tight ray-step recurrence
        p.warmup = 300;
        p.measure = 300;
    }
    // Anything else keeps the defaults: the preset only overrides the
    // workloads with a demonstrated aliasing problem.
    p.validate();
    return p;
}

namespace
{

/** Streams fast-forwarded branch outcomes into the CPU's predictor. */
template <typename Cpu>
class PredictorWarmer final : public func::WarmSink
{
  public:
    explicit PredictorWarmer(Cpu &cpu) : _cpu(cpu) {}

    void
    condBranch(InstAddr pc, bool taken) override
    {
        _cpu.warmCondBranch(pc, taken);
    }

  private:
    Cpu &_cpu;
};

} // anonymous namespace

Sampler::Sampler(isa::Program program,
                 const pipeline::MachineConfig &config,
                 const SampleParams &params)
    : _program(std::move(program)), _config(config), _params(params)
{
}

bool
Sampler::foldWindow(const WindowSample &ws)
{
    _est.detailedInstructions += ws.warmed;
    if (ws.warmed < _params.warmup)
        return false; // halted during warmup
    _est.detailedInstructions += ws.measured;
    if (ws.measured < _params.measure)
        return false; // truncated window: not a full-length sample, drop

    _cpi.sample(static_cast<double>(ws.cycles) /
                static_cast<double>(_params.measure));
    // Zero-ref windows are legitimate ratio-estimator samples
    // (they pull the estimate's weight, not its value), but a
    // per-window ratio only exists when there are refs.
    _winMisses.push_back(static_cast<double>(ws.misses));
    _winRefs.push_back(static_cast<double>(ws.refs));
    if (ws.refs) {
        _missRate.sample(static_cast<double>(ws.misses) /
                         static_cast<double>(ws.refs));
    }
    return true;
}

void
Sampler::foldWindowSamples(const std::vector<WindowSample> &samples,
                           const std::vector<std::uint8_t> *completed)
{
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (completed && !(*completed)[i]) [[unlikely]] {
            // A cooperative stop left this and later windows unrun;
            // run() surfaces it as a structured Interrupted failure.
            throwSimError(ErrCode::Interrupted,
                          "interrupted after %llu sampled windows",
                          static_cast<unsigned long long>(_cpi.count()));
        }
        if (!foldWindow(samples[i]))
            break;
    }
}

template <typename Cpu>
void
Sampler::runWindows(const std::vector<LivePoint> &points,
                    const pipeline::SimulateOptions &opt)
{
    // One WindowRunner per worker: every restore overwrites the whole
    // executor, so samples stay pure functions of their live points
    // while the expensive executor construction (program copy, cache
    // and page arrays) happens once per worker, not once per window.
    const std::function<WindowRunner<Cpu>()> make_runner = [this] {
        return WindowRunner<Cpu>(_program, _config);
    };
    std::vector<std::function<WindowSample(WindowRunner<Cpu> &)>> tasks;
    tasks.reserve(points.size());
    for (const LivePoint &p : points) {
        tasks.push_back([this, &p](WindowRunner<Cpu> &runner) {
            return runner.run(p, _params.warmup, _params.measure);
        });
    }
    // runOrderedWith writes each window's sample into its input slot,
    // so the fold below sees them in window order no matter how the
    // pool scheduled them — that, plus every window being a pure
    // function of its live point, is the whole byte-identity argument.
    std::vector<std::uint8_t> completed;
    const std::vector<WindowSample> samples =
        sweep::runOrderedWith<WindowSample, WindowRunner<Cpu>>(
            make_runner, tasks, std::max(1u, _jobs), opt.stopFlag,
            &completed);
    foldWindowSamples(samples, &completed);
}

template <typename Cpu>
void
Sampler::runPassFromLibrary(const char *kind,
                            const pipeline::SimulateOptions &opt)
{
    validateLibrary(kind);
    const LivePointLibrary &lib = *_library;

    // The capture pass ran the whole program once; its exact totals
    // travel in the library header, which is what lets a library
    // consumer skip the functional pass entirely.
    _est.instructions = lib.totals.instructions;
    _est.dataRefs = lib.totals.dataRefs;
    _est.l1Misses = lib.totals.l1Misses;
    _est.traps = lib.totals.traps;

    runWindows<Cpu>(lib.points, opt);
}

template <typename Cpu>
void
Sampler::runPass(const char *kind, std::uint32_t pass,
                 const pipeline::SimulateOptions &opt)
{
    if (_library) {
        runPassFromLibrary<Cpu>(kind, opt);
        return;
    }

    func::Executor exec(_program,
                        func::Executor::Config{
                            .l1 = _config.l1,
                            .l2 = _config.l2,
                            .maxInstructions = _config.maxInstructions});
    // The accumulator machine is never measured: it soaks up warmCond-
    // Branch() for every conditional branch — gaps and window spans
    // alike — so its predictor tables at any window boundary are a
    // pure fold over the whole instruction prefix, independent of how
    // the windows themselves are executed.
    Cpu accum(_config);
    accum.reset();

    std::vector<std::uint8_t> in_image;
    const std::vector<std::uint8_t> *resume = opt.resumeImage;
    if (!resume && !opt.checkpointIn.empty()) {
        in_image = Deserializer::readFile(opt.checkpointIn);
        resume = &in_image;
    }
    if (resume) {
        _est.resumedInstructions =
            pipeline::restoreImage(*resume, kind, exec, accum,
                                   _config.faults);
    }

    PredictorWarmer<Cpu> warmer(accum);

    const std::uint64_t U = _params.fastForward;
    const std::uint64_t W = _params.warmup;
    const std::uint64_t M = _params.measure;

    // Deterministic phase offset: extension pass p shifts its first
    // gap by p*U/maxPasses so its windows interleave with pass 0's
    // instead of re-measuring the same instructions. A pure function
    // of the parameters — no RNG, no wall clock.
    std::uint64_t gap =
        U + U * pass / std::max<std::uint32_t>(_params.maxPasses, 1);

    auto check_stop = [&] {
        if (opt.stopFlag && *opt.stopFlag) [[unlikely]] {
            // Graceful stop between windows; run() surfaces it as a
            // structured Interrupted estimate failure.
            throwSimError(ErrCode::Interrupted,
                          "interrupted after %llu sampled windows",
                          static_cast<unsigned long long>(_cpi.count()));
        }
    };

    const bool capture =
        _jobs > 1 || !_captureOut.empty() || _retainCapture;
    if (!capture) {
        // Interleaved mode: each window runs in place on the live
        // executor, on a fresh machine seeded with the accumulator's
        // warm state. The tee keeps the accumulator warm across the
        // window span; no executor state is ever serialized.
        WarmingTraceSource<Cpu> tee(exec, accum);
        for (;;) {
            check_stop();
            if (exec.fastForward(gap, &warmer) < gap)
                break; // program halted inside the gap
            gap = U;

            const std::vector<std::uint8_t> warm = makeWarmImage(accum);
            Cpu win(_config);
            win.reset();
            restoreWarmImage(warm, win);

            WindowSample ws;
            ws.warmed = stepWindow(win, tee, W);
            if (ws.warmed == W) {
                const pipeline::RunResult r0 = win.result();
                ws.measured = stepWindow(win, tee, M);
                const pipeline::RunResult r1 = win.result();
                ws.cycles = r1.cycles - r0.cycles;
                ws.misses = r1.l1Misses - r0.l1Misses;
                ws.refs = r1.dataRefs - r0.dataRefs;
            }
            if (!foldWindow(ws))
                break;
        }
    } else {
        // Capture mode: the functional pass snapshots a live point at
        // every window boundary (fast-forwarding straight through the
        // window spans), then the windows replay from their live
        // points on the worker pool.
        auto lib = std::make_shared<LivePointLibrary>();
        lib->kind = kind;
        lib->workload = _program.name();
        lib->programFingerprint = _program.fingerprint();
        lib->digest = captureDigest(_config);
        lib->fastForward = U;
        lib->warmup = W;
        lib->measure = M;
        for (;;) {
            check_stop();
            if (exec.fastForward(gap, &warmer) < gap)
                break;
            gap = U;
            lib->points.push_back(
                {makeWarmImage(accum), makeExecImage(exec)});
            if (exec.fastForward(W + M, &warmer) < W + M)
                break; // halted inside the window span
        }
        const func::ExecStats &cs = exec.stats();
        lib->totals = CaptureTotals{cs.instructions, cs.dataRefs,
                                    cs.l1Misses, cs.traps};
        if (pass == 0) {
            if (!_captureOut.empty())
                writeLibraryFile(_captureOut, *lib);
            _captured = lib;
        }
        runWindows<Cpu>(lib->points, opt);
    }

    // The functional side executed the whole program regardless of how
    // the windows fell, so these totals are exact (and identical in
    // every pass — only the window placement differs).
    const func::ExecStats &es = exec.stats();
    _est.instructions = es.instructions;
    _est.dataRefs = es.dataRefs;
    _est.l1Misses = es.l1Misses;
    _est.traps = es.traps;

    if (pass == 0 && !opt.checkpointOut.empty()) {
        // The accumulator is quiesced (it only ever received warming
        // updates), so the image is taken at a valid boundary in every
        // mode and its bytes do not depend on the jobs count.
        writeCheckpointFile(
            opt.checkpointOut,
            pipeline::makeImage(kind, _program, exec, accum,
                                _config.faults, es.instructions));
    }
}

template <typename Cpu>
void
Sampler::runPasses(const char *kind,
                   const pipeline::SimulateOptions &opt)
{
    runPass<Cpu>(kind, 0, opt);
    _est.passes = 1;
    // Error-targeted auto-extension: pool more phase-offset passes
    // until the CPI confidence interval meets the target (at least two
    // windows are needed for the interval to mean anything).
    while (_params.targetRelErr > 0.0 && _est.passes < _params.maxPasses &&
           (_cpi.count() < 2 ||
            _cpi.relativeError() > _params.targetRelErr)) {
        runPass<Cpu>(kind, _est.passes, opt);
        ++_est.passes;
    }
}

void
Sampler::finishMissRateEstimate()
{
    // Ratio estimator over the measured windows: R = pooled misses /
    // pooled refs, var(R) ~= sum((m_i - R r_i)^2) / (n-1) / (n rbar^2)
    // (Taylor linearization). Each window is weighted by its refs, so
    // ref-heavy miss-heavy windows cannot bias the estimate the way an
    // equal-weighted mean of per-window ratios would.
    const std::size_t n = _winMisses.size();
    double sum_m = 0.0;
    double sum_r = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        sum_m += _winMisses[i];
        sum_r += _winRefs[i];
    }
    if (sum_r <= 0.0)
        return;
    const double ratio = sum_m / sum_r;
    _est.missRateMean = ratio;
    if (n < 2)
        return;
    const double rbar = sum_r / static_cast<double>(n);
    double dev2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double d = _winMisses[i] - ratio * _winRefs[i];
        dev2 += d * d;
    }
    _est.missRateVariance = dev2 / static_cast<double>(n - 1) /
        (static_cast<double>(n) * rbar * rbar);
    _est.missRateCi95 = 1.96 * std::sqrt(_est.missRateVariance);
}

void
Sampler::resetAccumulators()
{
    _cpi.reset();
    _missRate.reset();
    _winMisses.clear();
    _winRefs.clear();
    _captured.reset();
    _est = SampleEstimate{};
    _est.machine = _config.name;
    _est.workload = _program.name();
    _est.spec = _params.spec();
}

void
Sampler::finishEstimate()
{
    _est.windows = _cpi.count();
    _est.cpiMean = _cpi.mean();
    _est.cpiVariance = _cpi.variance();
    _est.cpiCi95 = _cpi.ci95();
    finishMissRateEstimate();
}

void
Sampler::validateLibrary(const char *kind) const
{
    const LivePointLibrary &lib = *_library;
    sim_throw_if(lib.kind != kind, ErrCode::BadConfig,
                 "live-point library was captured on a '%s' machine, "
                 "this configuration is '%s'", lib.kind.c_str(), kind);
    sim_throw_if(lib.programFingerprint != _program.fingerprint(),
                 ErrCode::BadConfig,
                 "live-point library was captured from workload '%s' "
                 "(fingerprint %llx), not this program (%llx)",
                 lib.workload.c_str(),
                 static_cast<unsigned long long>(lib.programFingerprint),
                 static_cast<unsigned long long>(_program.fingerprint()));
    sim_throw_if(lib.digest != captureDigest(_config),
                 ErrCode::BadConfig,
                 "live-point library was captured under a different "
                 "cache/predictor geometry (digest %llx, this "
                 "configuration %llx)",
                 static_cast<unsigned long long>(lib.digest),
                 static_cast<unsigned long long>(
                     captureDigest(_config)));
    sim_throw_if(lib.fastForward != _params.fastForward ||
                 lib.warmup != _params.warmup ||
                 lib.measure != _params.measure,
                 ErrCode::BadConfig,
                 "live-point library was captured on a %llu:%llu:%llu "
                 "schedule, not %s",
                 static_cast<unsigned long long>(lib.fastForward),
                 static_cast<unsigned long long>(lib.warmup),
                 static_cast<unsigned long long>(lib.measure),
                 _params.spec().c_str());
}

SampleEstimate
Sampler::run(const pipeline::SimulateOptions &options)
{
    resetAccumulators();

    try {
        _params.validate();
        _config.validate();
        isa::verifyProgram(_program);

        if (_library) {
            sim_throw_if(_params.targetRelErr > 0.0, ErrCode::BadConfig,
                         "error-targeted extension re-runs the "
                         "functional pass with new phase offsets; it "
                         "cannot sample from a live-point library");
            sim_throw_if(!options.checkpointOut.empty() ||
                         !options.checkpointIn.empty() ||
                         options.resumeImage, ErrCode::BadConfig,
                         "checkpoint options do not apply when "
                         "sampling from a live-point library (no "
                         "functional pass runs)");
        }
        sim_throw_if(!_captureOut.empty() &&
                     (!options.checkpointIn.empty() ||
                      options.resumeImage), ErrCode::BadConfig,
                     "capturing a live-point library from a resumed "
                     "run would bake the resume point into the "
                     "library; capture from a cold start instead");

        if (_config.outOfOrder)
            runPasses<pipeline::OooCpu>("ooo", options);
        else
            runPasses<pipeline::InOrderCpu>("inorder", options);

        finishEstimate();
        xcheckAgainstFull();
    } catch (const SimException &e) {
        _est.ok = false;
        _est.error = e.error();
    } catch (const std::exception &e) {
        _est.ok = false;
        _est.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    return _est;
}

SampleEstimate
Sampler::runFromWindowSamples(const std::vector<WindowSample> &samples)
{
    resetAccumulators();

    try {
        _params.validate();
        _config.validate();
        isa::verifyProgram(_program);
        sim_throw_if(!_library, ErrCode::BadConfig,
                     "runFromWindowSamples needs setLibrary(): the "
                     "samples are meaningless without the library "
                     "that produced them");
        validateLibrary(_config.outOfOrder ? "ooo" : "inorder");
        sim_throw_if(samples.size() != _library->points.size(),
                     ErrCode::BadConfig,
                     "%zu window samples for a %zu-window library",
                     samples.size(), _library->points.size());

        _est.instructions = _library->totals.instructions;
        _est.dataRefs = _library->totals.dataRefs;
        _est.l1Misses = _library->totals.l1Misses;
        _est.traps = _library->totals.traps;
        _est.passes = 1;

        foldWindowSamples(samples, nullptr);
        finishEstimate();
        xcheckAgainstFull();
    } catch (const SimException &e) {
        _est.ok = false;
        _est.error = e.error();
    } catch (const std::exception &e) {
        _est.ok = false;
        _est.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    return _est;
}

SampleEstimate
Sampler::runFromSharedPass(const SharedPassTotals &totals,
                           const std::vector<WindowSample> &samples)
{
    resetAccumulators();

    try {
        _params.validate();
        _config.validate();
        isa::verifyProgram(_program);

        // Mirror the interleaved pass exactly: fold in window order,
        // stop at the first truncated window (program halt), and set
        // the exact totals only after the fold — the same ordering
        // runPass() uses, so even degenerate runs match byte-for-byte.
        for (const WindowSample &ws : samples)
            if (!foldWindow(ws))
                break;

        _est.instructions = totals.instructions;
        _est.dataRefs = totals.dataRefs;
        _est.l1Misses = totals.l1Misses;
        _est.traps = totals.traps;
        _est.passes = 1;

        finishEstimate();
        xcheckAgainstFull();
    } catch (const SimException &e) {
        _est.ok = false;
        _est.error = e.error();
    } catch (const std::exception &e) {
        _est.ok = false;
        _est.error = SimError{ErrCode::Internal, e.what(), {}};
    }
    return _est;
}

void
Sampler::xcheckAgainstFull()
{
#ifdef IMO_PARANOID_XCHECK
    // Fault injection consumes PRNG draws per detailed event, so a
    // full run and a sampled run see different fault streams and are
    // not comparable; a windowless run estimates nothing. Resumed runs
    // cover a program suffix a cold full run would not match.
    if (_config.faults || _est.windows == 0 ||
        _est.resumedInstructions != 0) {
        return;
    }

    pipeline::MachineConfig full_cfg = _config;
    full_cfg.obs = nullptr;
    const pipeline::RunResult full =
        pipeline::simulate(_program, full_cfg);
    sim_throw_if(!full.ok, ErrCode::Internal,
                 "xcheck: full reference run failed: %s",
                 full.error.message.c_str());

    // The sampled estimate must land inside its own reported interval
    // around the detailed truth. The interval is floored at 2% of the
    // reference value (the accuracy budget this engine targets) so a
    // handful of near-identical windows reporting a degenerate
    // zero-width CI cannot turn an accurate estimate into a false
    // alarm, and at an absolute 0.002 for miss rates near zero.
    const double full_cpi = full.instructions
        ? static_cast<double>(full.cycles) / full.instructions : 0.0;
    const double cpi_tol = std::max(_est.cpiCi95, 0.02 * full_cpi);
    sim_throw_if(std::abs(full_cpi - _est.cpiMean) > cpi_tol,
                 ErrCode::Internal,
                 "xcheck: sampled CPI %.6f +/- %.6f misses full-run "
                 "CPI %.6f (%s, %s, %s, %llu windows)",
                 _est.cpiMean, cpi_tol, full_cpi,
                 _est.machine.c_str(), _est.workload.c_str(),
                 _est.spec.c_str(),
                 static_cast<unsigned long long>(_est.windows));

    const double full_rate = full.dataRefs
        ? static_cast<double>(full.l1Misses) / full.dataRefs : 0.0;
    const double rate_tol = std::max(
        {_est.missRateCi95, 0.02 * full_rate, 0.002});
    sim_throw_if(std::abs(full_rate - _est.missRateMean) > rate_tol,
                 ErrCode::Internal,
                 "xcheck: sampled L1 miss rate %.6f +/- %.6f misses "
                 "full-run rate %.6f (%s, %s, %s)",
                 _est.missRateMean, rate_tol, full_rate,
                 _est.machine.c_str(), _est.workload.c_str(),
                 _est.spec.c_str());
#endif
}

void
Sampler::registerStats(stats::StatGroup &parent)
{
    auto &g = parent.childGroup("sample");
    g.adopt(_cpi);
    g.adopt(_missRate);
    g.make<stats::Value>("windows", "full measurement windows pooled",
                         [this] { return _est.windows; });
    g.make<stats::Value>("passes", "sampling passes run", [this] {
        return static_cast<std::uint64_t>(_est.passes);
    });
    g.make<stats::Value>("instructions",
                         "instructions executed functionally (exact)",
                         [this] { return _est.instructions; });
    g.make<stats::Value>("detailed_instructions",
                         "instructions stepped through the timing model",
                         [this] { return _est.detailedInstructions; });
    g.make<stats::Derived>("est_cycles",
                           "window CPI mean x exact instructions",
                           [this] { return _est.estCycles(); });
    g.make<stats::Derived>("exact_l1_miss_rate",
                           "functionally exact L1 miss rate",
                           [this] { return _est.exactMissRate(); });
}

} // namespace imo::sample
