/**
 * @file
 * SMARTS-style sampled simulation (Wunderlich et al., ISCA 2003,
 * applied to this reproduction's two-phase engine).
 *
 * The controller alternates three regimes on instruction boundaries:
 *
 *   fast-forward (U)  -> detailed warmup (W) -> detailed measure (M)
 *
 * During fast-forward the functional executor advances architectural
 * state at full speed with *functional warming*: the reference cache
 * hierarchy is driven by every data reference (it always is — the
 * executor owns it), and conditional-branch outcomes are streamed into
 * the timing model's branch predictor via Cpu::warmCondBranch(). No
 * pipeline slots, MSHR timing, or bank contention are simulated in the
 * gap. Informing-op semantics stay exact: miss traps dispatch, handlers
 * execute, condition codes update — architectural state never forks.
 *
 * Each detailed window first steps the timing model W instructions to
 * re-establish short-lived micro-architectural state (pipeline
 * occupancy, MSHR residency, future-cycle bookkeeping), then measures M
 * instructions. Per-window CPI and L1 miss-rate samples accumulate in
 * stats::Distribution accumulators (Welford mean/variance/95% CI).
 *
 * The schedule is a pure function of the parameters and the instruction
 * stream — no wall clock, no RNG — so sampled results are bit-identical
 * across invocations and across sweep worker counts. The optional
 * error-targeted auto-extension reruns the program with deterministic
 * phase offsets (pass p starts its first gap at p*U/maxPasses extra
 * instructions) until the CPI CI meets the target or maxPasses is hit.
 *
 * Every measurement window runs on a *fresh* timing model seeded only
 * with the warm predictor state a continuously warmed "accumulator"
 * machine has reached at the window's boundary; short-lived state
 * (pipeline occupancy, MSHRs, BTB) is re-established by the W warmup
 * span. Windows are therefore independent by construction, which is
 * what makes them embarrassingly parallel (sample/livepoint.hh): the
 * controller runs them interleaved with the functional pass (the
 * sequential fast path), or captures per-window live points and runs
 * them on a thread pool (setJobs), or skips the functional pass
 * entirely and replays a previously captured library (setLibrary).
 * All three modes fold the same per-window samples in the same order,
 * so their estimates — and any report derived from them — are
 * byte-identical.
 *
 * Under -DIMO_PARANOID_XCHECK=ON every run() additionally performs the
 * full detailed simulation and asserts the sampled CPI and miss-rate
 * estimates land inside their own reported confidence intervals
 * (widened by a 2% floor against degenerate zero-variance windows).
 */

#ifndef IMO_SAMPLE_SAMPLE_HH
#define IMO_SAMPLE_SAMPLE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/stats.hh"
#include "isa/program.hh"
#include "pipeline/config.hh"
#include "pipeline/simulate.hh"
#include "sample/livepoint.hh"

namespace imo::sample
{

/** The sampling schedule: the U:W:M triple plus extension policy. */
struct SampleParams
{
    // The default gap is prime so the sampling stride (U+W+M) stays
    // co-prime with loop periods; a round stride like 11000 aliases
    // with periodic workloads and silently biases the window samples
    // (tight CI around the wrong value).
    std::uint64_t fastForward = 9973; //!< U: functional-warming gap
    std::uint64_t warmup = 300;       //!< W: detailed, discarded
    std::uint64_t measure = 300;      //!< M: detailed, measured

    /**
     * Target relative CPI error (ci95 / mean), e.g. 0.02 for 2%. When
     * nonzero and unmet after a pass, the controller runs another
     * phase-offset pass (up to maxPasses) and pools the windows.
     * 0 disables extension (single pass).
     */
    double targetRelErr = 0.0;
    std::uint32_t maxPasses = 8;

    /** @throw SimException(BadConfig) on an unusable schedule. */
    void validate() const;

    /** Render as "U:W:M" (the --sample argument format). */
    std::string spec() const;

    /**
     * Parse "U:W:M" (e.g. "10000:500:500").
     * @throw SimException(BadConfig) on malformed input.
     */
    static SampleParams parse(const std::string &spec);

    /**
     * Named schedule presets (the --sample-preset argument):
     *
     *  - "default": the default 9973:300:300 for every workload.
     *  - "periodic": denser per-workload schedules for the workloads
     *    whose misses concentrate in a narrow periodic phase (eqntott,
     *    xlisp, doduc, ora) and would alias with the default stride;
     *    other workloads get the default. All gaps stay prime.
     *
     * @throw SimException(BadConfig) for an unknown preset name.
     */
    static SampleParams preset(const std::string &name,
                               const std::string &workload);
};

/** Exact functional totals of one configuration, as produced by a
 *  shared multi-configuration reference pass (sample/sharedpass.hh):
 *  instruction, reference and trap counts are geometry-invariant for
 *  an eligible program, while l1Misses is the per-config count the
 *  multicache engine classified. */
struct SharedPassTotals
{
    std::uint64_t instructions = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t traps = 0;
};

/** The sampled estimate: exact functional totals plus interval
 *  estimates of the timing-only quantities. */
struct SampleEstimate
{
    bool ok = true; //!< false: @ref error describes the failure
    SimError error;

    std::string machine;
    std::string workload;
    std::string spec; //!< the U:W:M schedule that produced this

    // Exact totals: the executor runs every instruction of the program
    // (fast-forwarded or detailed), so these are not estimates.
    std::uint64_t instructions = 0;
    std::uint64_t dataRefs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t traps = 0;

    // Sampling bookkeeping.
    std::uint32_t passes = 0;
    std::uint64_t windows = 0; //!< full measurement windows pooled
    std::uint64_t detailedInstructions = 0; //!< warmup + measured
    std::uint64_t resumedInstructions = 0;  //!< checkpoint-in position

    // Per-window CPI distribution (cycles per instruction).
    double cpiMean = 0.0;
    double cpiVariance = 0.0;
    double cpiCi95 = 0.0;

    // L1 miss-rate ratio estimate over the measured windows: pooled
    // misses / pooled refs, with the classic linearized ratio-estimator
    // variance. (An equal-weighted mean of per-window ratios would bias
    // low whenever ref-heavy windows also miss more; the ratio
    // estimator weights each window by its refs and does not.)
    double missRateMean = 0.0;
    double missRateVariance = 0.0;
    double missRateCi95 = 0.0;

    double ipcMean() const { return cpiMean > 0.0 ? 1.0 / cpiMean : 0.0; }

    /** Estimated total cycles: mean window CPI x exact instructions. */
    double estCycles() const { return cpiMean * instructions; }

    /** The exact (functionally counted) L1 miss rate. */
    double
    exactMissRate() const
    {
        return dataRefs
            ? static_cast<double>(l1Misses) / dataRefs : 0.0;
    }

    /** Relative CPI error: ci95 / mean (0 when undefined). */
    double
    cpiRelErr() const
    {
        return cpiMean > 0.0 ? cpiCi95 / cpiMean : 0.0;
    }

    bool
    cpiCiContains(double cpi) const
    {
        return cpi >= cpiMean - cpiCi95 && cpi <= cpiMean + cpiCi95;
    }

    bool
    missRateCiContains(double rate) const
    {
        return rate >= missRateMean - missRateCi95 &&
               rate <= missRateMean + missRateCi95;
    }
};

/**
 * The sampling controller. Owns the per-window distributions so they
 * can be exposed to a stats report tree via registerStats().
 *
 * run() honors SimulateOptions.checkpointIn / resumeImage (every pass
 * resumes from the image — the shared pipeline/image.hh format, so a
 * checkpoint from a full detailed run seeds a sampled run and vice
 * versa) and SimulateOptions.checkpointOut (final machine state of the
 * first pass). Periodic checkpoints (checkpointEvery/onCheckpoint) are
 * a detailed-run feature and are ignored here.
 *
 * Like pipeline::simulate(), run() never throws for input- or
 * run-level failures: they come back in SampleEstimate::error.
 */
class Sampler
{
  public:
    /** Copies @p program and @p config; self-contained thereafter. */
    Sampler(isa::Program program, const pipeline::MachineConfig &config,
            const SampleParams &params);

    /**
     * Worker threads for the detailed-window phase. 0 and 1 both mean
     * sequential; >1 switches run() to capture mode (one functional
     * pass collects live points, then the windows run on a pool).
     * Reports are byte-identical for every value.
     */
    void setJobs(unsigned jobs) { _jobs = jobs; }

    /** Write the pass-0 live-point library to @p path (.imolib). */
    void setCaptureOut(std::string path) { _captureOut = std::move(path); }

    /** Keep the pass-0 library in memory (capturedLibrary()) even when
     *  no capture file was requested. */
    void setRetainCapture(bool retain) { _retainCapture = retain; }

    /**
     * Sample from @p library instead of running the functional pass:
     * the windows replay from the stored live points and the exact
     * totals come from the library header. run() then rejects
     * checkpoint options and error-targeted extension (both need the
     * functional pass), and fails with BadConfig unless the library
     * matches this sampler's machine kind, program, capture digest,
     * and U:W:M schedule.
     */
    void
    setLibrary(std::shared_ptr<const LivePointLibrary> library)
    {
        _library = std::move(library);
    }

    /** The pass-0 library captured by the last run() in capture mode
     *  (null otherwise). Shared so sweep drivers can reuse it across
     *  every configuration with the same capture digest. */
    const std::shared_ptr<const LivePointLibrary> &
    capturedLibrary() const
    {
        return _captured;
    }

    /** Execute the sampling schedule. @return the pooled estimate. */
    SampleEstimate run(const pipeline::SimulateOptions &options = {});

    /**
     * Fold externally produced window samples (a farm's shards) into
     * an estimate, exactly as run() would have folded locally executed
     * windows. Requires setLibrary(); @p samples must hold one entry
     * per library point, in window order.
     */
    SampleEstimate
    runFromWindowSamples(const std::vector<WindowSample> &samples);

    /**
     * Fold the window samples a shared multi-configuration reference
     * pass produced for this configuration, exactly as run() would
     * have folded locally executed windows: same fold order, same
     * halt-truncation handling, totals applied after the fold, one
     * pass. The estimate is byte-identical to a dedicated run()
     * because the shared pass replays each window on a fresh machine
     * of this exact configuration, seeded with the same warm image the
     * dedicated pass would have built.
     */
    SampleEstimate
    runFromSharedPass(const SharedPassTotals &totals,
                      const std::vector<WindowSample> &samples);

    /** Estimate from the most recent run() (empty before). */
    const SampleEstimate &estimate() const { return _est; }

    /** Expose the window distributions and schedule counters as a
     *  "sample" group under @p parent. Valid for this object's life. */
    void registerStats(stats::StatGroup &parent);

  private:
    template <typename Cpu>
    void runPasses(const char *kind,
                   const pipeline::SimulateOptions &options);

    template <typename Cpu>
    void runPass(const char *kind, std::uint32_t pass,
                 const pipeline::SimulateOptions &options);

    template <typename Cpu>
    void runPassFromLibrary(const char *kind,
                            const pipeline::SimulateOptions &options);

    /** Run the windows of @p points (inline or pooled) and fold them. */
    template <typename Cpu>
    void runWindows(const std::vector<LivePoint> &points,
                    const pipeline::SimulateOptions &options);

    /** Fold @p samples in window order; @p completed (when non-null)
     *  marks slots skipped by a cooperative stop. */
    void foldWindowSamples(const std::vector<WindowSample> &samples,
                           const std::vector<std::uint8_t> *completed);

    /** Fold one window. @return false when the pass must stop (the
     *  program halted inside the window). */
    bool foldWindow(const WindowSample &ws);

    /** @throw SimException(BadConfig) unless _library matches this
     *  sampler's machine kind, program, digest, and schedule. */
    void validateLibrary(const char *kind) const;

    void resetAccumulators();
    void finishEstimate();

    void finishMissRateEstimate();
    void xcheckAgainstFull();

    isa::Program _program;
    pipeline::MachineConfig _config;
    SampleParams _params;

    unsigned _jobs = 1;
    std::string _captureOut;
    bool _retainCapture = false;
    std::shared_ptr<const LivePointLibrary> _library;
    std::shared_ptr<const LivePointLibrary> _captured;

    // Per-measured-window (misses, refs) pairs across all passes, the
    // raw material of the miss-rate ratio estimator.
    std::vector<double> _winMisses;
    std::vector<double> _winRefs;

    stats::Distribution _cpi{"cpi",
        "per-measurement-window cycles per instruction"};
    stats::Distribution _missRate{"l1_miss_rate",
        "per-measurement-window L1 miss rate"};

    SampleEstimate _est;
};

} // namespace imo::sample

#endif // IMO_SAMPLE_SAMPLE_HH
