#include "sample/sharedpass.hh"

#include "common/error.hh"
#include "func/executor.hh"
#include "memory/multicache.hh"
#include "pipeline/inorder/cpu.hh"
#include "pipeline/ooo/cpu.hh"

namespace imo::sample
{

namespace
{

/** Forwards warming branch outcomes to the shared accumulator. */
template <typename Cpu>
class PredictorWarmer final : public func::WarmSink
{
  public:
    explicit PredictorWarmer(Cpu &cpu) : _cpu(cpu) {}

    void
    condBranch(InstAddr pc, bool taken) override
    {
        _cpu.warmCondBranch(pc, taken);
    }

  private:
    Cpu &_cpu;
};

/**
 * RefSink that drives the multi-config engine with the executor's raw
 * reference stream; the engine's own capture spans record each demand
 * reference's per-class service level, aligned with the window's
 * data-reference ordinals.
 */
class EngineSink final : public func::RefSink
{
  public:
    explicit EngineSink(memory::MultiCacheSim &engine) : _engine(engine)
    {
    }

    void
    onAccess(Addr addr, bool is_write) override
    {
        _engine.access(addr, is_write);
    }

    void
    onPrefetch(Addr addr) override
    {
        _engine.prefetch(addr);
    }

  private:
    memory::MultiCacheSim &_engine;
};

/**
 * Replays one buffered window span, substituting each demand data
 * reference's level with one classification config's outcome. The
 * patched stream is exactly what the member's own executor would have
 * produced, so the timing model cannot tell the difference.
 */
class PatchedWindowSource final : public func::TraceSource
{
  public:
    PatchedWindowSource(const std::vector<func::TraceRecord> &records,
                        const std::vector<std::uint8_t> &levels)
        : _records(records), _levels(levels)
    {
    }

    bool
    next(func::TraceRecord &out) override
    {
        if (_pos >= _records.size())
            return false;
        out = _records[_pos++];
        if (isa::isDataRef(out.inst.op))
            out.level = static_cast<MemLevel>(_levels[_ref++]);
        return true;
    }

  private:
    const std::vector<func::TraceRecord> &_records;
    const std::vector<std::uint8_t> &_levels;
    std::size_t _pos = 0;
    std::size_t _ref = 0;
};


template <typename Cpu>
SharedPassResult
runSharedPassImpl(const isa::Program &program,
                  const std::vector<pipeline::MachineConfig> &members,
                  const SampleParams &params)
{
    // Dedupe classification work: members sharing an (L1, L2) geometry
    // pair share one engine config (they differ in latency/MSHR knobs
    // only, which the per-member window replay applies).
    std::vector<memory::MultiCacheConfig> classCfgs;
    std::vector<std::size_t> classOf(members.size());
    for (std::size_t m = 0; m < members.size(); ++m) {
        const pipeline::MachineConfig &cfg = members[m];
        std::size_t k = 0;
        for (; k < classCfgs.size(); ++k) {
            const memory::MultiCacheConfig &cc = classCfgs[k];
            if (cc.l1.sizeBytes == cfg.l1.sizeBytes &&
                cc.l1.lineBytes == cfg.l1.lineBytes &&
                cc.l1.assoc == cfg.l1.assoc &&
                cc.l2.sizeBytes == cfg.l2.sizeBytes &&
                cc.l2.lineBytes == cfg.l2.lineBytes &&
                cc.l2.assoc == cfg.l2.assoc)
                break;
        }
        if (k == classCfgs.size())
            classCfgs.push_back({cfg.l1, cfg.l2});
        classOf[m] = k;
    }

    memory::MultiCacheSim engine(classCfgs);
    EngineSink sink(engine);

    // The executor runs under the first member's geometry; its own
    // hierarchy outcome is never consumed (levels are patched per
    // member), it merely keeps the execution semantics identical to a
    // dedicated pass. The engine observes the stream via the RefSink.
    func::Executor exec(program,
                        func::Executor::Config{
                            .l1 = members[0].l1,
                            .l2 = members[0].l2,
                            .maxInstructions =
                                members[0].maxInstructions});
    exec.setRefSink(&sink);

    Cpu accum(members[0]);
    accum.reset();
    PredictorWarmer<Cpu> warmer(accum);

    const std::uint64_t U = params.fastForward;
    const std::uint64_t W = params.warmup;
    const std::uint64_t M = params.measure;

    SharedPassResult res;
    res.samples.resize(members.size());
    res.totals.resize(members.size());

    std::vector<func::TraceRecord> window;
    window.reserve(W + M);

    // Mirror of Sampler::runPass interleaved mode, pass 0: the first
    // gap is U (pass-0 phase offset is zero), later gaps are U.
    for (;;) {
        if (exec.fastForward(U, &warmer) < U)
            break; // program halted inside the gap

        const std::vector<std::uint8_t> warm = makeWarmImage(accum);

        // Buffer the window span once, training the accumulator with
        // every conditional branch exactly as the dedicated tee would.
        window.clear();
        engine.beginCapture();
        func::TraceRecord rec;
        while (window.size() < W + M && exec.next(rec)) {
            switch (rec.inst.op) {
              case isa::Op::BEQ:
              case isa::Op::BNE:
              case isa::Op::BLT:
              case isa::Op::BGE:
                accum.warmCondBranch(rec.pc, rec.taken);
                break;
              default:
                break;
            }
            window.push_back(rec);
        }
        engine.endCapture();
        ++res.windows;

        // Replay the span once per member on a fresh machine seeded
        // with the shared warm image.
        for (std::size_t m = 0; m < members.size(); ++m) {
            PatchedWindowSource src(
                window, engine.capturedLevels(classOf[m]));
            Cpu win(members[m]);
            win.reset();
            restoreWarmImage(warm, win);

            WindowSample ws;
            ws.warmed = stepWindow(win, src, W);
            if (ws.warmed == W) {
                const pipeline::RunResult r0 = win.result();
                ws.measured = stepWindow(win, src, M);
                const pipeline::RunResult r1 = win.result();
                ws.cycles = r1.cycles - r0.cycles;
                ws.misses = r1.l1Misses - r0.l1Misses;
                ws.refs = r1.dataRefs - r0.dataRefs;
            }
            res.samples[m].push_back(ws);
        }

        if (window.size() < W + M)
            break; // program halted inside the window span
    }

    exec.setRefSink(nullptr);
    engine.sync(); // settle deferred L2 work before reading counters

    const func::ExecStats &es = exec.stats();
    for (std::size_t m = 0; m < members.size(); ++m) {
        res.totals[m] = SharedPassTotals{
            .instructions = es.instructions,
            .dataRefs = es.dataRefs,
            .l1Misses = engine.l1Misses(classOf[m]),
            .traps = es.traps};
    }
    res.configs = classCfgs.size();
    res.streamLength = engine.accesses();
    res.prefetches = engine.prefetches();
    return res;
}

} // namespace

bool
sharedPassEligible(const isa::Program &program)
{
    for (const isa::Instruction &in : program.insts()) {
        switch (in.op) {
          case isa::Op::BRMISS:
          case isa::Op::BRMISS2:
          case isa::Op::SETMHAR:
          case isa::Op::SETMHARR:
          case isa::Op::SETMHARPC:
            return false;
          default:
            break;
        }
    }
    return true;
}

SharedPassResult
runSharedGeometryPass(const isa::Program &program,
                      const std::vector<pipeline::MachineConfig> &members,
                      const SampleParams &params)
{
    sim_throw_if(members.empty(), ErrCode::BadConfig,
                 "shared pass: no member configurations");
    sim_throw_if(!sharedPassEligible(program), ErrCode::BadConfig,
                 "shared pass: program '%s' contains cache-outcome-"
                 "dependent operations; its reference stream is not "
                 "geometry-invariant",
                 program.name().c_str());
    params.validate();
    for (const pipeline::MachineConfig &cfg : members) {
        cfg.validate();
        sim_throw_if(cfg.outOfOrder != members[0].outOfOrder ||
                     cfg.maxInstructions != members[0].maxInstructions,
                     ErrCode::BadConfig,
                     "shared pass: member machine kinds or instruction "
                     "budgets differ");
    }

    if (members[0].outOfOrder)
        return runSharedPassImpl<pipeline::OooCpu>(program, members,
                                                   params);
    return runSharedPassImpl<pipeline::InOrderCpu>(program, members,
                                                   params);
}

} // namespace imo::sample
