/**
 * @file
 * One shared functional reference pass serving many cache geometries.
 *
 * A sweep's geometry axis re-runs the same program once per grid point
 * even though the functional instruction stream is identical across
 * points whenever the program contains no cache-outcome-dependent
 * operations (no BRMISS/BRMISS2, no miss traps). This driver runs that
 * stream ONCE: the executor's raw reference stream feeds a
 * memory::MultiCacheSim that classifies every access for every member
 * geometry simultaneously, and at each SMARTS window boundary the
 * buffered window records are replayed through a fresh timing model
 * per member — with each data reference's service level patched to
 * that member's classification — producing exactly the WindowSample a
 * dedicated interleaved pass would have measured.
 *
 * Byte-identity argument, piece by piece:
 *  - the architectural stream (instructions, addresses, branch
 *    outcomes, halt point) is geometry-invariant for eligible
 *    programs, so fast-forward gaps and window boundaries land on the
 *    same instructions as any dedicated run;
 *  - the warm accumulator only ever consumes conditional-branch
 *    outcomes, which are stream-invariant, and all members share one
 *    predictor geometry, so the per-boundary warm images are the very
 *    bytes a dedicated pass would build;
 *  - a window's timing model consumes TraceRecords, whose only
 *    geometry-dependent field is `level`; the engine reproduces
 *    FunctionalHierarchy::access exactly (property-tested and
 *    IMO_PARANOID_XCHECK-replayed), so the patched records equal the
 *    records the member's own executor would have produced.
 *
 * Sampler::runFromSharedPass() then folds the per-member samples into
 * estimates indistinguishable from Sampler::run().
 */

#ifndef IMO_SAMPLE_SHAREDPASS_HH
#define IMO_SAMPLE_SHAREDPASS_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "pipeline/config.hh"
#include "sample/sample.hh"

namespace imo::sample
{

/** Output of runSharedGeometryPass(): per-member window samples and
 *  exact totals, plus stream provenance for manifests. */
struct SharedPassResult
{
    /** samples[m] holds member m's windows in schedule order. */
    std::vector<std::vector<WindowSample>> samples;
    /** totals[m]: exact functional totals under member m's geometry. */
    std::vector<SharedPassTotals> totals;
    std::uint64_t configs = 0;      //!< distinct (L1, L2) classes served
    std::uint64_t streamLength = 0; //!< demand references classified
    std::uint64_t prefetches = 0;   //!< prefetches observed
    std::uint64_t windows = 0;      //!< window boundaries served
};

/**
 * Is @p program eligible for a shared reference pass? True iff no
 * instruction's architectural effect can depend on a cache outcome:
 * the program must contain no BRMISS/BRMISS2 (branch on the miss
 * condition code) and no SETMHAR/SETMHARR/SETMHARPC (a nonzero MHAR
 * arms miss traps, which redirect control flow). Informing-mode
 * instrumented programs fail this; mode-None programs pass.
 */
bool sharedPassEligible(const isa::Program &program);

/**
 * Run the shared pass. All @p members must share the machine kind,
 * predictor geometry and instruction budget (they are grid points
 * differing in cache geometry and timing knobs only) and @p program
 * must be sharedPassEligible(); throws SimException(BadConfig)
 * otherwise. Deterministic: a pure function of the arguments.
 */
SharedPassResult
runSharedGeometryPass(const isa::Program &program,
                      const std::vector<pipeline::MachineConfig> &members,
                      const SampleParams &params);

} // namespace imo::sample

#endif // IMO_SAMPLE_SHAREDPASS_HH
