file(REMOVE_RECURSE
  "CMakeFiles/imo_sweep.dir/gridcli.cc.o"
  "CMakeFiles/imo_sweep.dir/gridcli.cc.o.d"
  "CMakeFiles/imo_sweep.dir/sweep.cc.o"
  "CMakeFiles/imo_sweep.dir/sweep.cc.o.d"
  "libimo_sweep.a"
  "libimo_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imo_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
