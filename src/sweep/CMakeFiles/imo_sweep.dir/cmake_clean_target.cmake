file(REMOVE_RECURSE
  "libimo_sweep.a"
)
