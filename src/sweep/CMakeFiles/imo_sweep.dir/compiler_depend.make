# Empty compiler generated dependencies file for imo_sweep.
# This may be replaced when dependencies are built.
