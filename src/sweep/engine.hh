/**
 * @file
 * Generic ordered parallel-for engine for configuration sweeps.
 *
 * Tasks are independent closures; a fixed-size std::thread pool drains
 * an atomic work queue and every task writes its result into the slot
 * matching its input index. Output order therefore never depends on
 * scheduling: runOrdered(tasks, 1) and runOrdered(tasks, N) produce
 * element-wise identical vectors as long as each task is a pure
 * function of its inputs (the simulator guarantees this — each sweep
 * point constructs a fully isolated machine instance).
 */

#ifndef IMO_SWEEP_ENGINE_HH
#define IMO_SWEEP_ENGINE_HH

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <thread>
#include <vector>

namespace imo::sweep
{

/**
 * Run every task on @p jobs worker threads and return their results
 * in input order. A task that throws poisons the run: the first
 * exception (by task index, not completion order) is rethrown after
 * all workers have drained, so partial results never escape silently.
 *
 * Cooperative cancellation: when @p cancel is non-null and becomes
 * nonzero (typically from a SIGINT handler), workers stop pulling new
 * tasks; tasks already running finish normally. @p completed (when
 * non-null) is sized to the task count and records, per slot, whether
 * its task ran to completion — the caller uses it to emit a partial
 * report of exactly the finished work.
 *
 * @param tasks      independent closures; each must not touch shared
 *                   mutable state
 * @param jobs       worker-thread count; 0 and 1 both mean "run inline
 *                   on the calling thread"
 * @param cancel     optional stop flag polled between tasks
 * @param completed  optional per-slot completion record
 */
template <typename R>
std::vector<R>
runOrdered(const std::vector<std::function<R()>> &tasks,
           unsigned jobs,
           const volatile std::sig_atomic_t *cancel = nullptr,
           std::vector<std::uint8_t> *completed = nullptr)
{
    std::vector<R> results(tasks.size());
    if (completed)
        completed->assign(tasks.size(), 0);
    if (tasks.empty())
        return results;

    if (jobs <= 1) {
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (cancel && *cancel)
                break;
            results[i] = tasks[i]();
            if (completed)
                (*completed)[i] = 1;
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    // First failing task by *index*, so the surfaced error does not
    // depend on which worker happened to hit it first.
    std::vector<std::exception_ptr> errors(tasks.size());

    auto worker = [&] {
        for (;;) {
            if (cancel && *cancel)
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            try {
                results[i] = tasks[i]();
                if (completed)
                    (*completed)[i] = 1;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(jobs, tasks.size()));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

/**
 * runOrdered() with a per-worker context: @p make_ctx runs once on
 * each worker thread (and once on the calling thread in the inline
 * path), and every task that worker executes receives the context by
 * reference. Built for heavy reusable scratch state — e.g. a
 * live-point window runner whose executor every restore overwrites
 * completely — where per-task construction would rival the task
 * itself. The ordering contract is unchanged, and so is the purity
 * obligation: results must stay pure functions of the task inputs, so
 * a context must not carry state between tasks that can influence a
 * result.
 */
template <typename R, typename Ctx>
std::vector<R>
runOrderedWith(const std::function<Ctx()> &make_ctx,
               const std::vector<std::function<R(Ctx &)>> &tasks,
               unsigned jobs,
               const volatile std::sig_atomic_t *cancel = nullptr,
               std::vector<std::uint8_t> *completed = nullptr)
{
    std::vector<R> results(tasks.size());
    if (completed)
        completed->assign(tasks.size(), 0);
    if (tasks.empty())
        return results;

    if (jobs <= 1) {
        Ctx ctx = make_ctx();
        for (std::size_t i = 0; i < tasks.size(); ++i) {
            if (cancel && *cancel)
                break;
            results[i] = tasks[i](ctx);
            if (completed)
                (*completed)[i] = 1;
        }
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(tasks.size());
    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(jobs, tasks.size()));
    // A context that fails to construct must not terminate the
    // process (worker threads have no caller to throw to); it is
    // reported like a task failure, attributed to the first task the
    // worker would have pulled.
    std::vector<std::exception_ptr> ctx_errors(n);

    auto worker = [&](unsigned t) {
        std::optional<Ctx> ctx;
        try {
            ctx.emplace(make_ctx());
        } catch (...) {
            ctx_errors[t] = std::current_exception();
            return;
        }
        for (;;) {
            if (cancel && *cancel)
                return;
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= tasks.size())
                return;
            try {
                results[i] = tasks[i](*ctx);
                if (completed)
                    (*completed)[i] = 1;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker, t);
    for (std::thread &t : pool)
        t.join();

    for (const std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    for (const std::exception_ptr &e : ctx_errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return results;
}

} // namespace imo::sweep

#endif // IMO_SWEEP_ENGINE_HH
