#include "sweep/gridcli.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.hh"
#include "sample/sample.hh"
#include "workloads/suite.hh"

namespace imo::sweep
{

std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

std::vector<std::uint64_t>
parseU64List(const std::string &s, const char *what)
{
    std::vector<std::uint64_t> out;
    for (const std::string &item : splitCsv(s)) {
        char *end = nullptr;
        errno = 0;
        const long long v = std::strtoll(item.c_str(), &end, 10);
        sim_throw_if(end == item.c_str() || *end != '\0' || errno != 0 ||
                         v < 0,
                     ErrCode::BadConfig, "bad %s value '%s'", what,
                     item.c_str());
        out.push_back(static_cast<std::uint64_t>(v));
    }
    return out;
}

std::uint64_t
parseU64(const std::string &s, const char *what)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    sim_throw_if(end == s.c_str() || *end != '\0' || errno != 0 ||
                     v < 0,
                 ErrCode::BadConfig, "bad %s value '%s'", what,
                 s.c_str());
    return static_cast<std::uint64_t>(v);
}

core::InformingMode
parseModeName(const std::string &m)
{
    if (m == "N")
        return core::InformingMode::None;
    if (m == "S")
        return core::InformingMode::TrapSingle;
    if (m == "U")
        return core::InformingMode::TrapUnique;
    if (m == "CC")
        return core::InformingMode::CondCode;
    throwSimError(ErrCode::BadConfig,
                  "unknown mode '%s' (N, S, U, or CC)", m.c_str());
}

const char *
gridAxesHelp()
{
    return
        "axes (comma-separated values; the grid is their cartesian "
        "product):\n"
        "  --workloads A,B,...     workload names (default espresso)\n"
        "  --machines M,...        ooo,inorder (default ooo)\n"
        "  --modes M,...           N,S,U,CC (default N)\n"
        "  --lens K,...            generic handler lengths "
        "(default 10)\n"
        "  --l1-sizes KB,...       L1 size override in KB (default: "
        "machine default)\n"
        "  --l1-assocs A,...       L1 associativity override\n"
        "  --l2-lats N,...         L2 latency override, cycles\n"
        "  --mem-lats N,...        memory latency override, cycles\n"
        "  --mshrs N,...           MSHR count override\n"
        "  --samples S,...         sampling schedules: 'full' for the "
        "detailed\n"
        "                          simulation, or U:W:M (e.g. "
        "10000:500:500)\n"
        "  --scale F               workload scale factor (default 1)\n"
        "  --seed N                workload seed\n";
}

bool
applyGridArg(SweepGrid *grid, const std::string &arg,
             const std::function<std::string()> &value)
{
    if (arg == "--workloads") {
        grid->workloads = splitCsv(value());
    } else if (arg == "--machines") {
        grid->machines = splitCsv(value());
    } else if (arg == "--modes") {
        grid->modes.clear();
        for (const std::string &m : splitCsv(value()))
            grid->modes.push_back(parseModeName(m));
    } else if (arg == "--lens") {
        grid->handlerLens.clear();
        for (const std::uint64_t v :
             parseU64List(value(), "handler length"))
            grid->handlerLens.push_back(static_cast<std::uint32_t>(v));
    } else if (arg == "--l1-sizes") {
        grid->l1SizesBytes.clear();
        for (const std::uint64_t kb : parseU64List(value(), "L1 size"))
            grid->l1SizesBytes.push_back(kb * 1024);
    } else if (arg == "--l1-assocs") {
        grid->l1Assocs.clear();
        for (const std::uint64_t v : parseU64List(value(), "L1 assoc"))
            grid->l1Assocs.push_back(static_cast<std::uint32_t>(v));
    } else if (arg == "--l2-lats") {
        grid->l2Latencies = parseU64List(value(), "L2 latency");
    } else if (arg == "--mem-lats") {
        grid->memLatencies = parseU64List(value(), "memory latency");
    } else if (arg == "--mshrs") {
        grid->mshrCounts.clear();
        for (const std::uint64_t v : parseU64List(value(), "MSHR count"))
            grid->mshrCounts.push_back(static_cast<std::uint32_t>(v));
    } else if (arg == "--samples") {
        grid->samples.clear();
        for (const std::string &s : splitCsv(value()))
            grid->samples.push_back(s == "full" ? "" : s);
    } else if (arg == "--scale") {
        grid->scale = std::atof(value().c_str());
    } else if (arg == "--seed") {
        grid->seed = std::strtoull(value().c_str(), nullptr, 0);
    } else {
        return false;
    }
    return true;
}

unsigned
parseParallelism(const std::string &text, const char *flag)
{
    char *end = nullptr;
    errno = 0;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    sim_throw_if(end == text.c_str() || *end != '\0' || errno != 0,
                 ErrCode::BadConfig, "%s: bad value '%s'", flag,
                 text.c_str());
    sim_throw_if(v < 0, ErrCode::BadConfig,
                 "%s must be non-negative (0 means one per hardware "
                 "thread), got %lld",
                 flag, v);
    if (v == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }
    return static_cast<unsigned>(v);
}

void
validatePoints(const std::vector<SweepPoint> &points)
{
    for (const SweepPoint &p : points) {
        p.resolveConfig().validate();
        sim_throw_if(!workloads::find(p.workload), ErrCode::BadConfig,
                     "unknown workload '%s'", p.workload.c_str());
        if (!p.sample.empty())
            sample::SampleParams::parse(p.sample);
    }
}

} // namespace imo::sweep
