/**
 * @file
 * Shared command-line grid parsing for the sweep-driver family
 * (imo-sweep, imo-farm). One implementation of the axis flags, the
 * numeric-list parser, job-count semantics, and up-front point
 * validation keeps the drivers' grids — and therefore their reports —
 * interchangeable.
 */

#ifndef IMO_SWEEP_GRIDCLI_HH
#define IMO_SWEEP_GRIDCLI_HH

#include <functional>
#include <string>
#include <vector>

#include "sweep/sweep.hh"

namespace imo::sweep
{

/** Split a comma-separated list, dropping empty items. */
std::vector<std::string> splitCsv(const std::string &s);

/** Parse a comma-separated list of non-negative integers.
 *  Throws SimException(BadConfig) naming @p what on a bad item. */
std::vector<std::uint64_t> parseU64List(const std::string &s,
                                        const char *what);

/** Parse one non-negative integer (e.g. a millisecond or seed flag).
 *  Throws SimException(BadConfig) naming @p what on malformed input —
 *  a typo must never silently become 0. */
std::uint64_t parseU64(const std::string &s, const char *what);

/** Parse an informing-mode name (N, S, U, CC).
 *  Throws SimException(BadConfig) for anything else. */
core::InformingMode parseModeName(const std::string &m);

/** The usage-text block describing the shared axis flags. */
const char *gridAxesHelp();

/**
 * Try to consume one shared grid argument (an axis flag, --scale, or
 * --seed). @p value fetches the flag's value (and may throw BadConfig
 * when it is missing). @return false if @p arg is not a grid flag.
 */
bool applyGridArg(SweepGrid *grid, const std::string &arg,
                  const std::function<std::string()> &value);

/**
 * Parse a parallelism value for @p flag (e.g. "--jobs", "--workers"):
 * 0 means "one per hardware thread", a positive value is taken as-is,
 * and a negative or malformed value is a BadConfig error.
 */
unsigned parseParallelism(const std::string &text, const char *flag);

/**
 * Validate every point's machine config, workload name, and sampling
 * spec up front, so a typo fails fast (BadConfig) instead of surfacing
 * mid-sweep from a worker.
 */
void validatePoints(const std::vector<SweepPoint> &points);

} // namespace imo::sweep

#endif // IMO_SWEEP_GRIDCLI_HH
